"""Tests for the paper-facing scalar metrics and their invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WEAK_SCALING_BASE, WorkloadConfig
from repro.simgpu.profiler import Profiler
from repro.telemetry import (
    MetricsRegistry,
    compute_metrics,
    gini,
    overlap_fraction,
    peak_to_mean,
    run_window,
    sample_edges,
)
from repro.telemetry.metrics import exposed_comm_ns

SMALL = WorkloadConfig(
    num_tables=8, rows_per_table=2048, dim=16, batch_size=512, max_pooling=8
)


def run_backend(cfg: WorkloadConfig, backend: str, n_devices: int = 2):
    emb = DistributedEmbedding(cfg, n_devices, backend=backend)
    emb.forward_timed(SyntheticDataGenerator(cfg).lengths_batch())
    return emb


class TestPrimitives:
    def test_peak_to_mean_flat_is_one(self):
        assert peak_to_mean(np.full(10, 3.0)) == pytest.approx(1.0)

    def test_peak_to_mean_burst(self):
        values = np.zeros(10)
        values[0] = 10.0
        assert peak_to_mean(values) == pytest.approx(10.0)

    def test_peak_to_mean_empty_and_zero(self):
        assert peak_to_mean(np.array([])) == 0.0
        assert peak_to_mean(np.zeros(5)) == 0.0

    def test_gini_uniform_is_zero(self):
        assert gini(np.full(8, 2.0)) == pytest.approx(0.0)

    def test_gini_concentrated_near_one(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini(values) == pytest.approx(0.99)

    def test_gini_order_invariant(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(size=32)
        assert gini(values) == pytest.approx(gini(values[::-1]))


class TestOverlapFraction:
    def test_all_hidden(self):
        p = Profiler()
        p.record_span("fused", "fused", -1, 0.0, 100.0)
        p.add_count("pgas_bytes.dev0->dev1", 50.0, 512.0)
        frac, hidden, total = overlap_fraction(p)
        assert frac == 1.0 and hidden == total == 512.0

    def test_none_hidden(self):
        p = Profiler()
        p.record_span("k", "compute", 0, 0.0, 100.0)
        p.add_count("comm_bytes.dev0->dev1", 200.0, 512.0)
        frac, hidden, total = overlap_fraction(p)
        assert frac == 0.0 and hidden == 0.0 and total == 512.0

    def test_attribution_is_source_device(self):
        p = Profiler()
        # only device 1 is computing when the delivery lands
        p.record_span("k1", "compute", 1, 0.0, 100.0)
        p.add_count("comm_bytes.dev0->dev1", 50.0, 512.0)
        frac, _, _ = overlap_fraction(p)
        assert frac == 0.0  # traffic is sourced by (idle) device 0
        frac1, _, total1 = overlap_fraction(p, device_id=1)
        assert total1 == 0.0  # device 1 sourced nothing

    def test_no_traffic(self):
        assert overlap_fraction(Profiler()) == (0.0, 0.0, 0.0)

    @pytest.mark.parametrize("backend", ["pgas", "baseline"])
    def test_bounded_by_one_on_real_runs(self, backend):
        emb = run_backend(SMALL, backend)
        frac, hidden, total = overlap_fraction(emb.cluster.profiler)
        assert total > 0
        assert 0.0 <= frac <= 1.0
        assert hidden <= total


class TestExposedComm:
    def test_fully_overlapped_run_has_zero_exposure(self):
        emb = run_backend(SMALL, "pgas")
        p = emb.cluster.profiler
        edges = sample_edges(*run_window(p), 100)
        assert exposed_comm_ns(p, edges) == pytest.approx(0.0)

    def test_baseline_exposes_its_comm_phase(self):
        emb = run_backend(SMALL, "baseline")
        p = emb.cluster.profiler
        edges = sample_edges(*run_window(p), 100)
        assert exposed_comm_ns(p, edges) > 0.0


class TestWeakScalingInvariants:
    """The acceptance-criteria invariants, on the paper's weak workload."""

    @pytest.fixture(scope="class")
    def registries(self):
        cfg = WEAK_SCALING_BASE.scaled_tables(64 * 2)
        out = {}
        for backend in ("pgas", "baseline"):
            emb = run_backend(cfg, backend)
            out[backend] = compute_metrics(
                emb.cluster.profiler, 2, topology=emb.cluster.topology
            )
        return out

    def test_overlap_pgas_exceeds_baseline(self, registries):
        pgas = registries["pgas"].value("overlap_fraction")
        base = registries["baseline"].value("overlap_fraction")
        assert pgas > base
        assert pgas <= 1.0 and base <= 1.0

    def test_baseline_burstier_peak_to_mean(self, registries):
        pgas = registries["pgas"].value("link_peak_to_mean")
        base = registries["baseline"].value("link_peak_to_mean")
        assert base > pgas

    def test_baseline_burstier_gini(self, registries):
        assert registries["baseline"].value("link_gini") > registries["pgas"].value(
            "link_gini"
        )

    def test_only_baseline_pays_unpack(self, registries):
        assert registries["baseline"].value("unpack_share") > 0.0
        assert registries["pgas"].value("unpack_share") == 0.0

    def test_exposed_comm_only_on_baseline(self, registries):
        assert registries["baseline"].value("exposed_comm_ns") > 0.0
        assert registries["pgas"].value("exposed_comm_ns") == pytest.approx(0.0)

    def test_same_comm_volume_both_backends(self, registries):
        pgas = registries["pgas"].value("comm_bytes_total")
        base = registries["baseline"].value("comm_bytes_total")
        assert pgas == pytest.approx(base)


class TestRegistry:
    def test_record_and_lookup(self):
        reg = MetricsRegistry()
        reg.record("x", 1.5, "ns", "desc")
        assert "x" in reg
        assert reg.value("x") == 1.5
        assert reg.get("x").unit == "ns"
        assert reg.value("missing", default=-1.0) == -1.0

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.record("a", 1.0, "ns", "first")
        reg.record("b", 2.0, "fraction")
        back = MetricsRegistry.from_dict(reg.as_dict())
        assert back.as_dict() == reg.as_dict()
        assert back.names() == ["a", "b"]

    def test_compute_metrics_has_per_device_occupancy(self):
        emb = run_backend(SMALL, "pgas")
        reg = compute_metrics(emb.cluster.profiler, 2)
        for dev in range(2):
            occ = reg.value(f"compute_occupancy.dev{dev}")
            assert 0.0 < occ <= 1.0
