"""Tests for the derived time-series gauges."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simgpu.profiler import Profiler
from repro.telemetry import (
    TimeSeries,
    comm_rate_series,
    compute_occupancy_series,
    gauge_series,
    link_utilization_series,
    merged_intervals,
    per_pair_comm_counters,
    run_window,
    sample_edges,
)


def traffic_profiler() -> Profiler:
    p = Profiler()
    p.record_span("k0", "compute", 0, 0.0, 1000.0)
    p.record_span("k1", "compute", 1, 500.0, 2000.0)
    for t in (100.0, 300.0, 900.0, 1500.0):
        p.add_count("comm_bytes", t, 256.0)
        p.add_count("comm_bytes.dev0->dev1", t, 256.0)
    return p


class TestGrid:
    def test_sample_edges_shape(self):
        edges = sample_edges(0.0, 100.0, 10)
        assert edges.shape == (11,)
        assert edges[0] == 0.0 and edges[-1] == 100.0

    def test_zero_width_window_degenerates_to_one_bin(self):
        edges = sample_edges(5.0, 5.0, 10)
        assert len(edges) == 2
        assert edges[1] > edges[0]

    def test_bad_args(self):
        with pytest.raises(ValueError):
            sample_edges(0.0, 1.0, 0)
        with pytest.raises(ValueError):
            sample_edges(1.0, 0.0, 4)

    def test_run_window_covers_spans_and_counters(self):
        p = traffic_profiler()
        t0, t1 = run_window(p)
        assert t0 == 0.0
        assert t1 == 2000.0

    def test_run_window_empty(self):
        assert run_window(Profiler()) == (0.0, 0.0)


class TestSeries:
    def test_comm_rate_conserves_volume(self):
        p = traffic_profiler()
        edges = sample_edges(*run_window(p), 20)
        s = comm_rate_series(p, edges)
        volume = float(np.sum(s.values * np.diff(edges)))
        assert volume == pytest.approx(4 * 256.0)

    def test_volume_conserved_with_event_on_first_edge(self):
        p = Profiler()
        p.add_count("comm_bytes", 0.0, 512.0)  # exactly at the window start
        p.add_count("comm_bytes", 50.0, 256.0)
        edges = sample_edges(0.0, 100.0, 4)
        s = comm_rate_series(p, edges)
        assert float(np.sum(s.values * np.diff(edges))) == pytest.approx(768.0)

    def test_occupancy_bounded_and_correct(self):
        p = traffic_profiler()
        edges = sample_edges(0.0, 2000.0, 20)
        occ = compute_occupancy_series(p, edges, device_id=None)
        assert np.all(occ.values >= 0.0) and np.all(occ.values <= 1.0)
        # compute covers [0, 2000] continuously -> every bin full
        assert np.all(occ.values == pytest.approx(1.0))

    def test_occupancy_per_device(self):
        p = traffic_profiler()
        edges = sample_edges(0.0, 2000.0, 4)  # 500 ns bins
        occ0 = compute_occupancy_series(p, edges, device_id=0)
        # device 0 computes only during [0, 1000]
        assert occ0.values.tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_deviceless_span_counts_for_every_device(self):
        p = Profiler()
        p.record_span("fused", "fused", -1, 0.0, 100.0)
        edges = sample_edges(0.0, 100.0, 2)
        for dev in (0, 1, 7):
            occ = compute_occupancy_series(p, edges, device_id=dev)
            assert np.all(occ.values == 1.0)

    def test_gauge_series_reads_levels(self):
        p = Profiler()
        c = p.counter("serving.queue_depth", unit="requests")
        c.add(0.0, 1.0)
        c.add(10.0, 1.0)
        c.add(20.0, -2.0)
        edges = np.array([0.0, 5.0, 15.0, 25.0, 30.0])
        g = gauge_series(c, edges)
        assert g.values.tolist() == [1.0, 1.0, 2.0, 0.0]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("x", "u", np.zeros(3), np.zeros(2), 1.0)


class TestLinks:
    def test_per_pair_counters_parsed(self):
        pairs = per_pair_comm_counters(traffic_profiler())
        assert set(pairs) == {(0, 1)}

    def test_base_counter_not_a_pair(self):
        p = Profiler()
        p.add_count("comm_bytes", 0.0, 1.0)
        assert per_pair_comm_counters(p) == {}

    def test_link_utilization_normalised_by_topology(self):
        from repro.simgpu.interconnect import nvlink_dgx1

        p = traffic_profiler()
        edges = sample_edges(0.0, 2000.0, 10)
        series = link_utilization_series(p, edges, topology=nvlink_dgx1(2))
        s = series[(0, 1)]
        assert s.unit == "fraction"
        assert np.all(s.values >= 0.0)

    def test_link_utilization_raw_without_topology(self):
        p = traffic_profiler()
        edges = sample_edges(0.0, 2000.0, 10)
        s = link_utilization_series(p, edges)[(0, 1)]
        assert s.unit == "bytes/ns"


class TestIntervals:
    def test_merge(self):
        p = Profiler()
        p.record_span("a", "compute", 0, 0.0, 10.0)
        p.record_span("b", "compute", 0, 5.0, 20.0)
        p.record_span("c", "compute", 0, 30.0, 40.0)
        assert merged_intervals(p, ("compute",), 0) == [(0.0, 20.0), (30.0, 40.0)]

    def test_device_filter_includes_global(self):
        p = Profiler()
        p.record_span("mine", "compute", 0, 0.0, 10.0)
        p.record_span("other", "compute", 1, 20.0, 30.0)
        p.record_span("global", "fused", -1, 40.0, 50.0)
        assert merged_intervals(p, ("compute", "fused"), 0) == [
            (0.0, 10.0),
            (40.0, 50.0),
        ]
