"""Tests for the derived-gauge trace exporter."""

from __future__ import annotations

import json

from repro.simgpu.profiler import Profiler
from repro.telemetry import (
    QUEUE_DEPTH_COUNTER,
    TELEMETRY_PID,
    chrome_trace_with_telemetry,
    telemetry_trace_events,
    write_chrome_trace_with_telemetry,
)


def sample_profiler() -> Profiler:
    p = Profiler()
    p.record_span("kernel0", "compute", 0, 0.0, 1000.0)
    p.record_span("kernel1", "compute", 1, 100.0, 1200.0)
    p.add_count("comm_bytes", 500.0, 4096.0)
    return p


class TestTelemetryEvents:
    def test_tracks_present(self):
        events = telemetry_trace_events(sample_profiler(), n_devices=2, n_bins=10)
        names = {e["name"] for e in events if e.get("ph") == "C"}
        assert "telemetry.comm_rate" in names
        assert "telemetry.compute_occupancy.dev0" in names
        assert "telemetry.compute_occupancy.dev1" in names

    def test_all_on_telemetry_pid(self):
        events = telemetry_trace_events(sample_profiler(), n_devices=2, n_bins=10)
        assert events and all(e["pid"] == TELEMETRY_PID for e in events)

    def test_metadata_row(self):
        events = telemetry_trace_events(sample_profiler(), n_devices=1, n_bins=10)
        meta = [e for e in events if e.get("ph") == "M"]
        assert len(meta) == 1
        assert meta[0]["args"]["name"] == "telemetry (derived gauges)"

    def test_queue_depth_track_only_when_present(self):
        p = sample_profiler()
        events = telemetry_trace_events(p, n_devices=1, n_bins=10)
        assert not any("queue_depth" in e["name"] for e in events)
        p.add_count(QUEUE_DEPTH_COUNTER, 10.0, 1.0, unit="requests")
        events = telemetry_trace_events(p, n_devices=1, n_bins=10)
        assert any(e["name"] == "telemetry.queue_depth" for e in events)

    def test_empty_profiler_no_events(self):
        assert telemetry_trace_events(Profiler(), n_devices=2) == []


class TestCombinedTrace:
    def test_extends_base_trace(self):
        trace = chrome_trace_with_telemetry(
            sample_profiler(), n_devices=2, n_bins=10, counters=False
        )
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        gauges = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "C" and e["name"].startswith("telemetry.")
        ]
        assert spans and gauges

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace_with_telemetry(sample_profiler(), str(path), n_devices=2)
        data = json.loads(path.read_text())
        assert any(
            e.get("name", "").startswith("telemetry.") for e in data["traceEvents"]
        )
