"""Tests for the RunReport schema, round-trip, and collection."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu.profiler import Profiler
from repro.telemetry import (
    QUEUE_DEPTH_COUNTER,
    ReportValidationError,
    RunReport,
    collect_run_report,
    validate_report,
)

SMALL = WorkloadConfig(
    num_tables=8, rows_per_table=2048, dim=16, batch_size=512, max_pooling=8
)


@pytest.fixture(scope="module")
def real_report() -> RunReport:
    emb = DistributedEmbedding(SMALL, 2, backend="pgas")
    timing = emb.forward_timed(SyntheticDataGenerator(SMALL).lengths_batch())
    return collect_run_report(
        emb.cluster.profiler,
        backend="pgas",
        n_devices=2,
        workload=SMALL,
        timing=timing,
        topology=emb.cluster.topology,
        meta={"note": "unit-test"},
    )


class TestRoundTrip:
    def test_bit_exact_round_trip(self, real_report):
        text = real_report.to_json()
        assert RunReport.from_json(text).to_json() == text

    def test_round_trip_with_indent(self, real_report):
        text = real_report.to_json(indent=2)
        back = RunReport.from_json(text)
        assert back.to_json(indent=2) == text

    def test_json_is_sorted_and_plain(self, real_report):
        data = json.loads(real_report.to_json())
        assert list(data) == sorted(data)
        # numpy leaked into the artifact would break canonical serialisation
        def no_numpy(obj):
            if isinstance(obj, dict):
                return all(no_numpy(v) for v in obj.values())
            if isinstance(obj, list):
                return all(no_numpy(v) for v in obj)
            return not isinstance(obj, np.generic)

        assert no_numpy(data)

    def test_synthetic_report_round_trip(self):
        r = RunReport(backend="baseline", n_devices=4)
        r.metrics["x"] = {"value": 1.0, "unit": "ns", "description": ""}
        text = r.to_json()
        assert RunReport.from_json(text).to_json() == text


class TestValidation:
    def make_valid(self) -> dict:
        return RunReport(
            backend="pgas",
            n_devices=2,
            metrics={"m": {"value": 1.0, "unit": "ns", "description": "d"}},
        ).as_dict()

    def test_valid_passes(self):
        validate_report(self.make_valid())

    def test_not_a_dict(self):
        with pytest.raises(ReportValidationError):
            validate_report([1, 2, 3])

    @pytest.mark.parametrize("key", ["schema_version", "backend", "n_devices", "metrics"])
    def test_missing_required_key(self, key):
        data = self.make_valid()
        del data[key]
        with pytest.raises(ReportValidationError, match=key):
            validate_report(data)

    def test_unknown_key_rejected(self):
        data = self.make_valid()
        data["surprise"] = {}
        with pytest.raises(ReportValidationError, match="surprise"):
            validate_report(data)

    def test_wrong_type(self):
        data = self.make_valid()
        data["backend"] = 42
        with pytest.raises(ReportValidationError, match="backend"):
            validate_report(data)

    def test_bool_is_not_a_number(self):
        data = self.make_valid()
        data["metrics"]["m"]["value"] = True
        with pytest.raises(ReportValidationError, match="number"):
            validate_report(data)

    def test_bad_schema_version(self):
        data = self.make_valid()
        data["schema_version"] = 99
        with pytest.raises(ReportValidationError, match="schema_version"):
            validate_report(data)

    def test_bad_n_devices(self):
        data = self.make_valid()
        data["n_devices"] = 0
        with pytest.raises(ReportValidationError, match="n_devices"):
            validate_report(data)

    def test_metric_missing_unit(self):
        data = self.make_valid()
        data["metrics"]["m"] = {"value": 1.0}
        with pytest.raises(ReportValidationError, match="unit"):
            validate_report(data)

    def test_timing_must_be_numeric(self):
        data = self.make_valid()
        data["timing"] = {"total_ns": "fast"}
        with pytest.raises(ReportValidationError, match="timing"):
            validate_report(data)

    def test_fault_window_needs_bounds(self):
        data = self.make_valid()
        data["faults"] = {"windows": [{"name": "nic_flap"}], "counters": {}}
        with pytest.raises(ReportValidationError, match="t_start_ns"):
            validate_report(data)


class TestCollection:
    def test_real_report_contents(self, real_report):
        assert real_report.backend == "pgas"
        assert real_report.n_devices == 2
        assert real_report.workload["num_tables"] == 8
        assert real_report.timing  # phase timing attached
        assert 0.0 <= real_report.metric("overlap_fraction") <= 1.0
        assert real_report.links, "expected per-link stats"
        for stats in real_report.links.values():
            assert stats["bytes"] > 0
        assert real_report.meta == {"note": "unit-test"}

    def test_series_toggle(self, real_report):
        assert "comm_rate" in real_report.series
        assert "compute_occupancy.dev0" in real_report.series
        emb = DistributedEmbedding(SMALL, 2, backend="pgas")
        emb.forward_timed(SyntheticDataGenerator(SMALL).lengths_batch())
        slim = collect_run_report(
            emb.cluster.profiler, backend="pgas", n_devices=2, include_series=False
        )
        assert slim.series == {}
        assert slim.metrics  # metrics survive the toggle

    def test_queue_depth_series_when_counter_present(self):
        p = Profiler()
        p.record_span("k", "compute", 0, 0.0, 100.0)
        p.add_count(QUEUE_DEPTH_COUNTER, 10.0, 1.0, unit="requests")
        p.add_count(QUEUE_DEPTH_COUNTER, 50.0, -1.0, unit="requests")
        r = collect_run_report(p, backend="pgas", n_devices=1)
        assert QUEUE_DEPTH_COUNTER in r.series
        assert r.series[QUEUE_DEPTH_COUNTER]["unit"] == "requests"

    def test_fault_windows_collected(self):
        p = Profiler()
        p.record_span("k", "compute", 0, 0.0, 100.0)
        p.record_span("link_degrade", "fault", -1, 20.0, 60.0)
        p.add_count("faults.injected", 20.0, 1.0)
        r = collect_run_report(p, backend="pgas", n_devices=1)
        assert len(r.faults["windows"]) == 1
        window = r.faults["windows"][0]
        assert window["name"] == "link_degrade"
        assert window["t_start_ns"] == 20.0 and window["t_end_ns"] == 60.0
        assert r.faults["counters"] == {"faults.injected": 1.0}
        validate_report(r.as_dict())

    def test_cache_counters_collected(self):
        p = Profiler()
        p.record_span("k", "compute", 0, 0.0, 100.0)
        p.add_count("cache.hits", 10.0, 7.0)
        p.add_count("cache.misses", 10.0, 3.0)
        r = collect_run_report(p, backend="pgas", n_devices=1)
        assert r.cache == {"cache.hits": 7.0, "cache.misses": 3.0}

    def test_registry_view(self, real_report):
        reg = real_report.registry
        assert reg.value("overlap_fraction") == real_report.metric("overlap_fraction")

    def test_bad_payload_type_raises(self):
        p = Profiler()
        p.record_span("k", "compute", 0, 0.0, 100.0)
        with pytest.raises(TypeError):
            collect_run_report(p, backend="pgas", n_devices=1, workload=object())
