"""Tests for critical-path extraction: hand-built cases + properties."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import critical_path, critical_path_report
from repro.obs.critpath import DETAIL_CATEGORIES, ENVELOPE_CATEGORIES
from repro.simgpu.profiler import Profiler, Span, TraceRef


def span(name, cat, dev, t0, t1, trace=None):
    return Span(name, cat, dev, t0, t1, trace)


class TestHandBuilt:
    def test_single_span_tiles_whole_window(self):
        cp = critical_path([span("k", "compute", 0, 0.0, 10.0)])
        assert cp.wall_ns == 10.0
        assert cp.path_ns == 10.0
        assert len(cp.segments) == 1
        assert cp.segments[0].name == "k"

    def test_gap_becomes_idle_segment(self):
        cp = critical_path([
            span("a", "compute", 0, 0.0, 4.0),
            span("b", "compute", 0, 6.0, 10.0),
        ])
        assert [s.category for s in cp.segments] == ["compute", "idle", "compute"]
        assert cp.segments[1].t_start == 4.0
        assert cp.segments[1].t_end == 6.0
        assert cp.path_ns == cp.wall_ns

    def test_overlap_prefers_earliest_start(self):
        """Backward from t=10: 'b' covers; jumping to b's start, 'a' covers."""
        cp = critical_path([
            span("a", "comm", 0, 0.0, 6.0),
            span("b", "compute", 1, 4.0, 10.0),
        ])
        assert [s.name for s in cp.segments] == ["a", "b"]
        # Segments share endpoints: a owns [0, 4], b owns [4, 10].
        assert cp.segments[0].t_end == cp.segments[1].t_start == 4.0
        assert cp.by_category() == {"comm": 4.0, "compute": 6.0}

    def test_contained_span_earliest_start_wins_whole_window(self):
        cp = critical_path([
            span("outer", "compute", 0, 0.0, 10.0),
            span("inner", "comm", 0, 3.0, 7.0),
        ])
        assert [s.name for s in cp.segments] == ["outer"]
        slacks = dict(zip((s.name for s in cp.spans), cp.slack()))
        assert slacks["outer"] == 0.0
        assert slacks["inner"] == 4.0  # fully off the path

    def test_envelope_bounds_window_but_never_appears(self):
        cp = critical_path([
            span("serve.batch0", "serve", -1, 0.0, 20.0),
            span("work", "compute", 0, 5.0, 15.0),
        ])
        assert cp.wall_ns == 20.0  # envelope still bounds the window
        names = {s.name for s in cp.segments}
        assert "serve.batch0" not in names
        assert [s.category for s in cp.segments] == ["idle", "compute", "idle"]

    def test_detail_loses_tie_to_phase_span(self):
        """A kernel span and its phase span share a window: phase wins."""
        cp = critical_path([
            span("emb_wave", "kernel", 0, 0.0, 10.0),
            span("pgas_fused", "fused", 0, 0.0, 10.0),
        ])
        assert [s.name for s in cp.segments] == ["pgas_fused"]

    def test_explicit_window_clips_and_pads(self):
        cp = critical_path([span("k", "compute", 0, 2.0, 5.0)], t0=0.0, t1=8.0)
        assert cp.wall_ns == 8.0
        assert [s.category for s in cp.segments] == ["idle", "compute", "idle"]
        assert cp.path_ns == 8.0

    def test_empty_window_needs_bounds(self):
        with pytest.raises(ValueError):
            critical_path([])
        cp = critical_path([], t0=0.0, t1=5.0)
        assert cp.path_ns == 5.0
        assert [s.category for s in cp.segments] == ["idle"]

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError):
            critical_path([span("k", "compute", 0, 0.0, 1.0)], t0=5.0, t1=2.0)

    def test_whatif_drops_one_category(self):
        cp = critical_path([
            span("a", "comm", 0, 0.0, 4.0),
            span("b", "compute", 1, 4.0, 10.0),
        ])
        assert cp.whatif() == {
            "zero_comm_wall_ns": 6.0,
            "zero_compute_wall_ns": 4.0,
        }

    def test_by_device_attribution(self):
        cp = critical_path([
            span("a", "comm", 0, 0.0, 4.0),
            span("b", "compute", 1, 4.0, 10.0),
            span("h", "phase", -1, 10.0, 12.0),
        ])
        assert cp.by_device() == {"dev0": 4.0, "dev1": 6.0, "host": 2.0}


# -- property-based tests -----------------------------------------------------

_CATS = sorted(
    ({"compute", "comm", "fused", "phase"} | DETAIL_CATEGORIES) - ENVELOPE_CATEGORIES
)


@st.composite
def span_lists(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    spans = []
    for i in range(n):
        t0 = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
        dur = draw(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
        cat = draw(st.sampled_from(_CATS))
        dev = draw(st.integers(min_value=-1, max_value=3))
        spans.append(span(f"s{i}", cat, dev, t0, t0 + dur))
    return spans


@given(spans=span_lists())
@settings(max_examples=200, deadline=None)
def test_path_tiles_wall_exactly(spans):
    """Segments are adjacent tiles of [t0, t1]; their fsum equals the wall."""
    cp = critical_path(spans)
    # Exact adjacency: each segment starts where the previous ended.
    cursor = cp.t0
    for seg in cp.segments:
        assert seg.t_start == cursor
        assert seg.t_end >= seg.t_start
        cursor = seg.t_end
    assert cursor == cp.t1
    # The fsum of durations only differs from the wall by float rounding.
    assert cp.path_ns == pytest.approx(cp.wall_ns, rel=1e-9, abs=1e-9)


@given(spans=span_lists())
@settings(max_examples=200, deadline=None)
def test_slack_nonnegative(spans):
    """Every span's attributed path time never exceeds its own duration."""
    cp = critical_path(spans)
    for s, slack in zip(cp.spans, cp.slack()):
        assert slack >= 0.0
        assert slack <= s.duration + 1e-9


@given(spans=span_lists(), seed=st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_path_invariant_under_span_reordering(spans, seed):
    """Recording order never changes the extracted path (canonical order)."""
    cp1 = critical_path(spans)
    shuffled = list(spans)
    seed.shuffle(shuffled)
    cp2 = critical_path(shuffled)
    assert cp1.segments == cp2.segments
    assert cp1.spans == cp2.spans


@given(spans=span_lists())
@settings(max_examples=100, deadline=None)
def test_category_attribution_sums_to_path(spans):
    cp = critical_path(spans)
    assert math.fsum(cp.by_category().values()) == pytest.approx(
        cp.path_ns, rel=1e-9, abs=1e-9
    )
    assert math.fsum(cp.by_device().values()) == pytest.approx(
        cp.path_ns, rel=1e-9, abs=1e-9
    )


class TestReport:
    def test_empty_profiler_empty_report(self):
        assert critical_path_report(Profiler()) == {}

    def test_untraced_run_has_run_level_path_only(self):
        prof = Profiler()
        prof.record_span("k", "compute", 0, 0.0, 10.0)
        rep = critical_path_report(prof)
        assert rep["wall_ns"] == 10.0
        assert rep["path_ns"] == 10.0
        assert rep["batches"] == []

    def test_per_batch_entries_tile_their_windows(self):
        prof = Profiler()
        for b in range(3):
            ref = TraceRef(0, b)
            base = 100.0 * b
            prof.spans.append(span("a", "compute", 0, base, base + 40.0, ref))
            prof.spans.append(span("b", "comm", 1, base + 40.0, base + 60.0, ref))
        rep = critical_path_report(prof)
        assert [b["batch_id"] for b in rep["batches"]] == [0, 1, 2]
        for entry in rep["batches"]:
            assert entry["path_ns"] == pytest.approx(entry["wall_ns"], rel=1e-9)
            assert entry["by_category"] == {"compute": 40.0, "comm": 20.0}
        assert rep["slack"]["min_ns"] >= 0.0
