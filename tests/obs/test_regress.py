"""Tests for the perf regression gate (repro.obs.regress)."""

from __future__ import annotations

import pytest

from repro.obs import GateResult, MetricCheck, Tolerance, compare_critpath


def artifact(points):
    return {"schema_version": 1, "preset": "tiny", "n_devices": 2,
            "n_batches": 2, "points": points}


def point(backend, wall, by_cat):
    return {"backend": backend, "wall_ns": wall, "by_category": dict(by_cat)}


class TestTolerance:
    def test_bound_is_one_sided_max_of_rel_and_abs(self):
        tol = Tolerance(rel=0.10, abs_ns=50.0)
        assert tol.bound(1000.0) == 1100.0  # rel dominates
        assert tol.bound(100.0) == 150.0    # abs floor dominates
        assert tol.bound(0.0) == 50.0       # new metrics get the abs floor

    def test_validation(self):
        with pytest.raises(ValueError):
            Tolerance(rel=-0.1)
        with pytest.raises(ValueError):
            Tolerance(abs_ns=-1.0)


class TestCompare:
    def test_identical_artifacts_pass(self):
        base = artifact([point("pgas", 1000.0, {"fused": 1000.0})])
        gate = compare_critpath(base, base)
        assert gate.passed
        assert not gate.breaches
        # wall_ns + one path category
        assert {c.metric for c in gate.checks} == {"wall_ns", "path.fused_ns"}

    def test_growth_within_tolerance_passes(self):
        base = artifact([point("pgas", 1000.0, {"fused": 1000.0})])
        fresh = artifact([point("pgas", 1040.0, {"fused": 1040.0})])
        assert compare_critpath(base, fresh).passed  # +4% < 5%

    def test_breach_detected_and_explained(self):
        base = artifact([point("baseline", 10000.0,
                               {"compute": 6000.0, "comm": 4000.0})])
        fresh = artifact([point("baseline", 13000.0,
                                {"compute": 6000.0, "comm": 7000.0})])
        gate = compare_critpath(base, fresh, tolerance=Tolerance(rel=0.05, abs_ns=10.0))
        assert not gate.passed
        breached = {c.metric for c in gate.breaches}
        assert breached == {"wall_ns", "path.comm_ns"}
        text = gate.render()
        assert "FAIL" in text
        assert "BREACH wall_ns" in text
        # The breach is explained via the path-category delta.
        assert "critical-path delta" in text
        assert "comm +3000 ns" in text

    def test_getting_faster_never_fails(self):
        base = artifact([point("pgas", 1000.0, {"fused": 1000.0})])
        fresh = artifact([point("pgas", 100.0, {"fused": 100.0})])
        assert compare_critpath(base, fresh).passed

    def test_missing_point_is_a_breach(self):
        base = artifact([point("pgas", 1000.0, {"fused": 1000.0}),
                         point("baseline", 2000.0, {"compute": 2000.0})])
        fresh = artifact([point("pgas", 1000.0, {"fused": 1000.0})])
        gate = compare_critpath(base, fresh)
        assert not gate.passed
        assert gate.missing_points == ["baseline"]
        assert "MISSING point 'baseline'" in gate.render()

    def test_extra_fresh_point_ignored(self):
        base = artifact([point("pgas", 1000.0, {"fused": 1000.0})])
        fresh = artifact([point("pgas", 1000.0, {"fused": 1000.0}),
                          point("baseline", 9e9, {"comm": 9e9})])
        assert compare_critpath(base, fresh).passed

    def test_category_leaving_the_path_passes(self):
        """A category present in base but gone fresh compares as 0 — fine."""
        base = artifact([point("baseline", 1000.0,
                               {"compute": 900.0, "idle": 100.0})])
        fresh = artifact([point("baseline", 950.0, {"compute": 950.0})])
        gate = compare_critpath(base, fresh, tolerance=Tolerance(rel=0.1, abs_ns=10.0))
        assert gate.passed

    def test_new_category_checked_against_abs_floor(self):
        base = artifact([point("pgas", 1000.0, {"fused": 1000.0})])
        fresh = artifact([point("pgas", 1000.0,
                                {"fused": 500.0, "comm": 500.0})])
        gate = compare_critpath(base, fresh, tolerance=Tolerance(rel=0.05, abs_ns=100.0))
        assert not gate.passed
        assert {c.metric for c in gate.breaches} == {"path.comm_ns"}

    def test_pass_render_shape(self):
        base = artifact([point("pgas", 1000.0, {"fused": 1000.0})])
        text = compare_critpath(base, base).render()
        assert text.startswith("regression gate: PASS")
        assert "2 metrics checked, 0 breached" in text


class TestGateResult:
    def test_empty_result_passes(self):
        assert GateResult().passed

    def test_check_properties(self):
        c = MetricCheck(point="pgas", metric="wall_ns",
                        base=100.0, fresh=130.0, bound=110.0)
        assert c.breached
        assert c.delta == 30.0
