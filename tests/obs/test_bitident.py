"""Disabled tracing is free: runs stay event-for-event, bit-identical.

The acceptance bar for the observability layer: with ``obs`` absent (or
present but disabled), every backend's profiler record — span names,
categories, devices, timestamps, counters — matches a run from before the
layer existed.  Since ``Span.trace`` defaults to ``None``, full dataclass
equality covers that too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.core.serving import InferenceServer, ServingSpec
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.obs import TraceSpec
from repro.simgpu.units import ms

WL = dict(num_tables=8, rows_per_table=2048, dim=16, batch_size=128,
          max_pooling=4, seed=11)

BACKENDS = ("pgas", "baseline", "pgas+compress", "baseline+cache",
            "pgas+resilient", "pgas+replicated", "baseline+replicated")


def _spans(obs, backend):
    cfg = WorkloadConfig(**WL)
    emb = DistributedEmbedding(cfg, 2, backend=backend,
                               features=FeatureSpec(obs=obs))
    gen = SyntheticDataGenerator(cfg)
    from repro.core.retrieval import backend_spec

    for _ in range(2):
        if backend_spec(backend).requires_indices:
            emb.forward(gen.sparse_batch())
        else:
            emb.forward_timed(gen.lengths_batch())
    return emb.cluster.profiler.spans, dict(emb.cluster.profiler.counters)


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_bit_identical_with_tracing_off(backend):
    base_spans, base_counters = _spans(None, backend)
    off_spans, off_counters = _spans(TraceSpec(enabled=False), backend)
    assert off_spans == base_spans  # full equality, trace fields included
    assert set(off_counters) == set(base_counters)
    assert all(s.trace is None for s in off_spans)


@pytest.mark.parametrize("backend", ("pgas", "baseline"))
def test_tracing_changes_attribution_not_timing(backend):
    """Enabled tracing adds detail spans but never perturbs the timeline.

    The phase-level record (everything but the trace-gated ``kernel``/
    ``link`` detail spans) must match an untraced run timestamp-for-
    timestamp — tracing observes the simulation, it doesn't steer it.
    """
    from repro.obs.critpath import DETAIL_CATEGORIES

    base_spans, _ = _spans(None, backend)
    on_spans, _ = _spans(TraceSpec(), backend)

    def phases(spans):
        return [(s.name, s.category, s.device_id, s.t_start, s.t_end)
                for s in spans if s.category not in DETAIL_CATEGORIES]

    assert phases(on_spans) == phases(base_spans)
    extra = [s for s in on_spans if s.category in DETAIL_CATEGORIES]
    assert extra, "traced run should surface kernel/link detail spans"
    assert all(s.trace is not None for s in extra)
    assert all(s.trace is not None for s in on_spans)


def _serve(obs):
    cfg = WorkloadConfig(**WL)
    pipe = DLRMInferencePipeline(PipelineConfig(workload=cfg), 2,
                                 backend="pgas", obs=obs)
    server = InferenceServer(
        pipe, ServingSpec(arrival_qps=50_000, max_batch=16,
                          batch_window_ns=0.5 * ms, seed=5)
    )
    res = server.simulate(40)
    return res, pipe.cluster.profiler.spans


def test_serving_bit_identical_with_tracing_off():
    res_none, spans_none = _serve(None)
    res_off, spans_off = _serve(TraceSpec(enabled=False))
    assert spans_off == spans_none
    np.testing.assert_array_equal(res_off.latencies_ns, res_none.latencies_ns)
    assert res_off.batch_sizes == res_none.batch_sizes
    assert res_off.request_batch is None
    assert res_none.request_batch is None


def test_serving_tracing_preserves_latencies_and_adds_attribution():
    res_none, _ = _serve(None)
    res_on, spans_on = _serve(TraceSpec())
    np.testing.assert_array_equal(res_on.latencies_ns, res_none.latencies_ns)
    assert res_on.batch_sizes == res_none.batch_sizes
    # Every served request maps to a dispatched batch...
    assert res_on.request_batch is not None
    assert (res_on.request_batch >= 0).all()
    # ...and every dispatched batch got a serve envelope + traced phases.
    traced = [s for s in spans_on if s.trace is not None]
    batch_ids = {s.trace.batch_id for s in traced}
    assert batch_ids == set(res_on.request_batch.tolist())
    serve_spans = [s for s in traced if s.category == "serve"]
    assert len(serve_spans) == len(batch_ids)
