"""Tests for trace context propagation (TraceSpec / trace_scope / traced)."""

from __future__ import annotations

import pytest

from repro.obs import TraceSpec, trace_scope, traced
from repro.simgpu.engine import Engine
from repro.simgpu.profiler import Profiler, TraceRef


class TestTraceSpec:
    def test_defaults(self):
        spec = TraceSpec()
        assert spec.enabled is True
        assert spec.trace_id == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSpec(enabled="yes")
        with pytest.raises(ValueError):
            TraceSpec(trace_id=-1)
        with pytest.raises(ValueError):
            TraceSpec(trace_id=1.5)
        with pytest.raises(ValueError):
            TraceSpec(trace_id=True)  # bools are not trace ids

    def test_frozen(self):
        with pytest.raises(Exception):
            TraceSpec().enabled = False


class TestTraceScope:
    def test_stamps_spans_inside_scope_only(self):
        prof = Profiler()
        ref = TraceRef(0, 7)
        prof.record_span("before", "phase", 0, 0.0, 1.0)
        with trace_scope(prof, ref):
            prof.record_span("inside", "phase", 0, 1.0, 2.0)
        prof.record_span("after", "phase", 0, 2.0, 3.0)
        traces = [s.trace for s in prof.spans]
        assert traces == [None, ref, None]

    def test_nests_and_restores(self):
        prof = Profiler()
        outer, inner = TraceRef(0, 0), TraceRef(0, 1)
        with trace_scope(prof, outer):
            with trace_scope(prof, inner):
                assert prof.active_trace == inner
            assert prof.active_trace == outer
        assert prof.active_trace is None

    def test_restores_on_exception(self):
        prof = Profiler()
        with pytest.raises(RuntimeError):
            with trace_scope(prof, TraceRef(0, 0)):
                raise RuntimeError("boom")
        assert prof.active_trace is None

    def test_none_profiler_or_ref_is_noop(self):
        prof = Profiler()
        with trace_scope(None, TraceRef(0, 0)):
            pass
        with trace_scope(prof, None):
            assert prof.active_trace is None


class TestTraced:
    def test_passthrough_when_disabled(self):
        def gen():
            yield 1

        g = gen()
        assert traced(g, None, TraceRef(0, 0)) is g
        assert traced(g, Profiler(), None) is g

    def test_arms_context_inside_frames_only(self):
        prof = Profiler()
        ref = TraceRef(1, 2)
        seen = []

        def gen():
            seen.append(prof.active_trace)
            prof.record_span("work", "phase", 0, 0.0, 1.0)
            yield "a"
            seen.append(prof.active_trace)

        g = traced(gen(), prof, ref)
        assert next(g) == "a"
        # Context is restored while the generator is suspended.
        assert prof.active_trace is None
        with pytest.raises(StopIteration):
            next(g)
        assert seen == [ref, ref]
        assert prof.spans[0].trace == ref

    def test_return_value_preserved(self):
        def gen():
            yield 1
            return "result"

        g = traced(gen(), Profiler(), TraceRef(0, 0))
        next(g)
        with pytest.raises(StopIteration) as exc:
            next(g)
        assert exc.value.value == "result"

    def test_send_values_forwarded(self):
        def gen():
            got = yield "first"
            yield got * 2

        g = traced(gen(), Profiler(), TraceRef(0, 0))
        assert next(g) == "first"
        assert g.send(21) == 42

    def test_throw_forwarded_into_generator(self):
        caught = []

        def gen():
            try:
                yield "a"
            except KeyError as exc:
                caught.append(exc)
                yield "recovered"

        g = traced(gen(), Profiler(), TraceRef(0, 0))
        next(g)
        assert g.throw(KeyError("k")) == "recovered"
        assert len(caught) == 1

    def test_unhandled_throw_propagates(self):
        def gen():
            yield "a"

        g = traced(gen(), Profiler(), TraceRef(0, 0))
        next(g)
        with pytest.raises(KeyError):
            g.throw(KeyError("k"))

    def test_interleaved_generators_keep_their_own_refs(self):
        prof = Profiler()
        ref_a, ref_b = TraceRef(0, 0), TraceRef(0, 1)

        def worker(name):
            for i in range(2):
                prof.record_span(f"{name}{i}", "phase", 0, float(i), float(i + 1))
                yield

        ga = traced(worker("a"), prof, ref_a)
        gb = traced(worker("b"), prof, ref_b)
        # Interleave resumptions: a, b, a, b.
        next(ga); next(gb); next(ga); next(gb)
        by_name = {s.name: s.trace for s in prof.spans}
        assert by_name == {"a0": ref_a, "b0": ref_b, "a1": ref_a, "b1": ref_b}

    def test_engine_processes_attributed_per_batch(self):
        """Two traced processes on one engine attribute spans to themselves."""
        eng = Engine()
        prof = Profiler()
        refs = [TraceRef(0, 0), TraceRef(0, 1)]

        def batch(i):
            t0 = eng.now
            yield eng.timeout(10.0 * (i + 1))
            prof.record_span(f"batch{i}", "phase", 0, t0, eng.now)

        for i, ref in enumerate(refs):
            eng.process(traced(batch(i), prof, ref), name=f"b{i}")
        eng.run()
        assert [s.trace for s in prof.spans] == refs
