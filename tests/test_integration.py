"""Cross-module integration tests: the paper's claims at moderate scale.

These run the full stack — workload generation → sharding → both timed
backends → harness metrics — and assert the qualitative results the paper
reports, at a scale that keeps the whole file under a few seconds.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.bench import breakdown_from_scaling, run_strong_scaling, run_weak_scaling, trace_comm_volume
from repro.core import (
    DistributedEmbedding,
    DLRMInferencePipeline,
    PipelineConfig,
    minibatch_bounds,
)
from repro.dlrm import DLRM, DLRMConfig, DLRMTrainer, SyntheticDataGenerator, WorkloadConfig


WEAK = WorkloadConfig(num_tables=32, rows_per_table=10_000, dim=64,
                      batch_size=16384, max_pooling=32, seed=8)
STRONG = WorkloadConfig(num_tables=24, rows_per_table=10_000, dim=64,
                        batch_size=8192, max_pooling=8, seed=8)


class TestHeadlineClaims:
    """The abstract's two numbers, at reduced scale."""

    def test_weak_scaling_speedup(self):
        result = run_weak_scaling(WEAK, device_counts=(1, 2, 4), n_batches=2)
        assert result.geomean_speedup > 1.3
        assert result.scaling_factor("pgas", 4) > result.scaling_factor("baseline", 4)

    def test_strong_scaling_speedup(self):
        result = run_strong_scaling(STRONG, device_counts=(1, 2, 4), n_batches=2)
        assert result.geomean_speedup > 1.8
        for g in (2, 4):
            assert result.scaling_factor("baseline", g) < 1.0
            assert result.scaling_factor("pgas", g) > 1.0


class TestThreeMechanisms:
    """§III-B's three claimed benefits, observed end to end."""

    def test_fine_grained_overlap(self):
        """(1) comm hidden: PGAS total ≈ baseline compute component."""
        bd = breakdown_from_scaling(
            run_weak_scaling(WEAK, device_counts=(1, 2), n_batches=1)
        )
        b2 = bd.bar(2)
        assert b2.pgas_total_ns < 1.2 * b2.baseline_compute_ns

    def test_smooth_network_usage(self):
        """(2) traffic spread over the run, not bursted at the end."""
        cfg = WorkloadConfig(num_tables=64, rows_per_table=1000, dim=64,
                             batch_size=16384, max_pooling=64, seed=8)
        pgas = trace_comm_volume(cfg, 2, "pgas")
        base = trace_comm_volume(cfg, 2, "baseline")
        assert pgas.flat_prefix_fraction() < base.flat_prefix_fraction()

    def test_no_unpack_step(self):
        """(3) PGAS reports zero sync+unpack; baseline pays it."""
        emb = DistributedEmbedding(WEAK, 2)
        lengths = SyntheticDataGenerator(WEAK).lengths_batch()
        t_base = emb.forward_timed(lengths, backend="baseline")
        t_pgas = emb.forward_timed(lengths, backend="pgas")
        assert t_base.sync_unpack_ns > 0
        assert t_pgas.sync_unpack_ns == 0


class TestFunctionalStack:
    def test_public_api_roundtrip(self):
        """The README quickstart, verbatim semantics."""
        config = repro.WorkloadConfig(
            num_tables=8, rows_per_table=1000, dim=16, batch_size=128, max_pooling=8
        )
        emb = repro.DistributedEmbedding(config, n_devices=2, backend="pgas",
                                         materialize=True)
        batch = repro.SyntheticDataGenerator(config).sparse_batch()
        pgas = emb.forward(batch)
        base = emb.forward(batch, backend="baseline")
        assert all(np.array_equal(a, b) for a, b in zip(pgas.outputs, base.outputs))
        assert base.timing.total_ns > pgas.timing.total_ns

    def test_model_predictions_identical_under_distribution(self):
        """Full DLRM predictions don't depend on the comm scheme."""
        wl = WorkloadConfig(num_tables=6, rows_per_table=100, dim=8, batch_size=32,
                            max_pooling=4, num_dense_features=5, seed=3)
        model = DLRM(DLRMConfig(
            num_dense_features=5, embedding_dim=8, table_configs=wl.table_configs(),
            bottom_mlp_sizes=(8,), top_mlp_sizes=(8,),
        ), rng=np.random.default_rng(4))
        gen = SyntheticDataGenerator(wl)
        dense, sparse = next(gen.batches(1))
        ref_preds = model.forward(dense, sparse)

        from repro.core import ShardedEmbeddingTables, TableWiseSharding, pgas_functional_forward

        plan = TableWiseSharding(wl.table_configs(), 2)
        sharded = ShardedEmbeddingTables.from_collection(model.embeddings, plan)
        outputs = pgas_functional_forward(sharded, sparse)
        sparse_emb = np.concatenate(outputs, axis=0)
        dist_preds = model.predict_from_embeddings(model.dense_forward(dense), sparse_emb)
        assert np.array_equal(ref_preds, dist_preds)

    def test_training_convergence_with_distributed_backward(self):
        """A short training run through the PGAS backward actually learns."""
        from repro.core import (
            ShardedEmbeddingTables,
            TableWiseSharding,
            pgas_functional_backward,
        )

        wl = WorkloadConfig(num_tables=4, rows_per_table=50, dim=8, batch_size=64,
                            max_pooling=4, num_dense_features=6, seed=5)
        model = DLRM(DLRMConfig(
            num_dense_features=6, embedding_dim=8, table_configs=wl.table_configs(),
            bottom_mlp_sizes=(16,), top_mlp_sizes=(16,),
        ), rng=np.random.default_rng(5))
        plan = TableWiseSharding(wl.table_configs(), 2)
        sharded = ShardedEmbeddingTables.from_collection(model.embeddings, plan)
        trainer = DLRMTrainer(model, lr=0.3)
        gen = SyntheticDataGenerator(wl)
        dense, sparse = next(gen.batches(1))
        labels = (dense.mean(axis=1) > 0.5).astype(np.float32)
        bounds = minibatch_bounds(64, 2)
        losses = []
        for _ in range(60):
            r = trainer.train_step(dense, sparse, labels, apply_embedding_grads=False)
            losses.append(r.loss)
            pgas_functional_backward(
                sharded, sparse, [r.grad_sparse[lo:hi] for lo, hi in bounds],
                lr=trainer.lr,
            )
        assert losses[-1] < 0.8 * losses[0]


class TestPipelineIntegration:
    def test_amdahl_relationship(self):
        """EMB-layer gains shrink at the pipeline level, but survive."""
        cfg = PipelineConfig(workload=WEAK)
        lengths = SyntheticDataGenerator(WEAK).lengths_batch()
        t_base = DLRMInferencePipeline(cfg, 2, backend="baseline").run_batch(lengths)
        t_pgas = DLRMInferencePipeline(cfg, 2, backend="pgas").run_batch(lengths)
        emb_speedup = t_base.emb.total_ns / t_pgas.emb.total_ns
        e2e_speedup = t_base.total_ns / t_pgas.total_ns
        assert 1.0 < e2e_speedup <= emb_speedup


class TestDeterminism:
    def test_identical_runs_identical_times(self):
        def once():
            emb = DistributedEmbedding(WEAK, 2)
            lengths = SyntheticDataGenerator(WEAK).lengths_batch()
            return emb.forward_timed(lengths).total_ns

        assert once() == once()
