"""ReplicationSpec: validation, replica placement, serialisation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.replication import ReplicationSpec


class TestValidation:
    def test_defaults_valid(self):
        spec = ReplicationSpec()
        assert spec.k == 1
        assert spec.placement == "spread"

    @pytest.mark.parametrize("kw,msg", [
        (dict(k=0), "k"),
        (dict(placement="mirror"), "placement"),
        (dict(recovery_bandwidth_share=0.0), "share"),
        (dict(recovery_bandwidth_share=1.5), "share"),
        (dict(heartbeat_interval_ns=0.0), "interval"),
        (dict(miss_threshold=0), "threshold"),
        (dict(recovery_chunk_bytes=0), "chunk"),
    ])
    def test_bad_values_rejected(self, kw, msg):
        with pytest.raises(ValueError, match=msg):
            ReplicationSpec(**kw)

    def test_detection_latency_bound(self):
        spec = ReplicationSpec(heartbeat_interval_ns=100.0, miss_threshold=3)
        assert spec.detection_latency_bound_ns == 300.0


class TestPlacement:
    @pytest.mark.parametrize("placement", ["spread", "ring"])
    def test_primary_first_and_devices_distinct(self, placement):
        spec = ReplicationSpec(k=3, placement=placement)
        for owner in range(4):
            for f in range(8):
                replicas = spec.replicas_for(owner, f, 4)
                assert replicas[0] == owner
                assert len(replicas) == 3
                assert len(set(replicas)) == 3
                assert all(0 <= r < 4 for r in replicas)

    def test_ring_is_successive_neighbours(self):
        spec = ReplicationSpec(k=2, placement="ring")
        assert spec.replicas_for(3, 0, 4) == (3, 0)
        assert spec.replicas_for(1, 7, 4) == (1, 2)

    def test_spread_varies_by_table(self):
        spec = ReplicationSpec(k=2, placement="spread")
        partners = {spec.replicas_for(0, f, 4)[1] for f in range(8)}
        assert len(partners) > 1  # not everything lands on one neighbour

    def test_k_exceeding_devices_raises(self):
        with pytest.raises(ValueError, match="k"):
            ReplicationSpec(k=3).replicas_for(0, 0, 2)


class TestSerialisation:
    def test_asdict_round_trip_bit_exact(self):
        spec = ReplicationSpec(k=2, placement="ring",
                               recovery_bandwidth_share=0.5,
                               heartbeat_interval_ns=123.0,
                               miss_threshold=4,
                               recovery_chunk_bytes=1024)
        payload = dataclasses.asdict(spec)
        assert ReplicationSpec(**payload) == spec
