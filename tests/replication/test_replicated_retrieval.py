"""ReplicatedRetrieval: healthy-path bit-identity, failover correctness,
online recovery accounting, and capacity enforcement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding, lengths_from_batch
from repro.core.functional import reference_forward
from repro.dlrm import EmbeddingBagCollection
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.replication import ReplicatedRetrieval, ReplicationSpec
from repro.simgpu.cluster import Cluster
from repro.simgpu.device import DeviceSpec
from repro.simgpu.memory import OutOfDeviceMemory
from repro.simgpu.units import us


def small_cfg(**kw):
    defaults = dict(
        num_tables=8, rows_per_table=1024, dim=16, batch_size=64,
        max_pooling=4, seed=5,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


#: tight heartbeat so detection lands within a batch or two of tiny runs
FAST = dict(heartbeat_interval_ns=5 * us)


def build(cfg, n_devices, backend, replication=None):
    emb = DistributedEmbedding(
        cfg, n_devices, backend=backend, materialize=True,
        rng=np.random.default_rng(0),
        features=FeatureSpec(replication=replication),
    )
    return emb, emb.backend_adapter(backend)


def span_tuples(emb):
    return [(s.name, s.category, s.device_id, s.t_start, s.t_end)
            for s in emb.cluster.profiler.spans]


class TestHealthyPathIdentity:
    """With no failures the wrapper IS the wrapped backend, bit for bit."""

    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_k1_events_timing_outputs_identical(self, base):
        cfg = small_cfg()
        gen_a, gen_b = SyntheticDataGenerator(cfg), SyntheticDataGenerator(cfg)
        emb_a, ad_a = build(cfg, 2, base)
        emb_b, ad_b = build(cfg, 2, f"{base}+replicated", ReplicationSpec(k=1))
        batch = gen_a.sparse_batch()
        gen_b.sparse_batch()  # keep the streams aligned
        wl = lengths_from_batch(batch)
        t_a = ad_a.run_timed(emb_a.build_workloads(wl))
        t_b = ad_b.run_timed(emb_b.build_workloads(wl))
        assert t_a.as_dict() == t_b.as_dict()
        assert span_tuples(emb_a) == span_tuples(emb_b)
        assert set(emb_a.cluster.profiler.counters) == set(
            emb_b.cluster.profiler.counters
        )
        out_a = ad_a.functional_forward(batch)
        out_b = ad_b.functional_forward(batch)
        assert all(np.array_equal(x, y) for x, y in zip(out_a, out_b))

    def test_k2_healthy_stamps_no_availability_counters(self):
        cfg = small_cfg()
        emb, ad = build(cfg, 2, "pgas+replicated", ReplicationSpec(k=2, **FAST))
        gen = SyntheticDataGenerator(cfg)
        ad.run_timed(emb.build_workloads(gen.lengths_batch()))
        assert not [n for n in emb.cluster.profiler.counters
                    if n.startswith("availability.")]
        assert ad.totals()["availability"] == 1.0


class TestFailover:
    def run_with_failure(self, base, k, n_devices=4, dead=1, batches=3):
        cfg = small_cfg()
        emb, ad = build(
            cfg, n_devices, f"{base}+replicated", ReplicationSpec(k=k, **FAST)
        )
        gen = SyntheticDataGenerator(cfg)
        batch = gen.sparse_batch()
        wl = emb.build_workloads(lengths_from_batch(batch))
        ad.run_timed(wl)  # healthy warm-up
        plan = FaultPlan((FaultEvent("device_down", 1.0, 1e9, device=dead),))
        FaultInjector(emb.cluster, plan).install()
        for _ in range(batches):
            ad.run_timed(wl)
        return cfg, emb, ad, batch

    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_k2_outputs_bit_identical_to_reference(self, base):
        cfg, emb, ad, batch = self.run_with_failure(base, k=2)
        assert ad.failed_devices == (1,)
        ebc = EmbeddingBagCollection.from_configs(
            cfg.table_configs(), rng=np.random.default_rng(0)
        )
        ref = reference_forward(ebc, batch)
        out = np.concatenate(ad.functional_forward(batch), axis=0)
        assert np.array_equal(out, ref)  # zero degraded rows
        totals = ad.totals()
        assert totals["availability"] == 1.0
        assert totals["failover_lookups"] > 0
        assert totals["unavailable_lookups"] == 0

    def test_k1_failure_drops_dead_tables_to_zero(self):
        cfg, emb, ad, batch = self.run_with_failure("pgas", k=1)
        assert ad.failed_devices == (1,)
        totals = ad.totals()
        assert 0.0 < totals["availability"] < 1.0
        assert totals["failover_lookups"] == 0
        ebc = EmbeddingBagCollection.from_configs(
            cfg.table_configs(), rng=np.random.default_rng(0)
        )
        ref = reference_forward(ebc, batch)
        out = np.concatenate(ad.functional_forward(batch), axis=0)
        dead = [emb.plan.feature_index(c.name)
                for c in emb.plan.tables_on(1)]
        assert np.all(out[:, dead, :] == 0.0)
        live = [f for f in range(cfg.num_tables) if f not in dead]
        assert np.array_equal(out[:, live, :], ref[:, live, :])

    def test_recovery_reprotects_and_charges_link_bytes(self):
        cfg, emb, ad, _ = self.run_with_failure("pgas", k=2)
        ad.wait_for_reprotect(limit_ns=emb.cluster.engine.now + 1e9)
        totals = ad.totals()
        assert totals["failures_detected"] == 1
        assert 0 < totals["time_to_reprotect_ns"] < float("inf")
        counters = emb.cluster.profiler.counters
        assert counters["availability.recovery_bytes"].total > 0
        per_link = [n for n in counters
                    if n.startswith("availability.recovery_bytes.dev")]
        assert per_link  # bytes visible on interconnect links (traces)
        assert counters["availability.failures"].total == 1.0
        assert counters["availability.detection_ns"].total > 0
        # every re-replicated table has a fresh live holder
        assert all(owner is not None and owner != 1
                   for owner in ad.effective_owners().values())

    def test_detection_latency_within_bound(self):
        _, emb, ad, _ = self.run_with_failure("pgas", k=2)
        spec = ad.spec
        detect = emb.cluster.profiler.counters["availability.detection_ns"]
        (t, delta), = detect.events()
        assert delta <= spec.detection_latency_bound_ns + spec.heartbeat_interval_ns


class TestCapacity:
    def test_overcommitted_k_raises_out_of_memory(self):
        cfg = small_cfg(num_tables=4, rows_per_table=200_000, dim=64)
        # replicas alone need ~102 MB/device (2 x 200k x 64 x 4 B); cap below
        cluster = Cluster(
            2, device_spec=DeviceSpec().with_memory(90 * 1024 * 1024)
        )
        emb = DistributedEmbedding(cfg, 2, backend="pgas")
        with pytest.raises(OutOfDeviceMemory):
            ReplicatedRetrieval(
                cluster, emb.plan, ReplicationSpec(k=2), base="pgas"
            )

    def test_k_exceeding_cluster_rejected(self):
        cfg = small_cfg()
        with pytest.raises(ValueError, match="replication factor"):
            emb, _ = build(cfg, 2, "pgas+replicated", ReplicationSpec(k=3))
