"""Backend-wrapper composition contract (registry + RunSpec validation),
RunSpec replication round-trip, and the RunReport availability section."""

from __future__ import annotations

import pytest

from repro.core.retrieval import (
    DistributedEmbedding,
    available_backends,
    backend_spec,
    register_backend,
)
from repro.core.runspec import RunSpec, preset_runspec
from repro.replication import ReplicationSpec
from repro.telemetry.report import RunReport


class TestCompositionContract:
    def test_registered_composed_backends_resolve(self):
        for name in ("pgas+replicated", "baseline+replicated",
                     "pgas+compress", "pgas+resilient", "pgas+cache"):
            spec = backend_spec(name)
            assert str(spec.name) == name

    def test_replicated_backends_listed_with_flag(self):
        infos = {str(i): i for i in available_backends()}
        assert infos["pgas+replicated"].replicated
        assert infos["baseline+replicated"].replicated
        assert not infos["pgas"].replicated

    @pytest.mark.parametrize("name", [
        "pgas+compress+replicated",
        "pgas+replicated+resilient",
        "baseline+cache+compress",
    ])
    def test_unregistered_stack_names_the_combination(self, name):
        with pytest.raises(ValueError) as err:
            backend_spec(name)
        msg = str(err.value)
        assert "composition order" in msg
        for feature in name.split("+")[1:]:
            assert feature in msg

    def test_unknown_single_feature_keeps_plain_error(self):
        with pytest.raises(ValueError) as err:
            backend_spec("pgas+nonsense")
        assert "composition order" not in str(err.value)

    @pytest.mark.parametrize("name", ["+cache", "pgas+", "pgas++cache"])
    def test_malformed_names_rejected_at_registration(self, name):
        with pytest.raises(ValueError, match="malformed backend name"):
            register_backend(name, description="x", factory=lambda emb: None)

    def test_runspec_validation_rejects_unsupported_stack(self):
        with pytest.raises(ValueError, match="composition order"):
            preset_runspec("tiny", 2, backend="pgas+compress+replicated")


class TestRunSpecReplication:
    def test_round_trip_bit_exact(self):
        spec = preset_runspec(
            "tiny", 2, backend="pgas+replicated",
            replication=ReplicationSpec(k=2, placement="ring",
                                        recovery_bandwidth_share=0.5),
        )
        clone = RunSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.to_json() == spec.to_json()
        assert isinstance(clone.replication, ReplicationSpec)

    def test_none_replication_round_trips(self):
        spec = preset_runspec("tiny", 2)
        assert RunSpec.from_json(spec.to_json()).replication is None

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="ReplicationSpec"):
            preset_runspec("tiny", 2, replication={"k": 2})

    def test_from_spec_threads_replication(self):
        spec = preset_runspec(
            "tiny", 2, backend="pgas+replicated",
            replication=ReplicationSpec(k=2),
        )
        emb = DistributedEmbedding.from_spec(spec)
        assert emb.replication_config == spec.replication
        adapter = emb.backend_adapter("pgas+replicated")
        assert adapter.spec == spec.replication


class TestReportAvailabilitySection:
    def test_availability_round_trips(self):
        report = RunReport(
            backend="pgas+replicated", n_devices=2,
            metrics={"m": {"value": 1.0, "unit": "x"}},
            availability={"availability.failures": 1.0,
                          "availability.recovery_bytes": 4096.0},
        )
        clone = RunReport.from_json(report.to_json())
        assert clone.availability == report.availability
        assert clone.to_json() == report.to_json()

    def test_non_numeric_availability_rejected(self):
        report = RunReport(
            backend="pgas", n_devices=2,
            metrics={}, availability={"availability.failures": "one"},
        )
        from repro.telemetry.report import ReportValidationError, validate_report

        with pytest.raises(ReportValidationError, match="availability"):
            validate_report(report.as_dict())
