"""FaultPlan/FaultEvent: validation, queries, and seeded generation."""

from __future__ import annotations

import pytest

from repro.faults import DEVICE_KINDS, FAULT_KINDS, LINK_KINDS, FaultEvent, FaultPlan
from repro.simgpu.units import ms


class TestFaultEventValidation:
    def test_kinds_partition(self):
        assert set(FAULT_KINDS) == set(LINK_KINDS) | set(DEVICE_KINDS)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("gpu_on_fire", 0.0, 1.0, device=0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            FaultEvent("device_stall", 5.0, 5.0, device=0)
        with pytest.raises(ValueError):
            FaultEvent("device_stall", -1.0, 5.0, device=0)
        with pytest.raises(ValueError):
            FaultEvent("device_stall", float("nan"), 5.0, device=0)

    def test_link_kind_needs_pair(self):
        with pytest.raises(ValueError, match="directed pair"):
            FaultEvent("link_down", 0.0, 1.0)
        with pytest.raises(ValueError, match="directed pair"):
            FaultEvent("link_down", 0.0, 1.0, src=1, dst=1)

    def test_device_kind_needs_device(self):
        with pytest.raises(ValueError, match="device id"):
            FaultEvent("device_stall", 0.0, 1.0)

    def test_severity_bounds_per_kind(self):
        with pytest.raises(ValueError, match="remaining bandwidth"):
            FaultEvent("link_degrade", 0.0, 1.0, src=0, dst=1, severity=0.0)
        with pytest.raises(ValueError, match="remaining bandwidth"):
            FaultEvent("link_degrade", 0.0, 1.0, src=0, dst=1, severity=1.5)
        with pytest.raises(ValueError, match=">= 0"):
            FaultEvent("link_latency", 0.0, 1.0, src=0, dst=1, severity=-1.0)
        with pytest.raises(ValueError, match="stretch factor"):
            FaultEvent("device_slowdown", 0.0, 1.0, device=0, severity=0.5)

    def test_labels(self):
        assert (
            FaultEvent("link_down", 0.0, 1.0, src=2, dst=0).label()
            == "fault.link_down.2->0"
        )
        assert (
            FaultEvent("device_stall", 0.0, 1.0, device=3).label()
            == "fault.device_stall.dev3"
        )

    def test_duration(self):
        assert FaultEvent("device_stall", 2.0, 7.0, device=0).duration_ns == 5.0


class TestFaultPlan:
    def test_empty(self):
        plan = FaultPlan.empty()
        assert plan.is_empty
        assert len(plan) == 0
        assert plan.max_devices_referenced() == 0

    def test_type_validation(self):
        with pytest.raises(TypeError):
            FaultPlan(("not an event",))

    def test_queries(self):
        a = FaultEvent("link_down", 0.0, 1.0, src=0, dst=1)
        b = FaultEvent("device_stall", 0.0, 1.0, device=2)
        plan = FaultPlan((a, b))
        assert plan.for_link(0, 1) == [a]
        assert plan.for_link(1, 0) == []
        assert plan.for_device(2) == [b]
        assert plan.for_device(0) == []
        assert plan.max_devices_referenced() == 3


class TestGenerate:
    def test_severity_zero_is_empty(self):
        assert FaultPlan.generate(4, 10 * ms, severity=0.0).is_empty

    def test_zero_events_per_kind_is_empty(self):
        assert FaultPlan.generate(4, 10 * ms, severity=0.9, events_per_kind=0).is_empty

    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(4, 10 * ms, severity=0.7, seed=11)
        b = FaultPlan.generate(4, 10 * ms, severity=0.7, seed=11)
        assert a.events == b.events
        assert not a.is_empty

    def test_different_seed_differs(self):
        a = FaultPlan.generate(4, 10 * ms, severity=0.7, seed=1)
        b = FaultPlan.generate(4, 10 * ms, severity=0.7, seed=2)
        assert a.events != b.events

    def test_single_device_has_no_link_faults(self):
        plan = FaultPlan.generate(1, 10 * ms, severity=0.9)
        assert not plan.is_empty
        assert all(ev.kind in DEVICE_KINDS for ev in plan.events)

    def test_flaps_only_at_high_severity(self):
        mild = FaultPlan.generate(4, 10 * ms, severity=0.3, seed=0)
        harsh = FaultPlan.generate(4, 10 * ms, severity=0.9, seed=0)
        assert not any(ev.kind == "link_down" for ev in mild.events)
        assert any(ev.kind == "link_down" for ev in harsh.events)

    def test_fits_referenced_devices(self):
        plan = FaultPlan.generate(3, 10 * ms, severity=0.8, seed=5)
        assert plan.max_devices_referenced() <= 3

    def test_severity_validated(self):
        with pytest.raises(ValueError, match="severity"):
            FaultPlan.generate(4, 10 * ms, severity=1.5)
        with pytest.raises(ValueError, match="duration_ns"):
            FaultPlan.generate(4, 0.0)
        with pytest.raises(ValueError, match="n_devices"):
            FaultPlan.generate(0, 10 * ms)
