"""Resilient serving: determinism under faults, load shedding, hedging,
spec validation, and the zero-served result guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.core.serving import InferenceServer, ServingResult, ServingSpec
from repro.dlrm.data import WorkloadConfig
from repro.faults import FaultInjector, FaultPlan, ResilienceSpec
from repro.simgpu.trace import chrome_trace
from repro.simgpu.units import ms, us


def small_cfg(**kw):
    defaults = dict(
        num_tables=8, rows_per_table=2048, dim=16, batch_size=256,
        max_pooling=4, seed=3,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def serve_under_faults(severity=0.8, *, n_requests=24, backend="pgas+resilient",
                       **spec_kw):
    """One full serving run on a fresh cluster with an installed plan."""
    pipeline = DLRMInferencePipeline(
        PipelineConfig(workload=small_cfg()),
        2,
        backend=backend,
        resilience=ResilienceSpec(deadline_ns=0.25 * ms, seed=0),
    )
    plan = FaultPlan.generate(2, 2 * ms, severity=severity, seed=7)
    FaultInjector(pipeline.cluster, plan).install()
    spec = ServingSpec(
        arrival_qps=50_000.0, max_batch=8, batch_window_ns=0.2 * ms, seed=1,
        deadline_ns=2 * ms, **spec_kw,
    )
    result = InferenceServer(pipeline, spec).simulate(n_requests)
    return result, pipeline


class TestDeterminism:
    """Same seed + same FaultPlan → bit-identical results and traces."""

    def test_serving_result_bit_identical(self):
        a, pa = serve_under_faults()
        b, pb = serve_under_faults()
        assert np.array_equal(a.latencies_ns, b.latencies_ns)
        assert a.batch_sizes == b.batch_sizes
        assert a.sim_duration_ns == b.sim_duration_ns
        assert (a.n_shed, a.n_hedged) == (b.n_shed, b.n_hedged)
        assert (a.emb_retries, a.emb_reroutes) == (b.emb_retries, b.emb_reroutes)
        assert a.emb_rerouted_bytes == b.emb_rerouted_bytes
        assert a.emb_deadline_misses == b.emb_deadline_misses
        if a.degraded_per_request is not None:
            assert np.array_equal(a.degraded_per_request, b.degraded_per_request)

    def test_chrome_trace_event_counts_identical(self):
        _, pa = serve_under_faults()
        _, pb = serve_under_faults()
        ta = chrome_trace(pa.cluster.profiler)["traceEvents"]
        tb = chrome_trace(pb.cluster.profiler)["traceEvents"]
        assert len(ta) == len(tb)
        # Same events by name too, not just the same totals.
        names_a = sorted(e["name"] for e in ta)
        names_b = sorted(e["name"] for e in tb)
        assert names_a == names_b

    def test_faults_actually_fired(self):
        result, pipeline = serve_under_faults()
        assert pipeline.cluster.profiler.counter("faults.windows").total > 0
        # 2 GPUs: downed links degrade at partition time (no reroute path),
        # so the visible symptom is zero-filled bags.
        assert result.degraded_fraction > 0 or result.emb_retries > 0


class TestLoadShedding:
    def test_queue_limit_sheds_and_preserves_offered_count(self):
        n = 32
        result, _ = serve_under_faults(
            severity=0.9, n_requests=n, queue_limit=2,
        )
        assert result.n_shed > 0
        assert result.n_offered == n
        assert result.n_requests == n - result.n_shed
        assert 0.0 < result.shed_fraction < 1.0

    def test_no_limit_serves_everything(self):
        n = 24
        result, _ = serve_under_faults(severity=0.9, n_requests=n)
        assert result.n_shed == 0
        assert result.n_requests == n


class TestHedging:
    def test_slow_batches_get_hedged(self):
        result, _ = serve_under_faults(severity=0.9, hedge_after_ns=20 * us)
        assert result.n_hedged > 0

    def test_healthy_run_never_hedges_with_generous_trigger(self):
        result, _ = serve_under_faults(severity=0.0, hedge_after_ns=1000 * ms)
        assert result.n_hedged == 0
        assert result.deadline_hit_rate == 1.0


class TestServingSpecValidation:
    def test_cache_must_be_cacheconfig(self):
        with pytest.raises(TypeError, match="CacheConfig"):
            ServingSpec(arrival_qps=1000.0, cache={"capacity": 16})

    def test_resilience_must_be_resiliencespec(self):
        with pytest.raises(TypeError, match="ResilienceSpec"):
            ServingSpec(arrival_qps=1000.0, resilience="retry harder")

    def test_real_configs_accepted(self):
        from repro.cache import CacheConfig

        spec = ServingSpec(
            arrival_qps=1000.0,
            cache=CacheConfig(capacity_fraction=0.1),
            resilience=ResilienceSpec(),
        )
        assert spec.cache is not None and spec.resilience is not None

    def test_slo_knob_bounds(self):
        with pytest.raises(ValueError):
            ServingSpec(arrival_qps=1000.0, deadline_ns=0.0)
        with pytest.raises(ValueError):
            ServingSpec(arrival_qps=1000.0, queue_limit=0)
        with pytest.raises(ValueError):
            ServingSpec(arrival_qps=1000.0, hedge_after_ns=-1.0)


class TestZeroServedGuards:
    def empty_result(self, duration=1e6):
        return ServingResult(
            latencies_ns=np.empty(0),
            batch_sizes=[],
            sim_duration_ns=duration,
            backend="pgas",
            n_shed=5,
        )

    def test_percentile_raises_clear_error(self):
        with pytest.raises(ValueError, match="no requests were served"):
            self.empty_result().percentile_ms(99)
        with pytest.raises(ValueError, match="no requests were served"):
            _ = self.empty_result().p50_ms

    def test_throughput_raises_clear_error(self):
        with pytest.raises(ValueError, match="no requests were served"):
            _ = self.empty_result().throughput_qps

    def test_zero_duration_still_returns_zero(self):
        # The long-standing empty-simulation contract (n=0 requests asked)
        # keeps returning 0.0 rather than raising.
        assert self.empty_result(duration=0.0).throughput_qps == 0.0

    def test_summary_and_slo_report_do_not_raise(self):
        r = self.empty_result()
        assert "0 reqs served" in r.summary()
        assert "no requests served" in r.slo_report()
        assert r.deadline_hit_rate == 0.0
        assert r.goodput_qps == 0.0
        assert r.shed_fraction == 1.0
