"""Edge cases the fault layer must survive: releasing resources that were
never acquired, reporting totals with nothing served, and replaying a
FaultPlan deterministically."""

from __future__ import annotations

import numpy as np

from repro.cache import CacheConfig
from repro.faults import FaultPlan, ResilienceSpec
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import WorkloadConfig


def small_cfg():
    return WorkloadConfig(
        num_tables=4, rows_per_table=256, dim=8, batch_size=16,
        max_pooling=4, seed=3,
    )


def fresh_adapter(spec=None):
    emb = DistributedEmbedding(
        small_cfg(), 2, backend="pgas+resilient",
        materialize=True, rng=np.random.default_rng(0),
        features=FeatureSpec(resilience=spec),
    )
    return emb.backend_adapter("pgas+resilient")


class TestResilientEdgeCases:
    def test_release_before_any_batch_is_noop(self):
        adapter = fresh_adapter()
        adapter.release()   # nothing acquired yet — must not raise
        adapter.release()   # idempotent

    def test_release_with_fallback_cache_before_any_batch(self):
        adapter = fresh_adapter(
            ResilienceSpec(fallback_cache=CacheConfig(capacity_fraction=0.1))
        )
        adapter.release()
        adapter.release()

    def test_ledger_totals_with_zero_batches(self):
        totals = fresh_adapter().ledger_totals()
        assert totals["batches"] == 0.0
        assert set(totals) == {
            "batches", "attempts", "retries", "rerouted_pairs",
            "rerouted_bytes", "degraded_bags", "cache_served_bags",
            "total_bags", "deadline_misses", "healthy_batches",
        }
        assert all(v == 0.0 for v in totals.values())


class TestFaultPlanReplayDeterminism:
    def test_same_seed_same_plan_identical_schedule(self):
        kwargs = dict(
            n_devices=4, duration_ns=1e6, severity=0.5, seed=42,
            events_per_kind=3,
        )
        a = FaultPlan.generate(**kwargs)
        b = FaultPlan.generate(**kwargs)
        assert a.events == b.events  # full tuples: kind, window, endpoints

    def test_different_seed_different_schedule(self):
        a = FaultPlan.generate(n_devices=4, duration_ns=1e6, severity=0.5,
                               seed=1, events_per_kind=3)
        b = FaultPlan.generate(n_devices=4, duration_ns=1e6, severity=0.5,
                               seed=2, events_per_kind=3)
        assert a.events != b.events
