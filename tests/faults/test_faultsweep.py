"""Fault sweep bench + CLI: the severity x backend grid and its table."""

from __future__ import annotations

import pytest

from repro.bench.faultsweep import run_fault_sweep
from repro.cli import build_parser, main
from repro.dlrm.data import WorkloadConfig
from repro.simgpu.units import ms


def tiny_cfg():
    return WorkloadConfig(
        num_tables=4, rows_per_table=512, dim=8, batch_size=64,
        max_pooling=2, seed=2,
    )


class TestRunFaultSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_fault_sweep(
            tiny_cfg(),
            severities=[0.0, 0.8],
            bases=("pgas", "baseline"),
            n_devices=2,
            n_requests=12,
            arrival_qps=100_000.0,
            deadline_ns=2 * ms,
            emb_deadline_ns=0.25 * ms,
            seed=0,
        )

    def test_grid_is_complete(self, sweep):
        assert len(sweep.points) == 4
        for sev in (0.0, 0.8):
            for base in ("pgas", "baseline"):
                p = sweep.point(sev, base)
                assert p.backend == f"{base}+resilient"
                assert p.result.n_offered == 12

    def test_severity_zero_is_healthy(self, sweep):
        for base in ("pgas", "baseline"):
            p = sweep.point(0.0, base)
            assert p.n_faults == 0
            r = p.result
            assert r.n_shed == 0
            assert r.emb_retries == 0
            assert r.emb_reroutes == 0
            assert r.degraded_fraction == 0.0
            assert r.deadline_hit_rate == 1.0

    def test_high_severity_installs_faults(self, sweep):
        p = sweep.point(0.8, "pgas")
        assert p.n_faults > 0

    def test_render_table(self, sweep):
        text = sweep.render()
        for col in ("severity", "backend", "shed", "degraded", "retries",
                    "reroutes", "hit rate", "p99 (ms)", "goodput"):
            assert col in text
        assert "pgas" in text and "baseline" in text

    def test_unknown_point_raises(self, sweep):
        with pytest.raises(KeyError):
            sweep.point(0.5, "pgas")

    def test_input_validation(self):
        with pytest.raises(ValueError, match="severity"):
            run_fault_sweep(tiny_cfg(), severities=[])
        with pytest.raises(ValueError, match="base"):
            run_fault_sweep(tiny_cfg(), severities=[0.0], bases=())


class TestCLI:
    def test_parser_accepts_faultsweep(self):
        args = build_parser().parse_args(
            ["faultsweep", "--severities", "0.0", "0.5", "--backends", "pgas"]
        )
        assert args.command == "faultsweep"
        assert args.severities == [0.0, 0.5]
        assert args.backends == ["pgas"]

    def test_main_runs_and_prints_table(self, capsys):
        rc = main([
            "faultsweep",
            "--tables", "4", "--rows", "512", "--dim", "8", "--batch", "64",
            "--pooling", "2", "--gpus", "2",
            "--severities", "0.0", "0.7",
            "--backends", "pgas",
            "--requests", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault sweep" in out
        assert "severity" in out and "goodput" in out
        assert "pgas" in out
