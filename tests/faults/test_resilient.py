"""ResilientRetrieval: zero-overhead healthy path, hand-computed graceful
degradation, reroutes around downed links, retry/backoff accounting, and
the fallback-cache serving path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheConfig
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    ResilienceSpec,
    ResilientRetrieval,
)
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.core.sharding import TableWiseSharding, minibatch_bounds
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu.cluster import dgx_v100
from repro.simgpu.units import ms, us


def small_cfg(**kw):
    defaults = dict(
        num_tables=8, rows_per_table=1024, dim=16, batch_size=64,
        max_pooling=4, seed=5,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def forward_pair(cfg, n_devices, backend_a, backend_b, plan_b=None, resilience=None):
    """Run the same batch through two backends; returns both results."""
    gen = SyntheticDataGenerator(cfg)
    batch = gen.sparse_batch()
    emb_a = DistributedEmbedding(
        cfg, n_devices, backend=backend_a, materialize=True,
        rng=np.random.default_rng(0),
    )
    emb_b = DistributedEmbedding(
        cfg, n_devices, backend=backend_b, materialize=True,
        rng=np.random.default_rng(0),
        features=FeatureSpec(resilience=resilience),
    )
    if plan_b is not None:
        FaultInjector(emb_b.cluster, plan_b).install()
    return emb_a.forward(batch), emb_b.forward(batch), emb_a, emb_b


class TestZeroOverheadHealthyPath:
    """Empty plan + no deadline: the wrapper IS the wrapped backend."""

    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_outputs_timings_and_wire_bytes_identical(self, base):
        cfg = small_cfg()
        ra, rb, emb_a, emb_b = forward_pair(cfg, 2, base, f"{base}+resilient")
        t_a, t_b = ra.timing, rb.timing
        assert t_b.total_ns == t_a.total_ns
        assert t_b.compute_ns == t_a.compute_ns
        assert t_b.comm_ns == t_a.comm_ns
        assert t_b.sync_unpack_ns == t_a.sync_unpack_ns
        for x, y in zip(ra.outputs, rb.outputs):
            assert np.array_equal(x, y)
        for counter in ("comm_bytes", "pgas_bytes"):
            ca = emb_a.cluster.profiler.counters.get(counter)
            cb = emb_b.cluster.profiler.counters.get(counter)
            assert (ca.total if ca else 0.0) == (cb.total if cb else 0.0)

    def test_outcome_reports_healthy(self):
        cfg = small_cfg()
        _, _, _, emb_b = forward_pair(cfg, 2, "pgas", "pgas+resilient")
        outcome = emb_b.backend_adapter().last_outcome
        assert outcome.healthy
        assert outcome.attempts == 1
        assert outcome.degraded_fraction == 0.0
        assert outcome.total_bags == cfg.batch_size * cfg.num_tables


class TestGracefulDegradation:
    """2 GPUs, link 1→0 down for the whole run: no reroute path exists, so
    dev0's bags of dev1-owned tables are zero-filled — exactly those."""

    def setup_method(self):
        self.cfg = small_cfg()
        self.plan_down = FaultPlan((
            FaultEvent("link_down", 0.0, 1000 * ms, src=1, dst=0),
        ))

    def test_degraded_fraction_matches_hand_count(self):
        healthy, degraded, emb_h, emb_d = forward_pair(
            self.cfg, 2, "pgas", "pgas+resilient", plan_b=self.plan_down
        )
        B, F = self.cfg.batch_size, self.cfg.num_tables
        bounds = minibatch_bounds(B, 2)
        B0 = bounds[0][1] - bounds[0][0]
        T1 = len(emb_d.plan.tables_on(1))
        outcome = emb_d.backend_adapter().last_outcome
        # Every (dev0 sample, dev1-owned table) bag is unreachable.
        assert outcome.degraded_bags == B0 * T1
        assert outcome.degraded_fraction == (B0 * T1) / (B * F)
        assert outcome.rerouted_pairs == 0
        assert not outcome.deadline_missed

    def test_unaffected_bags_bit_identical_affected_zeroed(self):
        healthy, degraded, emb_h, emb_d = forward_pair(
            self.cfg, 2, "pgas", "pgas+resilient", plan_b=self.plan_down
        )
        plan = emb_d.plan
        # dev1 never lost a link it reads over: bit-identical output.
        assert np.array_equal(degraded.outputs[1], healthy.outputs[1])
        for f, t in enumerate(plan.table_configs):
            if plan.owner_of(t.name) == 1:
                assert np.all(degraded.outputs[0][:, f, :] == 0.0)
            else:
                assert np.array_equal(
                    degraded.outputs[0][:, f, :], healthy.outputs[0][:, f, :]
                )

    def test_wire_bytes_strictly_drop(self):
        _, _, emb_h, emb_d = forward_pair(
            self.cfg, 2, "pgas", "pgas+resilient", plan_b=self.plan_down
        )
        assert (
            emb_d.cluster.profiler.counter("pgas_bytes").total
            < emb_h.cluster.profiler.counter("pgas_bytes").total
        )


class TestReroute:
    """4 GPUs, link 1→0 down: a healthy peer forwards, nothing degrades."""

    def setup_method(self):
        self.cfg = small_cfg()
        self.plan_down = FaultPlan((
            FaultEvent("link_down", 0.0, 1000 * ms, src=1, dst=0),
        ))

    def test_reroute_preserves_outputs(self):
        healthy, rerouted, _, emb_r = forward_pair(
            self.cfg, 4, "pgas", "pgas+resilient", plan_b=self.plan_down
        )
        outcome = emb_r.backend_adapter().last_outcome
        assert outcome.rerouted_pairs == 1
        assert outcome.rerouted_bytes > 0
        assert outcome.degraded_bags == 0
        for x, y in zip(healthy.outputs, rerouted.outputs):
            assert np.array_equal(x, y)

    def test_forward_charges_both_hops(self):
        _, _, _, emb_r = forward_pair(
            self.cfg, 4, "pgas", "pgas+resilient", plan_b=self.plan_down
        )
        counters = emb_r.cluster.profiler.counters
        hops = [
            name for name in counters
            if name.startswith("faults.rerouted_bytes.dev")
        ]
        # src→via and via→dst both carried the payload.
        assert len(hops) == 2
        via_hop = next(n for n in hops if n.startswith("faults.rerouted_bytes.dev1->"))
        dst_hop = next(n for n in hops if n.endswith("->dev0"))
        assert counters[via_hop].total == counters[dst_hop].total > 0

    def test_reroute_disabled_degrades_instead(self):
        cfg = self.cfg
        gen = SyntheticDataGenerator(cfg)
        batch = gen.sparse_batch()
        emb = DistributedEmbedding(
            cfg, 4, backend="pgas+resilient", materialize=True,
            rng=np.random.default_rng(0),
            features=FeatureSpec(resilience=ResilienceSpec(reroute=False)),
        )
        FaultInjector(emb.cluster, self.plan_down).install()
        emb.forward(batch)
        outcome = emb.backend_adapter().last_outcome
        assert outcome.rerouted_pairs == 0
        assert outcome.degraded_bags > 0


class TestRetriesAndFinalDegrade:
    def test_impossible_deadline_exhausts_retries_then_serves_locally(self):
        cfg = small_cfg()
        cluster = dgx_v100(2)
        plan = TableWiseSharding(cfg.table_configs(), 2)
        spec = ResilienceSpec(
            deadline_ns=10.0, max_retries=2, backoff_base_ns=5 * us,
            backoff_multiplier=2.0, jitter_fraction=0.0,
        )
        engine = ResilientRetrieval(cluster, plan, spec, base="pgas")
        gen = SyntheticDataGenerator(cfg)
        workloads = build_device_workloads(plan, gen.lengths_batch())
        timing = engine.run_timed(workloads)
        outcome = engine.last_outcome
        assert outcome.retries == 3  # initial + 2 retries all missed
        assert outcome.attempts == 4
        assert outcome.deadline_missed
        # Final local-only pass zero-fills every remote bag.
        remote = sum(
            int(round(float(wl.output_bytes_by_dst.sum() - wl.output_bytes_by_dst[wl.device_id]) / wl.row_bytes))
            for wl in workloads
        )
        assert outcome.degraded_bags == remote
        assert timing.total_ns > 0

    def test_generous_deadline_single_attempt(self):
        cfg = small_cfg()
        cluster = dgx_v100(2)
        plan = TableWiseSharding(cfg.table_configs(), 2)
        engine = ResilientRetrieval(
            cluster, plan, ResilienceSpec(deadline_ns=1000 * ms), base="pgas"
        )
        gen = SyntheticDataGenerator(cfg)
        workloads = build_device_workloads(plan, gen.lengths_batch())
        engine.run_timed(workloads)
        assert engine.last_outcome.healthy

    def test_backoff_jitter_is_seeded(self):
        def run_once():
            cfg = small_cfg()
            cluster = dgx_v100(2)
            plan = TableWiseSharding(cfg.table_configs(), 2)
            spec = ResilienceSpec(
                deadline_ns=10.0, max_retries=2, jitter_fraction=0.5, seed=9
            )
            engine = ResilientRetrieval(cluster, plan, spec, base="pgas")
            gen = SyntheticDataGenerator(cfg)
            workloads = build_device_workloads(plan, gen.lengths_batch())
            return engine.run_timed(workloads).total_ns

        assert run_once() == run_once()


class TestFallbackCache:
    def test_warmed_cache_serves_degraded_bags(self):
        cfg = small_cfg()
        gen = SyntheticDataGenerator(cfg)
        batch = gen.sparse_batch()
        spec = ResilienceSpec(fallback_cache=CacheConfig(capacity_fraction=1.0))
        emb = DistributedEmbedding(
            cfg, 2, backend="pgas+resilient", materialize=True,
            rng=np.random.default_rng(0),
            features=FeatureSpec(resilience=spec),
        )
        adapter = emb.backend_adapter()
        adapter.warm_fallback([batch])  # every remote row now replicated
        FaultInjector(emb.cluster, FaultPlan((
            FaultEvent("link_down", 0.0, 1000 * ms, src=1, dst=0),
        ))).install()
        result = emb.forward(batch)
        outcome = adapter.last_outcome
        assert outcome.cache_served_bags > 0
        assert outcome.degraded_bags < outcome.total_bags
        # Cache-served bags carry real values, matching the healthy output.
        healthy = DistributedEmbedding(
            cfg, 2, backend="pgas", materialize=True, rng=np.random.default_rng(0)
        ).forward(batch)
        plan = emb.plan
        bounds = minibatch_bounds(cfg.batch_size, 2)
        lo, hi = bounds[0]
        for f, t in enumerate(plan.table_configs):
            if plan.owner_of(t.name) != 1:
                continue
            fld = batch.field(t.name)
            lengths = fld.lengths[lo:hi]
            served = result.outputs[0][:, f, :]
            reference = healthy.outputs[0][:, f, :]
            covered = lengths > 0  # fully warmed: every non-empty bag hits
            assert np.array_equal(served[covered], reference[covered])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ResilienceSpec(deadline_ns=-1.0)
        with pytest.raises(ValueError):
            ResilienceSpec(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceSpec(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            ResilienceSpec(jitter_fraction=2.0)
        with pytest.raises(TypeError):
            ResilienceSpec(fallback_cache="big")
        with pytest.raises(TypeError):
            DistributedEmbedding(
                small_cfg(), 2, backend="pgas+resilient",
                features=FeatureSpec(resilience="nope"),
            ).backend_adapter()
