"""FaultInjector: each fault kind measurably changes simulated behaviour,
windows revert, and every window lands in the profiler/Chrome trace."""

from __future__ import annotations

import pytest

from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.faults.injector import SPAN_CATEGORY, WINDOW_COUNTER
from repro.simgpu.cluster import Cluster, dgx_v100
from repro.simgpu.interconnect import Topology
from repro.simgpu.kernel import KernelSpec, execute_kernel, kernel_time
from repro.simgpu.trace import chrome_trace
from repro.simgpu.units import ms, us

PAYLOAD = 1 << 20  # 1 MiB


def timed_transfer(cluster: Cluster, at_ns: float = 0.0) -> float:
    """Duration of one 0→1 transfer issued at ``at_ns``."""
    out = []

    def prog(cl):
        if at_ns > cl.engine.now:
            yield cl.engine.timeout(at_ns - cl.engine.now)
        t0 = cl.engine.now
        yield cl.interconnect.transfer(0, 1, float(PAYLOAD))
        out.append(cl.engine.now - t0)

    cluster.run(prog)
    return out[0]


def healthy_duration() -> float:
    return timed_transfer(dgx_v100(2))


class TestLinkFaults:
    def test_degrade_slows_then_reverts_exactly(self):
        d0 = healthy_duration()
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("link_degrade", 0.0, 1 * ms, src=0, dst=1, severity=0.5),
        ))
        FaultInjector(cluster, plan).install()
        inside = timed_transfer(cluster)
        after = timed_transfer(cluster, at_ns=2 * ms)
        assert inside > d0
        # Post-window arithmetic is bit-identical to the healthy link
        # (same absolute issue time, so float rounding matches too).
        assert after == timed_transfer(dgx_v100(2), at_ns=2 * ms)

    def test_latency_spike_adds_exactly_the_extra(self):
        d0 = healthy_duration()
        extra = 5 * us
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("link_latency", 0.0, 1 * ms, src=0, dst=1, severity=extra),
        ))
        FaultInjector(cluster, plan).install()
        assert timed_transfer(cluster) == d0 + extra
        assert timed_transfer(cluster, at_ns=2 * ms) == timed_transfer(
            dgx_v100(2), at_ns=2 * ms
        )

    def test_down_link_queues_until_up_edge(self):
        d0 = healthy_duration()
        down_until = 50 * us
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("link_down", 0.0, down_until, src=0, dst=1),
        ))
        FaultInjector(cluster, plan).install()
        # Issued at t=0 into the flap: service starts at the up edge.
        assert timed_transfer(cluster) == down_until + d0

    def test_direction_is_respected(self):
        d0 = healthy_duration()
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("link_degrade", 0.0, 1 * ms, src=1, dst=0, severity=0.25),
        ))
        FaultInjector(cluster, plan).install()
        # 0→1 is untouched by a 1→0 fault.
        assert timed_transfer(cluster) == d0


class TestDeviceFaults:
    KSPEC = KernelSpec(name="k", num_blocks=512, bytes_read=64 << 20)

    def run_kernel(self, cluster: Cluster) -> float:
        out = []

        def prog(cl):
            t0 = cl.engine.now
            yield from execute_kernel(cl.device(0), self.KSPEC)
            out.append(cl.engine.now - t0)

        cluster.run(prog)
        return out[0]

    def test_slowdown_stretches_by_severity(self):
        healthy = self.run_kernel(dgx_v100(1))
        assert healthy == pytest.approx(kernel_time(self.KSPEC, dgx_v100(1).device(0).spec))
        cluster = dgx_v100(1)
        plan = FaultPlan((
            FaultEvent("device_slowdown", 0.0, 100 * ms, device=0, severity=3.0),
        ))
        FaultInjector(cluster, plan).install()
        assert self.run_kernel(cluster) == pytest.approx(3.0 * healthy)

    def test_slowdown_reverts(self):
        healthy = self.run_kernel(dgx_v100(1))
        cluster = dgx_v100(1)
        plan = FaultPlan((
            FaultEvent("device_slowdown", 0.0, 10 * us, device=0, severity=4.0),
        ))
        FaultInjector(cluster, plan).install()
        def wait(cl):
            yield cl.engine.timeout(1 * ms)
        cluster.run(wait)
        assert self.run_kernel(cluster) == pytest.approx(healthy)

    def test_stall_freezes_progress(self):
        healthy = self.run_kernel(dgx_v100(1))
        stall = 30 * us
        cluster = dgx_v100(1)
        plan = FaultPlan((
            FaultEvent("device_stall", 0.0, stall, device=0),
        ))
        FaultInjector(cluster, plan).install()
        assert self.run_kernel(cluster) == pytest.approx(healthy + stall)

    def test_other_devices_unaffected(self):
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("device_slowdown", 0.0, 100 * ms, device=1, severity=5.0),
        ))
        FaultInjector(cluster, plan).install()
        assert self.run_kernel(cluster) == pytest.approx(self.run_kernel(dgx_v100(1)))


class TestValidationAndRecording:
    def test_plan_must_fit_cluster(self):
        plan = FaultPlan((FaultEvent("device_stall", 0.0, 1.0, device=7),))
        with pytest.raises(ValueError, match="device 7"):
            FaultInjector(dgx_v100(2), plan)

    def test_link_must_exist_in_topology(self):
        isolated = Cluster(2, topology=Topology(2, lambda s, d: None, name="isolated"))
        plan = FaultPlan((FaultEvent("link_down", 0.0, 1.0, src=0, dst=1),))
        with pytest.raises(ValueError, match="does not exist"):
            FaultInjector(isolated, plan)

    def test_install_twice_raises(self):
        inj = FaultInjector(
            dgx_v100(2),
            FaultPlan((FaultEvent("device_stall", 0.0, 1.0, device=0),)),
        )
        inj.install()
        with pytest.raises(RuntimeError, match="twice"):
            inj.install()

    def test_windows_recorded_as_spans_and_counters(self):
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("link_degrade", 0.0, 20 * us, src=0, dst=1, severity=0.5),
            FaultEvent("device_stall", 10 * us, 30 * us, device=1),
        ))
        FaultInjector(cluster, plan).install()
        timed_transfer(cluster, at_ns=50 * us)
        spans = cluster.profiler.spans_by_category(SPAN_CATEGORY)
        assert {s.name for s in spans} == {
            "fault.link_degrade.0->1", "fault.device_stall.dev1",
        }
        # Full planned extents, stamped at the apply edge.
        degrade = next(s for s in spans if "degrade" in s.name)
        assert (degrade.t_start, degrade.t_end) == (0.0, 20 * us)
        assert cluster.profiler.counter(WINDOW_COUNTER).total == 2.0

    def test_fault_windows_visible_in_chrome_trace(self):
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("link_latency", 0.0, 20 * us, src=0, dst=1, severity=1000.0),
        ))
        FaultInjector(cluster, plan).install()
        timed_transfer(cluster, at_ns=50 * us)
        trace = chrome_trace(cluster.profiler)
        names = {e["name"] for e in trace["traceEvents"]}
        assert "fault.link_latency.0->1" in names
        assert WINDOW_COUNTER in names

    def test_overlapping_degrades_compose(self):
        d0 = healthy_duration()
        cluster = dgx_v100(2)
        plan = FaultPlan((
            FaultEvent("link_degrade", 0.0, 1 * ms, src=0, dst=1, severity=0.5),
            FaultEvent("link_degrade", 0.0, 1 * ms, src=0, dst=1, severity=0.5),
        ))
        FaultInjector(cluster, plan).install()
        inside = timed_transfer(cluster)
        single = dgx_v100(2)
        FaultInjector(single, FaultPlan((
            FaultEvent("link_degrade", 0.0, 1 * ms, src=0, dst=1, severity=0.5),
        ))).install()
        assert inside > timed_transfer(single) > d0
        # Both reverted: healthy again.
        assert timed_transfer(cluster, at_ns=2 * ms) == timed_transfer(
            dgx_v100(2), at_ns=2 * ms
        )
