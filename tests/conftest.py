"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm import (
    EmbeddingBagCollection,
    SyntheticDataGenerator,
    WorkloadConfig,
)


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for weight/test-data generation."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_config() -> WorkloadConfig:
    """A workload small enough to materialise and compare exactly."""
    return WorkloadConfig(
        num_tables=6,
        rows_per_table=50,
        dim=8,
        batch_size=33,
        max_pooling=5,
        min_pooling=0,
        num_dense_features=4,
        seed=99,
    )


@pytest.fixture
def tiny_batch(tiny_config):
    """One sparse batch drawn from the tiny workload."""
    return SyntheticDataGenerator(tiny_config).sparse_batch()


@pytest.fixture
def tiny_ebc(tiny_config, rng) -> EmbeddingBagCollection:
    """Materialised tables for the tiny workload."""
    return EmbeddingBagCollection.from_configs(tiny_config.table_configs(), rng=rng)
