"""CompressionSpec validation, cost model, and RunSpec round-trip."""

from __future__ import annotations

import pytest

from repro.compress import CompressionSpec, compress_cost_model
from repro.core.runspec import RunSpec, preset_runspec
from repro.simgpu.device import V100_SPEC


class TestSpecValidation:
    def test_defaults(self):
        spec = CompressionSpec()
        assert spec.codec == "fp32" and spec.lossless
        assert spec.error_bound is None

    def test_unknown_codec_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            CompressionSpec(codec="zstd")

    def test_negative_error_bound_raises(self):
        with pytest.raises(ValueError, match="error_bound"):
            CompressionSpec(codec="int8", error_bound=-0.1)

    def test_lossy_flags(self):
        assert not CompressionSpec(codec="int8").lossless
        assert CompressionSpec(codec="int8").codec_obj().name == "int8"


class TestCostModel:
    def test_memory_bound_pass(self):
        nbytes = 1 << 20
        ns = compress_cost_model(nbytes, V100_SPEC)
        assert ns == pytest.approx(nbytes / V100_SPEC.effective_mem_bandwidth)

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            compress_cost_model(-1.0, V100_SPEC)

    def test_fp32_passthrough_is_free(self):
        spec = CompressionSpec()
        assert spec.encode_cost_ns(1e6, 1e6, V100_SPEC) == 0.0
        assert spec.decode_cost_ns(1e6, 1e6, V100_SPEC) == 0.0

    def test_lossy_charges_both_directions(self):
        spec = CompressionSpec(codec="int8")
        enc = spec.encode_cost_ns(1000.0, 250.0, V100_SPEC)
        assert enc == pytest.approx(compress_cost_model(1250.0, V100_SPEC))
        assert spec.decode_cost_ns(1000.0, 250.0, V100_SPEC) == pytest.approx(enc)


class TestRunSpecIntegration:
    def test_round_trip(self):
        spec = preset_runspec(
            "tiny",
            backend="pgas+compress",
            compression=CompressionSpec(codec="int4", error_bound=0.5),
        )
        again = RunSpec.from_json(spec.to_json())
        assert again == spec
        assert again.compression.codec == "int4"
        assert again.to_json() == spec.to_json()

    def test_absent_section_round_trips_as_none(self):
        spec = preset_runspec("tiny")
        assert spec.to_dict()["compression"] is None
        assert RunSpec.from_json(spec.to_json()).compression is None

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="CompressionSpec"):
            preset_runspec("tiny", compression={"codec": "int8"})

    def test_from_spec_passes_compression_through(self):
        from repro import DistributedEmbedding

        spec = preset_runspec(
            "tiny",
            backend="pgas+compress",
            compression=CompressionSpec(codec="int8"),
        )
        emb = DistributedEmbedding.from_spec(spec)
        assert emb.compression_config is spec.compression
        adapter = emb.backend_adapter("pgas+compress")
        assert adapter.codec.name == "int8"
