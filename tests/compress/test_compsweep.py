"""Compression sweep and its BENCH_compression.json self-check."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.compsweep import run_comp_sweep, validate_compsweep_json


@pytest.fixture(scope="module")
def sweep():
    return run_comp_sweep(
        "tiny", codecs=("fp32", "int8"), n_batches=1, error_rows=64
    )


class TestSweep:
    def test_grid_is_complete(self, sweep):
        assert len(sweep.points) == 4  # 2 codecs x 2 bases
        assert sweep.point("int8", "pgas", 256).codec == "int8"
        with pytest.raises(KeyError):
            sweep.point("int4", "pgas", 256)

    def test_int8_undercuts_fp32_wire(self, sweep):
        for base in ("pgas", "baseline"):
            fp32 = sweep.point("fp32", base, 256)
            int8 = sweep.point("int8", base, 256)
            assert int8.wire_bytes < fp32.wire_bytes
            assert int8.compression_ratio == pytest.approx(64 / 20)
            assert fp32.compression_ratio == 1.0

    def test_fp32_is_exact_and_free(self, sweep):
        for base in ("pgas", "baseline"):
            p = sweep.point("fp32", base, 256)
            assert p.max_abs_error == 0.0 and p.within_bound
            assert p.encode_ns == 0.0 and p.decode_ns == 0.0
            assert p.wire_bytes == p.uncompressed_bytes

    def test_baseline_comm_shrinks(self, sweep):
        fp32 = sweep.point("fp32", "baseline", 256)
        int8 = sweep.point("int8", "baseline", 256)
        assert int8.comm_ns < fp32.comm_ns

    def test_within_bound_everywhere(self, sweep):
        assert all(p.within_bound for p in sweep.points)

    def test_render_lists_codecs(self, sweep):
        text = sweep.render()
        assert "int8" in text and "fp32" in text and "ratio" in text

    def test_invalid_axes_raise(self):
        with pytest.raises(ValueError, match="axis"):
            run_comp_sweep("tiny", codecs=())
        with pytest.raises(ValueError, match="base backend"):
            run_comp_sweep("tiny", bases=("nvshmem",))


class TestArtifact:
    def test_write_read_validate(self, sweep, tmp_path):
        path = tmp_path / "BENCH_compression.json"
        sweep.write_json(str(path))
        data = json.loads(path.read_text())
        validate_compsweep_json(data)
        assert data["schema_version"] == 1
        assert len(data["points"]) == 4

    def test_validator_rejects_tampering(self, sweep):
        good = sweep.as_dict()
        validate_compsweep_json(good)

        bad = copy.deepcopy(good)
        bad["points"][0]["within_bound"] = False
        with pytest.raises(ValueError, match="bound"):
            validate_compsweep_json(bad)

        bad = copy.deepcopy(good)
        for p in bad["points"]:
            if p["codec"] == "int8":
                p["wire_bytes"] = p["uncompressed_bytes"] * 2
        with pytest.raises(ValueError):
            validate_compsweep_json(bad)

        bad = copy.deepcopy(good)
        for p in bad["points"]:
            if p["codec"] == "fp32":
                p["max_abs_error"] = 0.1
        with pytest.raises(ValueError, match="exact"):
            validate_compsweep_json(bad)

        bad = copy.deepcopy(good)
        bad["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_compsweep_json(bad)

        bad = copy.deepcopy(good)
        bad["points"] = []
        with pytest.raises(ValueError, match="point"):
            validate_compsweep_json(bad)

        bad = copy.deepcopy(good)
        del bad["points"][0]["rmse"]
        with pytest.raises(ValueError, match="rmse"):
            validate_compsweep_json(bad)

    def test_validator_catches_comm_regression(self, sweep):
        bad = sweep.as_dict()
        for p in bad["points"]:
            if p["codec"] == "int8" and p["backend"] == "baseline":
                p["comm_ns"] = 1e12
        with pytest.raises(ValueError, match="all-to-all"):
            validate_compsweep_json(bad)


class TestTelemetryReport:
    def test_compression_section_lands_in_run_report(self):
        import numpy as np

        from repro import (
            CompressionSpec,
            DistributedEmbedding,
            FeatureSpec,
            SyntheticDataGenerator,
            WorkloadConfig,
        )

        cfg = WorkloadConfig(
            num_tables=8, rows_per_table=2000, dim=16, batch_size=256, max_pooling=8
        )
        emb = DistributedEmbedding(
            cfg, 2, backend="pgas+compress",
            features=FeatureSpec(compression=CompressionSpec(codec="int8")),
            materialize=True, rng=np.random.default_rng(0),
        )
        timing = emb.forward(SyntheticDataGenerator(cfg).sparse_batch()).timing
        report = emb.telemetry_report(timing, workload=cfg)
        assert report.compression["compress.bytes_on_wire"] > 0
        assert report.metric("compression.ratio") == pytest.approx(64 / 20)
        assert report.metric("compression.max_abs_error") > 0
        assert report.metric("compression.rmse") > 0
        # schema round-trip with the new section
        from repro.telemetry import RunReport

        again = RunReport.from_json(report.to_json())
        assert again.to_json() == report.to_json()
