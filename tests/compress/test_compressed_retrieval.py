"""CompressedRetrieval: passthrough identity, scaled wires, decode charges."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    CompressionSpec,
    DistributedEmbedding,
    FeatureSpec,
    SyntheticDataGenerator,
    WorkloadConfig,
)
from repro.compress.retrieval import (
    DECODE_NS_COUNTER,
    ENCODE_NS_COUNTER,
    RAW_COUNTER,
    WIRE_COUNTER,
    CompressedRetrieval,
)
from repro.core.workload import alltoall_split_bytes, lengths_from_batch

CFG = WorkloadConfig(
    num_tables=8, rows_per_table=2000, dim=16, batch_size=512, max_pooling=8
)
WIDE = WorkloadConfig(
    num_tables=8, rows_per_table=2000, dim=64, batch_size=512, max_pooling=8
)


def build(cfg, backend, codec=None, materialize=False, n_devices=2):
    compression = CompressionSpec(codec=codec) if codec else None
    return DistributedEmbedding(
        cfg,
        n_devices,
        backend=backend,
        features=FeatureSpec(compression=compression),
        materialize=materialize,
        rng=np.random.default_rng(0),
    )


def span_tuples(cluster):
    return [
        (s.name, s.category, s.device_id, s.t_start, s.t_end)
        for s in cluster.profiler.spans
    ]


def counter_totals(cluster):
    return {n: c.total for n, c in cluster.profiler.counters.items()}


class TestFP32Passthrough:
    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_event_for_event_identical(self, base):
        """fp32 passthrough reproduces the bare backend's exact record."""
        batch = SyntheticDataGenerator(CFG).sparse_batch()
        lengths = lengths_from_batch(batch)

        ref = build(CFG, base)
        t_ref = ref.forward_timed(lengths)
        comp = build(CFG, f"{base}+compress", codec="fp32")
        t_comp = comp.forward_timed(lengths)

        assert t_comp.as_dict() == t_ref.as_dict()
        assert span_tuples(comp.cluster) == span_tuples(ref.cluster)
        assert counter_totals(comp.cluster) == counter_totals(ref.cluster)
        assert not any(n.startswith("compress.") for n in counter_totals(comp.cluster))

    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_functional_bit_identical(self, base):
        batch = SyntheticDataGenerator(CFG).sparse_batch()
        ref = build(CFG, base, materialize=True)
        comp = build(CFG, f"{base}+compress", codec="fp32", materialize=True)
        out_ref = ref.forward(batch).outputs
        out_comp = comp.forward(batch).outputs
        for a, b in zip(out_ref, out_comp):
            assert np.array_equal(a, b)


class TestScaledWires:
    def test_split_shrinks_by_row_wire_ratio(self):
        emb = build(CFG, "baseline+compress", codec="int8")
        adapter = emb.backend_adapter("baseline+compress")
        lengths = SyntheticDataGenerator(CFG).lengths_batch()
        workloads = emb.build_workloads(lengths)
        scaled = adapter._scaled_workloads(workloads)
        split = alltoall_split_bytes(workloads)
        split_scaled = alltoall_split_bytes(scaled)
        # d=16: (16 + 4) / 64 of the fp32 bytes stay on the wire
        off = split > 0
        assert np.allclose(split_scaled[off], split[off] * 20 / 64)

    def test_local_column_untouched(self):
        emb = build(CFG, "baseline+compress", codec="int8")
        adapter = emb.backend_adapter("baseline+compress")
        workloads = emb.build_workloads(SyntheticDataGenerator(CFG).lengths_batch())
        scaled = adapter._scaled_workloads(workloads)
        for wl, swl in zip(workloads, scaled):
            g = wl.device_id
            assert np.array_equal(
                swl.block_dst_bytes[:, g], wl.block_dst_bytes[:, g]
            )

    def test_pgas_message_bytes_is_row_wire(self):
        emb = build(CFG, "pgas+compress", codec="int8")
        adapter = emb.backend_adapter("pgas+compress")
        assert adapter.base.pgas.spec.message_bytes == 16 + 4

    def test_fused_encode_inflates_kernel_traffic(self):
        emb = build(CFG, "pgas+compress", codec="int8")
        adapter = emb.backend_adapter("pgas+compress")
        workloads = emb.build_workloads(SyntheticDataGenerator(CFG).lengths_batch())
        scaled = adapter._scaled_workloads(workloads)
        for wl, swl in zip(workloads, scaled):
            assert swl.bytes_read == wl.bytes_read + wl.remote_output_bytes
            assert swl.bytes_written > wl.bytes_written - wl.remote_output_bytes

    def test_wire_bytes_for(self):
        emb = build(WIDE, "pgas+compress", codec="int8")
        adapter = emb.backend_adapter("pgas+compress")
        workloads = emb.build_workloads(SyntheticDataGenerator(WIDE).lengths_batch())
        raw, wire = adapter.wire_bytes_for(workloads)
        assert raw == sum(wl.remote_output_bytes for wl in workloads)
        assert wire == pytest.approx(raw * 68 / 256)


class TestTimedPath:
    def test_decode_spans_only_when_lossy(self):
        lengths = SyntheticDataGenerator(CFG).lengths_batch()
        lossy = build(CFG, "pgas+compress", codec="int8")
        lossy.forward_timed(lengths)
        cats = {s.category for s in lossy.cluster.profiler.spans}
        assert "compress" in cats

        exact = build(CFG, "pgas+compress", codec="fp32")
        exact.forward_timed(lengths)
        assert "compress" not in {s.category for s in exact.cluster.profiler.spans}

    def test_counters_match_wire_accounting(self):
        emb = build(CFG, "baseline+compress", codec="int4")
        adapter = emb.backend_adapter("baseline+compress")
        workloads = emb.build_workloads(SyntheticDataGenerator(CFG).lengths_batch())
        raw, wire = adapter.wire_bytes_for(workloads)
        adapter.run_timed(workloads)
        counters = emb.cluster.profiler.counters
        assert counters[WIRE_COUNTER].total == pytest.approx(wire)
        assert counters[RAW_COUNTER].total == pytest.approx(raw)
        assert counters[ENCODE_NS_COUNTER].total > 0
        assert counters[DECODE_NS_COUNTER].total > 0

    def test_baseline_int8_shrinks_comm_time(self):
        lengths = SyntheticDataGenerator(WIDE).lengths_batch()
        ref = build(WIDE, "baseline")
        t_ref = ref.forward_timed(lengths)
        comp = build(WIDE, "baseline+compress", codec="int8")
        t_comp = comp.forward_timed(lengths)
        assert t_comp.comm_ns < t_ref.comm_ns

    def test_pgas_wire_counter_shrinks(self):
        lengths = SyntheticDataGenerator(WIDE).lengths_batch()
        ref = build(WIDE, "pgas")
        ref.forward_timed(lengths)
        comp = build(WIDE, "pgas+compress", codec="int8")
        comp.forward_timed(lengths)
        ref_bytes = ref.cluster.profiler.counter("pgas_bytes").total
        comp_bytes = comp.cluster.profiler.counter("pgas_bytes").total
        assert 0 < comp_bytes < ref_bytes

    def test_decode_extends_total(self):
        lengths = SyntheticDataGenerator(CFG).lengths_batch()
        comp = build(CFG, "pgas+compress", codec="int8")
        t = comp.forward_timed(lengths)
        assert t.sync_unpack_ns > 0
        assert t.total_ns == pytest.approx(
            comp.cluster.engine.now
        )


class TestFunctionalPath:
    def test_int8_outputs_close_and_local_exact(self):
        batch = SyntheticDataGenerator(CFG).sparse_batch()
        ref = build(CFG, "pgas", materialize=True)
        comp = build(CFG, "pgas+compress", codec="int8", materialize=True)
        out_ref = ref.forward(batch).outputs
        out_comp = comp.forward(batch).outputs
        adapter = comp.backend_adapter("pgas+compress")
        stats = adapter.last_batch_errors
        assert stats is not None and stats.n_elements > 0
        for g, (a, b) in enumerate(zip(out_ref, out_comp)):
            delta = np.abs(a.astype(np.float64) - b.astype(np.float64))
            assert delta.max() <= stats.max_abs_error
            local_cols = comp.plan.feature_indices_on(g)
            assert np.array_equal(a[:, local_cols, :], b[:, local_cols, :])

    def test_error_bound_guard_raises(self):
        batch = SyntheticDataGenerator(CFG).sparse_batch()
        emb = DistributedEmbedding(
            CFG,
            2,
            backend="pgas+compress",
            features=FeatureSpec(
                compression=CompressionSpec(codec="int4", error_bound=1e-12)
            ),
            materialize=True,
            rng=np.random.default_rng(0),
        )
        with pytest.raises(ValueError, match="error bound"):
            emb.forward(batch)

    def test_errors_accumulate_across_batches(self):
        gen = SyntheticDataGenerator(CFG)
        emb = build(CFG, "baseline+compress", codec="int8", materialize=True)
        emb.forward(gen.sparse_batch())
        adapter = emb.backend_adapter("baseline+compress")
        first = adapter.errors.n_elements
        emb.forward(gen.sparse_batch())
        assert adapter.errors.n_elements == 2 * first
        assert adapter.errors.rmse > 0

    def test_functional_without_weights_raises(self):
        emb = build(CFG, "pgas+compress", codec="int8")
        adapter = emb.backend_adapter("pgas+compress")
        with pytest.raises(ValueError, match="materialize"):
            adapter.functional_forward(SyntheticDataGenerator(CFG).sparse_batch())


class TestConstruction:
    def test_unknown_base_raises(self):
        emb = build(CFG, "pgas")
        with pytest.raises(ValueError, match="base backend"):
            CompressedRetrieval(emb.cluster, emb.plan, base="nvshmem")

    def test_lossy_requires_uniform_float32_dim(self):
        from repro.dlrm.embedding import EmbeddingTableConfig

        tables = [
            EmbeddingTableConfig(name="a", num_rows=64, dim=8),
            EmbeddingTableConfig(name="b", num_rows=64, dim=16),
        ]
        with pytest.raises(ValueError, match="one dim"):
            DistributedEmbedding(
                tables,
                2,
                backend="pgas+compress",
                features=FeatureSpec(compression=CompressionSpec(codec="int8")),
            ).backend_adapter("pgas+compress")

    def test_fp32_accepts_mixed_dims(self):
        from repro.dlrm.embedding import EmbeddingTableConfig

        tables = [
            EmbeddingTableConfig(name="a", num_rows=64, dim=8),
            EmbeddingTableConfig(name="b", num_rows=64, dim=16),
        ]
        emb = DistributedEmbedding(tables, 2, backend="pgas+compress")
        assert emb.backend_adapter("pgas+compress").passthrough

    def test_backend_info_flags(self):
        from repro.core.retrieval import available_backends

        by_name = {str(b): b for b in available_backends()}
        info = by_name["pgas+compress"]
        assert info.compressed and not info.cached and not info.resilient
        assert by_name["pgas"].compressed is False
