"""Codec round-trip and wire-accounting tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compress.codec import (
    CODEC_NAMES,
    FP32Codec,
    Int4Codec,
    Int8Codec,
    make_codec,
    roundtrip_error_report,
)


def random_rows(n=32, d=16, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((n, d)) * scale).astype(np.float32)


class TestRegistry:
    def test_names(self):
        assert CODEC_NAMES == ("fp32", "fp16", "int8", "int4")

    def test_make_codec(self):
        for name in CODEC_NAMES:
            assert make_codec(name).name == name

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            make_codec("zfp")

    def test_input_validated(self):
        codec = FP32Codec()
        with pytest.raises(ValueError, match="2-D"):
            codec.encode(np.zeros(8, dtype=np.float32))
        with pytest.raises(ValueError, match="float32"):
            codec.encode(np.zeros((2, 4), dtype=np.float64))


class TestFP32Passthrough:
    def test_bit_identical(self):
        rows = random_rows()
        out = FP32Codec().roundtrip(rows)
        assert out.dtype == np.float32
        assert np.array_equal(out, rows)

    def test_lossless_flag_and_zero_bound(self):
        codec = FP32Codec()
        assert codec.lossless
        assert np.all(codec.error_bound(random_rows()) == 0.0)

    def test_decode_returns_same_buffer(self):
        rows = random_rows()
        assert FP32Codec().roundtrip(rows) is rows


class TestWireAccounting:
    def test_fp32_row_bytes(self):
        assert FP32Codec().row_wire_bytes(64) == 256

    def test_int8_hand_computed(self):
        codec = make_codec("int8")
        # d=64: 64 payload + 4 scale = 68 B/row
        assert codec.row_wire_bytes(64) == 68
        assert codec.wire_bytes(10, 64) == 10 * 68
        # one PGAS header per vector rides on top
        assert codec.wire_bytes(10, 64, header_bytes=32) == 10 * 100
        assert codec.compression_ratio(64) == pytest.approx(256 / 68)

    def test_int4_odd_dim_rounds_up(self):
        codec = make_codec("int4")
        # d=7 -> ceil(7/2)=4 payload + 4 scale = 8 B/row
        assert codec.row_wire_bytes(7) == 8
        assert codec.wire_bytes(5, 7) == 40

    def test_fp16_half_of_fp32(self):
        assert make_codec("fp16").row_wire_bytes(64) == 128

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            FP32Codec().wire_bytes(-1, 16)

    def test_encoded_nbytes_match_declared(self):
        rows = random_rows(n=9, d=17)
        for name in CODEC_NAMES:
            codec = make_codec(name)
            enc = codec.encode(rows)
            assert enc.payload_nbytes == 9 * codec.payload_bytes(17)
            assert enc.scale_nbytes == 9 * codec.scale_bytes_per_row
            assert enc.wire_nbytes == codec.wire_bytes(9, 17)


class TestLossyBounds:
    @pytest.mark.parametrize("name", ["fp16", "int8", "int4"])
    def test_error_within_per_row_bound(self, name):
        codec = make_codec(name)
        rows = random_rows(n=64, d=32, seed=3, scale=2.5)
        decoded = codec.roundtrip(rows)
        err = np.abs(decoded.astype(np.float64) - rows.astype(np.float64))
        bound = codec.error_bound(rows)
        assert np.all(err.max(axis=1) <= bound)

    @pytest.mark.parametrize("name", ["int8", "int4"])
    def test_zero_rows_exact(self, name):
        rows = np.zeros((4, 8), dtype=np.float32)
        assert np.array_equal(make_codec(name).roundtrip(rows), rows)

    def test_constant_row_exact_int8(self):
        # absmax itself always lands on a level, up to fp32 scale rounding
        rows = np.full((3, 8), -2.0, dtype=np.float32)
        decoded = make_codec("int8").roundtrip(rows)
        assert np.allclose(decoded, rows, atol=2.0 / 127)

    def test_int8_per_row_scales(self):
        rows = np.stack([
            np.linspace(-1, 1, 16, dtype=np.float32),
            np.linspace(-100, 100, 16, dtype=np.float32),
        ])
        enc = make_codec("int8").encode(rows)
        assert enc.scales.shape == (2,)
        assert enc.scales[1] == pytest.approx(100.0 / 127, rel=1e-6)

    def test_int4_levels_clip(self):
        rows = random_rows(n=16, d=8, seed=5, scale=10.0)
        enc = make_codec("int4").encode(rows)
        low = enc.data & 0x0F
        high = enc.data >> 4
        assert low.max() <= 14 and high.max() <= 14

    def test_fp16_overflow_bound_is_inf(self):
        rows = np.array([[1e5, 0.0]], dtype=np.float32)
        assert np.isinf(make_codec("fp16").error_bound(rows))[0]

    @given(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.floats(min_value=1e-3, max_value=1e3),
    )
    def test_property_roundtrip_within_bound(self, n, d, seed, scale):
        rows = random_rows(n=n, d=d, seed=seed, scale=scale)
        for name in CODEC_NAMES:
            report = roundtrip_error_report(make_codec(name), rows)
            assert report["within_bound"]
            if name == "fp32":
                assert report["max_abs_error"] == 0.0


class TestErrorReport:
    def test_empty_input(self):
        report = roundtrip_error_report(Int8Codec(), np.zeros((0, 8), dtype=np.float32))
        assert report["max_abs_error"] == 0.0 and report["within_bound"]

    def test_report_fields(self):
        report = roundtrip_error_report(Int4Codec(), random_rows())
        assert set(report) == {"max_abs_error", "rmse", "error_bound", "within_bound"}
        assert 0 < report["rmse"] <= report["max_abs_error"] <= report["error_bound"]
