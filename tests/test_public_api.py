"""Public-API integrity: exports exist, are documented, and don't drift."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.cache",
    "repro.hier",
    "repro.reshard",
    "repro.simgpu",
    "repro.comm",
    "repro.dlrm",
    "repro.bench",
]


@pytest.mark.parametrize("pkg_name", PACKAGES)
class TestExports:
    def test_all_symbols_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name!r}"

    def test_all_is_sorted_unique(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert len(set(pkg.__all__)) == len(pkg.__all__), f"{pkg_name}: duplicate exports"

    def test_module_docstring(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert pkg.__doc__ and len(pkg.__doc__) > 40

    def test_public_classes_and_functions_documented(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        undocumented = []
        for name in pkg.__all__:
            obj = getattr(pkg, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{pkg_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestPublicClassMethods:
    def test_core_entry_points_have_documented_methods(self):
        from repro.core import DistributedEmbedding
        from repro.simgpu import Engine

        for cls in (DistributedEmbedding, Engine):
            for name, member in inspect.getmembers(cls, inspect.isfunction):
                if name.startswith("_"):
                    continue
                assert member.__doc__, f"{cls.__name__}.{name} lacks a docstring"


class TestReshardSurface:
    """Pin the resharding package's exports and the factory surface the
    API redesign introduced — additions are fine, silent removals break
    downstream code."""

    def test_reshard_all_pinned(self):
        import repro.reshard as reshard

        assert set(reshard.__all__) >= {
            "LoadTracker",
            "MigrationPlan",
            "ReshardExecutor",
            "ReshardPlanner",
            "ReshardRetrieval",
            "ReshardSpec",
            "RowSplitAdvisory",
            "TableMove",
            "reshard_retrieval_for",
        }

    def test_core_factory_surface(self):
        from repro.core import (  # noqa: F401
            CANONICAL_FEATURE_ORDER,
            FeatureSpec,
            build_backend,
            parse_backend_name,
        )

        assert len(CANONICAL_FEATURE_ORDER) == 6

    def test_distributed_embedding_takes_features(self):
        from repro.core import DistributedEmbedding

        sig = inspect.signature(DistributedEmbedding.__init__)
        assert "features" in sig.parameters
        # The deprecated per-feature kwargs completed their one-release
        # deprecation cycle and are gone; ``features=`` is the only path.
        for legacy in ("cache", "resilience", "compression",
                       "replication", "obs"):
            assert legacy not in sig.parameters

    def test_top_level_reexports(self):
        for name in ("FeatureSpec", "build_backend", "ReshardRetrieval",
                     "ReshardSpec"):
            assert hasattr(repro, name)
            assert name in repro.__all__


class TestVersioning:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


class TestModuleLevelSelfCheck:
    def test_library_self_verification(self):
        """The shipped self-audit passes on a fresh install."""
        from repro.core import verify_backend_equivalence
        from repro.dlrm import WorkloadConfig

        report = verify_backend_equivalence(
            WorkloadConfig(num_tables=4, rows_per_table=30, dim=8,
                           batch_size=16, max_pooling=3),
            2,
            n_batches=1,
        )
        assert report.batches_checked == 1
