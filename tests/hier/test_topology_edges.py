"""Heterogeneous-topology edge cases the hierarchy leans on.

The routing layer's savings come entirely from the NIC's framing model
(``wire_bytes``, ``per_message_ns``, ``messages_sent``) and the exact
node-boundary link classification — pin those edges so a fabric-model
tweak cannot silently invalidate the BENCH_hier invariants.
"""

from __future__ import annotations

import pytest

from repro.comm.hier import inter_node_message_count, inter_node_wire_bytes
from repro.simgpu.engine import Engine
from repro.simgpu.interconnect import (
    NIC_SPEC,
    NVLINK_PAIR_SPEC,
    Interconnect,
    Link,
    LinkSpec,
    multinode_topology,
    wire_bytes,
)


class TestNodeBoundaryLinkSelection:
    """Link classification exactly at the dpn-1 / dpn seam."""

    @pytest.mark.parametrize("dpn", [1, 2, 3, 4])
    def test_boundary_pairs(self, dpn):
        topo = multinode_topology(3 * dpn, devices_per_node=dpn)
        if dpn > 1:
            # Last device of node 0 and first device of node 0: intra.
            assert topo.link_spec(dpn - 1, 0) == NVLINK_PAIR_SPEC
        # Last device of node 0 to first of node 1: the seam crossing.
        assert topo.link_spec(dpn - 1, dpn) == NIC_SPEC
        assert topo.link_spec(dpn, dpn - 1) == NIC_SPEC
        # Far corners: first device of node 0, last device of node 2.
        assert topo.link_spec(0, 3 * dpn - 1) == NIC_SPEC

    def test_dpn_one_makes_every_pair_inter_node(self):
        topo = multinode_topology(3, devices_per_node=1)
        for s in range(3):
            for d in range(3):
                if s != d:
                    assert topo.link_spec(s, d) == NIC_SPEC

    def test_single_node_has_no_nic_links(self):
        topo = multinode_topology(4, devices_per_node=4)
        for s in range(4):
            for d in range(4):
                if s != d:
                    assert topo.link_spec(s, d) == NVLINK_PAIR_SPEC

    def test_ragged_tail_devices_still_classify(self):
        # n_devices need not be a multiple of dpn at topology level
        # (HierSpec enforces divisibility, the fabric does not): device 5
        # alone forms the tail of a 2-node-plus-one layout.
        topo = multinode_topology(5, devices_per_node=2)
        assert topo.link_spec(3, 4) == NIC_SPEC
        assert topo.link_spec(4, 3) == NIC_SPEC


class TestWireBytesEdges:
    def test_exact_multiple_has_no_partial_message(self):
        # 4096 payload in 1024-byte messages: exactly 4 headers, not 5.
        assert wire_bytes(4096, 1024, 64) == 4096 + 4 * 64

    def test_one_byte_over_a_multiple_adds_a_full_header(self):
        assert wire_bytes(4097, 1024, 64) == 4097 + 5 * 64

    def test_sub_header_payload_still_pays_a_full_header(self):
        # 8 payload bytes in a 64-byte-header scheme: wire is header-bound.
        assert wire_bytes(8, 1024, 64) == 8 + 64
        assert wire_bytes(1, 1024, 64) == 65

    def test_payload_equal_to_message_size_is_one_message(self):
        assert wire_bytes(1024, 1024, 64) == 1024 + 64


class TestMessagesSent:
    def make_link(self, spec=None):
        return Link(Engine(), 0, 1,
                    spec or LinkSpec(bandwidth=1.0, latency_ns=0.0))

    def test_counts_ceil_of_payload_over_message_size(self):
        lk = self.make_link()
        lk.transfer(4097, message_bytes=1024)
        assert lk.messages_sent == 5

    def test_exact_multiple(self):
        lk = self.make_link()
        lk.transfer(4096, message_bytes=1024)
        assert lk.messages_sent == 4

    def test_single_message_when_unframed(self):
        lk = self.make_link()
        lk.transfer(4096, message_bytes=0)
        assert lk.messages_sent == 1

    def test_zero_payload_sends_nothing(self):
        lk = self.make_link()
        lk.transfer(0, message_bytes=1024)
        assert lk.messages_sent == 0

    def test_accumulates_across_transfers(self):
        lk = self.make_link()
        lk.transfer(1024, message_bytes=1024)
        lk.transfer(1025, message_bytes=1024)
        assert lk.messages_sent == 3

    def test_per_message_cost_charged_per_message(self):
        spec = LinkSpec(bandwidth=1.0, latency_ns=0.0, per_message_ns=10.0)
        framed = Link(Engine(), 0, 1, spec)
        framed.transfer(2048, message_bytes=1024)
        coalesced = Link(Engine(), 0, 1, spec)
        coalesced.transfer(2048, message_bytes=0)
        assert framed.busy_time == coalesced.busy_time + 10.0


class TestDegradedInterNodeLink:
    """Fault derates stack with the NIC framing math, not instead of it."""

    def run_transfer(self, lk, payload, **kw):
        done = {}
        lk.transfer(payload, on_complete=lambda t: done.setdefault("t", t), **kw)
        lk.engine.run()
        return done["t"]

    def test_bandwidth_derate_slows_delivery(self):
        healthy = Link(Engine(), 0, 4, NIC_SPEC)
        t_healthy = self.run_transfer(healthy, 1 << 20, message_bytes=4096,
                                      header_bytes=64)
        degraded = Link(Engine(), 0, 4, NIC_SPEC)
        degraded.degrade(bandwidth_scale=0.5)
        t_degraded = self.run_transfer(degraded, 1 << 20, message_bytes=4096,
                                       header_bytes=64)
        assert t_degraded > t_healthy
        # Message framing is unaffected by the derate.
        assert degraded.messages_sent == healthy.messages_sent

    def test_per_message_cost_survives_derate(self):
        # Per-message descriptor time is CPU/NIC-side, not wire time: the
        # bandwidth derate must not scale it.
        spec = LinkSpec(bandwidth=1.0, latency_ns=0.0, per_message_ns=100.0)
        lk = Link(Engine(), 0, 4, spec)
        lk.degrade(bandwidth_scale=0.5)
        lk.transfer(1024, message_bytes=256)  # 4 messages
        # busy = wire/(bw*scale) + 4*per_message = 1024/0.5 + 400
        assert lk.busy_time == pytest.approx(2048 + 400)

    def test_downed_link_queues_then_delivers(self):
        eng = Engine()
        lk = Link(eng, 0, 4, LinkSpec(bandwidth=1.0, latency_ns=0.0))
        lk.set_down_until(500.0)
        done = {}
        lk.transfer(100, on_complete=lambda t: done.setdefault("t", t))
        eng.run()
        assert done["t"] == 600.0  # waits out the outage, then 100ns wire

    def test_restore_returns_to_healthy_timing(self):
        a, b = Link(Engine(), 0, 4, NIC_SPEC), Link(Engine(), 0, 4, NIC_SPEC)
        b.degrade(bandwidth_scale=0.25, extra_latency_ns=1000.0)
        b.restore(bandwidth_scale=0.25, extra_latency_ns=1000.0)
        t_a = self.run_transfer(a, 1 << 16)
        t_b = self.run_transfer(b, 1 << 16)
        assert t_a == t_b


class TestInterNodeAccounting:
    """The helpers the sweep and CI smoke job measure with."""

    def make(self, n_nodes=2, dpn=2):
        eng = Engine()
        inter = Interconnect(
            eng, multinode_topology(n_nodes * dpn, devices_per_node=dpn)
        )
        return eng, inter

    def test_counts_only_cross_node_links(self):
        eng, inter = self.make()
        inter.transfer(0, 1, 1000, message_bytes=100)   # intra: 10 messages
        inter.transfer(0, 2, 1000, message_bytes=100)   # inter: 10 messages
        inter.transfer(2, 0, 500, message_bytes=0)      # inter: 1 message
        eng.run()
        assert inter_node_message_count(inter, 2) == 11
        assert inter_node_message_count(inter, 4) == 0  # all same node then

    def test_wire_bytes_include_headers(self):
        eng, inter = self.make()
        inter.transfer(1, 2, 1000, message_bytes=100, header_bytes=40)
        eng.run()
        assert inter_node_wire_bytes(inter, 2) == 1000 + 10 * 40

    def test_invalid_dpn_rejected(self):
        _, inter = self.make()
        with pytest.raises(ValueError):
            inter_node_message_count(inter, 0)
        with pytest.raises(ValueError):
            inter_node_wire_bytes(inter, -1)
