"""The hiersweep harness and its self-validating artifact contract."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.hiersweep import (
    HierSweepResult,
    run_hiersweep,
    validate_hiersweep_json,
)


@pytest.fixture(scope="module")
def sweep() -> HierSweepResult:
    return run_hiersweep(
        "tiny",
        nodes=(1, 2),
        devices_per_node=(1, 2),
        message_sizes=(64,),
        n_batches=1,
    )


@pytest.fixture(scope="module")
def payload(sweep) -> dict:
    # json round-trip: validate what a reader of the artifact would see.
    return json.loads(json.dumps(sweep.as_dict()))


class TestSweepRuns:
    def test_covers_every_multi_gpu_geometry(self, sweep):
        combos = {(p.backend, p.n_nodes, p.devices_per_node)
                  for p in sweep.points}
        # (1, 1) is skipped — a single GPU has no communication to route.
        expected = {
            (b, n, d)
            for b in ("pgas", "baseline")
            for n, d in ((1, 2), (2, 1), (2, 2))
        }
        assert combos == expected

    def test_active_points_reduce_messages(self, sweep):
        for p in sweep.points:
            if p.n_nodes > 1 and p.devices_per_node > 1:
                assert p.hier_inter_messages < p.flat_inter_messages
                assert 0.0 < p.message_reduction <= 1.0

    def test_degenerate_points_are_exact_noops(self, sweep):
        for p in sweep.points:
            if p.n_nodes == 1 or p.devices_per_node == 1:
                assert p.hier_total_ns == p.flat_total_ns
                assert p.speedup == 1.0

    def test_render_mentions_every_point(self, sweep):
        table = sweep.render()
        assert table.count("pgas") >= 3
        assert "speedup" in table and "rate-bound" in table

    def test_point_lookup(self, sweep):
        p = sweep.point("pgas", 2, 2, 64)
        assert p.backend == "pgas" and p.message_bytes == 64
        with pytest.raises(KeyError):
            sweep.point("pgas", 9, 9, 64)


class TestValidator:
    def test_fresh_sweep_validates(self, payload):
        validate_hiersweep_json(payload)

    def _active_point(self, payload):
        for i, p in enumerate(payload["points"]):
            if p["n_nodes"] > 1 and p["devices_per_node"] > 1:
                return i
        raise AssertionError("sweep has no active point")

    def _degenerate_point(self, payload):
        for i, p in enumerate(payload["points"]):
            if p["n_nodes"] == 1 or p["devices_per_node"] == 1:
                return i
        raise AssertionError("sweep has no degenerate point")

    def test_rejects_message_inflation(self, payload):
        bad = copy.deepcopy(payload)
        p = bad["points"][self._active_point(bad)]
        p["hier_inter_messages"] = p["flat_inter_messages"] + 1
        with pytest.raises(ValueError, match="increased inter-node messages"):
            validate_hiersweep_json(bad)

    def test_rejects_missing_strict_reduction(self, payload):
        bad = copy.deepcopy(payload)
        p = bad["points"][self._active_point(bad)]
        p["hier_inter_messages"] = p["flat_inter_messages"]
        with pytest.raises(ValueError, match="strict inter-node message"):
            validate_hiersweep_json(bad)

    def test_rejects_byte_inflation(self, payload):
        bad = copy.deepcopy(payload)
        p = bad["points"][self._active_point(bad)]
        p["hier_inter_bytes"] = p["flat_inter_bytes"] + 1.0
        with pytest.raises(ValueError, match="wire bytes"):
            validate_hiersweep_json(bad)

    def test_rejects_degenerate_timing_drift(self, payload):
        bad = copy.deepcopy(payload)
        p = bad["points"][self._degenerate_point(bad)]
        p["hier_total_ns"] = p["flat_total_ns"] * 1.01
        with pytest.raises(ValueError, match="degenerate geometry"):
            validate_hiersweep_json(bad)

    def test_rejects_staging_in_degenerate_geometry(self, payload):
        bad = copy.deepcopy(payload)
        p = bad["points"][self._degenerate_point(bad)]
        p["hier_nic_transfers"] = 1.0
        with pytest.raises(ValueError, match="staged traffic"):
            validate_hiersweep_json(bad)

    def test_rejects_stale_rate_bound_flag(self, payload):
        bad = copy.deepcopy(payload)
        p = bad["points"][self._active_point(bad)]
        p["message_rate_bound"] = not p["message_rate_bound"]
        with pytest.raises(ValueError, match="message_rate_bound"):
            validate_hiersweep_json(bad)

    def test_rejects_rate_bound_point_without_win(self, payload):
        bad = copy.deepcopy(payload)
        p = bad["points"][self._active_point(bad)]
        # Force the predicate true by inflating the per-message cost, then
        # erase the win.
        p["nic_per_message_ns"] = 1e12
        p["message_rate_bound"] = True
        p["hier_total_ns"] = p["flat_total_ns"]
        with pytest.raises(ValueError, match="no wall-time win"):
            validate_hiersweep_json(bad)

    def test_rejects_single_node_nic_traffic(self, payload):
        bad = copy.deepcopy(payload)
        i = next(
            i for i, p in enumerate(bad["points"]) if p["n_nodes"] == 1
        )
        bad["points"][i]["flat_inter_messages"] = 5
        bad["points"][i]["hier_inter_messages"] = 5
        with pytest.raises(ValueError, match="single node carried"):
            validate_hiersweep_json(bad)

    def test_rejects_wrong_schema_version(self, payload):
        bad = copy.deepcopy(payload)
        bad["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_hiersweep_json(bad)

    def test_rejects_unknown_backend(self, payload):
        bad = copy.deepcopy(payload)
        bad["points"][0]["backend"] = "carrier-pigeon"
        with pytest.raises(ValueError, match="unknown base backend"):
            validate_hiersweep_json(bad)


class TestArtifactFile:
    def test_write_json_is_loadable_and_valid(self, sweep, tmp_path):
        path = tmp_path / "BENCH_hier.json"
        sweep.write_json(path)
        validate_hiersweep_json(json.loads(path.read_text()))

    def test_rate_bound_point_wins(self):
        """A small-message PGAS sweep point must be flagged and must win."""
        sweep = run_hiersweep(
            "tiny", bases=("pgas",), nodes=(2,), devices_per_node=(2,),
            message_sizes=(32,), n_batches=1,
        )
        p = sweep.point("pgas", 2, 2, 32)
        assert p.message_rate_bound
        assert p.speedup > 1.0
