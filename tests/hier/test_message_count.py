"""The tentpole invariant: hierarchy never increases inter-node messages.

On any active geometry (``1 < devices_per_node < G``) the coalesced
leader→leader streams must carry *strictly fewer* NIC messages than flat
device→device routing, and the ``hier.*`` counters/spans must land in the
profiler so telemetry can attribute the forwarding work.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.hier import (
    FWD_COUNTER,
    NIC_COUNTER,
    HierSpec,
    inter_node_message_count,
    inter_node_wire_bytes,
)
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu.cluster import multinode


def cfg(**kw):
    defaults = dict(
        num_tables=8, rows_per_table=512, dim=16, batch_size=64,
        max_pooling=8, seed=3,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def run_one(backend, *, n_nodes=2, dpn=2, hier=None, workload=None):
    workload = workload or cfg()
    features = FeatureSpec(hier=hier) if hier is not None else FeatureSpec()
    emb = DistributedEmbedding(
        workload, n_nodes * dpn, backend=backend,
        cluster=multinode(n_nodes, dpn), features=features,
    )
    gen = SyntheticDataGenerator(workload)
    emb.forward_timed(gen.lengths_batch())
    return emb


class TestMessageCount:
    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_strictly_fewer_inter_node_messages(self, base):
        workload = cfg()
        flat = run_one(base, workload=workload)
        hier = run_one(
            f"{base}+hier", hier=HierSpec(devices_per_node=2),
            workload=workload,
        )
        flat_msgs = inter_node_message_count(flat.cluster.interconnect, 2)
        hier_msgs = inter_node_message_count(hier.cluster.interconnect, 2)
        assert flat_msgs > 0
        assert hier_msgs > 0
        assert hier_msgs < flat_msgs

    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_no_more_inter_node_wire_bytes(self, base):
        workload = cfg()
        flat = run_one(base, workload=workload)
        hier = run_one(
            f"{base}+hier", hier=HierSpec(devices_per_node=2),
            workload=workload,
        )
        flat_bytes = inter_node_wire_bytes(flat.cluster.interconnect, 2)
        hier_bytes = inter_node_wire_bytes(hier.cluster.interconnect, 2)
        assert 0 < hier_bytes <= flat_bytes

    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_one_nic_stream_per_ordered_node_pair(self, base):
        """With maximal coalescing, messages == flushes/pair chains, and
        every one of them crosses on the designated leader→leader link."""
        hier = run_one(f"{base}+hier", hier=HierSpec(devices_per_node=2))
        inter = hier.cluster.interconnect
        prof = hier.cluster.profiler
        nic_transfers = prof.counters["hier.nic_transfers"].total
        # nic_message_bytes=0 → each coalesced transfer is a single message.
        assert inter_node_message_count(inter, 2) == nic_transfers
        # Only the leaders (devices 0 and 2) ever touch the NIC.
        for lk in inter.links():
            if lk.src // 2 != lk.dst // 2 and lk.messages_sent:
                assert (lk.src, lk.dst) in {(0, 2), (2, 0)}

    def test_three_node_scaling(self):
        """More nodes, same invariant — and the reduction grows with dpn."""
        workload = cfg()
        flat = run_one("pgas", n_nodes=3, dpn=4, workload=workload)
        hier = run_one(
            "pgas+hier", hier=HierSpec(devices_per_node=4),
            n_nodes=3, dpn=4, workload=workload,
        )
        flat_msgs = inter_node_message_count(flat.cluster.interconnect, 4)
        hier_msgs = inter_node_message_count(hier.cluster.interconnect, 4)
        assert hier_msgs < flat_msgs


class TestCountersAndSpans:
    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_hier_counters_stamped(self, base):
        emb = run_one(f"{base}+hier", hier=HierSpec(devices_per_node=2))
        counters = emb.cluster.profiler.counters
        assert counters[NIC_COUNTER].total > 0
        assert counters[FWD_COUNTER].total > 0
        assert counters["hier.nic_transfers"].total > 0

    def test_pgas_staging_counters(self):
        emb = run_one("pgas+hier", hier=HierSpec(devices_per_node=2))
        counters = emb.cluster.profiler.counters
        assert counters["hier.stores"].total > 0
        assert counters["hier.flushes"].total > 0

    def test_pgas_staging_spans(self):
        emb = run_one("pgas+hier", hier=HierSpec(devices_per_node=2))
        spans = emb.cluster.profiler.spans_by_category("hier")
        names = {s.name for s in spans}
        assert "hier.stage.n0->n1" in names
        assert "hier.stage.n1->n0" in names
        for s in spans:
            assert s.t_end >= s.t_start
            # Spans are stamped on the source-side leader.
            assert s.device_id in (0, 2)

    def test_baseline_pair_spans(self):
        emb = run_one("baseline+hier", hier=HierSpec(devices_per_node=2))
        names = {s.name for s in emb.cluster.profiler.spans_by_category("hier")}
        assert {"hier.pair.n0->n1", "hier.pair.n1->n0"} <= names

    def test_flat_run_has_no_hier_telemetry(self):
        emb = run_one("pgas")
        prof = emb.cluster.profiler
        assert not [n for n in prof.counters if n.startswith("hier.")]
        assert not prof.spans_by_category("hier")

    @pytest.mark.parametrize("base", ["pgas", "baseline"])
    def test_byte_conservation(self, base):
        """Every forwarded byte crosses the NIC; nothing is invented."""
        emb = run_one(f"{base}+hier", hier=HierSpec(devices_per_node=2))
        counters = emb.cluster.profiler.counters
        # Gather side: leaders contribute their own traffic directly, so the
        # forwarded portion can only be a subset of what crosses the NIC.
        assert counters[FWD_COUNTER].total <= counters[NIC_COUNTER].total


def test_timing_improves_when_rate_bound():
    """A message-dominated PGAS workload must see a hier wall-time win."""
    from repro.comm.pgas import PGASSpec

    workload = cfg(num_tables=16, batch_size=256)
    pgas_spec = PGASSpec(message_bytes=32)
    flat = DistributedEmbedding(
        workload, 4, backend="pgas", cluster=multinode(2, 2),
        pgas_spec=pgas_spec,
    )
    hier = DistributedEmbedding(
        workload, 4, backend="pgas+hier", cluster=multinode(2, 2),
        features=FeatureSpec(hier=HierSpec(devices_per_node=2)),
        pgas_spec=pgas_spec,
    )
    gen_a, gen_b = (SyntheticDataGenerator(workload) for _ in range(2))
    t_flat = flat.forward_timed(gen_a.lengths_batch()).total_ns
    t_hier = hier.forward_timed(gen_b.lengths_batch()).total_ns
    assert np.isfinite(t_flat) and np.isfinite(t_hier)
    assert t_hier < t_flat
