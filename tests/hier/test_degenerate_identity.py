"""Degenerate geometries recover the flat path *event for event*.

``devices_per_node == 1`` (all-singleton nodes) and single-node layouts
carry no coalescible inter-node traffic, so the ``"+hier"`` backends must
bypass routing entirely: identical wall time, identical profiler spans,
identical counters — not merely identical outputs.
"""

from __future__ import annotations

import pytest

from repro.comm.hier import HierSpec
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu.cluster import multinode


def cfg(**kw):
    defaults = dict(
        num_tables=6, rows_per_table=256, dim=16, batch_size=64,
        max_pooling=4, seed=11,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def timed_run(backend, workload, cluster_args, hier=None, batches=2):
    features = FeatureSpec(hier=hier) if hier is not None else FeatureSpec()
    emb = DistributedEmbedding(
        workload, cluster_args[0] * cluster_args[1], backend=backend,
        cluster=multinode(*cluster_args), features=features,
    )
    gen = SyntheticDataGenerator(workload)
    total = 0.0
    for _ in range(batches):
        total += emb.forward_timed(gen.lengths_batch()).total_ns
    return total, emb.cluster.profiler


def profiler_fingerprint(prof):
    spans = [
        (s.name, s.category, s.device_id, s.t_start, s.t_end)
        for s in prof.spans
    ]
    counters = {name: c.total for name, c in prof.counters.items()}
    return spans, counters


CASES = [
    # (label, (n_nodes, devices_per_node), HierSpec dpn)
    ("singleton-nodes", (4, 1), 1),
    ("single-node", (1, 4), 4),
]


@pytest.mark.parametrize("base", ["pgas", "baseline"])
@pytest.mark.parametrize("label,geometry,dpn", CASES)
def test_degenerate_geometry_is_event_identical(base, label, geometry, dpn):
    workload = cfg()
    t_flat, prof_flat = timed_run(base, workload, geometry)
    t_hier, prof_hier = timed_run(
        f"{base}+hier", workload, geometry,
        hier=HierSpec(devices_per_node=dpn),
    )
    assert t_hier == t_flat  # exact, not approx: the same events ran
    flat_fp = profiler_fingerprint(prof_flat)
    hier_fp = profiler_fingerprint(prof_hier)
    assert hier_fp[0] == flat_fp[0]  # span-for-span identical
    assert hier_fp[1] == flat_fp[1]  # counter-for-counter identical


@pytest.mark.parametrize("base", ["pgas", "baseline"])
def test_degenerate_run_emits_no_hier_telemetry(base):
    workload = cfg()
    _, prof = timed_run(
        f"{base}+hier", workload, (1, 4), hier=HierSpec(devices_per_node=4)
    )
    assert not [n for n in prof.counters if n.startswith("hier.")]
    assert not prof.spans_by_category("hier")


@pytest.mark.parametrize("base", ["pgas", "baseline"])
def test_unconfigured_hier_backend_is_flat(base):
    """``"+hier"`` without a HierSpec defaults to dpn=1 — flat timing."""
    workload = cfg()
    t_flat, _ = timed_run(base, workload, (2, 2))
    t_hier, prof = timed_run(f"{base}+hier", workload, (2, 2))
    assert t_hier == t_flat
    assert not prof.spans_by_category("hier")
