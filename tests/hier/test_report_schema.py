"""RunReport schema v6: the ``hier`` counter section and its validation."""

from __future__ import annotations

import pytest

from repro.comm.hier import HierSpec
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu.cluster import multinode
from repro.telemetry.report import (
    SCHEMA_VERSION,
    ReportValidationError,
    RunReport,
    validate_report,
)


def hier_report():
    workload = WorkloadConfig(
        num_tables=6, rows_per_table=256, dim=16, batch_size=64,
        max_pooling=4, seed=5,
    )
    emb = DistributedEmbedding(
        workload, 4, backend="pgas+hier", cluster=multinode(2, 2),
        features=FeatureSpec(hier=HierSpec(devices_per_node=2)),
    )
    emb.forward_timed(SyntheticDataGenerator(workload).lengths_batch())
    return emb.telemetry_report(workload=workload)


def test_schema_version_is_six():
    assert SCHEMA_VERSION == 6


def test_collect_fills_hier_section():
    report = hier_report()
    assert report.schema_version == 6
    assert report.hier["hier.nic_bytes"] > 0
    assert report.hier["hier.fwd_bytes"] > 0
    assert report.hier["hier.nic_transfers"] > 0
    # Only hier.* counters land here — no cross-contamination.
    assert all(k.startswith("hier.") for k in report.hier)


def test_round_trip_preserves_hier():
    report = hier_report()
    data = report.as_dict()
    validate_report(data)
    clone = RunReport.from_json(report.to_json())
    assert clone.hier == report.hier


def test_flat_backend_reports_empty_hier_section():
    workload = WorkloadConfig(
        num_tables=4, rows_per_table=128, dim=8, batch_size=32,
        max_pooling=2,
    )
    emb = DistributedEmbedding(workload, 2, backend="pgas")
    emb.forward_timed(SyntheticDataGenerator(workload).lengths_batch())
    report = emb.telemetry_report(workload=workload)
    assert report.hier == {}
    validate_report(report.as_dict())


def test_non_numeric_hier_value_rejected():
    data = hier_report().as_dict()
    data["hier"]["hier.nic_bytes"] = "lots"
    with pytest.raises(ReportValidationError, match="must be a number"):
        validate_report(data)


def test_wrong_type_hier_section_rejected():
    data = hier_report().as_dict()
    data["hier"] = ["hier.nic_bytes"]
    with pytest.raises(ReportValidationError):
        validate_report(data)


def test_missing_hier_section_tolerated_on_load():
    """``hier`` is optional on read — pre-v6 payloads parse to empty."""
    data = hier_report().as_dict()
    del data["hier"]
    assert RunReport.from_dict(data).hier == {}
