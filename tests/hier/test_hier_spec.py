"""HierSpec geometry, validation, and the factory/auto-cluster wiring."""

from __future__ import annotations

import pytest

from repro.comm.hier import HierSpec
from repro.core.factory import CANONICAL_FEATURE_ORDER, FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.core.runspec import RunSpec, preset_runspec
from repro.dlrm.data import WorkloadConfig
from repro.simgpu.cluster import dgx_v100


def small_cfg(**kw):
    defaults = dict(
        num_tables=4, rows_per_table=256, dim=8, batch_size=32,
        max_pooling=2, seed=9,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


class TestHierSpecGeometry:
    def test_node_and_leader_mapping(self):
        spec = HierSpec(devices_per_node=4)
        assert [spec.node_of(d) for d in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]
        assert spec.leader_of(0) == 0 and spec.leader_of(1) == 4
        assert spec.same_node(1, 3) and not spec.same_node(3, 4)
        assert spec.n_nodes(8) == 2

    def test_leader_rank_offsets_the_leader(self):
        spec = HierSpec(devices_per_node=4, leader_rank=2)
        assert spec.leader_of(0) == 2 and spec.leader_of(1) == 6

    def test_validate_for_requires_divisibility(self):
        spec = HierSpec(devices_per_node=4)
        spec.validate_for(8)  # fine
        with pytest.raises(ValueError, match="divide"):
            spec.validate_for(6)

    def test_active_only_between_one_and_all(self):
        spec = HierSpec(devices_per_node=2)
        assert spec.active(4)
        assert not spec.active(2)  # single node
        assert not HierSpec(devices_per_node=1).active(4)  # flat geometry

    @pytest.mark.parametrize("kwargs", [
        dict(devices_per_node=0),
        dict(devices_per_node=2, leader_rank=2),
        dict(devices_per_node=2, leader_rank=-1),
        dict(devices_per_node=2, stage_flush_bytes=0),
        dict(devices_per_node=2, stage_max_wait_ns=0.0),
        dict(devices_per_node=2, nic_message_bytes=-1),
        dict(devices_per_node=2, nic_header_bytes=-1),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HierSpec(**kwargs)

    def test_frozen(self):
        spec = HierSpec(devices_per_node=2)
        with pytest.raises(Exception):
            spec.devices_per_node = 4  # type: ignore[misc]


class TestFactoryWiring:
    def test_hier_is_innermost_feature(self):
        assert CANONICAL_FEATURE_ORDER[0] == "hier"

    def test_auto_multinode_cluster_from_spec_geometry(self):
        emb = DistributedEmbedding(
            small_cfg(), 4, backend="pgas+hier",
            features=FeatureSpec(hier=HierSpec(devices_per_node=2)),
        )
        inter = emb.cluster.interconnect
        # devices 0,1 share a node (NVLink class), 1->2 crosses (NIC class)
        assert inter.link(0, 1).spec.bandwidth > 20.0
        assert inter.link(1, 2).spec.bandwidth < 20.0

    def test_explicit_cluster_wins_over_auto(self):
        cluster = dgx_v100(4)
        emb = DistributedEmbedding(
            small_cfg(), 4, backend="pgas+hier", cluster=cluster,
            features=FeatureSpec(hier=HierSpec(devices_per_node=2)),
        )
        assert emb.cluster is cluster

    def test_unconfigured_hier_defaults_to_flat_routing(self):
        emb = DistributedEmbedding(small_cfg(), 2, backend="pgas+hier")
        adapter = emb.backend_adapter()
        assert adapter.spec.devices_per_node == 1
        assert not adapter.active

    def test_wrong_hier_config_type_rejected(self):
        with pytest.raises(TypeError, match="HierSpec"):
            DistributedEmbedding(
                small_cfg(), 4, backend="pgas+hier",
                features=FeatureSpec(hier={"devices_per_node": 2}),
            )

    def test_mismatched_geometry_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            DistributedEmbedding(
                small_cfg(), 3, backend="pgas+hier",
                features=FeatureSpec(hier=HierSpec(devices_per_node=2)),
            )

    def test_backend_info_flags_hierarchical(self):
        from repro.core.retrieval import available_backends

        flags = {str(b): b.hierarchical for b in available_backends()}
        assert flags["pgas+hier"] and flags["baseline+hier"]
        assert not flags["pgas"] and not flags["baseline"]


class TestRunSpecSection:
    def test_round_trip_bit_exact(self):
        spec = preset_runspec(
            "tiny", 4, backend="pgas+hier",
            hier=HierSpec(devices_per_node=2, stage_flush_bytes=4096),
        )
        clone = RunSpec.from_json(spec.to_json())
        assert clone == spec
        assert isinstance(clone.hier, HierSpec)
        assert clone.hier.stage_flush_bytes == 4096

    def test_none_hier_round_trips(self):
        spec = preset_runspec("tiny", 2)
        assert RunSpec.from_json(spec.to_json()).hier is None

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="HierSpec"):
            preset_runspec("tiny", 4, hier={"devices_per_node": 2})
