"""Functional bit-identity: hierarchical routing never touches payloads.

The ``"+hier"`` backends reroute wire traffic through node leaders and
staging buffers, but the numpy functional path is exactly the base
backend's — for every base, ``X`` and ``X+hier`` must produce
byte-for-byte identical outputs on a real multi-node geometry, batch
after batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.hier import HierSpec
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu.cluster import multinode


def cfg(**kw):
    defaults = dict(
        num_tables=8, rows_per_table=512, dim=16, batch_size=64,
        max_pooling=8, seed=7,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def build(backend, *, hier=None, n_nodes=2, dpn=2, workload=None):
    workload = workload or cfg()
    features = FeatureSpec(hier=hier) if hier is not None else FeatureSpec()
    return DistributedEmbedding(
        workload, n_nodes * dpn, backend=backend,
        cluster=multinode(n_nodes, dpn), materialize=True,
        features=features, rng=np.random.default_rng(0),
    )


@pytest.mark.parametrize("base", ["pgas", "baseline"])
def test_outputs_bit_identical_to_flat(base):
    workload = cfg()
    flat = build(base, workload=workload)
    hier = build(
        f"{base}+hier", hier=HierSpec(devices_per_node=2), workload=workload
    )
    gen = SyntheticDataGenerator(workload)
    for _ in range(2):  # second batch exercises warm staging state
        batch = gen.sparse_batch()
        out_flat = flat.forward(batch).outputs
        out_hier = hier.forward(batch).outputs
        assert len(out_flat) == len(out_hier)
        for a, b in zip(out_flat, out_hier):
            assert np.array_equal(a, b)


@pytest.mark.parametrize("base", ["pgas", "baseline"])
def test_zipf_skewed_traffic_stays_identical(base):
    workload = cfg(index_distribution="zipf", zipf_alpha=1.1, batch_size=128)
    flat = build(base, workload=workload)
    hier = build(
        f"{base}+hier", hier=HierSpec(devices_per_node=2), workload=workload
    )
    batch = SyntheticDataGenerator(workload).sparse_batch()
    for a, b in zip(flat.forward(batch).outputs, hier.forward(batch).outputs):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("base", ["pgas", "baseline"])
def test_three_nodes_of_two(base):
    workload = cfg()
    flat = build(base, n_nodes=3, workload=workload)
    hier = build(
        f"{base}+hier", hier=HierSpec(devices_per_node=2), n_nodes=3,
        workload=workload,
    )
    batch = SyntheticDataGenerator(workload).sparse_batch()
    for a, b in zip(flat.forward(batch).outputs, hier.forward(batch).outputs):
        assert np.array_equal(a, b)


def test_hier_matches_numpy_reference():
    """Not just flat-vs-hier: the hier output equals the dense oracle."""
    from repro.core.functional import reference_forward
    from repro.dlrm import EmbeddingBagCollection

    workload = cfg()
    hier = build("pgas+hier", hier=HierSpec(devices_per_node=2),
                 workload=workload)
    batch = SyntheticDataGenerator(workload).sparse_batch()
    got = np.concatenate(hier.forward(batch).outputs, axis=0)
    ebc = EmbeddingBagCollection.from_configs(
        workload.table_configs(), rng=np.random.default_rng(0)
    )
    assert np.array_equal(got, reference_forward(ebc, batch))
