"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


SMALL = ["--tables", "8", "--rows", "2000", "--dim", "16",
         "--batch", "512", "--pooling", "8"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.tables == 64 and args.gpus == 2


class TestRun:
    def test_prints_both_backends(self, capsys):
        code, out = run_cli(capsys, "run", *SMALL, "--gpus", "2")
        assert code == 0
        assert "baseline" in out and "pgas" in out
        assert "PGAS speedup" in out

    def test_multi_batch(self, capsys):
        code, out = run_cli(capsys, "run", *SMALL, "--batches", "2")
        assert code == 0
        assert "2 batches" in out


class TestSweep:
    def test_pooling_sweep(self, capsys):
        code, out = run_cli(capsys, "sweep", *SMALL, "max_pooling", "4", "8")
        assert code == 0
        assert "sweep: max_pooling" in out
        assert out.count("x") >= 2  # speedup column

    def test_invalid_knob(self):
        with pytest.raises(SystemExit):
            main(["sweep", "learning_rate", "1"])


class TestPlan:
    def test_criteo_plan(self, capsys):
        code, out = run_cli(capsys, "plan", "--criteo-tables", "10")
        assert code == 0
        assert "placement" in out
        assert "imbalance" in out

    def test_forced_device_count(self, capsys):
        code, out = run_cli(capsys, "plan", "--criteo-tables", "10", "--gpus", "4")
        assert code == 0
        assert "4 x" in out


class TestTrace:
    def test_writes_valid_json(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        code, out = run_cli(capsys, "trace", *SMALL, "--output", str(out_path))
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["traceEvents"]
        assert "chrome://tracing" in out

    def test_baseline_backend(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        code, out = run_cli(
            capsys, "trace", *SMALL, "--backend", "baseline", "--output", str(out_path)
        )
        assert code == 0
        assert "baseline" in out

    def test_no_counters_drops_counter_tracks(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        code, _ = run_cli(
            capsys, "trace", *SMALL, "--no-counters", "--output", str(out_path)
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert not [e for e in data["traceEvents"] if e.get("ph") == "C"]

    def test_telemetry_adds_gauge_tracks(self, capsys, tmp_path):
        out_path = tmp_path / "t.json"
        code, _ = run_cli(
            capsys, "trace", *SMALL, "--telemetry", "--output", str(out_path)
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert any(
            e.get("name", "").startswith("telemetry.") for e in data["traceEvents"]
        )


class TestMetrics:
    def test_tiny_preset_writes_valid_artifact(self, capsys, tmp_path):
        from repro.bench.telemetry import validate_metrics_json

        out_path = tmp_path / "BENCH_metrics.json"
        code, out = run_cli(
            capsys, "metrics", "--preset", "tiny", "--no-series",
            "--output", str(out_path),
        )
        assert code == 0
        assert "overlap fraction" in out
        assert "pgas" in out and "baseline" in out
        assert "schema-valid" in out
        validate_metrics_json(json.loads(out_path.read_text()))

    def test_skip_output(self, capsys):
        code, out = run_cli(
            capsys, "metrics", "--preset", "tiny", "--no-series", "--output", ""
        )
        assert code == 0
        assert "wrote" not in out


class TestBackends:
    def test_lists_registry_with_flags(self, capsys):
        code, out = run_cli(capsys, "backends")
        assert code == 0
        for name in ("pgas", "baseline", "pgas+cache", "pgas+compress",
                     "baseline+compress"):
            assert name in out
        assert "compress" in out and "indices" in out
        assert "quantized" in out  # descriptions are printed

    def test_traceable_capability_flag(self, capsys):
        code, out = run_cli(capsys, "backends")
        assert code == 0
        assert "traceable" in out


class TestCritpath:
    def test_tiny_preset_writes_valid_artifact(self, capsys, tmp_path):
        from repro.bench.critpath import validate_critpath_json

        out_path = tmp_path / "BENCH_critpath.json"
        code, out = run_cli(
            capsys, "critpath", "--preset", "tiny", "--scale", "0.25",
            "--seed", "3", "--output", str(out_path),
        )
        assert code == 0
        assert "pgas" in out and "baseline" in out
        assert "schema-valid" in out
        validate_critpath_json(json.loads(out_path.read_text()))

    def test_gate_passes_against_own_artifact(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_critpath.json"
        args = ("critpath", "--preset", "tiny", "--scale", "0.25",
                "--seed", "3", "--output", str(out_path))
        code, _ = run_cli(capsys, *args)
        assert code == 0
        code, out = run_cli(capsys, *args, "--gate", str(out_path))
        assert code == 0
        assert "regression gate: PASS" in out

    def test_gate_breach_fails_with_explanation(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_critpath.json"
        code, _ = run_cli(
            capsys, "critpath", "--preset", "tiny", "--scale", "0.25",
            "--seed", "3", "--output", str(out_path),
        )
        assert code == 0
        # Shrink the committed baseline so the fresh run must breach it.
        baseline = json.loads(out_path.read_text())
        for p in baseline["points"]:
            p["wall_ns"] *= 0.5
            p["by_category"] = {k: v * 0.5 for k, v in p["by_category"].items()}
        gate_path = tmp_path / "baseline.json"
        gate_path.write_text(json.dumps(baseline))
        code, out = run_cli(
            capsys, "critpath", "--preset", "tiny", "--scale", "0.25",
            "--seed", "3", "--output", "", "--gate", str(gate_path),
            "--gate-abs-ns", "0",
        )
        assert code == 1
        assert "regression gate: FAIL" in out
        assert "BREACH" in out

    def test_skip_output(self, capsys):
        code, out = run_cli(
            capsys, "critpath", "--preset", "tiny", "--scale", "0.25",
            "--output", "",
        )
        assert code == 0
        assert "wrote" not in out


class TestCompsweep:
    def test_tiny_sweep_writes_valid_artifact(self, capsys, tmp_path):
        from repro.bench.compsweep import validate_compsweep_json

        out_path = tmp_path / "BENCH_compression.json"
        code, out = run_cli(
            capsys, "compsweep", "--preset", "tiny", "--batches", "1",
            "--codecs", "fp32", "int8", "--output", str(out_path),
        )
        assert code == 0
        assert "compression sweep" in out
        assert "schema-valid" in out
        data = json.loads(out_path.read_text())
        validate_compsweep_json(data)
        by_key = {(p["codec"], p["backend"]): p for p in data["points"]}
        assert by_key[("int8", "baseline")]["wire_bytes"] < \
            by_key[("fp32", "baseline")]["wire_bytes"]

    def test_skip_output(self, capsys):
        code, out = run_cli(
            capsys, "compsweep", "--preset", "tiny", "--batches", "1",
            "--codecs", "fp32", "--backends", "pgas", "--output", "",
        )
        assert code == 0
        assert "wrote" not in out

    def test_unknown_codec_rejected(self):
        with pytest.raises(SystemExit):
            main(["compsweep", "--codecs", "zstd"])


class TestReproduce:
    def test_single_artifact_small(self, capsys):
        code, out = run_cli(
            capsys, "reproduce", "--batches", "1", "--scale", "0.02", "--only", "T1"
        )
        assert code == 0
        assert "PGAS over baseline" in out

    def test_invalid_id(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "--only", "F99"])


class TestReport:
    def test_writes_markdown(self, capsys, tmp_path):
        out_path = tmp_path / "R.md"
        code, out = run_cli(
            capsys, "report", "--batches", "1", "--scale", "0.02",
            "--output", str(out_path),
        )
        assert code == 0
        text = out_path.read_text()
        assert "paper vs. measured" in text
        assert "Weak scaling" in text and "Strong scaling" in text
        assert "wrote" in out
