"""ReshardRetrieval end-to-end: healthy-path bit-identity, skewed-run
migration with imbalance reduction, memory accounting at cutover, and
functional outputs that never notice a move."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.retrieval import DistributedEmbedding
from repro.core.factory import FeatureSpec
from repro.core.sharding import ShardingError
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.reshard import (
    MIGRATION_BYTES_COUNTER,
    MIGRATIONS_COUNTER,
    ReshardSpec,
)


def small_cfg(**kw):
    defaults = dict(
        num_tables=8, rows_per_table=1024, dim=16, batch_size=128,
        max_pooling=4, seed=11,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def build(cfg, n_devices=4, base="pgas", spec=None, **kw):
    return DistributedEmbedding(
        cfg, n_devices, backend=f"{base}+reshard",
        features=FeatureSpec(reshard=spec or ReshardSpec()), **kw,
    )


#: quick-trigger policy for short tests
EAGER = ReshardSpec(
    window_batches=4, min_batches=2, check_interval_batches=2,
    imbalance_threshold=1.1,
)


@pytest.mark.parametrize("base", ["pgas", "baseline"])
class TestHealthyPathBitIdentity:
    def test_uniform_traffic_is_event_identical_to_bare_base(self, base):
        """No skew → no plan → the wrapper must be a pure passthrough:
        identical timings, identical span stream, zero reshard counters."""
        cfg = small_cfg()
        wrapped = build(cfg, base=base, spec=EAGER)
        bare = DistributedEmbedding(cfg, 4, backend=base)
        gen_a, gen_b = SyntheticDataGenerator(cfg), SyntheticDataGenerator(cfg)
        for _ in range(6):
            ta = wrapped.forward_timed(gen_a.lengths_batch())
            tb = bare.forward_timed(gen_b.lengths_batch())
            assert ta.total_ns == tb.total_ns
            assert ta.compute_ns == tb.compute_ns
            assert ta.comm_ns == tb.comm_ns
        spans_w = [(s.name, s.t_start, s.t_end)
                   for s in wrapped.cluster.profiler.spans]
        spans_b = [(s.name, s.t_start, s.t_end)
                   for s in bare.cluster.profiler.spans]
        assert spans_w == spans_b
        assert not any(
            k.startswith("reshard.") for k in wrapped.cluster.profiler.counters
        )
        adapter = wrapped.backend_adapter()
        assert adapter.moved_tables() == {}
        assert adapter.totals()["migrations_completed"] == 0.0


class TestSkewedMigration:
    def test_skew_triggers_migrations_and_reduces_imbalance(self):
        cfg = small_cfg(table_skew_alpha=1.2)
        emb = build(cfg, spec=EAGER)
        adapter = emb.backend_adapter()
        gen = SyntheticDataGenerator(cfg)
        before = None
        for i in range(8):
            emb.forward_timed(gen.lengths_batch())
            if i == 1:
                before = adapter.imbalance()
        adapter.wait_for_migrations()
        assert adapter.moved_tables(), "skewed run never migrated a table"
        assert adapter.imbalance() < before
        counters = emb.cluster.profiler.counters
        migrations = counters[MIGRATIONS_COUNTER].total
        assert migrations >= 1
        assert counters[MIGRATION_BYTES_COUNTER].total > 0
        spans = [s for s in emb.cluster.profiler.spans if s.category == "reshard"]
        assert len(spans) == int(migrations)
        totals = adapter.totals()
        assert totals["migrations_completed"] == migrations
        assert totals["plans_adopted"] >= 1

    def test_cutover_returns_old_owner_memory(self):
        """Reserve-then-cutover accounting: while streaming, both copies
        are held; after cutover the old owner's bytes come back."""
        cfg = small_cfg(table_skew_alpha=1.2)
        emb = build(cfg, spec=EAGER)
        adapter = emb.backend_adapter()
        plan = emb.plan
        free0 = {
            d: emb.cluster.device(d).memory.free_bytes
            for d in range(plan.n_devices)
        }
        gen = SyntheticDataGenerator(cfg)
        for _ in range(8):
            emb.forward_timed(gen.lengths_batch())
        adapter.wait_for_migrations()
        moved = adapter.moved_tables()
        assert moved
        nbytes = {c.name: c.nbytes for c in plan.table_configs}
        expected_delta = {d: 0 for d in range(plan.n_devices)}
        for name, dst in moved.items():
            expected_delta[plan.owner_of(name)] += nbytes[name]  # freed
            expected_delta[dst] -= nbytes[name]  # now resident
        for d in range(plan.n_devices):
            assert emb.cluster.device(d).memory.free_bytes == (
                free0[d] + expected_delta[d]
            )

    def test_functional_outputs_bit_identical_after_moves(self):
        cfg = small_cfg(table_skew_alpha=1.2)
        emb = build(cfg, spec=EAGER, materialize=True,
                    rng=np.random.default_rng(0))
        ref = DistributedEmbedding(cfg, 4, backend="pgas", materialize=True,
                                   rng=np.random.default_rng(0))
        gen = SyntheticDataGenerator(cfg)
        for _ in range(8):
            emb.forward_timed(gen.lengths_batch())
        emb.backend_adapter().wait_for_migrations()
        assert emb.backend_adapter().moved_tables()
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        out = emb.forward(batch).outputs
        out_ref = ref.forward(batch).outputs
        for a, b in zip(out, out_ref):
            assert np.array_equal(a, b)

    def test_migration_paced_stream_is_visible_on_the_clock(self):
        """Migration streams run on the engine clock at a bandwidth share:
        the recorded busy time must cover at least the unpaced wire time
        of the streamed bytes."""
        cfg = small_cfg(table_skew_alpha=1.2)
        emb = build(cfg, spec=EAGER)
        adapter = emb.backend_adapter()
        gen = SyntheticDataGenerator(cfg)
        for _ in range(8):
            emb.forward_timed(gen.lengths_batch())
        adapter.wait_for_migrations()
        counters = emb.cluster.profiler.counters
        assert counters["reshard.migration_ns"].total > 0


class TestForceCutover:
    def test_force_cutover_validates_inputs(self):
        cfg = small_cfg()
        emb = build(cfg)
        adapter = emb.backend_adapter()
        with pytest.raises(ShardingError):
            adapter.force_cutover("nope", 0)
        with pytest.raises(ShardingError):
            adapter.force_cutover("sparse_0", 99)

    def test_force_cutover_changes_serving_owner(self):
        cfg = small_cfg()
        emb = build(cfg, materialize=True, rng=np.random.default_rng(2))
        adapter = emb.backend_adapter()
        old = adapter.owners["sparse_0"]
        dst = (old + 1) % 4
        adapter.force_cutover("sparse_0", dst)
        assert adapter.moved_tables() == {"sparse_0": dst}
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        ref = DistributedEmbedding(cfg, 4, backend="pgas", materialize=True,
                                   rng=np.random.default_rng(2))
        for a, b in zip(adapter.functional_forward(batch),
                        ref.forward(batch).outputs):
            assert np.array_equal(a, b)


class TestShardingErrors:
    def test_shard_on_raises_typed_error(self):
        from repro.core.sharding import RowWiseSharding

        cfg = small_cfg()
        plan = RowWiseSharding(cfg.table_configs(), 4)
        with pytest.raises(ShardingError):
            plan.shard_on("not_a_table", 0)
        with pytest.raises(ShardingError):
            plan.shard_on("sparse_0", 99)
        assert issubclass(ShardingError, ValueError)


class TestRunReportSection:
    def test_reshard_counters_reach_the_run_report(self):
        from repro.telemetry.report import collect_run_report

        cfg = small_cfg(table_skew_alpha=1.2)
        spec = dataclasses.replace(EAGER)
        emb = build(cfg, spec=spec)
        adapter = emb.backend_adapter()
        gen = SyntheticDataGenerator(cfg)
        for _ in range(8):
            emb.forward_timed(gen.lengths_batch())
        adapter.wait_for_migrations()
        report = collect_run_report(
            emb.cluster.profiler, backend="pgas+reshard", n_devices=4,
        )
        assert report.reshard["reshard.migrations"] >= 1
        assert report.reshard["reshard.migration_bytes"] > 0
        payload = report.as_dict()
        assert "reshard" in payload
