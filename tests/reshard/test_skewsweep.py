"""Skew sweep: measured invariants and artifact self-validation."""

from __future__ import annotations

import json

import pytest

from repro.bench.skewsweep import (
    SkewSweepResult,
    run_skew_sweep,
    validate_skewsweep_json,
)


@pytest.fixture(scope="module")
def sweep() -> SkewSweepResult:
    return run_skew_sweep(
        "tiny", n_devices=4, backends=("pgas", "pgas+reshard"),
        skews=(0.0, 1.05), n_batches=10,
    )


class TestSweep:
    def test_grid_complete(self, sweep):
        assert len(sweep.points) == 4
        for backend in ("pgas", "pgas+reshard"):
            for skew in (0.0, 1.05):
                sweep.point(backend, skew)

    def test_static_points_never_migrate(self, sweep):
        for skew in (0.0, 1.05):
            p = sweep.point("pgas", skew)
            assert p.migrations == 0
            assert p.migration_bytes == 0
            assert p.imbalance_after == p.imbalance_before

    def test_zero_skew_reshard_is_inert(self, sweep):
        """Uniform traffic must not trigger the balancer: same timings as
        the static twin, no migration traffic at all."""
        static = sweep.point("pgas", 0.0)
        dynamic = sweep.point("pgas+reshard", 0.0)
        assert dynamic.migrations == 0
        assert dynamic.plans == 0
        assert dynamic.total_ns == static.total_ns
        assert dynamic.p99_batch_ns == static.p99_batch_ns

    def test_skew_reduces_imbalance_and_wall_time(self, sweep):
        static = sweep.point("pgas", 1.05)
        dynamic = sweep.point("pgas+reshard", 1.05)
        assert static.imbalance_before > 1.1  # the skew actually skews
        assert dynamic.migrations >= 1
        assert dynamic.imbalance_after < dynamic.imbalance_before
        assert dynamic.imbalance_reduction >= 0.30
        assert dynamic.total_ns < static.total_ns

    def test_identical_traffic_across_twins(self, sweep):
        for skew in (0.0, 1.05):
            static = sweep.point("pgas", skew)
            dynamic = sweep.point("pgas+reshard", skew)
            assert static.imbalance_before == pytest.approx(
                dynamic.imbalance_before
            )
            assert static.max_device_bytes_before == pytest.approx(
                dynamic.max_device_bytes_before
            )

    def test_render_and_artifact_schema_valid(self, sweep, tmp_path):
        text = sweep.render()
        assert "imb before" in text and "pgas+reshard" in text
        path = str(tmp_path / "BENCH_reshard.json")
        sweep.write_json(path)
        with open(path) as fh:
            validate_skewsweep_json(json.load(fh))


class TestValidator:
    def payload(self, sweep):
        return json.loads(json.dumps(sweep.as_dict()))

    def test_rejects_missing_point_key(self, sweep):
        data = self.payload(sweep)
        del data["points"][0]["imbalance_after"]
        with pytest.raises(ValueError, match="missing key"):
            validate_skewsweep_json(data)

    def test_rejects_wrong_schema_version(self, sweep):
        data = self.payload(sweep)
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_skewsweep_json(data)

    def test_rejects_static_backend_with_migrations(self, sweep):
        data = self.payload(sweep)
        for p in data["points"]:
            if "+reshard" not in p["backend"]:
                p["migrations"] = 3.0
                break
        with pytest.raises(ValueError, match="static backend"):
            validate_skewsweep_json(data)

    def test_rejects_worsened_imbalance(self, sweep):
        data = self.payload(sweep)
        for p in data["points"]:
            if "+reshard" in p["backend"]:
                p["imbalance_after"] = p["imbalance_before"] + 1.0
                break
        with pytest.raises(ValueError, match="worsened"):
            validate_skewsweep_json(data)

    def test_rejects_migrations_without_bytes(self, sweep):
        data = self.payload(sweep)
        for p in data["points"]:
            if "+reshard" in p["backend"] and p["migrations"] > 0:
                p["migration_bytes"] = 0.0
                break
        else:
            pytest.skip("no migrating point in the sweep")
        with pytest.raises(ValueError, match="disagree"):
            validate_skewsweep_json(data)

    def test_rejects_mismatched_twin_traffic(self, sweep):
        data = self.payload(sweep)
        for p in data["points"]:
            if "+reshard" in p["backend"]:
                p["imbalance_before"] += 0.5
                p["imbalance_after"] = p["imbalance_before"]
                break
        with pytest.raises(ValueError, match="different"):
            validate_skewsweep_json(data)

    def test_rejects_sub_one_imbalance(self, sweep):
        data = self.payload(sweep)
        data["points"][0]["imbalance_before"] = 0.5
        with pytest.raises(ValueError, match="max/mean"):
            validate_skewsweep_json(data)


class TestArguments:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            run_skew_sweep("tiny", backends=("pgas+bogus",), skews=(0.0,))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            run_skew_sweep("tiny", backends=(), skews=(0.0,))
        with pytest.raises(ValueError):
            run_skew_sweep("tiny", skews=())
        with pytest.raises(ValueError):
            run_skew_sweep("tiny", n_batches=0)
