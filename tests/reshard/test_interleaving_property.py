"""Property: any interleaving of batches and ownership changes yields
outputs bit-identical to the static-plan reference.

The cutover protocol's whole claim is that serving correctness is
independent of *when* tables move.  Hypothesis drives an arbitrary
schedule of (run a batch | flip a table's owner) actions through
``force_cutover`` — the test hook that models a cutover landing at an
arbitrary point between batches — and every batch's functional outputs
must equal the untouched static reference's, bitwise.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.reshard import LoadTracker, ReshardPlanner, ReshardSpec

N_DEVICES = 3
CFG = WorkloadConfig(
    num_tables=6, rows_per_table=64, dim=8, batch_size=16,
    max_pooling=3, seed=21,
)
TABLE_NAMES = [c.name for c in CFG.table_configs()]

#: an action is either "serve one batch" (None) or "cut a table over"
ACTIONS = st.lists(
    st.one_of(
        st.none(),
        st.tuples(
            st.sampled_from(TABLE_NAMES),
            st.integers(min_value=0, max_value=N_DEVICES - 1),
        ),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=25, deadline=None)
@given(actions=ACTIONS, seed=st.integers(min_value=0, max_value=2**16))
def test_any_interleaving_is_bit_identical_to_static_reference(actions, seed):
    emb = DistributedEmbedding(
        CFG, N_DEVICES, backend="pgas+reshard",
        features=FeatureSpec(reshard=ReshardSpec(imbalance_threshold=100.0)),
        materialize=True, rng=np.random.default_rng(7),
    )
    ref = DistributedEmbedding(
        CFG, N_DEVICES, backend="pgas",
        materialize=True, rng=np.random.default_rng(7),
    )
    adapter = emb.backend_adapter()
    gen = SyntheticDataGenerator(
        WorkloadConfig(**{**CFG.__dict__, "seed": int(seed)})
    )
    for action in actions:
        if action is None:
            batch = gen.sparse_batch()
            out = adapter.functional_forward(batch)
            out_ref = ref.forward(batch).outputs
            assert len(out) == len(out_ref)
            for a, b in zip(out, out_ref):
                assert np.array_equal(a, b)
        else:
            table, dst = action
            adapter.force_cutover(table, dst)


@settings(max_examples=25, deadline=None)
@given(
    traffic_level=st.floats(min_value=1.0, max_value=1e12),
    n_tables=st.integers(min_value=1, max_value=24),
    n_devices=st.integers(min_value=1, max_value=8),
    threshold=st.floats(min_value=1.0, max_value=4.0),
)
def test_uniform_traffic_never_plans(traffic_level, n_tables, n_devices, threshold):
    """Zero-skew guarantee, property form: perfectly uniform per-*device*
    traffic keeps max/mean at 1.0, which is ≤ every legal threshold, so
    the planner must return an empty plan with no advisories."""
    from repro.core.sharding import TableWiseSharding

    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=32, dim=4,
        batch_size=8, max_pooling=2, seed=1,
    )
    plan = TableWiseSharding(cfg.table_configs(), n_devices)
    owners = {c.name: plan.owner_of(c.name) for c in plan.table_configs}
    # Equal traffic per device: split the level evenly among its tables.
    per_device = {}
    for name, dev in owners.items():
        per_device.setdefault(dev, []).append(name)
    traffic = {}
    for dev, names in per_device.items():
        for name in names:
            traffic[name] = traffic_level / len(names)
    # Devices with no tables make max/mean > 1 legitimately; restrict to
    # the covered case, which is what "uniform" means here.
    if len(per_device) != n_devices:
        return
    planner = ReshardPlanner(plan, ReshardSpec(imbalance_threshold=threshold))
    verdict = planner.propose(
        traffic, owners, [float(1 << 40)] * n_devices
    )
    assert verdict.empty
    assert not verdict.advisories
    assert verdict.imbalance_before <= 1.0 + 1e-9


@settings(max_examples=40, deadline=None)
@given(
    bytes_seq=st.lists(
        st.dictionaries(
            st.sampled_from(TABLE_NAMES),
            st.floats(min_value=0.0, max_value=1e9),
            min_size=1,
        ),
        min_size=1,
        max_size=10,
    ),
    window=st.integers(min_value=1, max_value=5),
)
def test_tracker_window_matches_naive_sum(bytes_seq, window):
    """The incremental eviction bookkeeping must agree with a from-scratch
    sum over the last ``window`` observations."""
    tracker = LoadTracker(window)
    for entry in bytes_seq:
        tracker.observe(entry)
    expected = {}
    for entry in bytes_seq[-window:]:
        for name, b in entry.items():
            expected[name] = expected.get(name, 0.0) + b
    got = tracker.table_traffic()
    for name in set(expected) | set(got):
        assert got.get(name, 0.0) == np.float64(expected.get(name, 0.0)) or (
            abs(got.get(name, 0.0) - expected.get(name, 0.0))
            <= 1e-6 * max(1.0, expected.get(name, 0.0))
        )
