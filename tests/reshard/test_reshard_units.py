"""ReshardSpec validation, LoadTracker window semantics, and the
planner's balance/capacity/advisory logic — no simulated time involved."""

from __future__ import annotations

import pytest

from repro.core.planner import plan_table_wise
from repro.core.sharding import TableWiseSharding
from repro.dlrm.data import WorkloadConfig
from repro.reshard import (
    LoadTracker,
    MigrationPlan,
    ReshardPlanner,
    ReshardSpec,
)


def tables_plan(num_tables=8, n_devices=4, rows=1024, dim=16):
    cfg = WorkloadConfig(
        num_tables=num_tables, rows_per_table=rows, dim=dim,
        batch_size=64, max_pooling=4, seed=3,
    )
    return TableWiseSharding(cfg.table_configs(), n_devices)


class TestReshardSpec:
    def test_defaults_valid(self):
        spec = ReshardSpec()
        assert spec.window_batches >= spec.min_batches
        assert spec.imbalance_threshold >= 1.0

    @pytest.mark.parametrize("kw", [
        {"window_batches": 0},
        {"min_batches": 0},
        {"min_batches": 9, "window_batches": 8},
        {"check_interval_batches": 0},
        {"imbalance_threshold": 0.99},
        {"max_moves_per_plan": 0},
        {"migration_bandwidth_share": 0.0},
        {"migration_bandwidth_share": 1.5},
        {"migration_chunk_bytes": 0},
    ])
    def test_rejects_bad_knobs(self, kw):
        with pytest.raises(ValueError):
            ReshardSpec(**kw)

    def test_frozen(self):
        with pytest.raises(Exception):
            ReshardSpec().window_batches = 3  # type: ignore[misc]


class TestLoadTracker:
    def test_window_eviction(self):
        tr = LoadTracker(2)
        tr.observe({"a": 100.0})
        tr.observe({"a": 10.0})
        tr.observe({"a": 1.0})  # evicts the 100-byte batch
        assert tr.window_fill == 2
        assert tr.batches_observed == 3
        assert tr.table_traffic() == {"a": 11.0}

    def test_hit_rates_shrink_tracked_traffic(self):
        tr = LoadTracker(4)
        tr.observe({"a": 100.0, "b": 100.0}, hit_rates={"a": 0.75})
        traffic = tr.table_traffic()
        assert traffic["a"] == pytest.approx(25.0)
        assert traffic["b"] == pytest.approx(100.0)

    def test_rejects_bad_inputs(self):
        tr = LoadTracker(2)
        with pytest.raises(ValueError):
            tr.observe({"a": -1.0})
        with pytest.raises(ValueError):
            tr.observe({"a": 1.0}, hit_rates={"a": 1.5})
        with pytest.raises(ValueError):
            LoadTracker(0)

    def test_imbalance_and_reset(self):
        tr = LoadTracker(4)
        tr.observe({"a": 300.0, "b": 100.0})
        owners = {"a": 0, "b": 1}
        assert tr.device_traffic(owners, 2) == [300.0, 100.0]
        assert tr.imbalance(owners, 2) == pytest.approx(1.5)
        tr.reset()
        assert tr.window_fill == 0
        assert tr.imbalance(owners, 2) == 1.0


class TestReshardPlanner:
    def _free(self, plan, nbytes=1 << 40):
        return [float(nbytes)] * plan.n_devices

    def _owners(self, plan):
        return {cfg.name: plan.owner_of(cfg.name) for cfg in plan.table_configs}

    def test_uniform_traffic_provably_emits_nothing(self):
        """The zero-skew proof: max/mean == 1.0 is at or below any legal
        threshold, so a balanced window can never produce a plan."""
        plan = tables_plan()
        planner = ReshardPlanner(plan, ReshardSpec(imbalance_threshold=1.0))
        traffic = {cfg.name: 1000.0 for cfg in plan.table_configs}
        verdict = planner.propose(traffic, self._owners(plan), self._free(plan))
        assert verdict.empty
        assert not verdict.advisories
        assert verdict.imbalance_before == pytest.approx(1.0)
        assert verdict.imbalance_after == verdict.imbalance_before

    def test_skewed_traffic_plans_improving_moves(self):
        plan = tables_plan()
        planner = ReshardPlanner(plan, ReshardSpec(imbalance_threshold=1.1))
        owners = self._owners(plan)
        traffic = {name: 100.0 for name in owners}
        hot_dev = 0
        for name, dev in owners.items():
            if dev == hot_dev:
                traffic[name] = 5000.0
        verdict = planner.propose(traffic, owners, self._free(plan))
        assert not verdict.empty
        assert verdict.imbalance_after < verdict.imbalance_before
        # The first (largest-gap) move drains the hot device.
        assert verdict.moves[0].src == hot_dev
        for move in verdict.moves:
            assert move.src != move.dst
            assert move.nbytes > 0

    def test_capacity_blocks_moves(self):
        plan = tables_plan()
        planner = ReshardPlanner(plan, ReshardSpec(imbalance_threshold=1.1))
        owners = self._owners(plan)
        traffic = {name: (5000.0 if dev == 0 else 100.0)
                   for name, dev in owners.items()}
        verdict = planner.propose(traffic, owners, [0.0] * plan.n_devices)
        assert verdict.empty  # nowhere has room for a single table

    def test_frozen_tables_do_not_move(self):
        plan = tables_plan()
        planner = ReshardPlanner(plan, ReshardSpec(imbalance_threshold=1.1))
        owners = self._owners(plan)
        traffic = {name: (5000.0 if dev == 0 else 100.0)
                   for name, dev in owners.items()}
        frozen = tuple(n for n, d in owners.items() if d == 0)
        verdict = planner.propose(traffic, owners, self._free(plan), frozen=frozen)
        assert all(m.table_name not in frozen for m in verdict.moves)

    def test_single_dominant_table_yields_row_split_advisory(self):
        """A table hotter than the per-device mean cannot be balanced by
        any whole-table placement — the planner must say so."""
        plan = tables_plan()
        planner = ReshardPlanner(plan, ReshardSpec(imbalance_threshold=1.1))
        owners = self._owners(plan)
        traffic = {name: 1.0 for name in owners}
        dominant = next(iter(owners))
        traffic[dominant] = 1_000_000.0
        verdict = planner.propose(traffic, owners, self._free(plan))
        assert any(a.table_name == dominant for a in verdict.advisories)
        adv = next(a for a in verdict.advisories if a.table_name == dominant)
        assert adv.device_id == owners[dominant]
        assert len(adv.shards) == plan.n_devices
        total_rows = sum(s.num_rows for s in adv.shards)
        assert total_rows == plan.table_configs[0].num_rows

    def test_move_budget_respected(self):
        plan = tables_plan()
        planner = ReshardPlanner(
            plan, ReshardSpec(imbalance_threshold=1.0001, max_moves_per_plan=1)
        )
        owners = self._owners(plan)
        traffic = {name: (5000.0 if dev == 0 else 100.0)
                   for name, dev in owners.items()}
        verdict = planner.propose(traffic, owners, self._free(plan))
        assert len(verdict.moves) <= 1

    def test_free_bytes_shape_checked(self):
        plan = tables_plan()
        planner = ReshardPlanner(plan)
        with pytest.raises(ValueError):
            planner.propose({}, self._owners(plan), [1.0])

    def test_empty_plan_properties(self):
        empty = MigrationPlan()
        assert empty.empty
        assert empty.total_bytes == 0


class TestPlacementReportWidths:
    def test_summary_column_widths_stable_across_device_counts(self):
        """Device ids are padded to the widest id, so the table keeps its
        alignment when the cluster grows past 10 devices."""
        cfg = WorkloadConfig(
            num_tables=24, rows_per_table=512, dim=8,
            batch_size=32, max_pooling=2, seed=1,
        )
        report = plan_table_wise(cfg.table_configs(), n_devices=12)
        lines = [ln for ln in report.summary().splitlines() if ln.strip()]
        widths = {len(ln) for ln in lines if ln.lstrip().startswith("dev")}
        assert len(widths) == 1
