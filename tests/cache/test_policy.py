"""Replacement-policy contracts: eviction order, aging, frozen sets."""

from __future__ import annotations

import pytest

from repro.cache.policy import (
    LFUPolicy,
    LRUPolicy,
    StaticTopKPolicy,
    make_policy,
)


def k(i):
    return ("t", i)


class TestLRU:
    def test_evicts_least_recently_used(self):
        p = LRUPolicy(3)
        for i in (1, 2, 3):
            assert p.admit(k(i)) == (True, None)
        assert p.access(k(1))  # refresh 1: order is now 2, 3, 1
        admitted, evicted = p.admit(k(4))
        assert admitted and evicted == k(2)
        assert p.resident() == [k(3), k(1), k(4)]

    def test_miss_does_not_change_order(self):
        p = LRUPolicy(2)
        p.admit(k(1))
        p.admit(k(2))
        assert not p.access(k(9))
        assert p.resident() == [k(1), k(2)]

    def test_zero_capacity_never_admits(self):
        p = LRUPolicy(0)
        assert p.admit(k(1)) == (False, None)
        assert len(p) == 0

    def test_remove(self):
        p = LRUPolicy(2)
        p.admit(k(1))
        assert p.remove(k(1))
        assert not p.remove(k(1))
        assert k(1) not in p


class TestLFU:
    def test_evicts_lowest_frequency(self):
        p = LFUPolicy(3, aging_interval=1000)
        for i in (1, 2, 3):
            p.admit(k(i))
        p.access(k(1))
        p.access(k(3))
        admitted, evicted = p.admit(k(4))  # 2 is the only freq-1 key
        assert admitted and evicted == k(2)

    def test_fifo_tie_break(self):
        p = LFUPolicy(2, aging_interval=1000)
        p.admit(k(1))
        p.admit(k(2))  # both freq 1; 1 admitted earlier
        _, evicted = p.admit(k(3))
        assert evicted == k(1)

    def test_eviction_order_listing(self):
        p = LFUPolicy(3, aging_interval=1000)
        for i in (1, 2, 3):
            p.admit(k(i))
        p.access(k(2))
        assert p.resident() == [k(1), k(3), k(2)]  # victims first

    def test_aging_decays_counts(self):
        p = LFUPolicy(4, aging_interval=2, aging_factor=0.5)
        p.admit(k(1))
        p.admit(k(2))
        p.access(k(1))  # tick 1: freq(1) -> 2
        p.access(k(1))  # tick 2: decay (1->1, 2->1), then hit -> freq(1)=2
        assert p.frequency(k(1)) == 2
        assert p.frequency(k(2)) == 1

    def test_aging_lets_stale_hot_rows_leave(self):
        p = LFUPolicy(2, aging_interval=4, aging_factor=0.25)
        p.admit(k(1))
        for _ in range(3):
            p.access(k(1))  # freq(1) grows hot
        p.admit(k(2))
        # 4 more accesses of 2 → one aging boundary collapses 1's old heat.
        for _ in range(4):
            p.access(k(2))
        _, evicted = p.admit(k(3))
        assert evicted == k(1)

    def test_remove_clears_state(self):
        p = LFUPolicy(2, aging_interval=1000)
        p.admit(k(1))
        assert p.remove(k(1))
        assert not p.remove(k(1))
        assert p.frequency(k(1)) == 0


class TestStaticTopK:
    def test_seed_fills_in_rank_order(self):
        p = StaticTopKPolicy(2)
        assert p.seed(k(1)) == (True, None)
        assert p.seed(k(2)) == (True, None)
        assert p.seed(k(3)) == (False, None)  # full: never evicts
        assert p.resident() == [k(1), k(2)]

    def test_runtime_admission_always_declines(self):
        p = StaticTopKPolicy(4)
        p.seed(k(1))
        assert p.admit(k(2)) == (False, None)
        assert len(p) == 1

    def test_access_is_pure_membership(self):
        p = StaticTopKPolicy(2)
        p.seed(k(1))
        assert p.access(k(1))
        assert not p.access(k(2))
        assert p.resident() == [k(1)]  # unchanged by accesses

    def test_remove_applies_invalidation(self):
        p = StaticTopKPolicy(2)
        p.seed(k(1))
        assert p.remove(k(1))
        assert not p.access(k(1))


class TestFactory:
    def test_make_policy_names(self):
        assert isinstance(make_policy("lru", 4), LRUPolicy)
        assert isinstance(make_policy("lfu", 4), LFUPolicy)
        assert isinstance(make_policy("static-topk", 4), StaticTopKPolicy)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            make_policy("fifo", 4)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUPolicy(-1)
