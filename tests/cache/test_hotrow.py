"""HotRowCache: capacity accounting, install/evict mechanics, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.hotrow import CacheConfig, CacheStats, HotRowCache
from repro.dlrm.embedding import EmbeddingTableConfig
from repro.simgpu.cluster import dgx_v100
from repro.simgpu.memory import OutOfDeviceMemory


def table(name="t0", rows=50, dim=4):
    return EmbeddingTableConfig(name, num_rows=rows, dim=dim)


def fresh_device():
    return dgx_v100(1).devices[0]


class TestCacheConfig:
    def test_capacity_rows_wins_over_fraction(self):
        cfg = CacheConfig(capacity_rows=7, capacity_fraction=0.5)
        assert cfg.resolve_capacity(1000) == 7

    def test_fraction_of_remote_rows(self):
        assert CacheConfig(capacity_fraction=0.1).resolve_capacity(250) == 25

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_rows=-1)
        with pytest.raises(ValueError):
            CacheConfig(capacity_fraction=1.5)
        with pytest.raises(ValueError):
            CacheConfig(policy="fifo")
        with pytest.raises(ValueError):
            CacheConfig(aging_interval=0)
        with pytest.raises(ValueError):
            CacheConfig(aging_factor=1.0)


class TestCapacityAccounting:
    def test_slab_debits_the_device_pool(self):
        dev = fresh_device()
        free0 = dev.memory.free_bytes
        cache = HotRowCache(dev, [table(dim=16)], CacheConfig(capacity_rows=100))
        assert cache.nbytes == 100 * 16 * 4
        assert dev.memory.free_bytes == free0 - cache.nbytes

    def test_release_refunds_the_pool(self):
        dev = fresh_device()
        free0 = dev.memory.free_bytes
        cache = HotRowCache(dev, [table()], CacheConfig(capacity_rows=64))
        cache.release()
        assert dev.memory.free_bytes == free0

    def test_oversized_cache_raises_out_of_device_memory(self):
        """The cache competes with embedding shards for the same HBM."""
        dev = fresh_device()
        filler = dev.memory.free_bytes - 1024
        dev.memory.alloc((filler,), np.dtype(np.uint8), label="weights.filler")
        with pytest.raises(OutOfDeviceMemory):
            # 4096 rows x 64 floats = 1 MB >> the 1 KB left.
            HotRowCache(dev, [table(dim=64)], CacheConfig(capacity_rows=4096))

    def test_zero_capacity_allocates_nothing(self):
        dev = fresh_device()
        free0 = dev.memory.free_bytes
        cache = HotRowCache(dev, [table()], CacheConfig(capacity_rows=0))
        assert cache.nbytes == 0
        assert dev.memory.free_bytes == free0

    def test_mixed_row_shapes_rejected(self):
        dev = fresh_device()
        with pytest.raises(ValueError, match="dim"):
            HotRowCache(
                dev, [table("a", dim=4), table("b", dim=8)], CacheConfig(capacity_rows=4)
            )


class TestLookupMechanics:
    def test_hand_computed_hit_miss_install_counts(self):
        cache = HotRowCache(fresh_device(), [table()], CacheConfig(capacity_rows=8))
        acc = cache.lookup_rows("t0", np.array([5, 7, 5, 7]))
        assert acc.hit_mask.tolist() == [False, False, True, True]
        assert (acc.hits, acc.misses) == (2, 2)
        s = cache.stats
        assert (s.hits, s.misses, s.installs, s.evictions) == (2, 2, 2, 0)
        assert cache.resident_rows == 2

    def test_eviction_frees_the_slot(self):
        cache = HotRowCache(
            fresh_device(), [table()], CacheConfig(capacity_rows=2, policy="lru")
        )
        cache.lookup_rows("t0", np.array([1, 2, 3]))  # 3 evicts 1
        assert cache.stats.evictions == 1
        assert cache.resident_rows == 2
        assert ("t0", 1) not in cache and ("t0", 3) in cache
        acc = cache.lookup_rows("t0", np.array([1]))  # 1 must be a miss again
        assert acc.hits == 0

    def test_materialized_hits_return_exact_replicas(self):
        dev = fresh_device()
        cache = HotRowCache(
            dev, [table()], CacheConfig(capacity_rows=8), materialize=True
        )
        weights = np.arange(50 * 4, dtype=np.float32).reshape(50, 4)
        acc = cache.lookup_rows("t0", np.array([5, 7, 5]), source=weights)
        assert np.array_equal(acc.values, weights[[5, 7, 5]])
        # A replica is a copy: owner-side updates do not reach it ...
        weights[5] += 100.0
        acc = cache.lookup_rows("t0", np.array([5]), source=weights)
        assert acc.hits == 1
        assert np.array_equal(acc.values[0], np.arange(20, 24, dtype=np.float32))
        # ... until the row is invalidated and refetched.
        assert cache.invalidate("t0", rows=np.array([5])) == 1
        acc = cache.lookup_rows("t0", np.array([5]), source=weights)
        assert acc.hits == 0
        assert np.array_equal(acc.values[0], weights[5])

    def test_warm_seeds_hottest_first(self):
        cache = HotRowCache(
            fresh_device(), [table()], CacheConfig(capacity_rows=2, policy="static-topk")
        )
        seeded = cache.warm([("t0", 9), ("t0", 4), ("t0", 1)])
        assert seeded == 2  # rank order, capped at capacity
        acc = cache.lookup_rows("t0", np.array([9, 4, 1]))
        assert acc.hit_mask.tolist() == [True, True, False]
        assert cache.stats.installs == 2  # static-topk never installs at runtime

    def test_invalidate_whole_table_and_flush(self):
        cache = HotRowCache(
            fresh_device(), [table("a"), table("b")], CacheConfig(capacity_rows=8)
        )
        cache.lookup_rows("a", np.array([1, 2]))
        cache.lookup_rows("b", np.array([3]))
        assert cache.invalidate("a") == 2
        assert cache.resident_rows == 1
        assert cache.invalidate() == 1  # full flush
        assert cache.resident_rows == 0
        assert cache.stats.invalidations == 3


class TestStats:
    def test_delta_and_add(self):
        s = CacheStats(hits=5, misses=3, installs=2, evictions=1)
        before = s.copy()
        s.hits += 4
        s.misses += 1
        d = s.delta(before)
        assert (d.hits, d.misses, d.installs, d.evictions) == (4, 1, 0, 0)
        agg = CacheStats()
        agg.add(s)
        agg.add(d)
        assert agg.hits == 13

    def test_hit_rate(self):
        assert CacheStats().hit_rate == 0.0
        assert CacheStats(hits=3, misses=1).hit_rate == 0.75
