"""CachedRetrieval: hand-computed counter traces, bit identity across all
four backends, the zero-capacity invariant, the strict comm+time win under
skew, and the staleness/invalidation guarantee."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import CacheConfig, CachedRetrieval
from repro.cache.retrieval import EVICT_COUNTER, HIT_COUNTER, MISS_COUNTER
from repro.core.factory import FeatureSpec
from repro.core.retrieval import DistributedEmbedding
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads, lengths_from_batch
from repro.dlrm.batch import JaggedField, SparseBatch
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.embedding import EmbeddingTableConfig
from repro.simgpu.cluster import dgx_v100

ALL_BACKENDS = ("pgas", "baseline", "pgas+cache", "baseline+cache")


def zipf_cfg(**kw):
    defaults = dict(
        num_tables=8, rows_per_table=2048, dim=16, batch_size=256,
        max_pooling=4, min_pooling=0, seed=3,
        index_distribution="zipf", zipf_alpha=1.1,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


class TestHandComputedTrace:
    """2 tables x 2 devices, 4 samples, every lookup traced by hand.

    sparse_0 lives on dev0; dev1's slice (samples 2,3) looks up rows
    [5,7] then [5,7] again — two cold misses, then two hits, and sample 3
    is fully covered.  sparse_1 lives on dev1; dev0's slice (samples 0,1)
    looks up [3] then [3] — one miss, one hit, sample 1 fully covered.
    """

    def setup_method(self):
        tables = [
            EmbeddingTableConfig("sparse_0", num_rows=50, dim=4),
            EmbeddingTableConfig("sparse_1", num_rows=50, dim=4),
        ]
        self.cluster = dgx_v100(2)
        self.engine = CachedRetrieval(
            self.cluster,
            TableWiseSharding(tables, 2),
            CacheConfig(capacity_rows=8, policy="lru"),
            base="pgas",
        )
        self.batch = SparseBatch({
            "sparse_0": JaggedField.from_lengths([0, 0, 2, 2], np.array([5, 7, 5, 7])),
            "sparse_1": JaggedField.from_lengths([1, 1, 0, 0], np.array([3, 3])),
        })

    def test_first_batch_counters(self):
        cplan = self.engine.plan_batch(self.batch)
        d0, d1 = cplan.stats
        assert (d0.hits, d0.misses, d0.installs, d0.evictions) == (1, 1, 1, 0)
        assert (d1.hits, d1.misses, d1.installs, d1.evictions) == (2, 2, 2, 0)
        assert cplan.hits == 3 and cplan.misses == 3
        assert cplan.hit_rate == 0.5
        assert cplan.saved_vectors == 2  # sample 3 (sparse_0), sample 1 (sparse_1)

    def test_comm_bytes_drop_by_exactly_the_covered_vectors(self):
        cplan = self.engine.plan_batch(self.batch)
        # row_bytes = 4 floats = 16 B; uncached would ship 4 partial vectors
        # (samples 2,3 of sparse_0; samples 0,1 of sparse_1).
        assert cplan.row_bytes == 16
        assert cplan.remote_bytes == 32.0
        assert cplan.uncached_remote_bytes == 64.0

    def test_second_pass_all_hits(self):
        self.engine.plan_batch(self.batch)
        cplan = self.engine.plan_batch(self.batch)
        assert cplan.hits == 6 and cplan.misses == 0
        assert cplan.saved_vectors == 4  # every non-empty remote bag covered
        assert cplan.remote_bytes == 0.0

    def test_profiler_counters_match_the_trace(self):
        self.engine.run_plan(self.engine.plan_batch(self.batch))
        counters = self.cluster.profiler.counters
        assert counters[f"{HIT_COUNTER}.dev0"].total == 1
        assert counters[f"{HIT_COUNTER}.dev1"].total == 2
        assert counters[f"{MISS_COUNTER}.dev0"].total == 1
        assert counters[f"{MISS_COUNTER}.dev1"].total == 2
        assert counters[f"{EVICT_COUNTER}.dev0"].total == 0
        assert counters[f"{EVICT_COUNTER}.dev1"].total == 0

    def test_lifetime_stats_aggregate_devices(self):
        self.engine.plan_batch(self.batch)
        s = self.engine.stats()
        assert (s.hits, s.misses, s.installs) == (3, 3, 3)


def make_emb(cfg, backend, *, seed=0, policy="lru", fraction=0.05):
    return DistributedEmbedding(
        cfg, 2, backend=backend, materialize=True,
        features=FeatureSpec(
            cache=CacheConfig(capacity_fraction=fraction, policy=policy)
        ),
        rng=np.random.default_rng(seed),
    )


class TestBitIdentity:
    def test_all_four_backends_agree_bitwise(self):
        cfg = zipf_cfg()
        embs = {b: make_emb(cfg, b) for b in ALL_BACKENDS}
        gen = SyntheticDataGenerator(cfg)
        for _ in range(2):  # second batch runs against a warm cache
            batch = gen.sparse_batch()
            outs = {b: e.forward(batch).outputs for b, e in embs.items()}
            for b in ALL_BACKENDS[1:]:
                for got, ref in zip(outs[b], outs["pgas"]):
                    assert np.array_equal(got, ref), f"{b} diverged"

    def test_mean_pooling_and_empty_bags(self):
        tables = [
            EmbeddingTableConfig("sparse_0", num_rows=40, dim=8, pooling="mean"),
            EmbeddingTableConfig("sparse_1", num_rows=40, dim=8, pooling="mean"),
        ]
        batch = SparseBatch({
            "sparse_0": JaggedField.from_lengths(
                [2, 0, 3, 1], np.array([1, 1, 7, 1, 3, 7])
            ),
            "sparse_1": JaggedField.from_lengths([0, 2, 2, 0], np.array([4, 9, 9, 4])),
        })
        embs = [
            DistributedEmbedding(
                tables, 2, backend=b, materialize=True,
                features=FeatureSpec(cache=CacheConfig(capacity_rows=16)),
                rng=np.random.default_rng(11),
            )
            for b in ALL_BACKENDS
        ]
        outs = [e.forward(batch).outputs for e in embs]
        for other in outs[1:]:
            for got, ref in zip(other, outs[0]):
                assert np.array_equal(got, ref)

    def test_static_topk_after_profiled_warm(self):
        cfg = zipf_cfg()
        cached = make_emb(cfg, "pgas+cache", seed=1, policy="static-topk", fraction=0.1)
        plain = make_emb(cfg, "pgas", seed=1)
        engine = cached.backend_adapter()
        gen = SyntheticDataGenerator(cfg)
        seeded = engine.warm_static([gen.sparse_batch()])
        assert all(s > 0 for s in seeded)
        installs_frozen = engine.stats().installs
        batch = gen.sparse_batch()
        got = cached.forward(batch).outputs
        ref = plain.forward(batch).outputs
        for a, r in zip(got, ref):
            assert np.array_equal(a, r)
        s = engine.stats()
        assert s.hits > 0
        assert s.installs == installs_frozen  # runtime misses never installed


class TestZeroCapacityInvariant:
    """A capacity-0 cache must reproduce the uncached system exactly."""

    def test_workloads_match_uncached_builder_bitwise(self):
        cfg = zipf_cfg(batch_size=128)
        emb = DistributedEmbedding(
            cfg, 2, backend="pgas+cache",
            features=FeatureSpec(cache=CacheConfig(capacity_rows=0)),
        )
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        cplan = emb.backend_adapter().plan_batch(batch)
        ref = build_device_workloads(emb.plan, lengths_from_batch(batch))
        assert cplan.hits == 0 and cplan.saved_vectors == 0
        for got, want in zip(cplan.workloads, ref):
            assert got.num_blocks == want.num_blocks
            assert got.nnz == want.nnz
            assert np.array_equal(got.block_weights, want.block_weights)
            assert np.array_equal(got.block_dst_bytes, want.block_dst_bytes)

    def test_simulated_time_identical_to_uncached(self):
        cfg = zipf_cfg(batch_size=128)
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        cached = DistributedEmbedding(
            cfg, 2, backend="pgas+cache",
            features=FeatureSpec(cache=CacheConfig(capacity_rows=0)),
        )
        plain = DistributedEmbedding(cfg, 2, backend="pgas")
        t_cached = cached.forward(batch).timing
        t_plain = plain.forward(batch).timing
        assert t_cached.total_ns == t_plain.total_ns


class TestCacheWinsUnderSkew:
    """ISSUE acceptance: alpha >= 1.05 and capacity >= 5% of remote rows
    must strictly cut both EMB comm volume and simulated forward time."""

    def test_strictly_lower_comm_and_time(self):
        from repro.bench import run_cache_sweep

        cfg = zipf_cfg(rows_per_table=4096, dim=32, batch_size=512)
        res = run_cache_sweep(
            cfg, [1.05], [0.05], base="pgas", policy="lru",
            n_devices=2, n_batches=3, warm_batches=1,
        )
        p = res.point(1.05, 0.05)
        assert p.cached_comm_bytes < p.uncached_comm_bytes
        assert p.cached.total_ns < p.uncached.total_ns
        assert p.speedup > 1.0 and p.comm_reduction > 0.0
        assert 0.0 < p.hit_rate < 1.0
        assert "speedup" in res.render()


class TestInvalidation:
    def test_stale_replica_diverges_until_invalidated(self):
        cfg = zipf_cfg(num_tables=4, batch_size=64)
        emb = make_emb(cfg, "pgas+cache", seed=5, fraction=0.5)
        engine = emb.backend_adapter()
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        emb.forward(batch)
        emb.forward(batch)  # warm: every remote row of this batch is resident
        assert engine.stats().evictions == 0  # generous capacity, nothing left

        # Update one cached row on its owner, bypassing the cache.
        g = next(i for i, c in enumerate(engine.caches) if c.resident_rows)
        name, row = engine.caches[g].policy.resident()[-1]
        engine._tables[name].weights[row] += 1.0

        stale = emb.forward(batch).outputs
        fresh = emb.forward(batch, backend="pgas").outputs
        assert any(
            not np.array_equal(a, b) for a, b in zip(stale, fresh)
        ), "stale replica should make the cached output diverge"

        assert engine.invalidate(name, rows=np.array([row])) == 1
        healed = emb.forward(batch).outputs
        for a, b in zip(healed, fresh):
            assert np.array_equal(a, b)

    def test_flush_drops_everything(self):
        cfg = zipf_cfg(num_tables=4, batch_size=64)
        emb = make_emb(cfg, "pgas+cache", seed=5, fraction=0.5)
        engine = emb.backend_adapter()
        emb.forward(SyntheticDataGenerator(cfg).sparse_batch())
        assert engine.invalidate() > 0
        assert all(c.resident_rows == 0 for c in engine.caches)


class TestBackendContract:
    def test_registered_in_the_backend_registry(self):
        from repro.core import available_backends, backend_spec

        names = available_backends()
        assert "pgas+cache" in names and "baseline+cache" in names
        assert backend_spec("pgas+cache").requires_indices

    def test_forward_timed_rejects_index_dependent_backend(self):
        cfg = zipf_cfg(num_tables=4, batch_size=64)
        emb = DistributedEmbedding(cfg, 2, backend="pgas+cache")
        lengths = lengths_from_batch(SyntheticDataGenerator(cfg).sparse_batch())
        with pytest.raises(ValueError, match="index"):
            emb.forward_timed(lengths)

    def test_wrong_cache_config_type_rejected(self):
        cfg = zipf_cfg(num_tables=4, batch_size=64)
        emb = DistributedEmbedding(
            cfg, 2, backend="pgas+cache",
            features=FeatureSpec(cache={"rows": 4}),
        )
        with pytest.raises(TypeError):
            emb.backend_adapter()

    def test_unknown_base_rejected(self):
        tables = [EmbeddingTableConfig("sparse_0", num_rows=10, dim=4)]
        with pytest.raises(ValueError, match="base"):
            CachedRetrieval(
                dgx_v100(1), TableWiseSharding(tables, 1), base="rowwise"
            )
