"""Tests for the Chrome trace exporter."""

from __future__ import annotations

import json

import pytest

from repro.simgpu.profiler import Profiler
from repro.simgpu.trace import chrome_trace, summarize_spans, write_chrome_trace


def sample_profiler() -> Profiler:
    p = Profiler()
    p.record_span("kernel0", "compute", 0, 0.0, 1000.0)
    p.record_span("kernel1", "compute", 1, 100.0, 1200.0)
    p.record_span("alltoall", "comm", -1, 1200.0, 2000.0)
    p.add_count("comm_bytes", 1500.0, 4096.0)
    p.add_count("comm_bytes.dev0->dev1", 1500.0, 4096.0)
    return p


class TestChromeTrace:
    def test_span_events(self):
        trace = chrome_trace(sample_profiler(), counters=False)
        xs = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(xs) == 3
        k0 = next(e for e in xs if e["name"] == "kernel0")
        assert k0["pid"] == 0
        assert k0["ts"] == 0.0
        assert k0["dur"] == pytest.approx(1.0)  # 1000 ns == 1 us

    def test_deviceless_spans_go_to_host_row(self):
        trace = chrome_trace(sample_profiler(), counters=False)
        a2a = next(e for e in trace["traceEvents"] if e["name"] == "alltoall")
        assert a2a["pid"] == 9999

    def test_metadata_rows(self):
        trace = chrome_trace(sample_profiler(), counters=False)
        meta = [e for e in trace["traceEvents"] if e.get("ph") == "M"]
        names = {e["args"]["name"] for e in meta}
        assert "GPU 0" in names and "host / fabric" in names

    def test_counter_events(self):
        trace = chrome_trace(sample_profiler(), counter_period_ns=500.0)
        cs = [e for e in trace["traceEvents"] if e.get("ph") == "C"]
        assert cs, "expected counter events"
        # cumulative value visible at the end
        assert any(e["args"].get("comm_bytes") == 4096.0 for e in cs)
        # per-pair sub-counters are not exported (row explosion)
        assert all("dev0->dev1" not in e["name"] for e in cs)

    def test_json_serializable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(sample_profiler(), str(path))
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert data["displayTimeUnit"] == "ms"

    def test_empty_profiler(self):
        trace = chrome_trace(Profiler())
        assert trace["traceEvents"] == []


class TestFaultInstants:
    def test_fault_windows_become_instant_events(self):
        p = sample_profiler()
        p.record_span("link_degrade", "fault", -1, 500.0, 900.0)
        trace = chrome_trace(p, counters=False)
        instants = [e for e in trace["traceEvents"] if e.get("ph") == "i"]
        assert len(instants) == 1
        (ev,) = instants
        assert ev["name"] == "link_degrade"
        assert ev["cat"] == "fault"
        assert ev["s"] == "g"  # global scope: a full-height marker line
        assert ev["ts"] == pytest.approx(0.5)  # window start, in us
        # the fault window itself still exists as a complete span
        assert any(
            e.get("ph") == "X" and e["cat"] == "fault"
            for e in trace["traceEvents"]
        )

    def test_no_instants_without_faults(self):
        trace = chrome_trace(sample_profiler(), counters=False)
        assert not [e for e in trace["traceEvents"] if e.get("ph") == "i"]


class TestSummary:
    def test_summarize_spans(self):
        text = summarize_spans(sample_profiler())
        assert "compute" in text
        assert "comm" in text
        # compute: two spans, sum 2100 ns = 2.1 us, wall merged 1.2 us
        assert " 2 " in text

    def test_per_device_rows(self):
        # Regression: categories spanning several devices used to collapse
        # into one aggregate row, losing device attribution.
        text = summarize_spans(sample_profiler())
        lines = text.splitlines()
        compute_total = next(ln for ln in lines if ln.startswith("compute"))
        assert "total" in compute_total
        assert any("dev0" in ln for ln in lines)
        assert any("dev1" in ln for ln in lines)
        # single-device categories keep just their total row
        assert not any("host" in ln for ln in lines)

    def test_per_device_wall_attribution(self):
        p = Profiler()
        p.record_span("k0", "compute", 0, 0.0, 1000.0)
        p.record_span("k1", "compute", 1, 0.0, 3000.0)
        text = summarize_spans(p)
        dev1 = next(ln for ln in text.splitlines() if "dev1" in ln)
        assert "3.0" in dev1  # 3000 ns = 3.0 us, this device's own wall

    def test_deviceless_rows_print_as_host(self):
        p = Profiler()
        p.record_span("k0", "compute", 0, 0.0, 10.0)
        p.record_span("a2a", "compute", -1, 0.0, 10.0)
        text = summarize_spans(p)
        assert any("host" in ln for ln in text.splitlines())

    def test_empty(self):
        assert "category" in summarize_spans(Profiler())
