"""Tests for the wave-based kernel cost model."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simgpu.device import Device, DeviceSpec, V100_SPEC
from repro.simgpu.engine import Engine
from repro.simgpu.kernel import (
    KernelSpec,
    execute_kernel,
    kernel_time,
    roofline_time,
)


def run_kernel(kspec, spec=V100_SPEC, on_wave=None):
    dev = Device(Engine(), 0, spec)
    proc = dev.engine.process(execute_kernel(dev, kspec, on_wave=on_wave))
    dev.engine.run_until_event(proc)
    return dev.engine.now


class TestRoofline:
    def test_memory_bound(self):
        # 1 GB at 900*0.57 GB/s ≈ 1.949 ms
        t = roofline_time(1e9, 0.0, V100_SPEC)
        assert t == pytest.approx(1e9 / (900 * 0.57), rel=1e-9)

    def test_compute_bound(self):
        # All flops, no bytes: dominated by flop term.
        t = roofline_time(0.0, 1e9, V100_SPEC)
        assert t == pytest.approx(1e9 / (15700 * 0.38), rel=1e-9)

    def test_max_of_the_two(self):
        mem = roofline_time(1e9, 0.0, V100_SPEC)
        cmp = roofline_time(0.0, 1e12, V100_SPEC)
        both = roofline_time(1e9, 1e12, V100_SPEC)
        assert both == max(mem, cmp)


class TestKernelTime:
    def test_empty_kernel_costs_floor(self):
        k = KernelSpec("empty", num_blocks=0)
        assert kernel_time(k, V100_SPEC) == V100_SPEC.min_kernel_ns

    def test_tiny_kernel_hits_floor(self):
        k = KernelSpec("tiny", num_blocks=1, bytes_read=64.0)
        assert kernel_time(k, V100_SPEC) == V100_SPEC.min_kernel_ns

    def test_large_kernel_above_floor(self):
        k = KernelSpec("big", num_blocks=10_000, bytes_read=1e10)
        expect = roofline_time(1e10, 0.0, V100_SPEC)
        assert kernel_time(k, V100_SPEC) == pytest.approx(expect)

    def test_tail_added(self):
        k = KernelSpec("t", num_blocks=1000, bytes_read=1e9, tail_ns=12345.0)
        base = KernelSpec("b", num_blocks=1000, bytes_read=1e9)
        assert kernel_time(k, V100_SPEC) == kernel_time(base, V100_SPEC) + 12345.0

    def test_stretch_added(self):
        k = KernelSpec("s", num_blocks=1000, bytes_read=1e9, stretch_ns=9999.0)
        base = KernelSpec("b", num_blocks=1000, bytes_read=1e9)
        assert kernel_time(k, V100_SPEC) == kernel_time(base, V100_SPEC) + 9999.0

    def test_execute_matches_kernel_time(self):
        k = KernelSpec("x", num_blocks=3000, bytes_read=2e9, bytes_written=1e8, flops=1e9)
        assert run_kernel(k) == pytest.approx(kernel_time(k, V100_SPEC), rel=1e-9)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            KernelSpec("bad", num_blocks=1, bytes_read=-1.0)
        with pytest.raises(ValueError):
            KernelSpec("bad", num_blocks=-1)

    def test_block_weights_length_checked(self):
        with pytest.raises(ValueError, match="block_weights"):
            KernelSpec("bad", num_blocks=3, block_weights=[1.0, 2.0])


class TestOccupancyDerate:
    def test_few_waves_slower(self):
        conc = V100_SPEC.concurrent_blocks
        small = KernelSpec("s", num_blocks=conc * 4, bytes_read=1e9, min_waves_for_peak=16.0)
        nolimit = KernelSpec("n", num_blocks=conc * 4, bytes_read=1e9)
        t_derated = kernel_time(small, V100_SPEC)
        t_full = kernel_time(nolimit, V100_SPEC)
        assert t_derated == pytest.approx(t_full * 16.0 / 4.0)

    def test_enough_waves_no_penalty(self):
        conc = V100_SPEC.concurrent_blocks
        k = KernelSpec("k", num_blocks=conc * 32, bytes_read=1e9, min_waves_for_peak=16.0)
        base = KernelSpec("b", num_blocks=conc * 32, bytes_read=1e9)
        assert kernel_time(k, V100_SPEC) == kernel_time(base, V100_SPEC)

    def test_latency_limited_flattens_scaling(self):
        """Halving work below the wave threshold does not halve runtime —
        the strong-scaling flattening of paper §IV-B."""
        conc = V100_SPEC.concurrent_blocks
        full = KernelSpec("f", num_blocks=conc * 8, bytes_read=2e9, min_waves_for_peak=24.0)
        half = KernelSpec("h", num_blocks=conc * 4, bytes_read=1e9, min_waves_for_peak=24.0)
        t_full = kernel_time(full, V100_SPEC)
        t_half = kernel_time(half, V100_SPEC)
        assert t_half == pytest.approx(t_full)  # perfectly flat in this regime


class TestWaves:
    def test_wave_count(self):
        conc = V100_SPEC.concurrent_blocks
        waves = []
        k = KernelSpec("w", num_blocks=conc * 3 + 1, bytes_read=1e9)
        run_kernel(k, on_wave=waves.append)
        assert len(waves) == 4
        assert waves[-1].is_last
        assert [w.index for w in waves] == [0, 1, 2, 3]
        assert all(w.count == 4 for w in waves)

    def test_wave_blocks_partition_grid(self):
        conc = V100_SPEC.concurrent_blocks
        waves = []
        k = KernelSpec("w", num_blocks=conc * 2 + 5, bytes_read=1e9)
        run_kernel(k, on_wave=waves.append)
        seen = []
        for w in waves:
            seen.extend(w.blocks)
        assert seen == list(range(conc * 2 + 5))

    def test_wave_fractions_sum_to_one(self):
        waves = []
        k = KernelSpec("w", num_blocks=5000, bytes_read=1e9)
        run_kernel(k, on_wave=waves.append)
        assert sum(w.fraction for w in waves) == pytest.approx(1.0)

    def test_weighted_waves_take_proportional_time(self):
        conc = V100_SPEC.concurrent_blocks
        # Two waves: first has all the work.
        weights = [1.0] * conc + [0.0] * conc
        k = KernelSpec("w", num_blocks=2 * conc, bytes_read=1e9, block_weights=weights)
        waves = []
        run_kernel(k, on_wave=waves.append)
        assert waves[0].fraction == pytest.approx(1.0)
        assert waves[1].fraction == pytest.approx(0.0)
        assert waves[0].t_end - waves[0].t_start > 0
        assert waves[1].t_end - waves[1].t_start == pytest.approx(0.0)

    def test_zero_weight_total_falls_back_to_uniform(self):
        conc = V100_SPEC.concurrent_blocks
        k = KernelSpec(
            "w", num_blocks=2 * conc, bytes_read=1e9, block_weights=[0.0] * (2 * conc)
        )
        waves = []
        run_kernel(k, on_wave=waves.append)
        assert [w.fraction for w in waves] == [0.5, 0.5]

    def test_wave_times_monotone(self):
        waves = []
        k = KernelSpec("w", num_blocks=4000, bytes_read=3e9)
        run_kernel(k, on_wave=waves.append)
        ends = [w.t_end for w in waves]
        assert ends == sorted(ends)


@given(
    num_blocks=st.integers(min_value=0, max_value=20_000),
    bytes_read=st.floats(min_value=0, max_value=1e11),
    flops=st.floats(min_value=0, max_value=1e12),
)
def test_kernel_time_positive_and_monotone_in_bytes(num_blocks, bytes_read, flops):
    k = KernelSpec("p", num_blocks=num_blocks, bytes_read=bytes_read, flops=flops)
    t = kernel_time(k, V100_SPEC)
    assert t >= V100_SPEC.min_kernel_ns
    bigger = KernelSpec("p2", num_blocks=num_blocks, bytes_read=bytes_read * 2 + 1, flops=flops)
    assert kernel_time(bigger, V100_SPEC) >= t
