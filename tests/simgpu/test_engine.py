"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.simgpu.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)


class TestClock:
    def test_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_run_empty_queue_is_noop(self):
        eng = Engine()
        assert eng.run() == 0.0

    def test_run_until_advances_clock_with_no_events(self):
        eng = Engine()
        eng.run(until=500.0)
        assert eng.now == 500.0

    def test_call_at_executes_in_time_order(self):
        eng = Engine()
        order = []
        eng.call_at(30.0, lambda: order.append("c"))
        eng.call_at(10.0, lambda: order.append("a"))
        eng.call_at(20.0, lambda: order.append("b"))
        eng.run()
        assert order == ["a", "b", "c"]
        assert eng.now == 30.0

    def test_same_time_callbacks_fifo(self):
        eng = Engine()
        order = []
        for i in range(5):
            eng.call_at(10.0, lambda i=i: order.append(i))
        eng.run()
        assert order == [0, 1, 2, 3, 4]

    def test_call_in_is_relative(self):
        eng = Engine()
        seen = []
        eng.call_in(5.0, lambda: eng.call_in(7.0, lambda: seen.append(eng.now)))
        eng.run()
        assert seen == [12.0]

    def test_scheduling_in_the_past_raises(self):
        eng = Engine()
        eng.call_at(10.0, lambda: None)
        eng.run()
        with pytest.raises(SimulationError):
            eng.call_at(5.0, lambda: None)

    def test_run_until_stops_before_later_events(self):
        eng = Engine()
        fired = []
        eng.call_at(100.0, lambda: fired.append(1))
        eng.run(until=50.0)
        assert fired == [] and eng.now == 50.0
        eng.run()
        assert fired == [1] and eng.now == 100.0


class TestEvent:
    def test_succeed_delivers_value(self):
        eng = Engine()
        ev = eng.event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        eng.run()
        assert got == [42]

    def test_double_trigger_raises(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self):
        eng = Engine()
        ev = eng.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_trigger_still_fires(self):
        eng = Engine()
        ev = eng.event()
        ev.succeed("late")
        eng.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        eng.run()
        assert got == ["late"]

    def test_triggered_and_ok_flags(self):
        eng = Engine()
        ev = eng.event()
        assert not ev.triggered
        ev.fail(RuntimeError("boom"))
        assert ev.triggered and not ev.ok


class TestTimeout:
    def test_fires_after_delay(self):
        eng = Engine()
        seen = []
        t = eng.timeout(25.0, value="v")
        t.add_callback(lambda e: seen.append((eng.now, e.value)))
        eng.run()
        assert seen == [(25.0, "v")]

    def test_not_triggered_until_expiry(self):
        eng = Engine()
        t = eng.timeout(25.0)
        assert not t.triggered
        eng.run(until=10.0)
        assert not t.triggered
        eng.run()
        assert t.triggered

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.timeout(-1.0)

    def test_zero_delay_fires_now(self):
        eng = Engine()
        t = eng.timeout(0.0)
        eng.run()
        assert t.triggered and eng.now == 0.0


class TestProcess:
    def test_simple_process_advances_time(self):
        eng = Engine()

        def worker():
            yield eng.timeout(10.0)
            yield eng.timeout(5.0)
            return "done"

        proc = eng.process(worker())
        result = eng.run_until_event(proc)
        assert result == "done"
        assert eng.now == 15.0

    def test_process_receives_event_value(self):
        eng = Engine()
        ev = eng.event()

        def worker():
            got = yield ev
            return got * 2

        proc = eng.process(worker())
        eng.call_at(3.0, lambda: ev.succeed(21))
        assert eng.run_until_event(proc) == 42

    def test_processes_wait_on_each_other(self):
        eng = Engine()

        def child():
            yield eng.timeout(7.0)
            return "child-result"

        def parent():
            result = yield eng.process(child())
            return f"got:{result}"

        proc = eng.process(parent())
        assert eng.run_until_event(proc) == "got:child-result"
        assert eng.now == 7.0

    def test_failed_event_raises_inside_process(self):
        eng = Engine()
        ev = eng.event()
        caught = []

        def worker():
            try:
                yield ev
            except RuntimeError as exc:
                caught.append(str(exc))
            return "survived"

        proc = eng.process(worker())
        eng.call_at(1.0, lambda: ev.fail(RuntimeError("boom")))
        assert eng.run_until_event(proc) == "survived"
        assert caught == ["boom"]

    def test_yielding_non_event_raises(self):
        eng = Engine()

        def worker():
            yield 42  # type: ignore[misc]

        eng.process(worker())
        with pytest.raises(SimulationError, match="must yield Event"):
            eng.run()

    def test_interrupt_wakes_process(self):
        eng = Engine()
        log = []

        def sleeper():
            try:
                yield eng.timeout(1000.0)
            except Interrupt as i:
                log.append(("interrupted", eng.now, i.cause))
            return "ok"

        proc = eng.process(sleeper())
        eng.call_at(10.0, lambda: proc.interrupt("reason"))
        assert eng.run_until_event(proc) == "ok"
        assert log == [("interrupted", 10.0, "reason")]

    def test_unhandled_interrupt_fails_process(self):
        eng = Engine()

        def sleeper():
            yield eng.timeout(1000.0)

        proc = eng.process(sleeper())
        eng.call_at(10.0, lambda: proc.interrupt())
        with pytest.raises(Interrupt):
            eng.run_until_event(proc)

    def test_interrupted_timeout_does_not_double_resume(self):
        eng = Engine()
        resumes = []

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Interrupt:
                pass
            resumes.append(eng.now)
            yield eng.timeout(500.0)
            resumes.append(eng.now)

        proc = eng.process(sleeper())
        eng.call_at(10.0, lambda: proc.interrupt())
        eng.run_until_event(proc)
        # Resumed once at the interrupt and once at 10 + 500; the original
        # timeout firing at t=100 must not inject an extra resume.
        assert resumes == [10.0, 510.0]

    def test_interrupting_finished_process_raises(self):
        eng = Engine()

        def quick():
            yield eng.timeout(1.0)

        proc = eng.process(quick())
        eng.run()
        with pytest.raises(SimulationError):
            proc.interrupt()


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        eng = Engine()

        def worker():
            yield eng.all_of([eng.timeout(10.0), eng.timeout(30.0), eng.timeout(20.0)])
            return eng.now

        proc = eng.process(worker())
        assert eng.run_until_event(proc) == 30.0

    def test_all_of_empty_fires_immediately(self):
        eng = Engine()
        ev = eng.all_of([])
        assert ev.triggered

    def test_all_of_fails_on_first_child_failure(self):
        eng = Engine()
        bad = eng.event()
        combo = eng.all_of([eng.timeout(100.0), bad])
        eng.call_at(5.0, lambda: bad.fail(ValueError("child failed")))
        eng.run(until=6.0)
        assert combo.triggered and not combo.ok

    def test_any_of_fires_on_first(self):
        eng = Engine()

        def worker():
            yield eng.any_of([eng.timeout(10.0), eng.timeout(30.0)])
            return eng.now

        proc = eng.process(worker())
        assert eng.run_until_event(proc) == 10.0

    def test_any_of_empty_rejected(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.any_of([])


class TestRunUntilEvent:
    def test_drained_queue_without_trigger_raises(self):
        eng = Engine()
        ev = eng.event()  # nobody will ever succeed it
        with pytest.raises(SimulationError, match="never triggered"):
            eng.run_until_event(ev)

    def test_limit_exceeded_raises(self):
        eng = Engine()

        def forever():
            while True:
                yield eng.timeout(100.0)

        proc = eng.process(forever())
        with pytest.raises(SimulationError, match="exceeded limit"):
            eng.run_until_event(proc, limit=1000.0)

    def test_failed_event_reraises(self):
        eng = Engine()
        ev = eng.event()
        eng.call_at(1.0, lambda: ev.fail(KeyError("nope")))
        with pytest.raises(KeyError):
            eng.run_until_event(ev)
