"""Tests for links, topologies, and transfer contention."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simgpu.engine import Engine
from repro.simgpu.interconnect import (
    Interconnect,
    Link,
    LinkSpec,
    NIC_SPEC,
    NVLINK_PAIR_SPEC,
    Topology,
    multinode_topology,
    nvlink_dgx1,
    pcie_topology,
    wire_bytes,
)
from repro.simgpu.profiler import Profiler


class TestWireBytes:
    def test_single_message(self):
        assert wire_bytes(1000, 0, 32) == 1032

    def test_many_messages(self):
        # 1000 B in 256-B messages = 4 messages → 4 headers
        assert wire_bytes(1000, 256, 32) == 1000 + 4 * 32

    def test_exact_multiple(self):
        assert wire_bytes(512, 256, 32) == 512 + 2 * 32

    def test_zero_payload_costs_nothing(self):
        assert wire_bytes(0, 256, 32) == 0.0

    def test_no_header(self):
        assert wire_bytes(777, 256, 0) == 777

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            wire_bytes(-1, 256, 32)

    @given(
        payload=st.floats(min_value=1, max_value=1e9),
        msg=st.integers(min_value=1, max_value=4096),
        hdr=st.integers(min_value=0, max_value=128),
    )
    def test_wire_at_least_payload(self, payload, msg, hdr):
        w = wire_bytes(payload, msg, hdr)
        assert w >= payload
        # header overhead bounded by one header per message.
        assert w <= payload + (payload / msg + 1) * hdr


class TestLink:
    def make(self, bw=10.0, lat=100.0):
        return Link(Engine(), 0, 1, LinkSpec(bandwidth=bw, latency_ns=lat))

    def test_alpha_beta_timing(self):
        lk = self.make(bw=10.0, lat=100.0)
        ev = lk.transfer(1000.0)  # 1000/10 = 100 ns + 100 lat
        lk.engine.run()
        assert ev.triggered
        assert ev.value == pytest.approx(200.0)

    def test_serialisation_under_contention(self):
        lk = self.make(bw=10.0, lat=0.0)
        e1 = lk.transfer(1000.0)
        e2 = lk.transfer(1000.0)
        lk.engine.run()
        assert e1.value == pytest.approx(100.0)
        assert e2.value == pytest.approx(200.0)  # queued behind e1

    def test_headers_stretch_busy_time(self):
        lk = self.make(bw=1.0, lat=0.0)
        lk.transfer(1000.0, message_bytes=100, header_bytes=100)  # wire = 2000
        lk.engine.run()
        assert lk.busy_time == pytest.approx(2000.0)
        assert lk.bytes_carried == pytest.approx(2000.0)

    def test_on_complete_called_at_delivery(self):
        lk = self.make(bw=10.0, lat=50.0)
        seen = []
        lk.transfer(100.0, on_complete=seen.append)
        lk.engine.run()
        assert seen == [pytest.approx(60.0)]

    def test_utilization(self):
        lk = self.make(bw=10.0, lat=0.0)
        lk.transfer(500.0)
        lk.engine.run()
        assert lk.utilization(100.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            lk.utilization(0.0)

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=0.0, latency_ns=0.0)
        with pytest.raises(ValueError):
            LinkSpec(bandwidth=1.0, latency_ns=-1.0)


class TestTopology:
    def test_nvlink_clique_all_connected(self):
        topo = nvlink_dgx1(4)
        for s in range(4):
            for d in range(4):
                assert topo.connected(s, d) == (s != d)

    def test_self_link_is_none(self):
        topo = nvlink_dgx1(2)
        assert topo.link_spec(0, 0) is None

    def test_out_of_range_pair_rejected(self):
        topo = nvlink_dgx1(2)
        with pytest.raises(ValueError):
            topo.link_spec(0, 5)

    def test_multinode_intra_vs_inter(self):
        topo = multinode_topology(8, devices_per_node=4)
        assert topo.link_spec(0, 3) == NVLINK_PAIR_SPEC
        assert topo.link_spec(0, 4) == NIC_SPEC
        assert topo.link_spec(5, 7) == NVLINK_PAIR_SPEC

    def test_pcie_slower_than_nvlink(self):
        assert pcie_topology(2).link_spec(0, 1).bandwidth < nvlink_dgx1(2).link_spec(0, 1).bandwidth


class TestInterconnect:
    def make(self, n=3):
        eng = Engine()
        prof = Profiler()
        return Interconnect(eng, nvlink_dgx1(n), prof), eng, prof

    def test_links_cached(self):
        ic, eng, _ = self.make()
        assert ic.link(0, 1) is ic.link(0, 1)
        assert ic.link(0, 1) is not ic.link(1, 0)  # directed

    def test_self_transfer_rejected(self):
        ic, eng, _ = self.make()
        with pytest.raises(ValueError, match="not connected"):
            ic.transfer(1, 1, 100.0)

    def test_counter_credited_payload_not_wire(self):
        ic, eng, prof = self.make()
        ic.transfer(0, 1, 1000.0, message_bytes=100, header_bytes=100)
        eng.run()
        assert prof.counter(Interconnect.COUNTER).total == pytest.approx(1000.0)
        # but the link carried payload + headers
        assert ic.total_wire_bytes() == pytest.approx(2000.0)

    def test_per_pair_counter(self):
        ic, eng, prof = self.make()
        ic.transfer(0, 2, 500.0)
        ic.transfer(1, 2, 300.0)
        eng.run()
        assert prof.counter("comm_bytes.dev0->dev2").total == pytest.approx(500.0)
        assert prof.counter("comm_bytes.dev1->dev2").total == pytest.approx(300.0)

    def test_custom_counter_name(self):
        ic, eng, prof = self.make()
        ic.transfer(0, 1, 100.0, counter="special")
        eng.run()
        assert prof.counter("special").total == pytest.approx(100.0)
        assert prof.counter(Interconnect.COUNTER).total == 0.0

    def test_distinct_pairs_transfer_in_parallel(self):
        ic, eng, _ = self.make()
        bw = NVLINK_PAIR_SPEC.bandwidth
        lat = NVLINK_PAIR_SPEC.latency_ns
        e1 = ic.transfer(0, 1, bw * 1000.0)  # 1000 ns of wire time
        e2 = ic.transfer(0, 2, bw * 1000.0)
        eng.run()
        # parallel links: both complete at 1000 + latency, not 2000+.
        assert e1.value == pytest.approx(1000.0 + lat)
        assert e2.value == pytest.approx(1000.0 + lat)

    def test_conservation_bytes_in_equals_bytes_out(self):
        """Every payload byte injected is delivered exactly once."""
        ic, eng, prof = self.make(4)
        rng = np.random.default_rng(0)
        total = 0.0
        for _ in range(50):
            s, d = rng.integers(0, 4, size=2)
            if s == d:
                continue
            nbytes = float(rng.integers(1, 10_000))
            total += nbytes
            ic.transfer(int(s), int(d), nbytes)
        eng.run()
        assert prof.counter(Interconnect.COUNTER).total == pytest.approx(total)
