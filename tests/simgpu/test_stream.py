"""Tests for CUDA-style streams and events."""

from __future__ import annotations

import pytest

from repro.simgpu.cluster import Cluster
from repro.simgpu.device import Device, DeviceSpec
from repro.simgpu.engine import Engine


def make_device() -> Device:
    return Device(Engine(), 0, DeviceSpec())


class TestStreamOrdering:
    def test_ops_run_in_submission_order(self):
        dev = make_device()
        eng = dev.engine
        order = []

        def op(tag, dt):
            def gen():
                yield eng.timeout(dt)
                order.append((tag, eng.now))

            return gen

        st = dev.default_stream
        st.submit(op("a", 10.0))
        st.submit(op("b", 5.0))
        st.submit(op("c", 1.0))
        eng.run()
        # serialised: a at 10, b at 15, c at 16 — not by own duration
        assert order == [("a", 10.0), ("b", 15.0), ("c", 16.0)]

    def test_different_streams_run_concurrently(self):
        dev = make_device()
        eng = dev.engine
        done = {}
        s1, s2 = dev.stream("s1"), dev.stream("s2")

        def op(tag, dt):
            def gen():
                yield eng.timeout(dt)
                done[tag] = eng.now

            return gen

        s1.submit(op("x", 100.0))
        s2.submit(op("y", 100.0))
        eng.run()
        assert done == {"x": 100.0, "y": 100.0}  # overlapped, not 100/200

    def test_submit_delay(self):
        dev = make_device()
        op = dev.default_stream.submit_delay(42.0)
        dev.engine.run()
        assert op.completed
        assert op.finished_at == 42.0

    def test_op_timestamps(self):
        dev = make_device()
        st = dev.default_stream
        st.submit_delay(10.0)
        op = st.submit_delay(5.0)
        dev.engine.run()
        assert op.enqueued_at == 0.0
        assert op.started_at == 10.0
        assert op.finished_at == 15.0

    def test_op_done_value(self):
        dev = make_device()
        eng = dev.engine

        def gen():
            yield eng.timeout(1.0)
            return "result"

        op = dev.default_stream.submit(lambda: gen())
        eng.run()
        assert op.done.value == "result"

    def test_submit_after_drain_restarts_dispatcher(self):
        dev = make_device()
        eng = dev.engine
        dev.default_stream.submit_delay(10.0)
        eng.run()
        op = dev.default_stream.submit_delay(10.0)
        eng.run()
        assert op.finished_at == 20.0


class TestDrainAndSync:
    def test_drained_on_idle_stream_fires_immediately(self):
        dev = make_device()
        ev = dev.default_stream.drained()
        assert ev.triggered

    def test_drained_waits_for_queue(self):
        dev = make_device()
        eng = dev.engine
        dev.default_stream.submit_delay(30.0)
        dev.default_stream.submit_delay(20.0)
        ev = dev.default_stream.drained()
        assert not ev.triggered
        eng.run()
        assert ev.triggered and eng.now == 50.0

    def test_stream_synchronize_charges_overhead(self):
        dev = make_device()
        eng = dev.engine
        dev.default_stream.submit_delay(10.0)
        proc = eng.process(dev.default_stream.synchronize())
        eng.run_until_event(proc)
        assert eng.now == 10.0 + dev.spec.sync_overhead_ns

    def test_device_synchronize_covers_all_streams(self):
        dev = make_device()
        eng = dev.engine
        dev.stream("a").submit_delay(10.0)
        dev.stream("b").submit_delay(50.0)
        proc = eng.process(dev.synchronize())
        eng.run_until_event(proc)
        assert eng.now == 50.0 + dev.spec.sync_overhead_ns


class TestCudaEvents:
    def test_record_and_elapsed(self):
        dev = make_device()
        eng = dev.engine
        st = dev.default_stream
        st.submit_delay(10.0)
        e1 = st.record_event()
        st.submit_delay(25.0)
        e2 = st.record_event()
        eng.run()
        assert e1.timestamp == 10.0
        assert e2.timestamp == 35.0
        assert e2.elapsed_since(e1) == 25.0

    def test_elapsed_before_fired_raises(self):
        dev = make_device()
        e1 = dev.default_stream.record_event()
        e2 = dev.default_stream.record_event()
        with pytest.raises(ValueError):
            e2.elapsed_since(e1)

    def test_wait_event_orders_across_streams(self):
        dev = make_device()
        eng = dev.engine
        s1, s2 = dev.stream("s1"), dev.stream("s2")
        s1.submit_delay(100.0)
        marker = s1.record_event()
        s2.wait_event(marker)
        op = s2.submit_delay(10.0)
        eng.run()
        assert op.started_at == 100.0
        assert op.finished_at == 110.0

    def test_wait_on_already_fired_event_is_free(self):
        dev = make_device()
        eng = dev.engine
        s1, s2 = dev.stream("s1"), dev.stream("s2")
        marker = s1.record_event()
        eng.run()
        assert marker.fired
        s2.wait_event(marker)
        op = s2.submit_delay(5.0)
        eng.run()
        assert op.finished_at == 5.0


class TestDeviceBasics:
    def test_named_streams_are_cached(self):
        dev = make_device()
        assert dev.stream("k") is dev.stream("k")
        assert dev.default_stream is dev.stream("default")

    def test_peer_access(self):
        dev = make_device()
        assert dev.can_access_peer(0)  # self
        assert not dev.can_access_peer(1)
        dev.enable_peer_access(1)
        assert dev.can_access_peer(1)
        with pytest.raises(ValueError):
            dev.enable_peer_access(0)

    def test_negative_device_id_rejected(self):
        with pytest.raises(ValueError):
            Device(Engine(), -1)

    def test_cluster_enables_peers(self):
        cl = Cluster(3)
        for a in range(3):
            for b in range(3):
                assert cl.device(a).can_access_peer(b)
