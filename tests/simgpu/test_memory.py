"""Unit + property tests for the device memory allocator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simgpu.memory import Buffer, MemoryPool, OutOfDeviceMemory


class TestAlloc:
    def test_basic_accounting(self):
        pool = MemoryPool(capacity=1000, device_id=3)
        buf = pool.alloc((10, 10), np.float32)  # 400 B
        assert buf.nbytes == 400
        assert pool.used == 400
        assert pool.free_bytes == 600
        assert buf.device_id == 3

    def test_oom_raises_with_details(self):
        pool = MemoryPool(capacity=100)
        with pytest.raises(OutOfDeviceMemory) as ei:
            pool.alloc((1000,), np.float32)
        assert ei.value.requested == 4000
        assert ei.value.free == 100

    def test_exact_fit_allowed(self):
        pool = MemoryPool(capacity=400)
        pool.alloc((100,), np.float32)
        assert pool.free_bytes == 0

    def test_materialized_buffer_has_array(self):
        pool = MemoryPool(capacity=1000)
        buf = pool.alloc((5, 4), np.float32, materialize=True, fill=2.5)
        arr = buf.array()
        assert arr.shape == (5, 4)
        assert np.all(arr == 2.5)

    def test_virtual_buffer_array_raises(self):
        pool = MemoryPool(capacity=1000)
        buf = pool.alloc((5,), np.float32)
        with pytest.raises(ValueError, match="not materialized"):
            buf.array()

    def test_negative_shape_rejected(self):
        pool = MemoryPool(capacity=1000)
        with pytest.raises(ValueError):
            pool.alloc((-1, 4))

    def test_int_shape_accepted(self):
        pool = MemoryPool(capacity=1000)
        buf = pool.alloc(10, np.int64)
        assert buf.shape == (10,) and buf.nbytes == 80

    def test_peak_tracking(self):
        pool = MemoryPool(capacity=1000)
        a = pool.alloc((100,), np.uint8)
        b = pool.alloc((200,), np.uint8)
        pool.free(a)
        pool.alloc((50,), np.uint8)
        assert pool.peak_used == 300

    def test_dtype_itemsize_respected(self):
        pool = MemoryPool(capacity=1000)
        assert pool.alloc((10,), np.float64).nbytes == 80
        assert pool.alloc((10,), np.int8).nbytes == 10


class TestFree:
    def test_free_returns_bytes(self):
        pool = MemoryPool(capacity=1000)
        buf = pool.alloc((100,), np.uint8)
        pool.free(buf)
        assert pool.used == 0
        assert buf.freed

    def test_double_free_raises(self):
        pool = MemoryPool(capacity=1000)
        buf = pool.alloc((100,), np.uint8)
        pool.free(buf)
        with pytest.raises(ValueError, match="double free"):
            pool.free(buf)

    def test_use_after_free_raises(self):
        pool = MemoryPool(capacity=1000)
        buf = pool.alloc((10,), np.float32, materialize=True)
        pool.free(buf)
        with pytest.raises(ValueError, match="use-after-free"):
            buf.array()

    def test_foreign_buffer_rejected(self):
        pool_a = MemoryPool(capacity=1000)
        pool_b = MemoryPool(capacity=1000)
        buf = pool_a.alloc((10,), np.uint8)
        with pytest.raises(ValueError, match="does not belong"):
            pool_b.free(buf)

    def test_coalescing_allows_realloc(self):
        """Free neighbours merge back into one hole usable by a big alloc."""
        pool = MemoryPool(capacity=300)
        a = pool.alloc((100,), np.uint8)
        b = pool.alloc((100,), np.uint8)
        c = pool.alloc((100,), np.uint8)
        pool.free(a)
        pool.free(c)
        pool.free(b)  # middle last: must merge all three
        big = pool.alloc((300,), np.uint8)
        assert big.nbytes == 300

    def test_reset_frees_everything(self):
        pool = MemoryPool(capacity=1000)
        for _ in range(5):
            pool.alloc((10,), np.float32)
        pool.reset()
        assert pool.used == 0 and pool.num_allocations == 0


class TestInvariants:
    @given(
        ops=st.lists(
            st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 200)),
            min_size=1,
            max_size=60,
        )
    )
    def test_conservation_and_no_overlap(self, ops):
        """used + free == capacity; live buffers never overlap."""
        pool = MemoryPool(capacity=4096)
        live = []
        for kind, size in ops:
            if kind == "alloc":
                try:
                    live.append(pool.alloc((size,), np.uint8))
                except OutOfDeviceMemory:
                    pass
            elif live:
                idx = size % len(live)
                pool.free(live.pop(idx))
            # conservation
            assert pool.used + pool.free_bytes == pool.capacity
            assert pool.used == sum(b.nbytes for b in live)
            # no overlap between live allocations
            spans = sorted((b.offset, b.offset + b.nbytes) for b in live if b.nbytes)
            for (lo1, hi1), (lo2, hi2) in zip(spans, spans[1:]):
                assert hi1 <= lo2

    @given(sizes=st.lists(st.integers(1, 100), min_size=1, max_size=40))
    def test_alloc_all_free_all_returns_to_pristine(self, sizes):
        pool = MemoryPool(capacity=100 * len(sizes))
        bufs = [pool.alloc((s,), np.uint8) for s in sizes]
        for b in bufs:
            pool.free(b)
        assert pool.free_bytes == pool.capacity
        # a single hole remains (fully coalesced)
        assert pool._holes == [(0, pool.capacity)]
