"""Tests for spans, counters, and comm-volume sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simgpu.profiler import Counter, Profiler, Span


class TestSpans:
    def test_record_and_query(self):
        p = Profiler()
        p.record_span("k0", "compute", 0, 10.0, 40.0)
        p.record_span("k1", "compute", 1, 15.0, 50.0)
        p.record_span("a2a", "comm", -1, 40.0, 90.0)
        assert p.category_time("compute") == 30.0 + 35.0
        assert p.category_time("compute", device_id=0) == 30.0
        assert len(p.spans_by_category("comm")) == 1

    def test_backwards_span_rejected(self):
        p = Profiler()
        with pytest.raises(ValueError):
            p.record_span("bad", "x", 0, 10.0, 5.0)

    def test_disabled_profiler_records_nothing(self):
        p = Profiler()
        p.enabled = False
        p.record_span("k", "compute", 0, 0.0, 1.0)
        p.add_count("c", 0.0, 5.0)
        assert p.spans == []
        assert p.counters == {}

    def test_wall_time_merges_overlaps(self):
        p = Profiler()
        p.record_span("a", "compute", 0, 0.0, 10.0)
        p.record_span("b", "compute", 1, 5.0, 20.0)  # overlaps a
        p.record_span("c", "compute", 2, 30.0, 40.0)  # disjoint
        assert p.category_wall_time("compute") == 20.0 + 10.0

    def test_wall_time_empty_category(self):
        assert Profiler().category_wall_time("nothing") == 0.0

    def test_clear(self):
        p = Profiler()
        p.record_span("a", "x", 0, 0.0, 1.0)
        p.add_count("c", 0.0, 1.0)
        p.clear()
        assert p.spans == [] and p.counters == {}


class TestCounter:
    def test_total_and_value_at(self):
        c = Counter("bytes")
        c.add(10.0, 100.0)
        c.add(20.0, 50.0)
        assert c.total == 150.0
        assert c.value_at(5.0) == 0.0
        assert c.value_at(10.0) == 100.0
        assert c.value_at(15.0) == 100.0
        assert c.value_at(25.0) == 150.0

    def test_out_of_order_adds_merge_on_read(self):
        c = Counter("bytes")
        c.add(20.0, 5.0)
        c.add(10.0, 7.0)  # from another device, earlier stamp
        assert c.value_at(15.0) == 7.0
        assert c.total == 12.0

    def test_sample_grid(self):
        c = Counter("bytes")
        c.add(100.0, 10.0)
        c.add(300.0, 20.0)
        times, vals = c.sample(0.0, 400.0, 100.0)
        assert times[0] == 0.0 and times[-1] == 400.0
        assert vals[0] == 0.0
        assert vals[-1] == 30.0
        # cumulative and monotone
        assert np.all(np.diff(vals) >= 0)

    def test_sample_lands_on_end(self):
        c = Counter("bytes")
        c.add(50.0, 1.0)
        times, vals = c.sample(0.0, 99.0, 40.0)
        assert times[-1] == 99.0
        assert vals[-1] == 1.0

    def test_sample_empty_counter(self):
        c = Counter("bytes")
        times, vals = c.sample(0.0, 10.0, 1.0)
        assert np.all(vals == 0.0)

    def test_sample_zero_width_window_single_zero_sample(self):
        # Regression: t_start == t_end used to return the cumulative value
        # (a degenerate one-point series); now it is a single zero sample.
        c = Counter("bytes")
        c.add(2.0, 10.0)
        times, vals = c.sample(5.0, 5.0, 1.0)
        assert times.tolist() == [5.0]
        assert vals.tolist() == [0.0]

    def test_sample_empty_counter_single_zero_sample(self):
        # Regression: an empty counter used to return a full zero grid.
        c = Counter("bytes")
        times, vals = c.sample(0.0, 10.0, 1.0)
        assert times.tolist() == [0.0]
        assert vals.tolist() == [0.0]

    def test_events_sorted_copy(self):
        c = Counter("bytes")
        c.add(20.0, 5.0)
        c.add(10.0, 7.0)
        evs = c.events()
        assert evs == [(10.0, 7.0), (20.0, 5.0)]
        evs.append((99.0, 1.0))  # mutating the copy must not leak back
        assert c.total == 12.0

    def test_values_at_vectorized(self):
        c = Counter("bytes")
        c.add(10.0, 100.0)
        c.add(20.0, 50.0)
        vals = c.values_at(np.array([5.0, 10.0, 15.0, 25.0]))
        assert vals.tolist() == [0.0, 100.0, 100.0, 150.0]

    def test_sample_bad_args(self):
        c = Counter("bytes")
        with pytest.raises(ValueError):
            c.sample(0.0, 10.0, 0.0)
        with pytest.raises(ValueError):
            c.sample(10.0, 0.0, 1.0)

    @given(
        events=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0),
                st.floats(min_value=0.0, max_value=100.0),
            ),
            max_size=50,
        )
    )
    def test_sample_final_equals_total(self, events):
        c = Counter("bytes")
        for t, d in events:
            c.add(t, d)
        _, vals = c.sample(0.0, 1000.0, 37.0)
        assert vals[-1] == pytest.approx(c.total)
        assert np.all(np.diff(vals) >= 0)


class TestProfilerCounters:
    def test_counter_cached_by_name(self):
        p = Profiler()
        assert p.counter("x") is p.counter("x")

    def test_add_count_shortcut(self):
        p = Profiler()
        p.add_count("x", 1.0, 10.0)
        p.add_count("x", 2.0, 5.0)
        assert p.counter("x").total == 15.0
