"""Tests for unit conversions."""

from __future__ import annotations

import pytest

from repro.simgpu.units import (
    GiB,
    KiB,
    MiB,
    gbps,
    ms,
    ns,
    s,
    to_ms,
    to_s,
    to_us,
    transfer_time,
    us,
)


def test_time_scales():
    assert us == 1000 * ns
    assert ms == 1000 * us
    assert s == 1000 * ms


def test_conversions_roundtrip():
    assert to_ms(2.5 * ms) == 2.5
    assert to_us(3 * us) == 3.0
    assert to_s(1.5 * s) == 1.5


def test_binary_sizes():
    assert KiB == 1024
    assert MiB == 1024**2
    assert GiB == 1024**3


def test_gbps_is_bytes_per_ns():
    # 25 GB/s == 25 bytes/ns
    assert gbps(25) == 25.0


def test_transfer_time_alpha_beta():
    # 1000 B at 10 B/ns + 50 ns latency
    assert transfer_time(1000, 10.0, 50.0) == 150.0


def test_transfer_time_validation():
    with pytest.raises(ValueError):
        transfer_time(100, 0.0)
    with pytest.raises(ValueError):
        transfer_time(-1, 1.0)


def test_paper_scale_sanity():
    """134 MB over a 48 GB/s NVLink pair ≈ 2.9 ms — the overlap budget."""
    t = transfer_time(134e6, gbps(48))
    assert 2.5 * ms < t < 3.5 * ms
