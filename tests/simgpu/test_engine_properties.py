"""Property-based tests of engine ordering and process semantics."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simgpu.engine import Engine


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
def test_callbacks_fire_in_nondecreasing_time_order(delays):
    """Whatever the insertion order, execution times are sorted."""
    eng = Engine()
    fired = []
    for d in delays:
        eng.call_at(d, lambda d=d: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert eng.now == max(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=30))
def test_sequential_timeouts_sum(delays):
    """A process sleeping a sequence of timeouts wakes at their sum."""
    eng = Engine()

    def worker():
        for d in delays:
            yield eng.timeout(d)
        return eng.now

    proc = eng.process(worker())
    result = eng.run_until_event(proc)
    assert abs(result - sum(delays)) < 1e-6 * max(1.0, sum(delays))


@given(
    delays=st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=20)
)
def test_all_of_completes_at_max_any_of_at_min(delays):
    """Fork/join semantics: AllOf = max child, AnyOf = min child."""
    eng = Engine()

    def worker():
        yield eng.all_of([eng.timeout(d) for d in delays])
        return eng.now

    proc = eng.process(worker())
    assert eng.run_until_event(proc) == max(delays)

    eng2 = Engine()

    def worker2():
        yield eng2.any_of([eng2.timeout(d) for d in delays])
        return eng2.now

    proc2 = eng2.process(worker2())
    assert eng2.run_until_event(proc2) == min(delays)


@given(
    n_procs=st.integers(min_value=1, max_value=20),
    step=st.floats(min_value=0.1, max_value=100.0),
)
def test_parallel_processes_are_independent(n_procs, step):
    """N processes sleeping i*step finish at their own deadlines."""
    eng = Engine()
    done_at = {}

    def worker(i):
        yield eng.timeout(i * step)
        done_at[i] = eng.now

    procs = [eng.process(worker(i)) for i in range(1, n_procs + 1)]
    eng.run()
    for i in range(1, n_procs + 1):
        assert abs(done_at[i] - i * step) < 1e-9 * max(1.0, i * step)
    assert all(p.triggered for p in procs)


@given(seed_times=st.lists(st.tuples(
    st.floats(min_value=0.0, max_value=1000.0),
    st.integers(min_value=0, max_value=5),
), min_size=1, max_size=20))
def test_determinism_across_runs(seed_times):
    """Two engines fed identical schedules produce identical traces."""

    def run_once():
        eng = Engine()
        trace = []
        for t, tag in seed_times:
            eng.call_at(t, lambda t=t, tag=tag: trace.append((eng.now, tag)))
        eng.run()
        return trace

    assert run_once() == run_once()
