"""Integration tests: kernels on streams, concurrent devices, link interplay."""

from __future__ import annotations

import pytest

from repro.simgpu import KernelSpec, dgx_v100, execute_kernel, kernel_time
from repro.simgpu.units import us


class TestKernelsOnStreams:
    def test_two_kernels_serialise_on_one_stream(self):
        cl = dgx_v100(1)
        dev = cl.device(0)
        k = KernelSpec("k", num_blocks=2000, bytes_read=1e9)
        t_one = kernel_time(k, dev.spec)
        dev.default_stream.submit(lambda: execute_kernel(dev, k))
        op = dev.default_stream.submit(lambda: execute_kernel(dev, k))
        cl.engine.run()
        assert op.finished_at == pytest.approx(2 * t_one)

    def test_kernels_on_two_devices_overlap(self):
        cl = dgx_v100(2)
        k = KernelSpec("k", num_blocks=2000, bytes_read=1e9)
        ops = []
        for dev in cl.devices:
            ops.append(dev.default_stream.submit(lambda d=dev: execute_kernel(d, k)))
        cl.engine.run()
        t_one = kernel_time(k, cl.device(0).spec)
        for op in ops:
            assert op.finished_at == pytest.approx(t_one)

    def test_two_streams_one_device_overlap(self):
        """The simulator models streams as concurrent (no SM contention) —
        adequate for this paper's single-kernel-at-a-time phases."""
        cl = dgx_v100(1)
        dev = cl.device(0)
        k = KernelSpec("k", num_blocks=1000, bytes_read=5e8)
        a = dev.stream("a").submit(lambda: execute_kernel(dev, k))
        b = dev.stream("b").submit(lambda: execute_kernel(dev, k))
        cl.engine.run()
        assert a.finished_at == b.finished_at

    def test_wave_callback_can_touch_interconnect(self):
        """The fused-retrieval pattern: injecting transfers mid-kernel works
        and the transfers complete without blocking the kernel."""
        cl = dgx_v100(2)
        dev = cl.device(0)
        k = KernelSpec("k", num_blocks=dev.spec.concurrent_blocks * 4, bytes_read=2e9)
        sent = []

        def on_wave(info):
            ev = cl.interconnect.transfer(0, 1, 1e6)
            sent.append(ev)

        op = dev.default_stream.submit(lambda: execute_kernel(dev, k, on_wave=on_wave))
        cl.engine.run()
        assert len(sent) == 4
        assert all(ev.triggered for ev in sent)
        # kernel duration unaffected by the injected traffic
        assert op.finished_at - op.started_at == pytest.approx(kernel_time(k, dev.spec))


class TestHostDeviceSyncPatterns:
    def test_paper_baseline_control_flow(self):
        """kernel → device sync → 'collective' → sync: times compose."""
        cl = dgx_v100(1)
        dev = cl.device(0)
        k = KernelSpec("k", num_blocks=1000, bytes_read=5e8)

        def host(cluster):
            dev.default_stream.submit(lambda: execute_kernel(dev, k))
            yield from dev.synchronize()
            t_after_sync = cluster.engine.now
            yield cluster.engine.timeout(10 * us)  # stand-in collective
            return t_after_sync

        elapsed = cl.run(host)
        expected = kernel_time(k, dev.spec) + dev.spec.sync_overhead_ns + 10 * us
        assert elapsed == pytest.approx(expected)

    def test_clock_monotone_across_many_batches(self):
        cl = dgx_v100(2)
        k = KernelSpec("k", num_blocks=100, bytes_read=1e7)
        stamps = []
        for _ in range(5):
            def host(cluster):
                ops = [d.default_stream.submit(lambda d=d: execute_kernel(d, k))
                       for d in cluster.devices]
                yield cluster.engine.all_of([op.done for op in ops])

            cl.run(host)
            stamps.append(cl.engine.now)
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)
