"""Chrome-trace id namespaces stay disjoint in a fully-loaded export.

Pre-observability, counter tracks shared pid 9999 with host spans and
fault instants landed on span pids — merged traces mis-attributed rows.
These tests pin the fixed layout: device spans on 0..G-1, host spans on
HOST_PID, telemetry gauges on 9998, fault instants on FAULT_PID, raw
counters on COUNTER_PID, and flow-event ids starting at FLOW_ID_BASE.
"""

from __future__ import annotations

import json

from repro.obs import TraceSpec, trace_scope
from repro.simgpu.profiler import Profiler, TraceRef
from repro.simgpu.trace import (
    COUNTER_PID,
    FAULT_PID,
    FLOW_ID_BASE,
    HOST_PID,
    chrome_trace,
)
from repro.telemetry.export import TELEMETRY_PID


def loaded_profiler(n_devices=2, n_batches=2):
    """A profiler exercising every event family at once."""
    prof = Profiler()
    for b in range(n_batches):
        base = 1000.0 * b
        with trace_scope(prof, TraceRef(0, b)):
            for d in range(n_devices):
                prof.record_span(f"emb.dev{d}", "kernel", d, base, base + 300.0)
                prof.record_span(f"xfer.dev{d}", "link", d, base + 300.0, base + 400.0)
            prof.record_span("fused", "fused", -1, base, base + 450.0)
    prof.record_span("dev1.down", "fault", 1, 500.0, 900.0)
    prof.counter("comm_bytes").add(0.0, 4096.0)
    prof.counter("cache.hits.dev0").add(100.0, 1.0)
    return prof


class TestPidNamespaces:
    def test_all_pid_constants_distinct(self):
        pids = {HOST_PID, FAULT_PID, COUNTER_PID, TELEMETRY_PID}
        assert len(pids) == 4
        assert FLOW_ID_BASE > max(pids)

    def test_combined_trace_namespaces_disjoint(self):
        prof = loaded_profiler()
        trace = chrome_trace(prof)
        span_pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "X"}
        fault_pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "i"}
        counter_pids = {e["pid"] for e in trace["traceEvents"] if e["ph"] == "C"}
        flow_ids = {e["id"] for e in trace["traceEvents"]
                    if e["ph"] in ("s", "t", "f")}
        assert span_pids == {0, 1, HOST_PID}
        assert fault_pids == {FAULT_PID}
        assert counter_pids == {COUNTER_PID}
        assert flow_ids and min(flow_ids) >= FLOW_ID_BASE
        # No family's ids bleed into another's.
        assert span_pids.isdisjoint(fault_pids)
        assert span_pids.isdisjoint(counter_pids)
        assert fault_pids.isdisjoint(counter_pids)

    def test_metadata_rows_name_every_namespace(self):
        trace = chrome_trace(loaded_profiler())
        meta = {e["pid"]: e["args"]["name"]
                for e in trace["traceEvents"] if e["ph"] == "M"}
        assert meta[HOST_PID] == "host / fabric"
        assert meta[FAULT_PID] == "faults"
        assert meta[COUNTER_PID] == "counters"
        assert meta[0] == "GPU 0"


class TestFlowEvents:
    def test_one_flow_per_batch_with_start_and_end(self):
        trace = chrome_trace(loaded_profiler(n_batches=3))
        flows = [e for e in trace["traceEvents"] if e["ph"] in ("s", "t", "f")]
        by_id = {}
        for e in flows:
            by_id.setdefault(e["id"], []).append(e)
        assert len(by_id) == 3
        for fid, events in by_id.items():
            phases = [e["ph"] for e in events]
            assert phases[0] == "s"
            assert phases[-1] == "f"
            assert events[-1]["bp"] == "e"  # bind to the enclosing slice
            assert all(p == "t" for p in phases[1:-1])

    def test_flows_bind_to_existing_slices(self):
        """Every flow event's (pid, ts) matches a span slice's start."""
        trace = chrome_trace(loaded_profiler())
        slice_keys = {(e["pid"], e["ts"]) for e in trace["traceEvents"]
                      if e["ph"] == "X"}
        for e in trace["traceEvents"]:
            if e["ph"] in ("s", "t", "f"):
                assert (e["pid"], e["ts"]) in slice_keys

    def test_flow_names_carry_trace_and_batch(self):
        trace = chrome_trace(loaded_profiler(n_batches=2))
        names = {e["name"] for e in trace["traceEvents"]
                 if e["ph"] in ("s", "t", "f")}
        assert names == {"trace0.batch0", "trace0.batch1"}

    def test_flows_flag_disables(self):
        trace = chrome_trace(loaded_profiler(), flows=False)
        assert not [e for e in trace["traceEvents"] if e["ph"] in ("s", "t", "f")]

    def test_single_span_batch_gets_no_arrow(self):
        prof = Profiler()
        with trace_scope(prof, TraceRef(0, 0)):
            prof.record_span("only", "fused", -1, 0.0, 10.0)
        trace = chrome_trace(prof)
        assert not [e for e in trace["traceEvents"] if e["ph"] in ("s", "t", "f")]

    def test_untraced_spans_get_no_flows(self):
        prof = Profiler()
        prof.record_span("a", "compute", 0, 0.0, 10.0)
        prof.record_span("b", "compute", 1, 10.0, 20.0)
        trace = chrome_trace(prof)
        assert not [e for e in trace["traceEvents"] if e["ph"] in ("s", "t", "f")]


class TestRoundTrip:
    def test_combined_trace_survives_json(self, tmp_path):
        trace = chrome_trace(loaded_profiler())
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(trace))
        back = json.loads(path.read_text())
        assert back == trace

    def test_end_to_end_traced_run_export(self, tmp_path):
        """A real traced run exports spans + flows with disjoint namespaces."""
        from repro.core.retrieval import DistributedEmbedding
        from repro.core.runspec import preset_runspec
        from repro.dlrm.data import SyntheticDataGenerator

        spec = preset_runspec("tiny", n_devices=2, obs=TraceSpec())
        emb = DistributedEmbedding.from_spec(spec)
        gen = SyntheticDataGenerator(spec.workload)
        emb.forward_timed(gen.lengths_batch())
        trace = chrome_trace(emb.cluster.profiler)
        back = json.loads(json.dumps(trace))
        flows = [e for e in back["traceEvents"] if e["ph"] in ("s", "t", "f")]
        assert flows
        assert all(e["id"] >= FLOW_ID_BASE for e in flows)
        span_pids = {e["pid"] for e in back["traceEvents"] if e["ph"] == "X"}
        assert span_pids <= {0, 1, HOST_PID}
