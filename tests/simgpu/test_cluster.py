"""Tests for cluster assembly and device specs."""

from __future__ import annotations

import pytest

from repro.simgpu import (
    A100_SPEC,
    Cluster,
    DeviceSpec,
    H100_SPEC,
    V100_SPEC,
    dgx_v100,
    multinode,
    nvlink_dgx1,
    pcie_node,
)
from repro.simgpu.units import GiB


class TestDeviceSpec:
    def test_v100_defaults_match_paper_testbed(self):
        assert V100_SPEC.mem_bytes == 32 * GiB
        assert V100_SPEC.mem_bandwidth == 900.0
        assert V100_SPEC.mem_efficiency == pytest.approx(0.57)  # paper ncu
        assert V100_SPEC.compute_efficiency == pytest.approx(0.38)  # paper ncu
        assert V100_SPEC.sm_count == 80

    def test_concurrent_blocks(self):
        assert V100_SPEC.concurrent_blocks == 80 * 8

    def test_effective_bandwidth(self):
        assert V100_SPEC.effective_mem_bandwidth == pytest.approx(900 * 0.57)

    def test_with_memory(self):
        small = V100_SPEC.with_memory(1 * GiB)
        assert small.mem_bytes == GiB
        assert small.sm_count == V100_SPEC.sm_count

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec(mem_efficiency=0.0)
        with pytest.raises(ValueError):
            DeviceSpec(mem_efficiency=1.5)
        with pytest.raises(ValueError):
            DeviceSpec(sm_count=0)

    def test_newer_gpus_are_faster(self):
        assert A100_SPEC.mem_bandwidth > V100_SPEC.mem_bandwidth
        assert H100_SPEC.mem_bandwidth > A100_SPEC.mem_bandwidth


class TestCluster:
    def test_dgx_factory(self):
        cl = dgx_v100(4)
        assert cl.n_devices == 4
        assert cl.devices[0].spec is V100_SPEC
        assert cl.topology.name.startswith("nvlink")

    def test_device_ids(self):
        cl = dgx_v100(3)
        assert [d.id for d in cl.devices] == [0, 1, 2]
        assert cl.device(2).id == 2

    def test_zero_devices_rejected(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_topology_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Cluster(4, topology=nvlink_dgx1(2))

    def test_run_returns_elapsed(self):
        cl = dgx_v100(1)

        def host(cluster):
            yield cluster.engine.timeout(123.0)

        assert cl.run(host) == 123.0
        # clock accumulates across runs
        assert cl.run(host) == 123.0
        assert cl.engine.now == 246.0

    def test_barrier_all_waits_for_all_devices(self):
        cl = dgx_v100(2)
        cl.device(0).default_stream.submit_delay(100.0)
        cl.device(1).default_stream.submit_delay(300.0)

        def host(cluster):
            yield from cluster.barrier_all()

        elapsed = cl.run(host)
        assert elapsed >= 300.0

    def test_multinode_has_slow_inter_links(self):
        cl = multinode(2, devices_per_node=2)
        intra = cl.topology.link_spec(0, 1).bandwidth
        inter = cl.topology.link_spec(0, 2).bandwidth
        assert inter < intra

    def test_pcie_node(self):
        cl = pcie_node(2)
        assert cl.topology.link_spec(0, 1).bandwidth < 48.0

    def test_reset_profiler(self):
        cl = dgx_v100(2)
        cl.profiler.add_count("x", 0.0, 1.0)
        cl.reset_profiler()
        assert cl.profiler.counters == {}

    def test_memory_isolated_per_device(self):
        cl = dgx_v100(2)
        cl.device(0).memory.alloc((100,))
        assert cl.device(1).memory.used == 0
