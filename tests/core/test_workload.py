"""Tests for derived device workloads and communication volumes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import INDEX_BYTES
from repro.core.sharding import TableWiseSharding, minibatch_bounds
from repro.core.workload import (
    alltoall_split_bytes,
    build_device_workloads,
    lengths_from_batch,
    unpack_bytes_received,
)
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.embedding import EmbeddingTableConfig
from repro.simgpu.device import V100_SPEC


def make(n_tables=4, G=2, B=40, dim=8, max_pool=5, spb=16, seed=3):
    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=100, dim=dim, batch_size=B,
        max_pooling=max_pool, seed=seed,
    )
    plan = TableWiseSharding(cfg.table_configs(), G)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    return plan, lengths, build_device_workloads(plan, lengths, samples_per_block=spb)


class TestBuild:
    def test_one_workload_per_device(self):
        _, _, wls = make(G=3)
        assert [w.device_id for w in wls] == [0, 1, 2]

    def test_nnz_matches_lengths(self):
        plan, lengths, wls = make()
        for wl in wls:
            expect = sum(int(lengths[t.name].sum()) for t in plan.tables_on(wl.device_id))
            assert wl.nnz == expect

    def test_grid_geometry(self):
        _, _, wls = make(n_tables=4, G=2, B=40, spb=16)
        # 2 tables/device, ceil(40/16)=3 chunks → 6 blocks
        assert wls[0].num_blocks == 6
        assert wls[0].samples_per_block == 16
        assert wls[0].block_weights.shape == (6,)
        assert wls[0].block_dst_bytes.shape == (6, 2)

    def test_bytes_read_formula(self):
        _, _, wls = make(dim=8)
        wl = wls[0]
        rows = wl.nnz * 32  # 8 floats
        idx = wl.nnz * INDEX_BYTES
        assert wl.bytes_read >= rows + idx
        assert wl.bytes_read < rows + idx + (wl.batch_size * wl.num_local_tables + 1) * 8 + 1

    def test_bytes_written_formula(self):
        _, _, wls = make(n_tables=4, G=2, B=40, dim=8)
        assert wls[0].bytes_written == 40 * 2 * 32

    def test_output_bytes_by_dst_sums_to_written(self):
        _, _, wls = make(G=3, B=41)
        for wl in wls:
            assert wl.output_bytes_by_dst.sum() == pytest.approx(wl.bytes_written)

    def test_dst_split_follows_minibatch_bounds(self):
        _, _, wls = make(n_tables=2, G=2, B=40, dim=8)
        wl = wls[0]
        bounds = minibatch_bounds(40, 2)
        for dst, (lo, hi) in enumerate(bounds):
            expect = (hi - lo) * wl.num_local_tables * 32
            assert wl.output_bytes_by_dst[dst] == pytest.approx(expect)

    def test_remote_fraction(self):
        _, _, wls = make(G=4, B=40)
        for wl in wls:
            assert wl.remote_output_bytes == pytest.approx(wl.bytes_written * 3 / 4, rel=0.05)

    def test_missing_lengths_raise(self):
        cfg = WorkloadConfig(num_tables=2, rows_per_table=10, dim=4, batch_size=8, max_pooling=2)
        plan = TableWiseSharding(cfg.table_configs(), 2)
        with pytest.raises(KeyError, match="no lengths"):
            build_device_workloads(plan, {"sparse_0": np.ones(8, dtype=np.int64)})

    def test_inconsistent_batch_raises(self):
        cfg = WorkloadConfig(num_tables=2, rows_per_table=10, dim=4, batch_size=8, max_pooling=2)
        plan = TableWiseSharding(cfg.table_configs(), 1)
        with pytest.raises(ValueError, match="inconsistent"):
            build_device_workloads(
                plan,
                {
                    "sparse_0": np.ones(8, dtype=np.int64),
                    "sparse_1": np.ones(9, dtype=np.int64),
                },
            )

    def test_device_with_no_tables(self):
        cfg = WorkloadConfig(num_tables=2, rows_per_table=10, dim=4, batch_size=8, max_pooling=2)
        plan = TableWiseSharding(cfg.table_configs(), 4)
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        wls = build_device_workloads(plan, lengths)
        empty = [w for w in wls if w.num_local_tables == 0]
        assert len(empty) == 2
        for w in empty:
            assert w.nnz == 0 and w.num_blocks == 0
            assert w.kernel_spec().num_blocks == 0

    def test_lengths_from_batch(self):
        cfg = WorkloadConfig(num_tables=2, rows_per_table=10, dim=4, batch_size=8, max_pooling=3)
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        lengths = lengths_from_batch(batch)
        for name, f in batch:
            assert np.array_equal(lengths[name], f.lengths)


class TestWaveDstBytes:
    def test_rows_sum_to_block_totals(self):
        _, _, wls = make(G=3, B=50, spb=8)
        wl = wls[0]
        waves = wl.wave_dst_bytes(concurrent_blocks=4)
        assert waves.sum() == pytest.approx(wl.bytes_written)
        assert waves.shape[0] == int(np.ceil(wl.num_blocks / 4))

    def test_single_wave_when_concurrency_large(self):
        _, _, wls = make()
        wl = wls[0]
        waves = wl.wave_dst_bytes(concurrent_blocks=10_000)
        assert waves.shape[0] == 1
        assert np.allclose(waves[0], wl.output_bytes_by_dst)

    def test_invalid_concurrency(self):
        _, _, wls = make()
        with pytest.raises(ValueError):
            wls[0].wave_dst_bytes(0)


class TestAllToAllSplit:
    def test_shape_and_zero_diagonal(self):
        _, _, wls = make(G=3)
        split = alltoall_split_bytes(wls)
        assert split.shape == (3, 3)
        assert np.all(np.diag(split) == 0)

    def test_symmetric_for_uniform_tables(self):
        _, _, wls = make(n_tables=4, G=2, B=40)
        split = alltoall_split_bytes(wls)
        assert split[0, 1] == pytest.approx(split[1, 0])

    def test_unpack_equals_received(self):
        _, _, wls = make(G=3, B=41)
        split = alltoall_split_bytes(wls)
        for d in range(3):
            assert unpack_bytes_received(wls, d) == pytest.approx(split[:, d].sum())


class TestKernelSpecIntegration:
    def test_kernel_spec_fields(self):
        _, _, wls = make()
        k = wls[0].kernel_spec("test")
        assert k.num_blocks == wls[0].num_blocks
        assert k.bytes_read == wls[0].bytes_read
        assert k.min_waves_for_peak > 0
        assert k.block_weights is not None

    def test_paper_weak_scale_wave_count(self):
        """The paper-scale weak config launches ≳24 waves (no derate)."""
        cfg = WorkloadConfig(num_tables=64, rows_per_table=1000, dim=64,
                             batch_size=16384, max_pooling=128, seed=0)
        plan = TableWiseSharding(cfg.table_configs(), 1)
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        wls = build_device_workloads(plan, lengths)
        waves = np.ceil(wls[0].num_blocks / V100_SPEC.concurrent_blocks)
        assert waves >= 24


@settings(deadline=None)
@given(
    n_tables=st.integers(min_value=1, max_value=10),
    G=st.integers(min_value=1, max_value=5),
    B=st.integers(min_value=1, max_value=100),
    spb=st.integers(min_value=1, max_value=32),
)
def test_volume_conservation_property(n_tables, G, B, spb):
    """Every output byte has exactly one destination, whatever the shape."""
    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=50, dim=4, batch_size=B,
        max_pooling=3, seed=1,
    )
    plan = TableWiseSharding(cfg.table_configs(), G)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    wls = build_device_workloads(plan, lengths, samples_per_block=spb)
    total_out = sum(wl.bytes_written for wl in wls)
    assert total_out == pytest.approx(B * n_tables * 16)  # dim 4 x fp32
    for wl in wls:
        assert wl.output_bytes_by_dst.sum() == pytest.approx(wl.bytes_written)
        assert wl.block_dst_bytes.sum() == pytest.approx(wl.bytes_written)
