"""Failure-injection tests: broken substrates must fail loudly, not wrongly.

A simulator that silently produces numbers on a mis-configured system is
worse than one that crashes; these tests check that the retrieval stack
surfaces substrate failures (no peer access, disconnected fabric, OOM,
failed events) instead of swallowing them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.pgas import PGASContext
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.baseline import BaselineRetrieval
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu import Cluster, LinkSpec, Topology, dgx_v100
from repro.simgpu.engine import Engine, SimulationError
from repro.simgpu.memory import OutOfDeviceMemory


def make_workloads(G=2, **kw):
    defaults = dict(num_tables=8, rows_per_table=1000, dim=16, batch_size=256,
                    max_pooling=4, seed=1)
    defaults.update(kw)
    cfg = WorkloadConfig(**defaults)
    plan = TableWiseSharding(cfg.table_configs(), G)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    return build_device_workloads(plan, lengths)


class TestBrokenFabric:
    def test_pgas_without_peer_access_raises(self):
        cl = dgx_v100(2)
        for dev in cl.devices:
            dev._peers.clear()
        retrieval = PGASFusedRetrieval(cl)
        with pytest.raises(PermissionError, match="peer access"):
            retrieval.run_batch(make_workloads(G=2))

    def test_disconnected_topology_raises(self):
        """A topology with no link between 0 and 1 cannot run a collective."""
        topo = Topology(2, lambda s, d: None, name="islands")
        cl = Cluster(2, topology=topo)
        retrieval = BaselineRetrieval(cl)
        with pytest.raises(ValueError, match="not connected"):
            retrieval.run_batch(make_workloads(G=2))

    def test_pgas_partial_connectivity(self):
        """One-directional fabric: 0→1 exists, 1→0 does not."""
        topo = Topology(
            2,
            lambda s, d: LinkSpec(bandwidth=48.0, latency_ns=700.0) if s == 0 else None,
            name="one-way",
        )
        cl = Cluster(2, topology=topo)
        ctx = PGASContext(cl)
        ctx.put(0, 1, 100.0)  # fine
        # The cluster never mapped 1→0 as peers, so the one-sided write is
        # refused at the peer-access check (before the fabric is consulted).
        with pytest.raises(PermissionError, match="peer access"):
            ctx.put(1, 0, 100.0)


class TestMemoryPressure:
    def test_retrieval_construction_oom_is_loud(self):
        from repro.core.retrieval import DistributedEmbedding
        from repro.simgpu.device import V100_SPEC
        from repro.simgpu.interconnect import nvlink_dgx1
        from repro.simgpu.units import MiB

        tiny = Cluster(2, topology=nvlink_dgx1(2),
                       device_spec=V100_SPEC.with_memory(4 * MiB))
        cfg = WorkloadConfig(num_tables=8, rows_per_table=100_000, dim=16,
                             batch_size=64, max_pooling=2)
        with pytest.raises(OutOfDeviceMemory):
            DistributedEmbedding(cfg, 2, cluster=tiny)

    def test_oom_reports_device_and_sizes(self):
        from repro.simgpu.memory import MemoryPool

        pool = MemoryPool(capacity=64, device_id=7)
        with pytest.raises(OutOfDeviceMemory) as ei:
            pool.alloc((1000,), np.uint8)
        assert ei.value.device_id == 7
        assert "device 7" in str(ei.value)


class TestEngineFailures:
    def test_failed_event_propagates_through_all_of(self):
        eng = Engine()
        good = eng.timeout(10.0)
        bad = eng.event()
        combo = eng.all_of([good, bad])

        def proc():
            yield combo

        p = eng.process(proc())
        eng.call_at(5.0, lambda: bad.fail(RuntimeError("fabric down")))
        with pytest.raises(RuntimeError, match="fabric down"):
            eng.run_until_event(p)

    def test_exception_inside_stream_op_fails_process(self):
        cl = dgx_v100(1)
        dev = cl.device(0)

        def exploding():
            yield cl.engine.timeout(1.0)
            raise ValueError("kernel fault")

        op = dev.default_stream.submit(exploding, name="bad_kernel")

        def host(cluster):
            yield op.done

        with pytest.raises(ValueError, match="kernel fault"):
            cl.run(host)

    def test_simulation_limit_catches_runaway(self):
        eng = Engine()

        def forever():
            while True:
                yield eng.timeout(10.0)

        p = eng.process(forever())
        with pytest.raises(SimulationError, match="exceeded limit"):
            eng.run_until_event(p, limit=100.0)


class TestWorkloadValidation:
    def test_mixed_dims_on_one_device_rejected(self):
        from repro.dlrm.embedding import EmbeddingTableConfig

        cfgs = [
            EmbeddingTableConfig("a", 10, 8),
            EmbeddingTableConfig("b", 10, 16),
        ]
        plan = TableWiseSharding(cfgs, 1)
        lengths = {"a": np.ones(4, dtype=np.int64), "b": np.ones(4, dtype=np.int64)}
        with pytest.raises(ValueError, match="mixed embedding dims"):
            build_device_workloads(plan, lengths)

    def test_wrong_device_count_rejected_by_both_backends(self):
        wls = make_workloads(G=3)
        with pytest.raises(ValueError):
            BaselineRetrieval(dgx_v100(2)).run_batch(wls)
        with pytest.raises(ValueError):
            PGASFusedRetrieval(dgx_v100(2)).run_batch(wls)
