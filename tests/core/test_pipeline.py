"""Tests for the timed end-to-end DLRM inference pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig, PipelineTiming
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu import dgx_v100


def make_config(**kw):
    defaults = dict(
        num_tables=32, rows_per_table=10_000, dim=64, batch_size=8192,
        max_pooling=24, num_dense_features=13, seed=3,
    )
    defaults.update(kw)
    return PipelineConfig(workload=WorkloadConfig(**defaults))


@pytest.fixture(scope="module")
def lengths():
    cfg = make_config()
    return SyntheticDataGenerator(cfg.workload).lengths_batch()


class TestConfig:
    def test_mlp_sizes(self):
        cfg = make_config()
        assert cfg.bottom_sizes[0] == 13
        assert cfg.bottom_sizes[-1] == 64
        assert cfg.top_sizes[-1] == 1
        # dot interaction: d + (F+1)F/2 inputs to the top MLP
        assert cfg.top_sizes[0] == 64 + 33 * 32 // 2

    def test_flops_per_sample(self):
        cfg = make_config()
        assert cfg.mlp_flops_per_sample([4, 8, 2]) == 2 * 4 * 8 + 2 * 8 * 2

    def test_bad_backend_rejected(self):
        with pytest.raises(ValueError):
            DLRMInferencePipeline(make_config(), 2, backend="gloo")  # type: ignore[arg-type]

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            DLRMInferencePipeline(make_config(), 2, h2d_bandwidth=0.0)


class TestStages:
    def test_all_stages_positive(self, lengths):
        pipe = DLRMInferencePipeline(make_config(), 2)
        t = pipe.run_batch(lengths)
        assert t.input_copy_ns > 0
        assert t.dense_mlp_ns > 0
        assert t.emb.total_ns > 0
        assert t.interaction_top_ns > 0
        assert t.total_ns > 0

    def test_stage_sum_with_overlap(self, lengths):
        """total = copy + max(dense, emb)-ish + tail: stages overlap."""
        pipe = DLRMInferencePipeline(make_config(), 2)
        t = pipe.run_batch(lengths)
        serial = t.input_copy_ns + t.dense_mlp_ns + t.emb.total_ns + t.interaction_top_ns
        assert t.total_ns < serial  # Fig.-4 concurrency saves time
        assert t.overlap_saved_ns > 0
        assert t.total_ns == pytest.approx(serial - t.overlap_saved_ns, rel=1e-6)

    def test_emb_dominates_this_shape(self, lengths):
        """For DLRM shapes, the EMB stage is the bottleneck (paper intro)."""
        pipe = DLRMInferencePipeline(make_config(), 2)
        t = pipe.run_batch(lengths)
        assert t.emb.total_ns > t.dense_mlp_ns
        assert t.emb_fraction > 0.3

    def test_pgas_pipeline_faster(self, lengths):
        cfg = make_config()
        t_base = DLRMInferencePipeline(cfg, 2, backend="baseline").run_batch(lengths)
        t_pgas = DLRMInferencePipeline(cfg, 2, backend="pgas").run_batch(lengths)
        assert t_pgas.total_ns < t_base.total_ns
        # End-to-end gain is smaller than the EMB-only gain (Amdahl).
        emb_speedup = t_base.emb.total_ns / t_pgas.emb.total_ns
        e2e_speedup = t_base.total_ns / t_pgas.total_ns
        assert 1.0 < e2e_speedup < emb_speedup

    def test_backend_override(self, lengths):
        pipe = DLRMInferencePipeline(make_config(), 2, backend="pgas")
        t = pipe.run_batch(lengths, backend="baseline")
        assert t.emb.sync_unpack_ns > 0  # baseline path actually ran

    def test_run_batches_accumulates(self, lengths):
        pipe = DLRMInferencePipeline(make_config(), 2)
        single = pipe.run_batch(lengths)
        pipe2 = DLRMInferencePipeline(make_config(), 2)
        triple = pipe2.run_batches([lengths] * 3)
        assert triple.batches == 3
        assert triple.total_ns == pytest.approx(3 * single.total_ns, rel=1e-6)

    def test_single_gpu_pipeline(self, lengths):
        pipe = DLRMInferencePipeline(make_config(), 1)
        t = pipe.run_batch(lengths)
        assert t.emb.comm_ns == 0.0
        assert t.total_ns > 0


class TestPipelineTiming:
    def test_add(self):
        a = PipelineTiming(input_copy_ns=1, dense_mlp_ns=2, interaction_top_ns=3,
                           total_ns=10, batches=1)
        b = PipelineTiming(input_copy_ns=10, dense_mlp_ns=20, interaction_top_ns=30,
                           total_ns=100, batches=1)
        a.add(b)
        assert a.input_copy_ns == 11 and a.total_ns == 110 and a.batches == 2

    def test_emb_fraction_empty(self):
        assert PipelineTiming().emb_fraction == 0.0


class TestInputStagingOverlap:
    """The §V input-pipelining proposal."""

    def test_overlap_reduces_total(self, lengths):
        cfg = make_config()
        t_plain = DLRMInferencePipeline(cfg, 2).run_batch(lengths)
        t_olap = DLRMInferencePipeline(
            cfg, 2, overlap_input_staging=True, staging_chunks=8
        ).run_batch(lengths)
        assert t_olap.total_ns < t_plain.total_ns
        # Savings bounded by the staging time itself.
        assert t_plain.total_ns - t_olap.total_ns <= t_plain.input_copy_ns

    def test_first_chunk_gates_compute(self, lengths):
        """With K chunks, the visible staging stage is ~1/K of the copy."""
        cfg = make_config()
        t_plain = DLRMInferencePipeline(cfg, 2).run_batch(lengths)
        t_olap = DLRMInferencePipeline(
            cfg, 2, overlap_input_staging=True, staging_chunks=4
        ).run_batch(lengths)
        assert t_olap.input_copy_ns == pytest.approx(
            t_plain.input_copy_ns / 4, rel=1e-6
        )

    def test_copies_still_complete(self, lengths):
        """Pipelining must not drop input bytes: the batch waits for them."""
        cfg = make_config()
        pipe = DLRMInferencePipeline(cfg, 2, overlap_input_staging=True)
        pipe.run_batch(lengths)
        for dev in pipe.cluster.devices:
            ev = dev.stream("h2d").drained()
            assert ev.triggered

    def test_bad_chunk_count(self):
        with pytest.raises(ValueError):
            DLRMInferencePipeline(make_config(), 2, staging_chunks=0)


class TestInterBatchPipelining:
    def test_pipelined_faster_than_serial(self, lengths):
        cfg = make_config()
        serial = DLRMInferencePipeline(cfg, 2).run_batches([lengths] * 4)
        pipelined = DLRMInferencePipeline(cfg, 2).run_batches_pipelined([lengths] * 4)
        assert pipelined.batches == serial.batches == 4
        assert pipelined.total_ns < serial.total_ns
        # batches 1..3 see their inputs already resident: the saving is
        # roughly (n-1) input-copy times.
        one_copy = serial.input_copy_ns / 4
        saving = serial.total_ns - pipelined.total_ns
        assert saving > 1.5 * one_copy

    def test_first_batch_still_pays_its_copy(self, lengths):
        cfg = make_config()
        pipelined = DLRMInferencePipeline(cfg, 2).run_batches_pipelined([lengths] * 2)
        # stage-1 waits: the first is a full copy, later ones near zero.
        single = DLRMInferencePipeline(cfg, 2).run_batch(lengths)
        assert pipelined.input_copy_ns >= single.input_copy_ns * 0.95
        assert pipelined.input_copy_ns < single.input_copy_ns * 1.5

    def test_empty_stream(self):
        cfg = make_config()
        t = DLRMInferencePipeline(cfg, 2).run_batches_pipelined([])
        assert t.batches == 0 and t.total_ns == 0.0
