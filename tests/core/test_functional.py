"""Functional-equality tests: both backends must match the oracle exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.functional import (
    SendBlock,
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
    reference_forward,
)
from repro.core.sharding import TableWiseSharding, minibatch_bounds
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.embedding import EmbeddingBagCollection


def setup(n_tables=6, G=3, B=33, dim=8, strategy="contiguous", seed=11, max_pool=5):
    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=50, dim=dim, batch_size=B,
        max_pooling=max_pool, min_pooling=0, seed=seed,
    )
    ebc = EmbeddingBagCollection.from_configs(
        cfg.table_configs(), rng=np.random.default_rng(seed)
    )
    plan = TableWiseSharding(cfg.table_configs(), G, strategy=strategy)
    sharded = ShardedEmbeddingTables.from_collection(ebc, plan)
    batch = SyntheticDataGenerator(cfg).sparse_batch()
    return ebc, plan, sharded, batch


class TestShardedTables:
    def test_from_collection_aliases_weights(self):
        ebc, plan, sharded, _ = setup()
        t = sharded.per_device[0][0]
        assert t.weights is ebc.table(t.name).weights

    def test_wrong_device_count_rejected(self):
        ebc, plan, sharded, _ = setup(G=2)
        with pytest.raises(ValueError):
            ShardedEmbeddingTables(plan, sharded.per_device[:1])

    def test_wrong_table_assignment_rejected(self):
        ebc, plan, _, _ = setup(G=2)
        wrong = [
            [ebc.table(t.name) for t in plan.tables_on(1)],
            [ebc.table(t.name) for t in plan.tables_on(0)],
        ]
        with pytest.raises(ValueError, match="do not match plan"):
            ShardedEmbeddingTables(plan, wrong)

    def test_build_creates_fresh_weights(self):
        sh = ShardedEmbeddingTables.build(
            WorkloadConfig(num_tables=4, rows_per_table=10, dim=4, batch_size=2,
                           max_pooling=1).table_configs(),
            2,
        )
        assert sh.n_devices == 2
        assert sh.dim == 4

    def test_local_forward_shape(self):
        _, plan, sharded, batch = setup(n_tables=6, G=3, B=33)
        out = sharded.local_forward(1, batch)
        assert out.shape == (33, 2, 8)


class TestBaselineFunctional:
    def test_matches_reference_exactly(self):
        ebc, plan, sharded, batch = setup()
        ref = reference_forward(ebc, batch)
        outs, _ = baseline_functional_forward(sharded, batch)
        for g, (lo, hi) in enumerate(minibatch_bounds(batch.batch_size, 3)):
            assert np.array_equal(outs[g], ref[lo:hi])

    def test_send_blocks_cover_all_pairs(self):
        _, plan, sharded, batch = setup(G=3)
        _, blocks = baseline_functional_forward(sharded, batch)
        pairs = {(b.src, b.dst) for b in blocks}
        assert pairs == {(s, d) for s in range(3) for d in range(3)}

    def test_send_block_bytes_match_workload_model(self):
        """Wire format of the functional layer == the timing model's bytes."""
        from repro.core.workload import alltoall_split_bytes, build_device_workloads, lengths_from_batch

        _, plan, sharded, batch = setup(G=3)
        _, blocks = baseline_functional_forward(sharded, batch)
        wls = build_device_workloads(plan, lengths_from_batch(batch))
        split = alltoall_split_bytes(wls)
        for b in blocks:
            if b.src != b.dst:
                assert b.nbytes == split[b.src, b.dst]

    def test_output_dtype_and_shape(self):
        _, _, sharded, batch = setup(G=2, B=10)
        outs, _ = baseline_functional_forward(sharded, batch)
        assert outs[0].shape == (5, 6, 8)
        assert outs[0].dtype == np.float32


class TestPGASFunctional:
    def test_bitwise_equal_to_baseline(self):
        _, _, sharded, batch = setup()
        base, _ = baseline_functional_forward(sharded, batch)
        pgas = pgas_functional_forward(sharded, batch)
        for a, b in zip(base, pgas):
            assert np.array_equal(a, b)

    def test_matches_reference_exactly(self):
        ebc, _, sharded, batch = setup(G=4, B=29)
        ref = reference_forward(ebc, batch)
        outs = pgas_functional_forward(sharded, batch)
        for g, (lo, hi) in enumerate(minibatch_bounds(29, 4)):
            assert np.array_equal(outs[g], ref[lo:hi])


class TestEdgeCases:
    def test_single_device_is_reference(self):
        ebc, _, sharded, batch = setup(G=1)
        ref = reference_forward(ebc, batch)
        base, blocks = baseline_functional_forward(sharded, batch)
        pgas = pgas_functional_forward(sharded, batch)
        assert np.array_equal(base[0], ref)
        assert np.array_equal(pgas[0], ref)

    def test_more_devices_than_tables(self):
        ebc, _, sharded, batch = setup(n_tables=2, G=4)
        ref = reference_forward(ebc, batch)
        for outs in (baseline_functional_forward(sharded, batch)[0],
                     pgas_functional_forward(sharded, batch)):
            for g, (lo, hi) in enumerate(minibatch_bounds(batch.batch_size, 4)):
                assert np.array_equal(outs[g], ref[lo:hi])

    def test_round_robin_sharding_unpack_permutation(self):
        """Round-robin needs a feature permutation on unpack — still exact."""
        ebc, _, sharded, batch = setup(strategy="round_robin")
        ref = reference_forward(ebc, batch)
        outs, _ = baseline_functional_forward(sharded, batch)
        for g, (lo, hi) in enumerate(minibatch_bounds(batch.batch_size, 3)):
            assert np.array_equal(outs[g], ref[lo:hi])

    def test_all_empty_bags(self):
        ebc, _, sharded, batch = setup(max_pool=0)
        assert batch.total_nnz == 0
        ref = reference_forward(ebc, batch)
        assert np.all(ref == 0)
        outs = pgas_functional_forward(sharded, batch)
        assert all(np.all(o == 0) for o in outs)

    def test_batch_smaller_than_devices(self):
        ebc, _, sharded, batch = setup(B=2, G=3)
        ref = reference_forward(ebc, batch)
        outs = pgas_functional_forward(sharded, batch)
        bounds = minibatch_bounds(2, 3)
        for g, (lo, hi) in enumerate(bounds):
            assert outs[g].shape[0] == hi - lo
            assert np.array_equal(outs[g], ref[lo:hi])


@settings(deadline=None, max_examples=25)
@given(
    n_tables=st.integers(min_value=1, max_value=8),
    G=st.integers(min_value=1, max_value=5),
    B=st.integers(min_value=1, max_value=40),
    strategy=st.sampled_from(["contiguous", "round_robin"]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_backend_equivalence_property(n_tables, G, B, strategy, seed):
    """For ANY shape, sharding, and data: baseline == PGAS == reference."""
    ebc, _, sharded, batch = setup(
        n_tables=n_tables, G=G, B=B, strategy=strategy, seed=seed
    )
    ref = reference_forward(ebc, batch)
    base, _ = baseline_functional_forward(sharded, batch)
    pgas = pgas_functional_forward(sharded, batch)
    for g, (lo, hi) in enumerate(minibatch_bounds(B, G)):
        assert np.array_equal(base[g], ref[lo:hi])
        assert np.array_equal(pgas[g], base[g])
