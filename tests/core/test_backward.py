"""Tests for the backward-pass extension (paper §V)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.backward import (
    BaselineBackward,
    PGASFusedBackward,
    baseline_functional_backward,
    pgas_functional_backward,
    reference_backward,
    table_row_gradients,
)
from repro.core.functional import ShardedEmbeddingTables
from repro.core.sharding import TableWiseSharding, minibatch_bounds
from repro.core.workload import build_device_workloads
from repro.dlrm.batch import JaggedField
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.embedding import EmbeddingBagCollection, EmbeddingTable, EmbeddingTableConfig
from repro.simgpu import dgx_v100


def cfg_small(**kw):
    defaults = dict(num_tables=6, rows_per_table=40, dim=8, batch_size=21,
                    max_pooling=5, seed=17)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


def fresh_tables(cfg, seed=5):
    ebc = EmbeddingBagCollection.from_configs(
        cfg.table_configs(), rng=np.random.default_rng(seed)
    )
    plan = TableWiseSharding(cfg.table_configs(), 3)
    return ebc, ShardedEmbeddingTables.from_collection(ebc, plan)


class TestRowGradients:
    def test_sum_pooling_repeats_sample_grad(self):
        t = EmbeddingTable(EmbeddingTableConfig("t", 10, 2), rng=np.random.default_rng(0))
        f = JaggedField.from_bags([[1, 2], [3]])
        g = np.array([[1.0, 1.0], [2.0, 2.0]], dtype=np.float32)
        rows, grads = table_row_gradients(t, f, g)
        assert list(rows) == [1, 2, 3]
        assert np.allclose(grads, [[1, 1], [1, 1], [2, 2]])

    def test_mean_pooling_scales_by_bag_size(self):
        t = EmbeddingTable(
            EmbeddingTableConfig("t", 10, 2, pooling="mean"), rng=np.random.default_rng(0)
        )
        f = JaggedField.from_bags([[1, 2], [3]])
        g = np.array([[1.0, 1.0], [2.0, 2.0]], dtype=np.float32)
        _, grads = table_row_gradients(t, f, g)
        assert np.allclose(grads, [[0.5, 0.5], [0.5, 0.5], [2, 2]])

    def test_hashed_rows(self):
        t = EmbeddingTable(EmbeddingTableConfig("t", 10, 2), rng=np.random.default_rng(0))
        f = JaggedField.from_bags([[13]])
        rows, _ = table_row_gradients(t, f, np.ones((1, 2), dtype=np.float32))
        assert rows[0] == 3

    def test_empty_bags_contribute_nothing(self):
        t = EmbeddingTable(EmbeddingTableConfig("t", 10, 2), rng=np.random.default_rng(0))
        f = JaggedField.from_bags([[], []])
        rows, grads = table_row_gradients(t, f, np.ones((2, 2), dtype=np.float32))
        assert rows.size == 0 and grads.shape == (0, 2)

    def test_batch_mismatch_rejected(self):
        t = EmbeddingTable(EmbeddingTableConfig("t", 10, 2), rng=np.random.default_rng(0))
        f = JaggedField.from_bags([[1]])
        with pytest.raises(ValueError):
            table_row_gradients(t, f, np.ones((3, 2), dtype=np.float32))

    def test_max_pooling_unsupported(self):
        t = EmbeddingTable(EmbeddingTableConfig("t", 10, 2, pooling="max"))
        f = JaggedField.from_bags([[1]])
        with pytest.raises(NotImplementedError):
            table_row_gradients(t, f, np.ones((1, 2), dtype=np.float32))


class TestFunctionalBackward:
    def grad_and_batch(self, cfg, seed=3):
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        rng = np.random.default_rng(seed)
        grad = rng.normal(size=(cfg.batch_size, cfg.num_tables, cfg.dim)).astype(np.float32)
        return batch, grad

    def test_baseline_matches_reference(self):
        cfg = cfg_small()
        batch, grad = self.grad_and_batch(cfg)
        ebc_ref, _ = fresh_tables(cfg)
        reference_backward(ebc_ref.tables, batch, grad)
        ebc_b, sh = fresh_tables(cfg)
        bounds = minibatch_bounds(cfg.batch_size, 3)
        baseline_functional_backward(sh, batch, [grad[lo:hi] for lo, hi in bounds])
        for a, b in zip(ebc_b.tables, ebc_ref.tables):
            assert np.allclose(a.weights, b.weights, atol=1e-5)

    def test_pgas_matches_reference_to_tolerance(self):
        cfg = cfg_small()
        batch, grad = self.grad_and_batch(cfg)
        ebc_ref, _ = fresh_tables(cfg)
        reference_backward(ebc_ref.tables, batch, grad)
        ebc_p, sh = fresh_tables(cfg)
        bounds = minibatch_bounds(cfg.batch_size, 3)
        pgas_functional_backward(sh, batch, [grad[lo:hi] for lo, hi in bounds])
        for a, b in zip(ebc_p.tables, ebc_ref.tables):
            assert np.allclose(a.weights, b.weights, atol=1e-4)

    def test_mean_pooling_backward(self):
        cfg = cfg_small(pooling="mean")
        batch, grad = self.grad_and_batch(cfg)
        ebc_ref, _ = fresh_tables(cfg)
        reference_backward(ebc_ref.tables, batch, grad)
        ebc_p, sh = fresh_tables(cfg)
        bounds = minibatch_bounds(cfg.batch_size, 3)
        pgas_functional_backward(sh, batch, [grad[lo:hi] for lo, hi in bounds])
        for a, b in zip(ebc_p.tables, ebc_ref.tables):
            assert np.allclose(a.weights, b.weights, atol=1e-4)

    def test_duplicate_indices_accumulate(self):
        """A row used by many samples receives all their contributions."""
        cfg = WorkloadConfig(num_tables=3, rows_per_table=2, dim=4, batch_size=10,
                             max_pooling=3, min_pooling=1, seed=0)
        batch, grad = self.grad_and_batch(cfg)
        ebc_ref, _ = fresh_tables(cfg)
        before = [t.weights.copy() for t in ebc_ref.tables]
        reference_backward(ebc_ref.tables, batch, grad)
        # with 2 rows and ≥10 lookups, weights must have moved
        assert any(
            not np.allclose(t.weights, w) for t, w in zip(ebc_ref.tables, before)
        )

    def test_wrong_grad_count_rejected(self):
        cfg = cfg_small()
        batch, grad = self.grad_and_batch(cfg)
        _, sh = fresh_tables(cfg)
        with pytest.raises(ValueError):
            baseline_functional_backward(sh, batch, [grad])
        with pytest.raises(ValueError):
            pgas_functional_backward(sh, batch, [grad])

    def test_lr_scales_update(self):
        cfg = cfg_small()
        batch, grad = self.grad_and_batch(cfg)
        ebc1, _ = fresh_tables(cfg)
        w0 = ebc1.tables[0].weights.copy()
        reference_backward(ebc1.tables, batch, grad, lr=1.0)
        delta1 = ebc1.tables[0].weights - w0
        ebc2, _ = fresh_tables(cfg)
        reference_backward(ebc2.tables, batch, grad, lr=0.5)
        delta2 = ebc2.tables[0].weights - w0
        assert np.allclose(delta2, delta1 * 0.5, atol=1e-6)


class TestTimedBackward:
    def make_workloads(self, G=2, n_tables=32, B=8192):
        cfg = WorkloadConfig(num_tables=n_tables, rows_per_table=10_000, dim=64,
                             batch_size=B, max_pooling=32, seed=2)
        plan = TableWiseSharding(cfg.table_configs(), G)
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        return build_device_workloads(plan, lengths)

    def test_pgas_backward_faster_than_baseline(self):
        wls = self.make_workloads()
        t_base = BaselineBackward(dgx_v100(2)).run_batch(wls)
        t_pgas = PGASFusedBackward(dgx_v100(2)).run_batch(wls)
        assert t_pgas.total_ns < t_base.total_ns

    def test_baseline_backward_has_pack_phase(self):
        wls = self.make_workloads()
        t = BaselineBackward(dgx_v100(2)).run_batch(wls)
        assert t.sync_unpack_ns > 0
        assert t.comm_ns > 0
        assert t.compute_ns > 0

    def test_single_gpu_no_comm(self):
        wls = self.make_workloads(G=1)
        t = BaselineBackward(dgx_v100(1)).run_batch(wls)
        assert t.comm_ns == 0.0
        t2 = PGASFusedBackward(dgx_v100(1)).run_batch(wls)
        assert t2.total_ns > 0

    def test_gradient_atomics_on_the_wire(self):
        cl = dgx_v100(2)
        wls = self.make_workloads()
        PGASFusedBackward(cl).run_batch(wls)
        from repro.comm.pgas import PGASContext

        counted = cl.profiler.counter(PGASContext.COUNTER).total
        # gradient volume ≈ forward remote volume (same split, reversed)
        expected = sum(wl.remote_output_bytes for wl in wls)
        assert counted == pytest.approx(expected, rel=0.02)
