"""Tests for the capacity-aware table placement planner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.planner import (
    PlacementError,
    min_devices_required,
    plan_table_wise,
)
from repro.dlrm.embedding import EmbeddingTableConfig
from repro.dlrm.heterogeneous import criteo_like
from repro.simgpu.device import DeviceSpec, V100_SPEC
from repro.simgpu.units import GiB


def uniform_tables(n, rows=1_000_000, dim=64):
    return [EmbeddingTableConfig(f"t{i}", rows, dim) for i in range(n)]


def tiny_device(capacity_gib: float) -> DeviceSpec:
    return V100_SPEC.with_memory(int(capacity_gib * GiB))


class TestMinDevices:
    def test_fits_one(self):
        # 64 x 256 MB = 16 GiB < 0.9 x 32 GiB
        assert min_devices_required(uniform_tables(64)) == 1

    def test_needs_two(self):
        # 128 tables ≈ 30.5 GiB > 28.8 GiB usable
        assert min_devices_required(uniform_tables(128)) == 2

    def test_single_table_too_big(self):
        huge = [EmbeddingTableConfig("huge", 200_000_000, 64)]  # ~48 GiB
        with pytest.raises(PlacementError, match="row-wise"):
            min_devices_required(huge)

    def test_reserve_fraction_matters(self):
        tables = uniform_tables(120)  # ~28.6 GiB
        assert min_devices_required(tables, reserve_fraction=0.0) == 1
        assert min_devices_required(tables, reserve_fraction=0.5) == 2

    def test_bad_reserve(self):
        with pytest.raises(ValueError):
            min_devices_required(uniform_tables(1), reserve_fraction=1.0)


class TestPlan:
    def test_minimal_feasible_count(self):
        report = plan_table_wise(uniform_tables(128))
        assert report.n_devices == 2
        report.plan.validate()

    def test_explicit_count_respected(self):
        report = plan_table_wise(uniform_tables(64), n_devices=4)
        assert report.n_devices == 4
        assert sum(len(report.plan.tables_on(d)) for d in range(4)) == 64

    def test_infeasible_explicit_count_raises(self):
        with pytest.raises(PlacementError, match="do not fit"):
            plan_table_wise(uniform_tables(256), n_devices=2)

    def test_balanced_for_uniform_tables(self):
        report = plan_table_wise(uniform_tables(64), n_devices=4)
        assert report.imbalance == pytest.approx(1.0)

    def test_lpt_balances_skewed_tables(self):
        """One huge + many small: LPT puts the huge one alone-ish."""
        tables = [EmbeddingTableConfig("big", 50_000_000, 64)] + uniform_tables(48)
        report = plan_table_wise(tables, n_devices=2)
        assert report.imbalance < 1.25
        big_owner = report.plan.owner_of("big")
        # the big table's device should carry fewer small tables
        n_small = [len(report.plan.tables_on(d)) for d in range(2)]
        assert n_small[big_owner] < n_small[1 - big_owner]

    def test_criteo_like_placement(self):
        workload = criteo_like(num_tables=26, dim=64, seed=7)
        report = plan_table_wise(workload.table_configs())
        report.plan.validate()
        assert all(u <= 1.0 for u in report.utilization)
        assert "placement" in report.summary()

    def test_utilization_bounded(self):
        report = plan_table_wise(uniform_tables(100), n_devices=4)
        for u in report.utilization:
            assert 0.0 < u <= 1.0

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            plan_table_wise([])

    def test_max_devices_cap(self):
        with pytest.raises(PlacementError, match="no feasible placement"):
            plan_table_wise(uniform_tables(1000), max_devices=4)

    @settings(deadline=None, max_examples=25)
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=200), min_size=1, max_size=30),
        G=st.integers(min_value=1, max_value=6),
    )
    def test_placement_properties(self, sizes, G):
        """Feasible placements are exact partitions within budget."""
        # rows scaled so each unit ~ 16 MiB; device = 4 GiB ⇒ 256 units/dev
        tables = [
            EmbeddingTableConfig(f"t{i}", s * 65536, 64) for i, s in enumerate(sizes)
        ]
        spec = tiny_device(4.0)
        try:
            report = plan_table_wise(tables, n_devices=G, device_spec=spec,
                                     reserve_fraction=0.1)
        except PlacementError:
            return  # infeasible is a legal outcome
        report.plan.validate()
        budget = spec.mem_bytes * 0.9
        for d in range(G):
            assert report.plan.memory_bytes(d) <= budget
        placed = sorted(
            t.name for d in range(G) for t in report.plan.tables_on(d)
        )
        assert placed == sorted(t.name for t in tables)
