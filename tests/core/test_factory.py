"""Backend factory: name parsing, FeatureSpec, build_backend over every
registered backend, and the removal of the legacy per-feature kwargs."""

from __future__ import annotations

import warnings

import pytest

from repro.cache import CacheConfig
from repro.comm.hier import HierSpec
from repro.compress import CompressionSpec
from repro.core.factory import (
    CANONICAL_FEATURE_ORDER,
    FeatureSpec,
    build_adapter,
    build_backend,
    parse_backend_name,
)
from repro.core.retrieval import DistributedEmbedding, available_backends
from repro.core.runspec import RunSpec
from repro.dlrm.data import WorkloadConfig
from repro.faults import ResilienceSpec
from repro.replication import ReplicationSpec
from repro.reshard import ReshardSpec


def small_cfg(**kw):
    defaults = dict(
        num_tables=4, rows_per_table=256, dim=8, batch_size=32,
        max_pooling=2, seed=9,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


#: RunSpec kwarg carrying each feature suffix's config
FEATURE_CONFIGS = {
    "cache": ("cache", CacheConfig()),
    "compress": ("compression", CompressionSpec()),
    "resilient": ("resilience", ResilienceSpec()),
    "replicated": ("replication", ReplicationSpec()),
    "reshard": ("reshard", ReshardSpec()),
    "hier": ("hier", HierSpec(devices_per_node=2)),
}


def runspec_for(backend: str) -> RunSpec:
    kwargs = {}
    for suffix, (kwarg, config) in FEATURE_CONFIGS.items():
        if f"+{suffix}" in backend:
            kwargs[kwarg] = config
    return RunSpec(small_cfg(), n_devices=2, backend=backend, **kwargs)


class TestParseBackendName:
    def test_bare_and_single_feature(self):
        assert parse_backend_name("pgas") == ("pgas", ())
        assert parse_backend_name("pgas+cache") == ("pgas", ("cache",))
        assert parse_backend_name("baseline+reshard") == (
            "baseline", ("reshard",)
        )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            parse_backend_name("")

    def test_empty_segment_names_the_stack(self):
        with pytest.raises(ValueError, match=r"'pgas\+'"):
            parse_backend_name("pgas+")
        with pytest.raises(ValueError, match="empty base or feature"):
            parse_backend_name("+cache")

    def test_unknown_feature_names_stack_and_known_set(self):
        with pytest.raises(ValueError) as exc:
            parse_backend_name("pgas+turbo")
        msg = str(exc.value)
        assert "pgas+turbo" in msg and "'turbo'" in msg
        for feature in CANONICAL_FEATURE_ORDER:
            assert feature in msg

    def test_duplicate_feature_names_the_stack(self):
        with pytest.raises(ValueError, match="duplicate feature"):
            parse_backend_name("pgas+cache+cache")

    def test_multi_feature_stack_names_order(self):
        with pytest.raises(ValueError) as exc:
            parse_backend_name("pgas+cache+reshard")
        msg = str(exc.value)
        assert "pgas+cache+reshard" in msg
        assert " -> ".join(CANONICAL_FEATURE_ORDER) in msg


class TestFeatureSpec:
    def test_frozen_and_default_empty(self):
        spec = FeatureSpec()
        assert spec.configured() == ()
        with pytest.raises(Exception):
            spec.cache = CacheConfig()  # type: ignore[misc]

    def test_configured_lists_set_fields_in_order(self):
        spec = FeatureSpec(reshard=ReshardSpec(), cache=CacheConfig())
        assert spec.configured() == ("cache", "reshard")


class TestBuildBackend:
    @pytest.mark.parametrize(
        "backend", [str(b) for b in available_backends()]
    )
    def test_every_registered_backend_builds(self, backend):
        emb = build_backend(runspec_for(backend))
        adapter = emb.backend_adapter()
        assert adapter is emb.backend_adapter()  # cached, built eagerly

    def test_override_backend_for_ab_runs(self):
        spec = runspec_for("pgas")
        emb = build_backend(spec, backend="baseline")
        assert emb.backend == "baseline"

    def test_bad_stack_fails_at_build_not_first_forward(self):
        spec = RunSpec(small_cfg(), n_devices=2, backend="pgas")
        with pytest.raises(ValueError, match="pgas\\+cache\\+reshard"):
            build_backend(spec, backend="pgas+cache+reshard")

    def test_adapter_matches_thin_alias_registration(self):
        """The registry factories and build_adapter are the same code
        path: both produce the same adapter type for the same name."""
        emb = build_backend(runspec_for("pgas+reshard"))
        direct = build_adapter(emb, "pgas+reshard")
        assert type(direct) is type(emb.backend_adapter())


class TestRemovedLegacyKwargs:
    """The per-feature kwargs finished their deprecation cycle in the
    release before this one; they must now fail like any unknown kwarg."""

    @pytest.mark.parametrize("kwarg,config", [
        ("cache", CacheConfig()),
        ("resilience", ResilienceSpec()),
        ("compression", CompressionSpec()),
        ("replication", ReplicationSpec()),
        ("obs", None),
    ])
    def test_legacy_kwarg_rejected(self, kwarg, config):
        with pytest.raises(TypeError, match="unexpected keyword"):
            DistributedEmbedding(
                small_cfg(), 2, backend="pgas", **{kwarg: config}
            )

    def test_features_path_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            DistributedEmbedding(
                small_cfg(), 2, backend="pgas+cache",
                features=FeatureSpec(cache=CacheConfig()),
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_config_accessors_read_from_features(self):
        spec = FeatureSpec(reshard=ReshardSpec(), replication=ReplicationSpec())
        emb = DistributedEmbedding(
            small_cfg(), 2, backend="pgas+reshard", features=spec,
        )
        assert emb.reshard_config is spec.reshard
        assert emb.replication_config is spec.replication
        assert emb.cache_config is None
