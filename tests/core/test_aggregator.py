"""Tests for the asynchronous message aggregator (paper §V)."""

from __future__ import annotations

import pytest

from repro.comm.pgas import PGASContext, PGASSpec
from repro.core.aggregator import AggregatorSpec, AsyncAggregator
from repro.simgpu import dgx_v100
from repro.simgpu.units import KiB, us


def make(flush_bytes=10_000, max_wait_ns=1e6, n_devices=2):
    cl = dgx_v100(n_devices)
    pgas = PGASContext(cl)
    agg = AsyncAggregator(pgas, AggregatorSpec(
        flush_bytes=flush_bytes, max_wait_ns=max_wait_ns,
    ))
    return cl, pgas, agg


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            AggregatorSpec(flush_bytes=0)
        with pytest.raises(ValueError):
            AggregatorSpec(max_wait_ns=0)
        with pytest.raises(ValueError):
            AggregatorSpec(flushed_message_bytes=0)


class TestStore:
    def test_accumulates_below_threshold(self):
        cl, _, agg = make(flush_bytes=10_000)
        agg.store(0, 1, 3000)
        agg.store(0, 1, 3000)
        assert agg.pending_bytes(0, 1) == 6000
        assert agg.flushes == 0

    def test_size_trigger_flushes(self):
        cl, _, agg = make(flush_bytes=10_000)
        agg.store(0, 1, 6000)
        agg.store(0, 1, 6000)  # 12000 >= threshold
        assert agg.flushes == 1
        assert agg.pending_bytes(0, 1) == 0

    def test_per_destination_buffers_independent(self):
        cl, _, agg = make(flush_bytes=10_000, n_devices=3)
        agg.store(0, 1, 6000)
        agg.store(0, 2, 6000)
        assert agg.flushes == 0
        agg.store(0, 1, 6000)
        assert agg.flushes == 1
        assert agg.pending_bytes(0, 2) == 6000

    def test_local_store_rejected(self):
        _, _, agg = make()
        with pytest.raises(ValueError, match="local store"):
            agg.store(1, 1, 100)

    def test_zero_store_is_noop(self):
        _, _, agg = make()
        agg.store(0, 1, 0)
        assert agg.stores == 0
        assert agg.pending_bytes(0, 1) == 0

    def test_negative_rejected(self):
        _, _, agg = make()
        with pytest.raises(ValueError):
            agg.store(0, 1, -5)


class TestTimeTrigger:
    def test_max_wait_flushes_stale_buffer(self):
        cl, _, agg = make(flush_bytes=1_000_000, max_wait_ns=100 * us)
        agg.store(0, 1, 500)
        assert agg.flushes == 0
        cl.engine.run(until=99 * us)
        assert agg.flushes == 0
        cl.engine.run(until=101 * us)
        assert agg.flushes == 1

    def test_timer_measures_from_oldest_byte(self):
        cl, _, agg = make(flush_bytes=1_000_000, max_wait_ns=100 * us)

        def host(cluster):
            agg.store(0, 1, 500)
            yield cluster.engine.timeout(60 * us)
            agg.store(0, 1, 500)  # does NOT reset the deadline
            yield cluster.engine.timeout(41 * us)  # now past 100 µs
            return agg.flushes

        cl.run(host)
        assert agg.flushes == 1

    def test_size_flush_cancels_timer(self):
        cl, _, agg = make(flush_bytes=1000, max_wait_ns=100 * us)
        agg.store(0, 1, 1500)  # immediate size flush
        assert agg.flushes == 1
        cl.engine.run(until=200 * us)
        assert agg.flushes == 1  # stale timer must not double-flush


class TestFlush:
    def test_flush_all_sends_everything(self):
        cl, pgas, agg = make(flush_bytes=1_000_000, n_devices=3)
        agg.store(0, 1, 100)
        agg.store(0, 2, 200)
        agg.store(1, 0, 300)
        events = agg.flush_all()
        assert len(events) == 3
        cl.engine.run()
        assert cl.profiler.counter(PGASContext.COUNTER).total == pytest.approx(600)

    def test_flush_all_single_source(self):
        cl, _, agg = make(flush_bytes=1_000_000, n_devices=3)
        agg.store(0, 1, 100)
        agg.store(1, 0, 300)
        events = agg.flush_all(src=0)
        assert len(events) == 1
        assert agg.pending_bytes(1, 0) == 300

    def test_flush_empty_returns_none(self):
        _, _, agg = make()
        assert agg.flush(0, 1) is None

    def test_quiet_drains_flushed_transfers(self):
        cl, pgas, agg = make(flush_bytes=1_000_000)
        agg.store(0, 1, 48.0 * 1e6)  # 1 ms wire
        agg.flush_all()

        def host(cluster):
            yield from pgas.quiet(0)

        elapsed = cl.run(host)
        assert elapsed >= 1e6


class TestBandwidthBenefit:
    def test_fewer_headers_than_small_messages(self):
        """The §V motivation: aggregated flushes amortise framing."""
        payload = 1_000_000.0
        # small messages: 256 B + 32 B header each
        cl1 = dgx_v100(2)
        PGASContext(cl1, PGASSpec(message_bytes=256, header_bytes=32)).put(0, 1, payload)
        cl1.engine.run()
        small_wire = cl1.interconnect.total_wire_bytes()

        # aggregated: one 64 KiB-framed flush
        cl2 = dgx_v100(2)
        pgas2 = PGASContext(cl2)
        agg = AsyncAggregator(pgas2, AggregatorSpec(flush_bytes=2_000_000))
        agg.store(0, 1, payload)
        agg.flush_all()
        cl2.engine.run()
        agg_wire = cl2.interconnect.total_wire_bytes()

        assert agg_wire < small_wire
        assert small_wire / payload > 1.1  # 12.5% header overhead
        assert agg_wire / payload < 1.01
