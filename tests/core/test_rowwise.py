"""Tests for row-wise sharded retrieval (§V extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rowwise import (
    RowWiseBaselineRetrieval,
    RowWisePGASRetrieval,
    build_rowwise_workloads,
    rowwise_baseline_functional_forward,
    rowwise_functional_forward_partials,
    rowwise_pgas_functional_forward,
)
from repro.core.sharding import RowWiseSharding, minibatch_bounds
from repro.core.workload import build_device_workloads
from repro.core.sharding import TableWiseSharding
from repro.core.baseline import BaselineRetrieval
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.embedding import EmbeddingBagCollection
from repro.simgpu import dgx_v100


def setup(n_tables=5, G=3, B=26, dim=8, rows=60, max_pool=6, seed=21):
    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=rows, dim=dim, batch_size=B,
        max_pooling=max_pool, min_pooling=0, seed=seed,
    )
    ebc = EmbeddingBagCollection.from_configs(
        cfg.table_configs(), rng=np.random.default_rng(seed)
    )
    plan = RowWiseSharding(cfg.table_configs(), G)
    batch = SyntheticDataGenerator(cfg).sparse_batch()
    return cfg, ebc, plan, batch


class TestPartials:
    def test_partials_sum_to_reference(self):
        """Σ_devices partial(dev) == single-device oracle."""
        cfg, ebc, plan, batch = setup()
        ref = ebc.forward(batch)
        total = sum(
            rowwise_functional_forward_partials(ebc, plan, batch, dev)
            for dev in range(plan.n_devices)
        )
        assert np.allclose(total, ref, atol=1e-5)

    def test_partial_uses_only_local_rows(self):
        """A device's partial only references rows in its slice."""
        cfg, ebc, plan, batch = setup(G=2)
        p0 = rowwise_functional_forward_partials(ebc, plan, batch, 0)
        # Zero out device 0's row slices: its partial must become zero.
        for t in ebc.tables:
            shard = plan.shard_on(t.name, 0)
            t.weights[shard.row_lo:shard.row_hi] = 0.0
        p0_after = rowwise_functional_forward_partials(ebc, plan, batch, 0)
        assert np.allclose(p0_after, 0.0)
        # Device 1's partial is untouched by device 0's rows.
        # (recompute on fresh weights for clarity)

    def test_empty_batch_partials_zero(self):
        cfg, ebc, plan, batch = setup(max_pool=0)
        p = rowwise_functional_forward_partials(ebc, plan, batch, 0)
        assert np.all(p == 0.0)


class TestFunctionalEquivalence:
    def test_baseline_matches_oracle(self):
        cfg, ebc, plan, batch = setup()
        ref = ebc.forward(batch)
        outs = rowwise_baseline_functional_forward(ebc, plan, batch)
        for g, (lo, hi) in enumerate(minibatch_bounds(batch.batch_size, 3)):
            assert np.allclose(outs[g], ref[lo:hi], atol=1e-5)

    def test_pgas_matches_baseline(self):
        cfg, ebc, plan, batch = setup(G=4, B=31)
        a = rowwise_baseline_functional_forward(ebc, plan, batch)
        b = rowwise_pgas_functional_forward(ebc, plan, batch)
        for x, y in zip(a, b):
            assert np.allclose(x, y, atol=1e-5)

    def test_single_device(self):
        cfg, ebc, plan, batch = setup(G=1)
        ref = ebc.forward(batch)
        outs = rowwise_pgas_functional_forward(ebc, plan, batch)
        assert np.allclose(outs[0], ref, atol=1e-5)

    def test_non_sum_pooling_rejected(self):
        cfg, ebc, plan, batch = setup()
        cfg2 = WorkloadConfig(
            num_tables=2, rows_per_table=10, dim=4, batch_size=4,
            max_pooling=2, pooling="mean",
        )
        ebc2 = EmbeddingBagCollection.from_configs(cfg2.table_configs())
        plan2 = RowWiseSharding(cfg2.table_configs(), 2)
        batch2 = SyntheticDataGenerator(cfg2).sparse_batch()
        with pytest.raises(NotImplementedError, match="sum pooling"):
            rowwise_baseline_functional_forward(ebc2, plan2, batch2)

    @settings(deadline=None, max_examples=15)
    @given(
        n_tables=st.integers(min_value=1, max_value=5),
        G=st.integers(min_value=1, max_value=4),
        B=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_equivalence_property(self, n_tables, G, B, seed):
        cfg, ebc, plan, batch = setup(n_tables=n_tables, G=G, B=B, seed=seed)
        ref = ebc.forward(batch)
        outs = rowwise_pgas_functional_forward(ebc, plan, batch)
        for g, (lo, hi) in enumerate(minibatch_bounds(B, G)):
            assert np.allclose(outs[g], ref[lo:hi], atol=1e-5)


def make_timed_workloads(n_tables=32, G=2, B=8192, dim=64, max_pool=16, seed=9):
    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=100_000, dim=dim, batch_size=B,
        max_pooling=max_pool, seed=seed,
    )
    plan = RowWiseSharding(cfg.table_configs(), G)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    return cfg, plan, lengths, build_rowwise_workloads(plan, lengths)


class TestWorkloads:
    def test_output_is_full_batch_times_tables(self):
        """Row-wise writes a partial per (table, sample) on EVERY device."""
        cfg, plan, lengths, wls = make_timed_workloads(G=3)
        for wl in wls:
            assert wl.bytes_written == pytest.approx(
                cfg.batch_size * cfg.num_tables * cfg.dim * 4
            )

    def test_nnz_split_evenly(self):
        cfg, plan, lengths, wls = make_timed_workloads(G=3)
        total = sum(int(l.sum()) for l in lengths.values())
        assert sum(wl.nnz_local for wl in wls) == total
        assert max(wl.nnz_local for wl in wls) - min(wl.nnz_local for wl in wls) <= 1

    def test_comm_volume_exceeds_table_wise(self):
        """The §V point: row-wise partials cost G-1 x more traffic."""
        cfg, plan, lengths, row_wls = make_timed_workloads(G=4)
        tw_plan = TableWiseSharding(cfg.table_configs(), 4)
        tw_wls = build_device_workloads(tw_plan, lengths)
        row_remote = sum(wl.remote_output_bytes for wl in row_wls)
        tw_remote = sum(wl.remote_output_bytes for wl in tw_wls)
        assert row_remote == pytest.approx(4 * tw_remote, rel=0.01)


class TestTimedRowWise:
    def test_pgas_beats_baseline(self):
        _, _, _, wls = make_timed_workloads()
        t_base = RowWiseBaselineRetrieval(dgx_v100(2)).run_batch(wls)
        t_pgas = RowWisePGASRetrieval(dgx_v100(2)).run_batch(wls)
        assert t_pgas.total_ns < t_base.total_ns

    def test_rowwise_advantage_larger_than_tablewise(self):
        """Heavier comm + the reduction step ⇒ bigger PGAS win (§V)."""
        cfg, plan, lengths, row_wls = make_timed_workloads(G=4, max_pool=8)
        rb = RowWiseBaselineRetrieval(dgx_v100(4)).run_batch(row_wls)
        rp = RowWisePGASRetrieval(dgx_v100(4)).run_batch(row_wls)
        tw_plan = TableWiseSharding(cfg.table_configs(), 4)
        tw_wls = build_device_workloads(tw_plan, lengths)
        tb = BaselineRetrieval(dgx_v100(4)).run_batch(tw_wls)
        tp = PGASFusedRetrieval(dgx_v100(4)).run_batch(tw_wls)
        assert rb.total_ns / rp.total_ns > tb.total_ns / tp.total_ns

    def test_single_gpu_no_comm(self):
        _, _, _, wls = make_timed_workloads(G=1)
        t = RowWiseBaselineRetrieval(dgx_v100(1)).run_batch(wls)
        assert t.comm_ns == 0.0
        t2 = RowWisePGASRetrieval(dgx_v100(1)).run_batch(wls)
        assert t2.total_ns > 0

    def test_baseline_has_reduce_phase(self):
        _, _, _, wls = make_timed_workloads(G=2)
        t = RowWiseBaselineRetrieval(dgx_v100(2)).run_batch(wls)
        assert t.sync_unpack_ns > 0
        assert t.comm_ns > 0

    def test_all_partial_bytes_on_the_wire(self):
        cl = dgx_v100(3)
        _, _, _, wls = make_timed_workloads(G=3)
        RowWisePGASRetrieval(cl).run_batch(wls)
        from repro.comm.pgas import PGASContext

        counted = cl.profiler.counter(PGASContext.COUNTER).total
        assert counted == pytest.approx(sum(wl.remote_output_bytes for wl in wls))


class TestRowWiseBackward:
    def test_pgas_backward_beats_shift_rounds(self):
        from repro.core.rowwise import RowWiseBaselineBackward, RowWisePGASBackward

        _, _, _, wls = make_timed_workloads(G=4, max_pool=8)
        t_base = RowWiseBaselineBackward(dgx_v100(4)).run_batch(wls)
        t_pgas = RowWisePGASBackward(dgx_v100(4)).run_batch(wls)
        assert t_pgas.total_ns < t_base.total_ns
        # The §V prediction: replacing rounds of collectives + syncs with
        # atomics is a substantial win.
        assert t_base.total_ns / t_pgas.total_ns > 1.5

    def test_shift_rounds_scale_with_devices(self):
        """G-1 rounds: the baseline's sync burden grows with GPU count."""
        from repro.core.rowwise import RowWiseBaselineBackward

        _, _, _, w2 = make_timed_workloads(G=2)
        _, _, _, w4 = make_timed_workloads(G=4)
        t2 = RowWiseBaselineBackward(dgx_v100(2)).run_batch(w2)
        t4 = RowWiseBaselineBackward(dgx_v100(4)).run_batch(w4)
        # per-round sync+accumulate overheads accumulate over G-1 rounds
        assert t4.sync_unpack_ns > t2.sync_unpack_ns

    def test_single_gpu_backward(self):
        from repro.core.rowwise import RowWiseBaselineBackward, RowWisePGASBackward

        _, _, _, wls = make_timed_workloads(G=1)
        tb = RowWiseBaselineBackward(dgx_v100(1)).run_batch(wls)
        tp = RowWisePGASBackward(dgx_v100(1)).run_batch(wls)
        assert tb.comm_ns == 0.0
        assert tb.total_ns > 0 and tp.total_ns > 0

    def test_pgas_backward_atomics_on_wire(self):
        from repro.comm.pgas import PGASContext
        from repro.core.rowwise import RowWisePGASBackward

        cl = dgx_v100(3)
        _, _, _, wls = make_timed_workloads(G=3)
        RowWisePGASBackward(cl).run_batch(wls)
        counted = cl.profiler.counter(PGASContext.COUNTER).total
        expected = sum(wl.bytes_written * 2 / 3 for wl in wls)  # (G-1)/G
        assert counted == pytest.approx(expected, rel=0.02)


class TestRowWiseFunctionalBackward:
    def test_matches_reference(self):
        from repro.core.backward import reference_backward
        from repro.core.rowwise import rowwise_functional_backward

        cfg, ebc_rw, plan, batch = setup(G=3, B=24)
        _, ebc_ref, _, _ = setup(G=3, B=24)  # same seed → same weights
        rng = np.random.default_rng(8)
        grad = rng.normal(size=(24, cfg.num_tables, cfg.dim)).astype(np.float32)
        reference_backward(ebc_ref.tables, batch, grad)
        bounds = minibatch_bounds(24, 3)
        rowwise_functional_backward(
            ebc_rw, plan, batch, [grad[lo:hi] for lo, hi in bounds]
        )
        for a, b in zip(ebc_rw.tables, ebc_ref.tables):
            assert np.allclose(a.weights, b.weights, atol=1e-4)

    def test_wrong_grad_count(self):
        from repro.core.rowwise import rowwise_functional_backward

        cfg, ebc, plan, batch = setup(G=2)
        with pytest.raises(ValueError):
            rowwise_functional_backward(ebc, plan, batch, [np.zeros((1, 1, 1))])
