"""Tests for the timed training-step pipeline."""

from __future__ import annotations

import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.train_pipeline import DLRMTrainingPipeline, TrainStepTiming
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig


def make_config(**kw):
    defaults = dict(
        num_tables=32, rows_per_table=10_000, dim=64, batch_size=8192,
        max_pooling=24, num_dense_features=13, seed=3,
    )
    defaults.update(kw)
    return PipelineConfig(workload=WorkloadConfig(**defaults))


@pytest.fixture(scope="module")
def lengths():
    cfg = make_config()
    return SyntheticDataGenerator(cfg.workload).lengths_batch()


class TestTrainStep:
    def test_phases_positive_and_compose(self, lengths):
        pipe = DLRMTrainingPipeline(make_config(), 2)
        t = pipe.run_step(lengths)
        assert t.forward.total_ns > 0
        assert t.dense_backward_ns > 0
        assert t.emb_backward.total_ns > 0
        assert t.total_ns > t.forward.total_ns
        # backward phase overlaps dense and EMB paths
        assert t.total_ns < (
            t.forward.total_ns + t.dense_backward_ns + t.emb_backward.total_ns
        )

    def test_backward_not_cheaper_than_forward_emb(self, lengths):
        """§V: gradient traffic is at least comparable to the forward's."""
        pipe = DLRMTrainingPipeline(make_config(), 2, backend="baseline")
        t = pipe.run_step(lengths)
        assert t.emb_backward.total_ns > 0.5 * t.forward.emb.total_ns

    def test_pgas_wins_per_training_step(self, lengths):
        cfg = make_config()
        t_base = DLRMTrainingPipeline(cfg, 2, backend="baseline").run_step(lengths)
        t_pgas = DLRMTrainingPipeline(cfg, 2, backend="pgas").run_step(lengths)
        assert t_pgas.total_ns < t_base.total_ns
        # And the win exceeds the inference-only pipeline's win: the EMB
        # communication is paid twice per step.
        fwd_speedup = t_base.forward.total_ns / t_pgas.forward.total_ns
        step_speedup = t_base.total_ns / t_pgas.total_ns
        assert step_speedup > 0.9 * fwd_speedup  # at least comparable

    def test_backend_override(self, lengths):
        pipe = DLRMTrainingPipeline(make_config(), 2, backend="pgas")
        t = pipe.run_step(lengths, backend="baseline")
        assert t.emb_backward.comm_ns > 0  # collective backward really ran

    def test_single_gpu_step(self, lengths):
        pipe = DLRMTrainingPipeline(make_config(), 1)
        t = pipe.run_step(lengths)
        assert t.emb_backward.comm_ns == 0.0
        assert t.total_ns > 0

    def test_run_steps_accumulates(self, lengths):
        single = DLRMTrainingPipeline(make_config(), 2).run_step(lengths)
        triple = DLRMTrainingPipeline(make_config(), 2).run_steps([lengths] * 3)
        assert triple.steps == 3
        assert triple.total_ns == pytest.approx(3 * single.total_ns, rel=1e-6)


class TestTiming:
    def test_add(self):
        a = TrainStepTiming(dense_backward_ns=5, total_ns=10, steps=1)
        b = TrainStepTiming(dense_backward_ns=7, total_ns=20, steps=1)
        a.add(b)
        assert a.dense_backward_ns == 12 and a.total_ns == 30 and a.steps == 2
