"""Tests for the timed PGAS fused retrieval."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.pgas import PGASContext, PGASSpec
from repro.core.aggregator import AggregatorSpec
from repro.core.baseline import BaselineRetrieval
from repro.core.pgas_retrieval import PGASFusedRetrieval
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu import dgx_v100, multinode
from repro.simgpu.kernel import kernel_time
from repro.simgpu.units import KiB, us


def make_workloads(n_tables=8, G=2, B=512, dim=16, max_pool=8, seed=5):
    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=1000, dim=dim, batch_size=B,
        max_pooling=max_pool, seed=seed,
    )
    plan = TableWiseSharding(cfg.table_configs(), G)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    return build_device_workloads(plan, lengths)


class TestFusedTiming:
    def test_single_phase_accounting(self):
        cl = dgx_v100(2)
        t = PGASFusedRetrieval(cl).run_batch(make_workloads(G=2))
        assert t.comm_ns == 0.0
        assert t.sync_unpack_ns == 0.0
        assert t.compute_ns == t.total_ns

    def test_faster_than_baseline_multi_gpu(self):
        wls = make_workloads(n_tables=16, G=2, B=4096)
        t_base = BaselineRetrieval(dgx_v100(2)).run_batch(wls)
        t_pgas = PGASFusedRetrieval(dgx_v100(2)).run_batch(wls)
        assert t_pgas.total_ns < t_base.total_ns

    def test_single_gpu_no_communication(self):
        cl = dgx_v100(1)
        retr = PGASFusedRetrieval(cl)
        t = retr.run_batch(make_workloads(G=1))
        assert cl.profiler.counters.get(PGASContext.COUNTER) is None
        assert retr.pgas.puts_issued == 0

    def test_all_remote_bytes_leave_the_wire(self):
        cl = dgx_v100(3)
        wls = make_workloads(n_tables=9, G=3)
        PGASFusedRetrieval(cl).run_batch(wls)
        total_remote = sum(wl.remote_output_bytes for wl in wls)
        counted = cl.profiler.counter(PGASContext.COUNTER).total
        assert counted == pytest.approx(total_remote)

    def test_puts_spread_over_kernel(self):
        """Messages leave during the kernel, not at its end (Fig. 7).

        Needs a wave-rich launch (64 tables × 16384 samples ⇒ ~13 waves per
        device) so deliveries dot the whole kernel.
        """
        cl = dgx_v100(2)
        wls = make_workloads(n_tables=64, G=2, B=16384)
        t = PGASFusedRetrieval(cl).run_batch(wls)
        counter = cl.profiler.counter(PGASContext.COUNTER)
        # Volume delivered by mid-run should be substantial.
        mid = counter.value_at(t.total_ns * 0.6)
        assert 0.2 * counter.total < mid < counter.total

    def test_drag_increases_kernel_time(self):
        wls = make_workloads(G=2, B=8192, n_tables=16)
        t_no = PGASFusedRetrieval(dgx_v100(2), remote_write_drag=0.0).run_batch(wls)
        t_drag = PGASFusedRetrieval(dgx_v100(2), remote_write_drag=2.0).run_batch(wls)
        assert t_drag.total_ns > t_no.total_ns

    def test_negative_drag_rejected(self):
        with pytest.raises(ValueError):
            PGASFusedRetrieval(dgx_v100(1), remote_write_drag=-0.1)

    def test_workload_validation(self):
        retr = PGASFusedRetrieval(dgx_v100(2))
        with pytest.raises(ValueError):
            retr.run_batch(make_workloads(G=3))
        wls = make_workloads(G=2)
        with pytest.raises(ValueError):
            retr.run_batch(list(reversed(wls)))

    def test_fused_span_recorded(self):
        cl = dgx_v100(2)
        PGASFusedRetrieval(cl).run_batch(make_workloads(G=2))
        assert cl.profiler.spans_by_category("fused")

    def test_run_batches_accumulates(self):
        wls = make_workloads(G=2)
        single = PGASFusedRetrieval(dgx_v100(2)).run_batch(wls)
        triple = PGASFusedRetrieval(dgx_v100(2)).run_batches([wls] * 3)
        assert triple.batches == 3
        assert triple.total_ns == pytest.approx(3 * single.total_ns, rel=1e-6)


class TestOverlap:
    def test_comm_hidden_when_compute_dominates(self):
        """The headline mechanism: PGAS total ≈ compute-only kernel time."""
        cl = dgx_v100(2)
        wls = make_workloads(n_tables=32, G=2, B=8192, max_pool=64)
        t = PGASFusedRetrieval(cl, remote_write_drag=0.0).run_batch(wls)
        spec = cl.devices[0].spec
        pure = max(kernel_time(wl.kernel_spec(), spec) for wl in wls)
        overhead = t.total_ns - pure
        # exposed cost: launch + quiet + sync + last-wave drain — small.
        assert overhead < 0.15 * pure

    def test_exposed_drain_on_slow_fabric(self):
        """On a NIC-class fabric the same messages cannot hide."""
        wls = make_workloads(n_tables=16, G=2, B=8192, max_pool=4)
        t_nvlink = PGASFusedRetrieval(dgx_v100(2)).run_batch(wls)
        t_nic = PGASFusedRetrieval(multinode(2, devices_per_node=1)).run_batch(wls)
        assert t_nic.total_ns > t_nvlink.total_ns


class TestAggregatorVariant:
    def test_aggregator_reduces_flush_count(self):
        # ~13 waves/device, each storing ~2.6 MB per destination; a 6 MiB
        # threshold batches several stores into one flush.
        wls = make_workloads(n_tables=64, G=2, B=16384)
        retr = PGASFusedRetrieval(
            dgx_v100(2),
            aggregator_spec=AggregatorSpec(
                flush_bytes=6 * 1024 * KiB, max_wait_ns=1e9
            ),
        )
        retr.run_batch(wls)
        assert retr.aggregator is not None
        assert 0 < retr.aggregator.flushes < retr.aggregator.stores

    def test_aggregated_bytes_all_delivered(self):
        cl = dgx_v100(2)
        wls = make_workloads(n_tables=8, G=2)
        retr = PGASFusedRetrieval(cl, aggregator_spec=AggregatorSpec())
        retr.run_batch(wls)
        total_remote = sum(wl.remote_output_bytes for wl in wls)
        assert cl.profiler.counter(PGASContext.COUNTER).total == pytest.approx(total_remote)

    def test_aggregator_helps_on_nic_fabric(self):
        """The §V claim: aggregation wins when links are slow/laty."""
        wls = make_workloads(n_tables=16, G=2, B=8192, max_pool=2)
        spec_small = PGASSpec(message_bytes=256, header_bytes=128)
        cl_small = multinode(2, devices_per_node=1)
        t_small = PGASFusedRetrieval(cl_small, pgas_spec=spec_small).run_batch(wls)
        cl_agg = multinode(2, devices_per_node=1)
        t_agg = PGASFusedRetrieval(
            cl_agg, pgas_spec=spec_small,
            aggregator_spec=AggregatorSpec(flush_bytes=256 * KiB),
        ).run_batch(wls)
        assert t_agg.total_ns < t_small.total_ns
