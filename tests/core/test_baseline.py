"""Tests for the timed collective baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import BaselineRetrieval, PhaseTiming
from repro.core.sharding import TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu import dgx_v100
from repro.simgpu.kernel import kernel_time
from repro.simgpu.units import ms, us


def make_workloads(n_tables=8, G=2, B=512, dim=16, max_pool=8, seed=5):
    cfg = WorkloadConfig(
        num_tables=n_tables, rows_per_table=1000, dim=dim, batch_size=B,
        max_pooling=max_pool, seed=seed,
    )
    plan = TableWiseSharding(cfg.table_configs(), G)
    lengths = SyntheticDataGenerator(cfg).lengths_batch()
    return build_device_workloads(plan, lengths)


class TestPhaseTiming:
    def test_add_accumulates(self):
        a = PhaseTiming(compute_ns=10, comm_ns=5, sync_unpack_ns=2, total_ns=17, batches=1)
        b = PhaseTiming(compute_ns=20, comm_ns=1, sync_unpack_ns=3, total_ns=24, batches=1)
        a.add(b)
        assert a.compute_ns == 30 and a.total_ns == 41 and a.batches == 2

    def test_overhead_is_residual(self):
        t = PhaseTiming(compute_ns=10, comm_ns=5, sync_unpack_ns=2, total_ns=20)
        assert t.overhead_ns == 3

    def test_as_dict(self):
        d = PhaseTiming(total_ns=7, batches=1).as_dict()
        assert d["total_ns"] == 7 and d["batches"] == 1.0


class TestBaselineRetrieval:
    def test_phases_sum_to_total(self):
        cl = dgx_v100(2)
        t = BaselineRetrieval(cl).run_batch(make_workloads(G=2))
        assert t.total_ns == pytest.approx(
            t.compute_ns + t.comm_ns + t.sync_unpack_ns, rel=1e-6
        )

    def test_single_gpu_is_mostly_compute(self):
        cl = dgx_v100(1)
        t = BaselineRetrieval(cl).run_batch(
            make_workloads(n_tables=32, G=1, B=8192, dim=64, max_pool=32)
        )
        assert t.comm_ns == 0.0
        assert t.compute_ns > 0.9 * t.total_ns

    def test_compute_phase_matches_kernel_model(self):
        wls = make_workloads(G=2)
        cl = dgx_v100(2)
        t = BaselineRetrieval(cl).run_batch(wls)
        spec = cl.devices[0].spec
        slowest = max(kernel_time(wl.kernel_spec(), spec) for wl in wls)
        expected = spec.kernel_launch_overhead_ns + slowest + spec.sync_overhead_ns
        assert t.compute_ns == pytest.approx(expected, rel=1e-6)

    def test_multi_gpu_has_comm_and_unpack(self):
        cl = dgx_v100(2)
        t = BaselineRetrieval(cl).run_batch(make_workloads(G=2))
        assert t.comm_ns > 0
        assert t.sync_unpack_ns > 0

    def test_workload_count_validated(self):
        cl = dgx_v100(2)
        with pytest.raises(ValueError, match="workloads"):
            BaselineRetrieval(cl).run_batch(make_workloads(G=3))

    def test_workload_order_validated(self):
        cl = dgx_v100(2)
        wls = make_workloads(G=2)
        with pytest.raises(ValueError, match="device_id"):
            BaselineRetrieval(cl).run_batch(list(reversed(wls)))

    def test_bad_unpack_bandwidth(self):
        with pytest.raises(ValueError):
            BaselineRetrieval(dgx_v100(1), unpack_bandwidth=0.0)

    def test_run_batches_accumulates(self):
        cl = dgx_v100(2)
        wls = make_workloads(G=2)
        r = BaselineRetrieval(cl)
        single = r.run_batch(wls)
        cl2 = dgx_v100(2)
        triple = BaselineRetrieval(cl2).run_batches([wls, wls, wls])
        assert triple.batches == 3
        assert triple.total_ns == pytest.approx(3 * single.total_ns, rel=1e-6)

    def test_spans_recorded(self):
        cl = dgx_v100(2)
        BaselineRetrieval(cl).run_batch(make_workloads(G=2))
        prof = cl.profiler
        assert prof.spans_by_category("compute")
        assert prof.spans_by_category("comm")
        assert prof.spans_by_category("sync_unpack")

    def test_comm_phase_starts_after_compute(self):
        """Bulk-sync semantics: no comm byte moves before the kernels end."""
        cl = dgx_v100(2)
        BaselineRetrieval(cl).run_batch(make_workloads(G=2))
        prof = cl.profiler
        compute_end = max(s.t_end for s in prof.spans_by_category("compute"))
        counter = prof.counter("comm_bytes")
        assert counter.value_at(compute_end) == 0.0
        assert counter.total > 0

    def test_more_devices_shrink_comm_phase(self):
        """Weak-scaling expectation: comm time decreases with GPUs."""
        t2 = BaselineRetrieval(dgx_v100(2)).run_batch(
            make_workloads(n_tables=16, G=2, B=2048)
        )
        t4 = BaselineRetrieval(dgx_v100(4)).run_batch(
            make_workloads(n_tables=32, G=4, B=2048)
        )
        assert t4.comm_ns < t2.comm_ns

    def test_unpack_grows_with_received_bytes(self):
        small = BaselineRetrieval(dgx_v100(2)).run_batch(
            make_workloads(n_tables=8, G=2, B=512)
        )
        big = BaselineRetrieval(dgx_v100(2)).run_batch(
            make_workloads(n_tables=8, G=2, B=4096)
        )
        assert big.sync_unpack_ns > small.sync_unpack_ns
