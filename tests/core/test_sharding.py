"""Tests for sharding plans and sample ownership."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sharding import (
    RowWiseSharding,
    TableWiseSharding,
    minibatch_bounds,
    sample_owner,
)
from repro.dlrm.embedding import EmbeddingTableConfig


def configs(n=6, rows=100, dim=8):
    return [EmbeddingTableConfig(f"t{i}", rows, dim) for i in range(n)]


class TestMinibatchBounds:
    def test_even_split(self):
        assert minibatch_bounds(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_to_leading(self):
        assert minibatch_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_devices_than_samples(self):
        bounds = minibatch_bounds(2, 4)
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_validation(self):
        with pytest.raises(ValueError):
            minibatch_bounds(0, 2)
        with pytest.raises(ValueError):
            minibatch_bounds(4, 0)

    @given(
        batch=st.integers(min_value=1, max_value=1000),
        parts=st.integers(min_value=1, max_value=16),
    )
    def test_partition_properties(self, batch, parts):
        bounds = minibatch_bounds(batch, parts)
        assert len(bounds) == parts
        assert bounds[0][0] == 0 and bounds[-1][1] == batch
        sizes = [hi - lo for lo, hi in bounds]
        assert all(s >= 0 for s in sizes)
        assert max(sizes) - min(sizes) <= 1


class TestSampleOwner:
    def test_matches_bounds(self):
        owners = sample_owner(10, 3)
        for dev, (lo, hi) in enumerate(minibatch_bounds(10, 3)):
            assert (owners[lo:hi] == dev).all()

    def test_single_device(self):
        assert (sample_owner(5, 1) == 0).all()

    @given(
        batch=st.integers(min_value=1, max_value=500),
        parts=st.integers(min_value=1, max_value=8),
    )
    def test_owner_in_range_and_monotone(self, batch, parts):
        owners = sample_owner(batch, parts)
        assert owners.shape == (batch,)
        assert (owners >= 0).all() and (owners < parts).all()
        assert (np.diff(owners) >= 0).all()  # contiguous mini-batches


class TestTableWise:
    def test_contiguous_blocks(self):
        plan = TableWiseSharding(configs(6), 3, strategy="contiguous")
        assert [t.name for t in plan.tables_on(0)] == ["t0", "t1"]
        assert [t.name for t in plan.tables_on(2)] == ["t4", "t5"]

    def test_round_robin_stripes(self):
        plan = TableWiseSharding(configs(6), 3, strategy="round_robin")
        assert [t.name for t in plan.tables_on(0)] == ["t0", "t3"]
        assert plan.owner_of("t4") == 1

    def test_uneven_tables(self):
        plan = TableWiseSharding(configs(7), 3)
        sizes = [len(plan.tables_on(d)) for d in range(3)]
        assert sorted(sizes) == [2, 2, 3]
        plan.validate()

    def test_feature_indices(self):
        plan = TableWiseSharding(configs(6), 3)
        assert list(plan.feature_indices_on(1)) == [2, 3]
        assert plan.feature_index("t5") == 5

    def test_memory_bytes(self):
        plan = TableWiseSharding(configs(4, rows=10, dim=4), 2)
        assert plan.memory_bytes(0) == 2 * 10 * 4 * 4

    def test_validate_passes(self):
        for strat in ("contiguous", "round_robin"):
            TableWiseSharding(configs(9), 4, strategy=strat).validate()

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            TableWiseSharding(configs(2), 2, strategy="random")  # type: ignore[arg-type]

    def test_duplicate_names_rejected(self):
        cfgs = [EmbeddingTableConfig("x", 10, 4)] * 2
        with pytest.raises(ValueError, match="duplicate"):
            TableWiseSharding(cfgs, 2)

    def test_more_devices_than_tables(self):
        plan = TableWiseSharding(configs(2), 4)
        plan.validate()
        assert plan.tables_on(3) == []

    @given(
        n_tables=st.integers(min_value=1, max_value=30),
        n_devices=st.integers(min_value=1, max_value=8),
        strategy=st.sampled_from(["contiguous", "round_robin"]),
    )
    def test_exact_partition_property(self, n_tables, n_devices, strategy):
        plan = TableWiseSharding(configs(n_tables), n_devices, strategy=strategy)
        plan.validate()
        all_tables = [t.name for d in range(n_devices) for t in plan.tables_on(d)]
        assert sorted(all_tables) == sorted(f"t{i}" for i in range(n_tables))
        for d in range(n_devices):
            for t in plan.tables_on(d):
                assert plan.owner_of(t.name) == d


class TestRowWise:
    def test_every_device_holds_every_table(self):
        plan = RowWiseSharding(configs(3, rows=100), 4)
        assert len(plan.tables_on(2)) == 3
        plan.validate()

    def test_shards_tile_rows(self):
        plan = RowWiseSharding(configs(1, rows=10), 3)
        shards = plan.shards_of("t0")
        assert [(s.row_lo, s.row_hi) for s in shards] == [(0, 4), (4, 7), (7, 10)]
        assert shards[0].num_rows == 4

    def test_row_owner_vectorised(self):
        plan = RowWiseSharding(configs(1, rows=10), 3)
        owners = plan.row_owner("t0", np.array([0, 3, 4, 6, 7, 9]))
        assert list(owners) == [0, 0, 1, 1, 2, 2]

    def test_memory_split_evenly(self):
        plan = RowWiseSharding(configs(2, rows=100, dim=8), 4)
        per_dev = [plan.memory_bytes(d) for d in range(4)]
        assert sum(per_dev) == 2 * 100 * 8 * 4
        assert max(per_dev) - min(per_dev) <= 2 * 8 * 4  # within one row each

    @given(
        rows=st.integers(min_value=1, max_value=1000),
        n_devices=st.integers(min_value=1, max_value=8),
        queries=st.lists(st.integers(min_value=0, max_value=999), min_size=1, max_size=20),
    )
    def test_row_owner_consistent_with_shards(self, rows, n_devices, queries):
        plan = RowWiseSharding(configs(1, rows=rows), n_devices)
        plan.validate()
        rowids = np.array([q % rows for q in queries])
        owners = plan.row_owner("t0", rowids)
        for rid, dev in zip(rowids, owners):
            shard = plan.shard_on("t0", int(dev))
            assert shard.row_lo <= rid < shard.row_hi
