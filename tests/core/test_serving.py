"""Tests for the inference-serving simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.core.serving import InferenceServer, ServingResult, ServingSpec
from repro.dlrm.data import WorkloadConfig
from repro.simgpu.units import ms


def make_server(backend="pgas", qps=50_000, max_batch=256, window=2 * ms, seed=3,
                **wl_kw):
    defaults = dict(num_tables=16, rows_per_table=5000, dim=32, batch_size=256,
                    max_pooling=8, seed=2)
    defaults.update(wl_kw)
    wl = WorkloadConfig(**defaults)
    pipe = DLRMInferencePipeline(PipelineConfig(workload=wl), 2, backend=backend)
    return InferenceServer(
        pipe, ServingSpec(arrival_qps=qps, max_batch=max_batch,
                          batch_window_ns=window, seed=seed)
    )


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServingSpec(arrival_qps=0)
        with pytest.raises(ValueError):
            ServingSpec(arrival_qps=1, max_batch=0)
        with pytest.raises(ValueError):
            ServingSpec(arrival_qps=1, batch_window_ns=-1)

    def test_mean_interarrival(self):
        assert ServingSpec(arrival_qps=1000).mean_interarrival_ns == pytest.approx(1e6)


class TestSimulate:
    def test_all_requests_served(self):
        res = make_server().simulate(500)
        assert res.n_requests == 500
        assert sum(res.batch_sizes) == 500

    def test_latencies_positive_and_bounded_below_by_service(self):
        res = make_server().simulate(300)
        assert (res.latencies_ns > 0).all()
        # nobody finishes before the batch window + some service time
        assert res.p50_ms > 0.01

    def test_batch_cap_respected(self):
        res = make_server(qps=1_000_000, max_batch=64).simulate(400)
        assert max(res.batch_sizes) <= 64

    def test_low_load_small_batches(self):
        """Sparse arrivals → the window closes on few requests."""
        res = make_server(qps=2_000, window=0.5 * ms).simulate(60)
        assert res.mean_batch_size < 16

    def test_high_load_fills_batches(self):
        res = make_server(qps=2_000_000, max_batch=128).simulate(600)
        assert res.mean_batch_size > 64

    def test_zero_requests_rejected(self):
        with pytest.raises(ValueError):
            make_server().simulate(0)

    def test_deterministic_given_seed(self):
        a = make_server(seed=7).simulate(200)
        b = make_server(seed=7).simulate(200)
        assert np.array_equal(a.latencies_ns, b.latencies_ns)

    def test_backend_override(self):
        server = make_server(backend="pgas")
        res = server.simulate(100, backend="baseline")
        assert res.backend == "baseline"


class TestBackendContrast:
    def test_pgas_serves_lower_latency_under_load(self):
        """The serving payoff of hiding the EMB communication."""
        kw = dict(qps=400_000, max_batch=512, num_tables=32, dim=64, max_pooling=16)
        base = make_server(backend="baseline", **kw).simulate(2000)
        pgas = make_server(backend="pgas", **kw).simulate(2000)
        assert pgas.p50_ms < base.p50_ms
        assert pgas.throughput_qps > base.throughput_qps

    def test_throughput_tracks_offered_load_when_stable(self):
        res = make_server(qps=50_000).simulate(1000)
        assert res.throughput_qps == pytest.approx(50_000, rel=0.15)


class TestResult:
    def test_summary_fields(self):
        res = ServingResult(
            latencies_ns=np.array([1e6, 2e6, 3e6]),
            batch_sizes=[2, 1],
            sim_duration_ns=1e9,
            backend="pgas",
        )
        assert res.n_requests == 3
        assert res.p50_ms == pytest.approx(2.0)
        assert res.throughput_qps == pytest.approx(3.0)
        assert "pgas" in res.summary()

    def test_empty_batches(self):
        res = ServingResult(np.array([]), [], 0.0, "x")
        assert res.mean_batch_size == 0.0
        assert res.throughput_qps == 0.0
