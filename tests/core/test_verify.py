"""Tests for the self-verification utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.verify import (
    VerificationError,
    VerificationReport,
    verify_backend_equivalence,
)
from repro.dlrm.data import WorkloadConfig


def small(**kw):
    defaults = dict(num_tables=6, rows_per_table=40, dim=8, batch_size=32,
                    max_pooling=4, seed=6)
    defaults.update(kw)
    return WorkloadConfig(**defaults)


class TestVerify:
    def test_passes_on_healthy_stack(self):
        report = verify_backend_equivalence(small(), 3, n_batches=2)
        assert report.batches_checked == 2
        assert report.samples_checked == 64
        assert report.wire_bytes_audited > 0
        assert "functional-equivalence" in report.checks
        assert "verified" in report.summary()

    def test_single_device(self):
        report = verify_backend_equivalence(small(), 1, n_batches=1)
        assert report.batches_checked == 1

    def test_from_table_configs(self):
        report = verify_backend_equivalence(
            small().table_configs(), 2, n_batches=1, batch_size=16
        )
        assert report.samples_checked == 16

    def test_batch_size_override(self):
        report = verify_backend_equivalence(small(), 2, n_batches=1, batch_size=8)
        assert report.samples_checked == 8

    def test_zero_batches_rejected(self):
        with pytest.raises(ValueError):
            verify_backend_equivalence(small(), 2, n_batches=0)

    def test_detects_wire_mismatch(self, monkeypatch):
        """Corrupt the split model: the audit must catch it."""
        import repro.core.verify as verify_mod

        real = verify_mod.alltoall_split_bytes

        def corrupted(workloads):
            split = real(workloads)
            split[0, 1] += 1.0
            return split

        monkeypatch.setattr(verify_mod, "alltoall_split_bytes", corrupted)
        with pytest.raises(VerificationError, match="wire bytes"):
            verify_backend_equivalence(small(), 2, n_batches=1)

    def test_detects_functional_divergence(self, monkeypatch):
        """Corrupt the PGAS functional path: the audit must catch it."""
        import repro.core.verify as verify_mod

        real = verify_mod.pgas_functional_forward

        def corrupted(sharded, batch):
            outs = real(sharded, batch)
            outs[0] = outs[0] + 1.0
            return outs

        monkeypatch.setattr(verify_mod, "pgas_functional_forward", corrupted)
        with pytest.raises(VerificationError, match="PGAS output diverges"):
            verify_backend_equivalence(small(), 2, n_batches=1)

    def test_report_summary_fields(self):
        r = VerificationReport(n_devices=2, num_tables=4, batches_checked=1,
                               samples_checked=8, checks=["x"])
        assert "2 devices" in r.summary()
