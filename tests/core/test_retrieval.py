"""Tests for the high-level DistributedEmbedding API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.retrieval import DistributedEmbedding, ForwardResult
from repro.core.sharding import minibatch_bounds
from repro.dlrm.data import SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.embedding import EmbeddingBagCollection
from repro.simgpu import dgx_v100
from repro.simgpu.memory import OutOfDeviceMemory
from repro.simgpu.units import GiB


def small_cfg(**kw):
    defaults = dict(
        num_tables=6, rows_per_table=50, dim=8, batch_size=24,
        max_pooling=4, seed=13,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


class TestConstruction:
    def test_from_workload_config(self):
        emb = DistributedEmbedding(small_cfg(), 2)
        assert emb.n_devices == 2
        assert emb.plan.num_tables == 6
        assert not emb.materialized

    def test_from_table_configs(self):
        cfgs = small_cfg().table_configs()
        emb = DistributedEmbedding(cfgs, 3)
        assert emb.plan.num_tables == 6

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            DistributedEmbedding(small_cfg(), 2, backend="mpi")  # type: ignore[arg-type]

    def test_cluster_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="devices"):
            DistributedEmbedding(small_cfg(), 2, cluster=dgx_v100(4))

    def test_weights_registered_with_memory_accountant(self):
        emb = DistributedEmbedding(small_cfg(), 2)
        for dev in emb.cluster.devices:
            assert dev.memory.used == emb.memory_bytes(dev.id)
            assert dev.memory.used > 0

    def test_paper_scale_fits_v100(self):
        """64 tables × 1M × 64 floats per GPU ≈ 15.3 GiB < 32 GiB."""
        cfg = WorkloadConfig(num_tables=64, rows_per_table=1_000_000, dim=64,
                             batch_size=16384, max_pooling=128)
        emb = DistributedEmbedding(cfg, 1)
        used = emb.cluster.device(0).memory.used
        assert 15 * GiB < used < 16 * GiB

    def test_oversized_tables_raise_oom(self):
        """144 tables of the paper's shape (~34 GiB) exceed one V100."""
        cfg = WorkloadConfig(num_tables=144, rows_per_table=1_000_000, dim=64,
                             batch_size=16384, max_pooling=128)
        with pytest.raises(OutOfDeviceMemory):
            DistributedEmbedding(cfg, 1)

    def test_oversized_fits_when_sharded(self):
        """The same 144 tables fit on 2 GPUs — the paper's motivation."""
        cfg = WorkloadConfig(num_tables=144, rows_per_table=1_000_000, dim=64,
                             batch_size=16384, max_pooling=128)
        emb = DistributedEmbedding(cfg, 2)
        assert emb.n_devices == 2


class TestForward:
    def test_timing_only_by_default(self):
        emb = DistributedEmbedding(small_cfg(), 2)
        batch = SyntheticDataGenerator(small_cfg()).sparse_batch()
        result = emb.forward(batch)
        assert isinstance(result, ForwardResult)
        assert result.outputs is None
        assert result.timing.total_ns > 0
        assert result.total_ms > 0

    def test_materialized_outputs_match_reference(self):
        cfg = small_cfg()
        rng = np.random.default_rng(7)
        emb = DistributedEmbedding(cfg, 3, materialize=True, rng=np.random.default_rng(7))
        ref_ebc = EmbeddingBagCollection.from_configs(cfg.table_configs(),
                                                      rng=np.random.default_rng(7))
        batch = SyntheticDataGenerator(cfg).sparse_batch()
        ref = ref_ebc.forward(batch)
        for backend in ("pgas", "baseline"):
            result = emb.forward(batch, backend=backend)
            assert result.outputs is not None
            for g, (lo, hi) in enumerate(minibatch_bounds(cfg.batch_size, 3)):
                assert np.array_equal(result.outputs[g], ref[lo:hi])

    def test_backend_override_per_call(self):
        emb = DistributedEmbedding(small_cfg(), 2, backend="pgas")
        batch = SyntheticDataGenerator(small_cfg()).sparse_batch()
        t_pgas = emb.forward(batch).timing
        t_base = emb.forward(batch, backend="baseline").timing
        # baseline pays comm+unpack; pgas does not
        assert t_base.sync_unpack_ns > 0
        assert t_pgas.sync_unpack_ns == 0

    def test_forward_timed_from_lengths(self):
        cfg = small_cfg()
        emb = DistributedEmbedding(cfg, 2)
        lengths = SyntheticDataGenerator(cfg).lengths_batch()
        t = emb.forward_timed(lengths)
        assert t.total_ns > 0
        assert t.batches == 1

    def test_timing_consistent_between_batch_and_lengths(self):
        """A real batch and its lengths produce identical simulated time."""
        cfg = small_cfg()
        gen = SyntheticDataGenerator(cfg)
        batch = gen.sparse_batch()
        lengths = {name: f.lengths for name, f in batch}
        emb1 = DistributedEmbedding(cfg, 2)
        emb2 = DistributedEmbedding(cfg, 2)
        t1 = emb1.forward(batch).timing
        t2 = emb2.forward_timed(lengths)
        assert t1.total_ns == pytest.approx(t2.total_ns)

    def test_round_robin_strategy(self):
        emb = DistributedEmbedding(
            small_cfg(), 2, sharding_strategy="round_robin", materialize=True,
            rng=np.random.default_rng(3),
        )
        batch = SyntheticDataGenerator(small_cfg()).sparse_batch()
        result = emb.forward(batch)
        assert result.outputs is not None

    def test_repeated_forwards_accumulate_clock(self):
        emb = DistributedEmbedding(small_cfg(), 2)
        batch = SyntheticDataGenerator(small_cfg()).sparse_batch()
        emb.forward(batch)
        now1 = emb.cluster.engine.now
        emb.forward(batch)
        assert emb.cluster.engine.now > now1
