"""Regression tests: degenerate splits in the collective layer.

All-zero splits must complete after the control path alone (no
zero-length transfers or exchange rounds scheduled); negative byte
counts must raise instead of reaching the interconnect.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.collective import CollectiveContext, CollectiveSpec
from repro.simgpu import dgx_v100
from repro.simgpu.interconnect import Interconnect
from repro.simgpu.units import MiB, us


def run_collective(cluster, start_fn):
    """Drive a collective to completion inside a host process."""

    def host(cl):
        handle = start_fn()
        yield from handle.wait()
        return handle

    cluster.run(host)


def fast_spec(**kw):
    """A spec with zero control overheads for pure-transfer arithmetic."""
    defaults = dict(
        chunk_bytes=4 * MiB,
        launch_overhead_ns=0.0,
        per_chunk_header_bytes=0,
        wait_overhead_ns=0.0,
        bandwidth_efficiency=1.0,
    )
    defaults.update(kw)
    return CollectiveSpec(**defaults)


class TestAllZeroSplits:
    @pytest.mark.parametrize("algo", ["direct", "pairwise"])
    def test_all_zero_completes_immediately(self, algo):
        cl = dgx_v100(4)
        ctx = CollectiveContext(cl, fast_spec(alltoall_algorithm=algo))
        run_collective(cl, lambda: ctx.all_to_all_single(np.zeros((4, 4))))
        assert cl.engine.now == 0.0
        assert cl.profiler.counter(Interconnect.COUNTER).total == 0.0

    @pytest.mark.parametrize("algo", ["direct", "pairwise"])
    def test_all_zero_still_charges_control_path(self, algo):
        """The call happened: launch + wait overheads are not skipped."""
        cl = dgx_v100(2)
        spec = fast_spec(
            launch_overhead_ns=30 * us,
            wait_overhead_ns=8 * us,
            alltoall_algorithm=algo,
        )
        ctx = CollectiveContext(cl, spec)
        run_collective(cl, lambda: ctx.all_to_all_single(np.zeros((2, 2))))
        assert cl.engine.now == pytest.approx(38 * us)

    def test_all_zero_schedules_no_processes(self):
        """No zero-length chunks or pairwise rounds are ever created."""
        cl = dgx_v100(4)
        ctx = CollectiveContext(cl, fast_spec(alltoall_algorithm="pairwise"))
        run_collective(cl, lambda: ctx.all_to_all_single(np.zeros((4, 4))))
        assert not cl.profiler.counter(Interconnect.COUNTER).events()

    def test_diagonal_only_split_is_equivalent_to_zero(self):
        cl = dgx_v100(2)
        ctx = CollectiveContext(cl, fast_spec())
        split = np.diag([1e9, 1e9])
        run_collective(cl, lambda: ctx.all_to_all_single(split))
        assert cl.profiler.counter(Interconnect.COUNTER).total == 0.0


class TestNegativeBytes:
    def test_all_to_all_negative_entry_raises(self):
        ctx = CollectiveContext(dgx_v100(2))
        with pytest.raises(ValueError, match="non-negative"):
            ctx.all_to_all_single(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_pairwise_transfer_negative_raises(self):
        ctx = CollectiveContext(dgx_v100(2), fast_spec())
        with pytest.raises(ValueError, match="non-negative"):
            ctx._pairwise_transfer(0, 1, -8.0)

    def test_pairwise_transfer_zero_returns_no_events(self):
        ctx = CollectiveContext(dgx_v100(2), fast_spec())
        assert ctx._pairwise_transfer(0, 1, 0.0) == []

    def test_all_gather_negative_contribution_raises(self):
        ctx = CollectiveContext(dgx_v100(2), fast_spec())
        with pytest.raises(ValueError, match="non-negative"):
            ctx.all_gather([100.0, -1.0])
