"""Property-based stress tests for the communication stack."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.collective import CollectiveContext, CollectiveSpec
from repro.comm.pgas import PGASContext, PGASSpec
from repro.simgpu import Cluster, dgx_v100, multinode_topology, nvlink_dgx1
from repro.simgpu.interconnect import Interconnect
from repro.simgpu.units import MiB


@settings(deadline=None, max_examples=30)
@given(
    G=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1000),
    n_puts=st.integers(min_value=1, max_value=40),
)
def test_pgas_conservation_under_random_traffic(G, seed, n_puts):
    """Whatever the traffic pattern: every issued byte is delivered once,
    and quiet() leaves nothing outstanding."""
    cl = dgx_v100(G)
    ctx = PGASContext(cl)
    rng = np.random.default_rng(seed)
    issued = 0.0
    for _ in range(n_puts):
        src, dst = rng.choice(G, size=2, replace=False)
        nbytes = float(rng.integers(1, 100_000))
        ctx.put(int(src), int(dst), nbytes)
        issued += nbytes

    def host(cluster):
        yield from ctx.barrier_all()

    cl.run(host)
    assert cl.profiler.counter(PGASContext.COUNTER).total == pytest.approx(issued)
    for dev in cl.devices:
        assert ctx.pending_puts(dev.id) == 0


@settings(deadline=None, max_examples=20)
@given(
    G=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=100),
    algo=st.sampled_from(["direct", "pairwise"]),
)
def test_alltoall_conservation_any_split(G, seed, algo):
    """Counter total == off-diagonal split sum for any split matrix."""
    rng = np.random.default_rng(seed)
    split = rng.uniform(0, 5 * MiB, size=(G, G))
    cl = dgx_v100(G)
    ctx = CollectiveContext(
        cl,
        CollectiveSpec(bandwidth_efficiency=1.0, alltoall_algorithm=algo),
    )

    def host(cluster):
        handle = ctx.all_to_all_single(split)
        yield from handle.wait()

    cl.run(host)
    expected = split.sum() - np.trace(split)
    assert cl.profiler.counter(Interconnect.COUNTER).total == pytest.approx(expected)


@settings(deadline=None, max_examples=20)
@given(
    nbytes=st.floats(min_value=1.0, max_value=1e8),
    msg=st.integers(min_value=8, max_value=8192),
    hdr=st.integers(min_value=0, max_value=256),
)
def test_small_messages_never_beat_one_big_transfer(nbytes, msg, hdr):
    """Framing monotonicity: headers only ever add wire time."""
    cl_small = dgx_v100(2)
    cl_small.interconnect.transfer(0, 1, nbytes, message_bytes=msg, header_bytes=hdr)
    cl_small.engine.run()
    cl_big = dgx_v100(2)
    cl_big.interconnect.transfer(0, 1, nbytes)
    cl_big.engine.run()
    assert cl_small.engine.now >= cl_big.engine.now - 1e-9


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(min_value=0, max_value=100),
    n_transfers=st.integers(min_value=2, max_value=20),
)
def test_link_serialisation_invariant(seed, n_transfers):
    """On one link, total busy time == sum of individual wire times, and
    the last delivery is no earlier than that sum."""
    cl = dgx_v100(2)
    rng = np.random.default_rng(seed)
    link = cl.interconnect.link(0, 1)
    sizes = rng.integers(1, 1_000_000, size=n_transfers).astype(float)
    events = [cl.interconnect.transfer(0, 1, float(s)) for s in sizes]
    cl.engine.run()
    expected_busy = float(sizes.sum()) / link.spec.bandwidth
    assert link.busy_time == pytest.approx(expected_busy)
    last = max(ev.value for ev in events)
    assert last >= expected_busy


@settings(deadline=None, max_examples=10)
@given(
    devices_per_node=st.integers(min_value=1, max_value=3),
    n_nodes=st.integers(min_value=2, max_value=3),
)
def test_multinode_topology_classification(devices_per_node, n_nodes):
    """Every pair is classified intra- or inter-node, consistently."""
    n = devices_per_node * n_nodes
    topo = multinode_topology(n, devices_per_node)
    for s in range(n):
        for d in range(n):
            if s == d:
                continue
            spec = topo.link_spec(s, d)
            same_node = s // devices_per_node == d // devices_per_node
            if same_node:
                assert spec.bandwidth > 20.0  # NVLink class
            else:
                assert spec.bandwidth < 20.0  # NIC class
            # symmetric classification
            assert topo.link_spec(d, s).bandwidth == spec.bandwidth
