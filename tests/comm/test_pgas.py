"""Tests for the PGAS one-sided communication layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.pgas import PGASContext, PGASSpec, SymmetricHeap
from repro.simgpu import dgx_v100
from repro.simgpu.units import us


class TestSpec:
    def test_defaults_match_paper_units(self):
        spec = PGASSpec()
        # 256 B = one d=64 fp32 embedding vector, the paper's counter unit.
        assert spec.message_bytes == 256
        assert spec.header_bytes == 32

    def test_wire_efficiency(self):
        assert PGASSpec(message_bytes=256, header_bytes=32).wire_efficiency == pytest.approx(
            256 / 288
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PGASSpec(message_bytes=0)
        with pytest.raises(ValueError):
            PGASSpec(header_bytes=-1)


class TestSymmetricHeap:
    def test_same_offsets_across_devices(self):
        cl = dgx_v100(3)
        heap = SymmetricHeap(cl)
        bufs = heap.alloc((100, 4))
        assert len(bufs) == 3
        assert len({b.offset for b in bufs}) == 1
        assert {b.device_id for b in bufs} == {0, 1, 2}

    def test_successive_allocations_stay_symmetric(self):
        cl = dgx_v100(2)
        heap = SymmetricHeap(cl)
        a = heap.alloc((10,))
        b = heap.alloc((20,))
        assert a[0].offset == a[1].offset
        assert b[0].offset == b[1].offset
        assert a[0].offset != b[0].offset

    def test_diverged_heaps_detected_and_rolled_back(self):
        cl = dgx_v100(2)
        heap = SymmetricHeap(cl)
        cl.device(0).memory.alloc((7,))  # asymmetric private allocation
        used_before = [d.memory.used for d in cl.devices]
        with pytest.raises(RuntimeError, match="diverged"):
            heap.alloc((10,))
        assert [d.memory.used for d in cl.devices] == used_before

    def test_free(self):
        cl = dgx_v100(2)
        heap = SymmetricHeap(cl)
        bufs = heap.alloc((10,))
        heap.free(bufs)
        assert all(d.memory.used == 0 for d in cl.devices)
        with pytest.raises(ValueError):
            heap.free(bufs)


class TestPut:
    def test_basic_put_delivers(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        ev = ctx.put(0, 1, 1024.0)
        cl.engine.run()
        assert ev.triggered
        assert cl.profiler.counter(PGASContext.COUNTER).total == pytest.approx(1024.0)

    def test_put_wire_includes_headers(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl, PGASSpec(message_bytes=256, header_bytes=32))
        ctx.put(0, 1, 1024.0)  # 4 messages
        cl.engine.run()
        assert cl.interconnect.total_wire_bytes() == pytest.approx(1024 + 4 * 32)

    def test_put_to_self_rejected(self):
        ctx = PGASContext(dgx_v100(2))
        with pytest.raises(ValueError, match="put to self"):
            ctx.put(1, 1, 100.0)

    def test_put_without_peer_access_rejected(self):
        cl = dgx_v100(2)
        cl.device(0)._peers.clear()
        ctx = PGASContext(cl)
        with pytest.raises(PermissionError):
            ctx.put(0, 1, 100.0)

    def test_empty_put_is_immediate(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        ev = ctx.put(0, 1, 0.0)
        assert ev.triggered

    def test_negative_put_rejected(self):
        ctx = PGASContext(dgx_v100(2))
        with pytest.raises(ValueError):
            ctx.put(0, 1, -5.0)

    def test_put_statistics(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        ctx.put(0, 1, 100.0)
        ctx.put(0, 1, 200.0)
        assert ctx.puts_issued == 2
        assert ctx.payload_bytes_issued == 300.0


class TestAtomics:
    def test_atomic_add_volume(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl, PGASSpec(atomic_payload_bytes=8))
        ctx.atomic_add(0, 1, 100)
        cl.engine.run()
        assert cl.profiler.counter(PGASContext.COUNTER).total == pytest.approx(800.0)

    def test_zero_atomics_immediate(self):
        ctx = PGASContext(dgx_v100(2))
        assert ctx.atomic_add(0, 1, 0).triggered

    def test_negative_rejected(self):
        ctx = PGASContext(dgx_v100(2))
        with pytest.raises(ValueError):
            ctx.atomic_add(0, 1, -1)


class TestCompletion:
    def test_quiet_waits_for_outstanding_puts(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        big = 48.0 * 1e6  # 1 ms of wire time at 48 B/ns
        ctx.put(0, 1, big)

        def host(cluster):
            yield from ctx.quiet(0)

        elapsed = cl.run(host)
        assert elapsed >= big / 48.0  # at least the drain time

    def test_quiet_with_nothing_outstanding_costs_only_overhead(self):
        cl = dgx_v100(2)
        spec = PGASSpec(quiet_overhead_ns=2 * us)
        ctx = PGASContext(cl, spec)

        def host(cluster):
            yield from ctx.quiet(0)

        assert cl.run(host) == pytest.approx(2 * us)

    def test_quiet_only_covers_own_pe(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        ctx.put(1, 0, 48.0 * 1e6)  # PE 1's traffic

        def host(cluster):
            yield from ctx.quiet(0)  # PE 0 has nothing outstanding

        assert cl.run(host) < 10 * us

    def test_pending_puts_gc(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        ctx.put(0, 1, 100.0)
        assert ctx.pending_puts(0) == 1
        cl.engine.run()
        assert ctx.pending_puts(0) == 0

    def test_barrier_all_drains_everyone(self):
        cl = dgx_v100(3)
        ctx = PGASContext(cl)
        ctx.put(0, 1, 48.0 * 1e6)
        ctx.put(2, 0, 48.0 * 2e6)

        def host(cluster):
            yield from ctx.barrier_all()

        elapsed = cl.run(host)
        assert elapsed >= 2e6 / 48.0 * 48.0 / 48.0  # at least the slowest drain
        assert ctx.pending_puts(0) == 0
        assert ctx.pending_puts(2) == 0

    def test_register_outstanding_external_event(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        ev = cl.interconnect.transfer(0, 1, 48.0 * 1e6)
        ctx.register_outstanding(0, ev)
        assert ctx.pending_puts(0) == 1

        def host(cluster):
            yield from ctx.quiet(0)

        cl.run(host)
        assert ev.triggered


class TestOverlapSemantics:
    def test_puts_overlap_with_compute(self):
        """A put issued before a compute delay drains during it (free)."""
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        wire_ns = 1e6  # 1 ms

        def host(cluster):
            ctx.put(0, 1, 48.0 * wire_ns)
            yield cluster.engine.timeout(5 * wire_ns)  # "compute"
            yield from ctx.quiet(0)

        elapsed = cl.run(host)
        # total ≈ compute + quiet overhead, NOT compute + wire
        assert elapsed < 5 * wire_ns + 10 * us

    def test_exposed_drain_when_compute_short(self):
        cl = dgx_v100(2)
        ctx = PGASContext(cl)
        wire_ns = 1e6

        def host(cluster):
            ctx.put(0, 1, 48.0 * wire_ns)
            yield cluster.engine.timeout(0.1 * wire_ns)
            yield from ctx.quiet(0)

        elapsed = cl.run(host)
        assert elapsed >= wire_ns  # drain exposed past the short compute
