"""Tests for the NCCL-style collective layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.collective import CollectiveContext, CollectiveSpec
from repro.simgpu import dgx_v100
from repro.simgpu.interconnect import Interconnect
from repro.simgpu.units import MiB, us


def run_collective(cluster, start_fn):
    """Drive a collective to completion inside a host process."""

    def host(cl):
        handle = start_fn()
        yield from handle.wait()
        return handle

    cluster.run(host)


def fast_spec(**kw):
    """A spec with zero control overheads for pure-transfer arithmetic."""
    defaults = dict(
        chunk_bytes=4 * MiB,
        launch_overhead_ns=0.0,
        per_chunk_header_bytes=0,
        wait_overhead_ns=0.0,
        bandwidth_efficiency=1.0,
    )
    defaults.update(kw)
    return CollectiveSpec(**defaults)


class TestSpec:
    def test_defaults_validated(self):
        with pytest.raises(ValueError):
            CollectiveSpec(chunk_bytes=0)
        with pytest.raises(ValueError):
            CollectiveSpec(bandwidth_efficiency=0.0)
        with pytest.raises(ValueError):
            CollectiveSpec(bandwidth_efficiency=1.5)
        with pytest.raises(ValueError):
            CollectiveSpec(launch_overhead_ns=-1.0)

    def test_default_efficiency_is_calibrated(self):
        from repro.core.calibration import NCCL_ALLTOALL_EFFICIENCY

        assert CollectiveSpec().bandwidth_efficiency == NCCL_ALLTOALL_EFFICIENCY


class TestAllToAll:
    def test_split_shape_validated(self):
        cl = dgx_v100(2)
        ctx = CollectiveContext(cl)
        with pytest.raises(ValueError, match="split_bytes"):
            ctx.all_to_all_single(np.zeros((3, 3)))
        with pytest.raises(ValueError, match="non-negative"):
            ctx.all_to_all_single(np.array([[0.0, -1.0], [0.0, 0.0]]))

    def test_transfer_time_matches_alpha_beta(self):
        cl = dgx_v100(2)
        ctx = CollectiveContext(cl, fast_spec())
        bw = cl.topology.link_spec(0, 1).bandwidth
        lat = cl.topology.link_spec(0, 1).latency_ns
        nbytes = 2 * MiB  # single chunk
        split = np.array([[0.0, nbytes], [0.0, 0.0]])
        run_collective(cl, lambda: ctx.all_to_all_single(split))
        assert cl.engine.now == pytest.approx(nbytes / bw + lat)

    def test_launch_and_wait_overheads_charged(self):
        cl = dgx_v100(2)
        spec = fast_spec(launch_overhead_ns=30 * us, wait_overhead_ns=8 * us)
        ctx = CollectiveContext(cl, spec)
        run_collective(cl, lambda: ctx.all_to_all_single(np.zeros((2, 2))))
        assert cl.engine.now == pytest.approx(38 * us)

    def test_diagonal_is_free(self):
        cl = dgx_v100(2)
        ctx = CollectiveContext(cl, fast_spec())
        split = np.array([[1e9, 0.0], [0.0, 1e9]])  # only local shares
        run_collective(cl, lambda: ctx.all_to_all_single(split))
        assert cl.profiler.counter(Interconnect.COUNTER).total == 0.0

    def test_counter_gets_all_offdiagonal_bytes(self):
        cl = dgx_v100(3)
        ctx = CollectiveContext(cl, fast_spec())
        split = np.arange(9, dtype=np.float64).reshape(3, 3) * 1000
        run_collective(cl, lambda: ctx.all_to_all_single(split))
        expected = split.sum() - np.trace(split)
        assert cl.profiler.counter(Interconnect.COUNTER).total == pytest.approx(expected)

    def test_efficiency_derate_slows_transfer(self):
        nbytes = 4 * MiB
        split = np.array([[0.0, float(nbytes)], [0.0, 0.0]])

        cl_fast = dgx_v100(2)
        run_collective(
            cl_fast, lambda: CollectiveContext(cl_fast, fast_spec()).all_to_all_single(split)
        )
        cl_slow = dgx_v100(2)
        run_collective(
            cl_slow,
            lambda: CollectiveContext(
                cl_slow, fast_spec(bandwidth_efficiency=0.25)
            ).all_to_all_single(split),
        )
        # 4x less efficient → ~4x the wire time (latency charged once each)
        lat = cl_fast.topology.link_spec(0, 1).latency_ns
        assert (cl_slow.engine.now - lat) == pytest.approx(4 * (cl_fast.engine.now - lat), rel=0.01)

    def test_chunking_produces_progressive_delivery(self):
        cl = dgx_v100(2)
        ctx = CollectiveContext(cl, fast_spec(chunk_bytes=1 * MiB))
        split = np.array([[0.0, float(4 * MiB)], [0.0, 0.0]])
        run_collective(cl, lambda: ctx.all_to_all_single(split))
        counter = cl.profiler.counter(Interconnect.COUNTER)
        # 4 chunks → 4 distinct delivery stamps
        assert len(counter._events) == 4
        times = sorted(t for t, _ in counter._events)
        assert times[0] < times[-1]

    def test_handle_completion_flags(self):
        cl = dgx_v100(2)
        ctx = CollectiveContext(cl, fast_spec())
        split = np.array([[0.0, 1000.0], [1000.0, 0.0]])

        def host(cluster):
            handle = ctx.all_to_all_single(split)
            assert not handle.is_completed
            yield from handle.wait()
            assert handle.is_completed
            assert handle.completed_at is not None
            assert handle.completed_at >= handle.issued_at

        cl.run(host)


class TestOtherCollectives:
    def test_all_gather_volume(self):
        cl = dgx_v100(3)
        ctx = CollectiveContext(cl, fast_spec())
        run_collective(cl, lambda: ctx.all_gather([100.0, 200.0, 300.0]))
        # each rank sends its contribution to 2 peers
        expected = 2 * (100 + 200 + 300)
        assert cl.profiler.counter(Interconnect.COUNTER).total == pytest.approx(expected)

    def test_all_gather_wrong_count(self):
        ctx = CollectiveContext(dgx_v100(2), fast_spec())
        with pytest.raises(ValueError):
            ctx.all_gather([1.0])

    def test_all_reduce_ring_volume(self):
        G = 4
        cl = dgx_v100(G)
        ctx = CollectiveContext(cl, fast_spec())
        total = 1000.0 * G  # divisible
        run_collective(cl, lambda: ctx.all_reduce(total))
        # ring: 2 * (G-1) * total/G per rank, G ranks
        expected = 2 * (G - 1) * (total / G) * G
        assert cl.profiler.counter(Interconnect.COUNTER).total == pytest.approx(expected)

    def test_reduce_scatter_half_of_allreduce(self):
        G = 4
        total = 4000.0
        cl1 = dgx_v100(G)
        run_collective(cl1, lambda: CollectiveContext(cl1, fast_spec()).reduce_scatter(total))
        cl2 = dgx_v100(G)
        run_collective(cl2, lambda: CollectiveContext(cl2, fast_spec()).all_reduce(total))
        v1 = cl1.profiler.counter(Interconnect.COUNTER).total
        v2 = cl2.profiler.counter(Interconnect.COUNTER).total
        assert v2 == pytest.approx(2 * v1)

    def test_negative_volume_rejected(self):
        ctx = CollectiveContext(dgx_v100(2), fast_spec())
        with pytest.raises(ValueError):
            ctx.all_reduce(-1.0)
        with pytest.raises(ValueError):
            ctx.reduce_scatter(-1.0)

    def test_barrier_is_cheap_but_not_free(self):
        cl = dgx_v100(2)
        ctx = CollectiveContext(cl)
        run_collective(cl, lambda: ctx.barrier())
        assert 0 < cl.engine.now < 100 * us


class TestAlltoallAlgorithms:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="alltoall_algorithm"):
            CollectiveSpec(alltoall_algorithm="bruck")

    def test_pairwise_moves_same_bytes(self):
        split = np.full((4, 4), 3 * MiB, dtype=float)
        np.fill_diagonal(split, 0.0)
        totals = {}
        for algo in ("direct", "pairwise"):
            cl = dgx_v100(4)
            ctx = CollectiveContext(cl, fast_spec(alltoall_algorithm=algo))
            run_collective(cl, lambda c=ctx: c.all_to_all_single(split))
            totals[algo] = cl.profiler.counter(Interconnect.COUNTER).total
        assert totals["direct"] == pytest.approx(totals["pairwise"])
        assert totals["direct"] == pytest.approx(12 * 3 * MiB)

    def test_pairwise_rounds_serialise(self):
        """Round barriers make pairwise slower than direct on NVLink."""
        split = np.full((4, 4), 8 * MiB, dtype=float)
        np.fill_diagonal(split, 0.0)
        times = {}
        for algo in ("direct", "pairwise"):
            cl = dgx_v100(4)
            ctx = CollectiveContext(cl, fast_spec(alltoall_algorithm=algo))
            run_collective(cl, lambda c=ctx: c.all_to_all_single(split))
            times[algo] = cl.engine.now
        # direct: all 12 transfers on disjoint links in parallel (~1 round);
        # pairwise: 3 synchronised rounds.
        assert times["pairwise"] > 2.5 * times["direct"]

    def test_pairwise_round_structure_in_counter(self):
        """Deliveries cluster into G-1 distinct round instants."""
        split = np.full((3, 3), 2 * MiB, dtype=float)
        np.fill_diagonal(split, 0.0)
        cl = dgx_v100(3)
        ctx = CollectiveContext(cl, fast_spec(alltoall_algorithm="pairwise"))
        run_collective(cl, lambda: ctx.all_to_all_single(split))
        counter = cl.profiler.counter(Interconnect.COUNTER)
        stamps = sorted({t for t, _ in counter._events})
        assert len(stamps) == 2  # G-1 = 2 rounds, uniform sizes

    def test_pairwise_two_gpus_equals_direct(self):
        split = np.array([[0.0, float(2 * MiB)], [float(2 * MiB), 0.0]])
        times = {}
        for algo in ("direct", "pairwise"):
            cl = dgx_v100(2)
            ctx = CollectiveContext(cl, fast_spec(alltoall_algorithm=algo))
            run_collective(cl, lambda c=ctx: c.all_to_all_single(split))
            times[algo] = cl.engine.now
        assert times["pairwise"] == pytest.approx(times["direct"], rel=1e-6)
