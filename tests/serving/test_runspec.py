"""Tests for the unified RunSpec configuration API."""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig
from repro.core.runspec import PRESETS, RunSpec, preset_runspec
from repro.core.serving import SchedulerSpec, ServingSpec
from repro.dlrm.data import WorkloadConfig
from repro.faults import ResilienceSpec
from repro.simgpu.units import ms

WL = WorkloadConfig(
    num_tables=8, rows_per_table=2048, dim=16, batch_size=64, max_pooling=4, seed=3
)


def full_spec():
    """A RunSpec exercising every optional section."""
    return RunSpec(
        workload=WL,
        n_devices=4,
        backend="pgas+cache",
        bottom_mlp=(128, 64),
        top_mlp=(256,),
        interaction="cat",
        cache=CacheConfig(capacity_rows=512, policy="lfu"),
        resilience=ResilienceSpec(deadline_ns=2 * ms, max_retries=3),
        serving=ServingSpec(
            arrival_qps=50_000.0,
            max_batch=16,
            batch_window_ns=0.2 * ms,
            deadline_ns=10 * ms,
            scheduler=SchedulerSpec(max_in_flight=3, policy="size"),
        ),
        name="full",
    )


class TestRoundTrip:
    def test_dict_round_trip_bit_exact(self):
        spec = full_spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_bit_exact(self):
        spec = full_spec()
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_minimal_round_trip(self):
        spec = RunSpec(workload=WL)
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.cache is None and again.serving is None

    def test_round_trip_preserves_nested_types(self):
        again = RunSpec.from_dict(full_spec().to_dict())
        assert isinstance(again.cache, CacheConfig)
        assert isinstance(again.resilience, ResilienceSpec)
        assert isinstance(again.serving, ServingSpec)
        assert isinstance(again.serving.scheduler, SchedulerSpec)
        assert again.serving.scheduler.max_in_flight == 3

    def test_top_level_scheduler_round_trips(self):
        spec = RunSpec(workload=WL, scheduler=SchedulerSpec(max_in_flight=2))
        again = RunSpec.from_dict(spec.to_dict())
        assert again.scheduler == spec.scheduler


class TestValidation:
    def test_unknown_backend_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown backend"):
            RunSpec(workload=WL, backend="nccl")

    def test_bad_devices(self):
        with pytest.raises(ValueError):
            RunSpec(workload=WL, n_devices=0)

    def test_bad_interaction(self):
        with pytest.raises(ValueError):
            RunSpec(workload=WL, interaction="mlp-mixer")

    def test_bad_mlp_widths(self):
        with pytest.raises(ValueError):
            RunSpec(workload=WL, bottom_mlp=(512, 0))

    def test_wrong_section_types(self):
        with pytest.raises(TypeError):
            RunSpec(workload={"num_tables": 8})
        with pytest.raises(TypeError):
            RunSpec(workload=WL, serving={"arrival_qps": 1.0})
        with pytest.raises(TypeError):
            RunSpec(workload=WL, scheduler="hybrid")

    def test_from_dict_rejects_unknown_keys(self):
        payload = RunSpec(workload=WL).to_dict()
        payload["gpus"] = 8
        with pytest.raises(ValueError, match="gpus"):
            RunSpec.from_dict(payload)

    def test_from_dict_requires_workload(self):
        with pytest.raises(ValueError, match="workload"):
            RunSpec.from_dict({"n_devices": 2})


class TestServingSpecMerge:
    def test_serving_required(self):
        with pytest.raises(ValueError):
            RunSpec(workload=WL).serving_spec()

    def test_top_level_scheduler_merged_when_serving_has_none(self):
        spec = RunSpec(
            workload=WL,
            serving=ServingSpec(arrival_qps=1e5),
            scheduler=SchedulerSpec(max_in_flight=2),
        )
        assert spec.serving_spec().scheduler == SchedulerSpec(max_in_flight=2)

    def test_serving_scheduler_wins_over_top_level(self):
        spec = RunSpec(
            workload=WL,
            serving=ServingSpec(
                arrival_qps=1e5, scheduler=SchedulerSpec(max_in_flight=4)
            ),
            scheduler=SchedulerSpec(max_in_flight=2),
        )
        assert spec.serving_spec().scheduler.max_in_flight == 4


class TestPresets:
    def test_preset_names(self):
        assert PRESETS == ("tiny", "weak", "strong")

    def test_tiny_shape(self):
        spec = preset_runspec("tiny")
        assert spec.workload.num_tables == 8
        assert spec.name == "tiny"

    def test_weak_scales_with_devices(self):
        assert preset_runspec("weak", n_devices=2).workload.num_tables == 128
        assert preset_runspec("weak", n_devices=4).workload.num_tables == 256

    def test_strong_is_fixed_total(self):
        assert (
            preset_runspec("strong", n_devices=2).workload.num_tables
            == preset_runspec("strong", n_devices=8).workload.num_tables
        )

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError):
            preset_runspec("huge")

    def test_overrides_pass_through(self):
        spec = preset_runspec("tiny", backend="baseline", name="custom")
        assert spec.backend == "baseline"
        assert spec.name == "custom"


class TestFromSpecConstructors:
    def test_distributed_embedding_from_spec(self):
        from repro.core.retrieval import DistributedEmbedding

        spec = RunSpec(workload=WL, n_devices=2, backend="baseline")
        emb = DistributedEmbedding.from_spec(spec)
        assert emb.backend == "baseline"
        assert emb.n_devices == 2

    def test_pipeline_from_spec(self):
        from repro.core.pipeline import DLRMInferencePipeline
        from repro.dlrm.data import SyntheticDataGenerator

        spec = RunSpec(workload=WL, n_devices=2, backend="pgas")
        pipe = DLRMInferencePipeline.from_spec(spec)
        assert pipe.backend == "pgas"
        lengths = SyntheticDataGenerator(WL).lengths_batch()
        timing = pipe.run_batch(lengths)
        assert timing.total_ns > 0

    def test_pipeline_from_spec_applies_cache(self):
        from repro.core.pipeline import DLRMInferencePipeline
        from repro.dlrm.data import SyntheticDataGenerator

        spec = RunSpec(
            workload=WL, n_devices=2, backend="pgas+cache",
            cache=CacheConfig(capacity_rows=256),
        )
        pipe = DLRMInferencePipeline.from_spec(spec)
        batch = SyntheticDataGenerator(WL).sparse_batch()
        assert pipe.run_batch(batch=batch).total_ns > 0
