"""Tests for the continuous-batching serving scheduler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.core.serving import InferenceServer, SchedulerSpec, ServingSpec
from repro.dlrm.data import WorkloadConfig
from repro.simgpu.units import ms
from repro.telemetry import BATCH_FORMED_COUNTER, IN_FLIGHT_COUNTER

WL = WorkloadConfig(
    num_tables=8, rows_per_table=2048, dim=16, batch_size=64, max_pooling=4, seed=2
)


def make_server(scheduler=None, backend="pgas", qps=200_000.0, max_batch=8,
                window=0.1 * ms, n_devices=2, deadline_ns=5 * ms, **spec_kw):
    pipe = DLRMInferencePipeline(PipelineConfig(workload=WL), n_devices, backend=backend)
    spec = ServingSpec(
        arrival_qps=qps, max_batch=max_batch, batch_window_ns=window,
        deadline_ns=deadline_ns, scheduler=scheduler, **spec_kw,
    )
    return InferenceServer(pipe, spec)


class TestSchedulerSpec:
    def test_defaults(self):
        s = SchedulerSpec()
        assert s.max_in_flight == 1
        assert s.policy == "hybrid"
        assert s.queue_limit is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SchedulerSpec(max_in_flight=0)
        with pytest.raises(ValueError):
            SchedulerSpec(policy="fifo")
        with pytest.raises(ValueError):
            SchedulerSpec(queue_limit=0)

    def test_serving_spec_rejects_wrong_type(self):
        with pytest.raises(TypeError):
            ServingSpec(arrival_qps=1000, scheduler="hybrid")


class TestContinuousBatching:
    def test_k2_beats_k1_goodput_and_idle(self):
        """The acceptance criterion: more in-flight batches reclaim the
        inter-batch interconnect bubble and raise goodput."""
        r1 = make_server(SchedulerSpec(max_in_flight=1)).simulate(32)
        r2 = make_server(SchedulerSpec(max_in_flight=2)).simulate(32)
        assert r2.goodput_qps > r1.goodput_qps
        assert r2.interconnect_idle_ns < r1.interconnect_idle_ns

    def test_all_served_at_any_depth(self):
        for k in (1, 2, 3):
            res = make_server(SchedulerSpec(max_in_flight=k)).simulate(40)
            assert res.n_requests == 40
            assert sum(res.batch_sizes) == 40
            assert res.max_in_flight == k

    def test_default_scheduler_matches_explicit_k1(self):
        """spec.scheduler=None is exactly the sequential hybrid scheduler."""
        a = make_server(None).simulate(48)
        b = make_server(SchedulerSpec(max_in_flight=1, policy="hybrid")).simulate(48)
        assert np.array_equal(a.latencies_ns, b.latencies_ns)
        assert a.batch_sizes == b.batch_sizes

    def test_deterministic_as_dict(self):
        sched = SchedulerSpec(max_in_flight=2)
        a = make_server(sched).simulate(40)
        b = make_server(sched).simulate(40)
        assert a.as_dict() == b.as_dict()

    def test_in_flight_gauge_bounded_by_k(self):
        for k in (1, 2):
            server = make_server(SchedulerSpec(max_in_flight=k), qps=1_000_000.0)
            server.simulate(40)
            counter = server.pipeline.cluster.profiler.counters[IN_FLIGHT_COUNTER]
            levels = np.cumsum([d for _, d in counter.events()])
            assert levels.max() <= k
            assert levels.min() >= 0
            assert levels[-1] == 0  # everything drained

    def test_k2_actually_overlaps_batches(self):
        """At saturating load the gauge must reach 2 — otherwise the second
        slot never paid for itself and the test is vacuous."""
        server = make_server(SchedulerSpec(max_in_flight=2), qps=1_000_000.0)
        server.simulate(40)
        counter = server.pipeline.cluster.profiler.counters[IN_FLIGHT_COUNTER]
        levels = np.cumsum([d for _, d in counter.events()])
        assert levels.max() == 2


class TestSegments:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_segments_sum_to_latency(self, k):
        """queue + form + execute must equal end-to-end latency, exactly."""
        res = make_server(SchedulerSpec(max_in_flight=k)).simulate(40)
        assert res.form_ns.shape == res.latencies_ns.shape
        np.testing.assert_allclose(
            res.form_ns + res.queue_ns + res.execute_ns, res.latencies_ns,
            rtol=0, atol=1e-6,
        )

    def test_segments_non_negative(self):
        res = make_server(SchedulerSpec(max_in_flight=2)).simulate(40)
        assert (res.form_ns >= 0).all()
        assert (res.queue_ns >= 0).all()
        assert (res.execute_ns > 0).all()

    def test_segments_sum_with_shedding(self):
        res = make_server(
            SchedulerSpec(max_in_flight=2, queue_limit=4), qps=2_000_000.0
        ).simulate(60)
        assert res.n_shed > 0
        np.testing.assert_allclose(
            res.form_ns + res.queue_ns + res.execute_ns, res.latencies_ns,
            rtol=0, atol=1e-6,
        )
        assert res.n_requests + res.n_shed == 60


class TestFormationPolicies:
    def test_formed_by_accounts_every_batch(self):
        res = make_server(SchedulerSpec(max_in_flight=2)).simulate(40)
        assert sum(res.formed_by.values()) == res.n_batches

    def test_size_policy_fills_batches(self):
        res = make_server(
            SchedulerSpec(policy="size"), qps=500_000.0, max_batch=8
        ).simulate(40)
        # All batches full except possibly the exhausted tail.
        assert res.formed_by["timeout"] == 0
        assert all(b == 8 for b in res.batch_sizes[:-1])

    def test_timeout_policy_never_triggers_on_size(self):
        res = make_server(
            SchedulerSpec(policy="timeout"), qps=2_000_000.0, max_batch=4
        ).simulate(40)
        assert res.formed_by["size"] == 0
        assert max(res.batch_sizes) <= 4  # cap still applies at dispatch

    def test_hybrid_uses_window_at_low_load(self):
        res = make_server(
            SchedulerSpec(policy="hybrid"), qps=10_000.0, window=0.05 * ms
        ).simulate(24)
        assert res.formed_by["timeout"] > 0

    def test_formation_counters_stamped(self):
        server = make_server(SchedulerSpec(max_in_flight=2))
        res = server.simulate(40)
        profiler = server.pipeline.cluster.profiler
        stamped = sum(
            counter.total
            for name, counter in profiler.counters.items()
            if name.startswith(BATCH_FORMED_COUNTER)
        )
        assert stamped == res.n_batches


class TestMaterializedEquivalence:
    @pytest.mark.parametrize("backend", ["pgas", "baseline"])
    def test_outputs_bit_identical_across_k(self, backend):
        """Continuous batching must not change what is computed, only when."""
        outs = {}
        for k in (1, 2):
            res = make_server(
                SchedulerSpec(max_in_flight=k), backend=backend
            ).simulate(24, materialize=True)
            assert res.request_outputs is not None
            assert res.request_outputs.shape == (24, WL.num_tables, WL.dim)
            outs[k] = res.request_outputs
        assert np.array_equal(outs[1], outs[2])

    def test_outputs_match_direct_functional_forward(self):
        """Per-request outputs equal the functional forward over the same
        pre-drawn pool, independent of batch cuts."""
        from repro.core.functional import pgas_functional_forward
        from repro.dlrm.data import SyntheticDataGenerator

        server = make_server(SchedulerSpec(max_in_flight=2))
        res = server.simulate(16, materialize=True)
        gen = SyntheticDataGenerator(WL)
        pool = gen.sparse_batch(batch_size=16)
        expected = np.concatenate(
            pgas_functional_forward(server._materialized_tables(), pool), axis=0
        )
        assert np.array_equal(res.request_outputs, expected)


class TestFromSpec:
    def test_server_from_runspec(self):
        from repro.core.runspec import preset_runspec

        spec = preset_runspec(
            "tiny", n_devices=2,
            serving=ServingSpec(arrival_qps=1e5, max_batch=8,
                                batch_window_ns=0.1 * ms),
            scheduler=SchedulerSpec(max_in_flight=2),
        )
        server = InferenceServer.from_spec(spec)
        res = server.simulate(16)
        assert res.n_requests == 16
        assert res.max_in_flight == 2  # top-level scheduler merged in
