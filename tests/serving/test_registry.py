"""Tests for the backend registry and BackendInfo contract."""

from __future__ import annotations

import pytest

from repro.core.retrieval import (
    BackendInfo,
    _BACKENDS,
    available_backends,
    backend_spec,
    register_backend,
)

BUILTINS = (
    "baseline",
    "baseline+cache",
    "baseline+resilient",
    "pgas",
    "pgas+cache",
    "pgas+resilient",
)


class TestAvailableBackends:
    def test_all_builtins_listed_sorted(self):
        names = available_backends()
        assert list(names) == sorted(names)
        for builtin in BUILTINS:
            assert builtin in names

    def test_entries_are_backend_info(self):
        for info in available_backends():
            assert isinstance(info, BackendInfo)
            assert info.description  # every builtin carries a description

    def test_str_compatibility(self):
        """BackendInfo must keep working everywhere a plain name did."""
        names = available_backends()
        assert "pgas" in names  # str equality
        assert ", ".join(names)  # join
        assert sorted(names) == sorted(str(n) for n in names)
        info = [n for n in names if n == "pgas"][0]
        assert backend_spec(info).name == "pgas"  # usable as a dict key


class TestBackendInfoFlags:
    def test_name_contract_properties(self):
        by_name = {str(i): i for i in available_backends()}
        assert by_name["pgas"].base == "pgas"
        assert by_name["pgas+cache"].base == "pgas"
        assert by_name["baseline+resilient"].base == "baseline"
        assert by_name["pgas+cache"].cached
        assert not by_name["pgas"].cached
        assert by_name["baseline+resilient"].resilient
        assert not by_name["baseline+cache"].resilient

    def test_requires_indices_flags(self):
        by_name = {str(i): i for i in available_backends()}
        assert not by_name["pgas"].requires_indices
        assert by_name["pgas+cache"].requires_indices  # cache needs real row ids


class TestRegisterBackend:
    def test_duplicate_rejected_with_clear_error(self):
        spec = backend_spec("pgas")
        with pytest.raises(ValueError, match="overwrite=True"):
            register_backend(
                "pgas", spec.factory, requires_indices=spec.requires_indices
            )

    def test_overwrite_flag_allows_replacement(self):
        original = backend_spec("pgas")
        try:
            register_backend(
                "pgas",
                original.factory,
                requires_indices=original.requires_indices,
                description="replaced",
                overwrite=True,
            )
            assert backend_spec("pgas").description == "replaced"
        finally:
            _BACKENDS["pgas"] = original

    def test_new_backend_registers_and_unregisters(self):
        spec = backend_spec("pgas")
        try:
            register_backend(
                "pgas+test",
                spec.factory,
                requires_indices=spec.requires_indices,
                description="temporary test wrapper",
            )
            info = {str(i): i for i in available_backends()}["pgas+test"]
            assert info.base == "pgas"
            assert info.description == "temporary test wrapper"
        finally:
            _BACKENDS.pop("pgas+test", None)
        assert "pgas+test" not in available_backends()

    def test_unknown_lookup_lists_available(self):
        with pytest.raises(ValueError, match="available:"):
            backend_spec("does-not-exist")
