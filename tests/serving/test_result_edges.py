"""Regression tests for ServingResult edge cases.

Covers the two bugs fixed alongside the scheduler work: percentile_ms on
a single-sample run, and mean_batch_size when every request was shed.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.serving import ServingResult


def result(latencies_ns, batch_sizes, **kw):
    return ServingResult(
        latencies_ns=np.asarray(latencies_ns, dtype=float),
        batch_sizes=list(batch_sizes),
        sim_duration_ns=kw.pop("sim_duration_ns", 1e6),
        backend=kw.pop("backend", "pgas"),
        **kw,
    )


class TestPercentile:
    def test_single_sample_returns_that_sample(self):
        res = result([2_000_000.0], [1])
        for q in (0.0, 50.0, 99.0, 100.0):
            assert res.percentile_ms(q) == 2.0

    def test_out_of_range_quantile_raises(self):
        res = result([1e6, 2e6], [2])
        with pytest.raises(ValueError):
            res.percentile_ms(-1)
        with pytest.raises(ValueError):
            res.percentile_ms(100.5)

    def test_empty_raises(self):
        res = result([], [], n_shed=4)
        with pytest.raises(ValueError):
            res.percentile_ms(50)

    def test_interpolates_between_samples(self):
        res = result([1e6, 2e6, 3e6, 4e6], [4])
        assert res.p50_ms == pytest.approx(2.5)
        assert res.percentile_ms(100) == pytest.approx(4.0)


class TestMeanBatchSize:
    def test_all_shed_returns_zero(self):
        res = result([], [], n_shed=8)
        assert res.mean_batch_size == 0.0
        assert res.n_batches == 0

    def test_normal_mean(self):
        res = result([1e6] * 6, [4, 2], n_shed=0)
        assert res.mean_batch_size == pytest.approx(3.0)

    def test_numpy_batch_sizes_accepted(self):
        res = result([1e6] * 6, np.array([4, 2]))
        assert res.mean_batch_size == pytest.approx(3.0)


class TestAllShedRun:
    def test_as_dict_and_summary_survive_all_shed(self):
        res = result([], [], n_shed=8)
        d = res.as_dict()
        assert d["n_requests"] == 0
        assert d["n_shed"] == 8
        assert d["mean_batch_size"] == 0.0
        assert res.goodput_qps == 0.0
        assert res.shed_fraction == 1.0
        assert "shed" in res.summary()

    def test_segment_means_none_without_segments(self):
        res = result([], [], n_shed=2)
        assert res.mean_form_ns == 0.0
        assert res.mean_queue_ns == 0.0
        assert res.mean_execute_ns == 0.0
