"""Chaos sweep: measured invariants and artifact self-validation."""

from __future__ import annotations

import json

import pytest

from repro.bench.chaossweep import (
    ChaosSweepResult,
    run_chaos_sweep,
    validate_chaossweep_json,
)


@pytest.fixture(scope="module")
def sweep() -> ChaosSweepResult:
    return run_chaos_sweep("tiny", n_devices=4, n_batches=3, bases=("pgas",))


class TestSweep:
    def test_grid_complete(self, sweep):
        assert len(sweep.points) == 4  # k x failures for one base
        for k in (1, 2):
            for f in (0, 1):
                sweep.point("pgas", k, f)

    def test_healthy_points_perfect(self, sweep):
        for k in (1, 2):
            p = sweep.point("pgas", k, 0)
            assert p.availability == 1.0
            assert p.failover_lookups == 0
            assert p.recovery_bytes == 0

    def test_replication_rescues_availability(self, sweep):
        p1 = sweep.point("pgas", 1, 1)
        p2 = sweep.point("pgas", 2, 1)
        assert p1.availability < 1.0
        assert p2.availability == 1.0
        assert p2.failover_lookups > 0
        assert p2.recovery_bytes > 0
        assert 0 < p2.time_to_reprotect_ns < float("inf")

    def test_goodput_positive_and_render(self, sweep):
        assert all(p.goodput_lookups_per_s > 0 for p in sweep.points)
        text = sweep.render()
        assert "availability" in text and "pgas" in text

    def test_artifact_schema_valid(self, sweep, tmp_path):
        path = str(tmp_path / "BENCH_availability.json")
        sweep.write_json(path)
        with open(path) as fh:
            validate_chaossweep_json(json.load(fh))


class TestValidator:
    def payload(self, sweep):
        return json.loads(json.dumps(sweep.as_dict()))

    def test_rejects_missing_point_key(self, sweep):
        data = self.payload(sweep)
        del data["points"][0]["availability"]
        with pytest.raises(ValueError, match="missing key"):
            validate_chaossweep_json(data)

    def test_rejects_wrong_schema_version(self, sweep):
        data = self.payload(sweep)
        data["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_chaossweep_json(data)

    def test_rejects_k2_below_k1(self, sweep):
        data = self.payload(sweep)
        for p in data["points"]:
            if p["k"] == 2 and p["n_failures"] == 1:
                p["availability"] = 0.1
        with pytest.raises(ValueError, match="below k=1"):
            validate_chaossweep_json(data)

    def test_rejects_imperfect_healthy_run(self, sweep):
        data = self.payload(sweep)
        good = self.payload(sweep)
        assert validate_chaossweep_json(good) is None
        for p in data["points"]:
            if p["n_failures"] == 0:
                p["availability"] = 0.9
                p["unavailable_lookups"] = (
                    p["lookups_total"] - p["served_lookups"] + 100
                )
                p["served_lookups"] -= 100
        with pytest.raises(ValueError):
            validate_chaossweep_json(data)

    def test_rejects_lookup_leak(self, sweep):
        data = self.payload(sweep)
        data["points"][0]["served_lookups"] += 10
        with pytest.raises(ValueError, match="served"):
            validate_chaossweep_json(data)

    def test_no_spare_device_excuses_recovery(self, sweep):
        # On a 2-GPU cluster a k=2 failure has nowhere to re-replicate;
        # the validator must not demand recovery bytes there.
        data = self.payload(sweep)
        data["n_devices"] = 2
        for p in data["points"]:
            if p["k"] == 2 and p["n_failures"] == 1:
                p["recovery_bytes"] = 0.0
                p["time_to_reprotect_ns"] = 0.0
        validate_chaossweep_json(data)


class TestArguments:
    def test_bad_base_rejected(self):
        with pytest.raises(ValueError, match="base"):
            run_chaos_sweep("tiny", bases=("nccl",))

    def test_all_devices_failing_rejected(self):
        with pytest.raises(ValueError, match="every device"):
            run_chaos_sweep("tiny", n_devices=2, failure_counts=(0, 2))

    def test_too_few_batches_rejected(self):
        with pytest.raises(ValueError, match="batches"):
            run_chaos_sweep("tiny", n_batches=1)
