"""Tests for the critpath bench and its artifact validator."""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.critpath import run_critpath, validate_critpath_json
from repro.obs.regress import Tolerance, compare_critpath


@pytest.fixture(scope="module")
def result():
    return run_critpath("tiny", n_devices=2, backends=("pgas", "baseline"),
                        n_batches=2, scale=0.25, seed=3)


@pytest.fixture(scope="module")
def data(result):
    # Round-trip through JSON so the validator sees exactly what CI reads.
    return json.loads(json.dumps(result.as_dict()))


class TestRun:
    def test_artifact_validates(self, data):
        validate_critpath_json(data)

    def test_per_backend_points(self, result):
        assert [p.backend for p in result.points] == ["pgas", "baseline"]
        for p in result.points:
            assert p.wall_ns > 0
            assert p.path_ns == pytest.approx(p.wall_ns, rel=1e-9)
            assert p.slack_min_ns >= 0.0
            assert len(p.batches) == 2

    def test_paper_claim_baseline_exposed_pgas_hidden(self, result):
        """The path witnesses §III: baseline crosses the wire, PGAS hides it."""
        assert result.point("baseline").by_category.get("comm", 0.0) > 0
        assert "comm" not in result.point("pgas").by_category
        assert result.point("pgas").by_category.get("fused", 0.0) > 0

    def test_render_mentions_backends(self, result):
        text = result.render()
        assert "pgas" in text and "baseline" in text
        assert "wall (ms)" in text

    def test_write_json_round_trips(self, result, tmp_path):
        path = tmp_path / "BENCH_critpath.json"
        result.write_json(str(path))
        with open(path) as fh:
            validate_critpath_json(json.load(fh))

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_critpath("tiny", backends=())
        with pytest.raises(ValueError):
            run_critpath("tiny", n_batches=0)


class TestValidatorTamperDetection:
    def test_path_wall_mismatch_rejected(self, data):
        bad = copy.deepcopy(data)
        bad["points"][0]["path_ns"] *= 1.5
        with pytest.raises(ValueError, match="does not tile"):
            validate_critpath_json(bad)

    def test_category_sum_mismatch_rejected(self, data):
        bad = copy.deepcopy(data)
        k = next(iter(bad["points"][0]["by_category"]))
        bad["points"][0]["by_category"][k] += 1e6
        with pytest.raises(ValueError, match="category attribution"):
            validate_critpath_json(bad)

    def test_negative_slack_rejected(self, data):
        bad = copy.deepcopy(data)
        bad["points"][0]["slack_min_ns"] = -1.0
        with pytest.raises(ValueError, match="negative per-span slack"):
            validate_critpath_json(bad)

    def test_whatif_above_wall_rejected(self, data):
        bad = copy.deepcopy(data)
        bad["points"][0]["whatif"]["zero_fused_wall_ns"] = \
            bad["points"][0]["wall_ns"] * 2
        with pytest.raises(ValueError, match="what-if"):
            validate_critpath_json(bad)

    def test_batch_tiling_mismatch_rejected(self, data):
        bad = copy.deepcopy(data)
        bad["points"][0]["batches"][0]["path_ns"] += 1e6
        with pytest.raises(ValueError, match="per-batch path"):
            validate_critpath_json(bad)

    def test_pgas_with_exposed_comm_rejected(self, data):
        bad = copy.deepcopy(data)
        for p in bad["points"]:
            if p["backend"] == "pgas":
                # Forge an exposed comm phase while keeping sums consistent.
                moved = p["by_category"].pop("fused")
                p["by_category"]["comm"] = moved
        with pytest.raises(ValueError, match="exposed comm"):
            validate_critpath_json(bad)

    def test_baseline_without_comm_rejected(self, data):
        bad = copy.deepcopy(data)
        for p in bad["points"]:
            if p["backend"] == "baseline":
                moved = p["by_category"].pop("comm")
                p["by_category"]["compute"] = \
                    p["by_category"].get("compute", 0.0) + moved
        with pytest.raises(ValueError, match="never crossed"):
            validate_critpath_json(bad)

    def test_missing_key_rejected(self, data):
        bad = copy.deepcopy(data)
        del bad["points"][0]["slack_total_ns"]
        with pytest.raises(ValueError, match="missing key 'slack_total_ns'"):
            validate_critpath_json(bad)

    def test_wrong_schema_version_rejected(self, data):
        bad = copy.deepcopy(data)
        bad["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            validate_critpath_json(bad)


class TestGateIntegration:
    def test_self_comparison_passes(self, data):
        assert compare_critpath(data, data).passed

    def test_determinism_across_runs(self, data):
        again = run_critpath("tiny", n_devices=2,
                             backends=("pgas", "baseline"),
                             n_batches=2, scale=0.25, seed=3).as_dict()
        gate = compare_critpath(data, json.loads(json.dumps(again)),
                                tolerance=Tolerance(rel=0.0, abs_ns=0.0))
        assert gate.passed  # bit-equal runs survive a zero-tolerance gate

    def test_slowdown_breaches(self, data):
        slow = copy.deepcopy(data)
        for p in slow["points"]:
            p["wall_ns"] *= 2.0
        assert not compare_critpath(data, slow).passed
