"""Tests for the markdown report generator."""

from __future__ import annotations

import pytest

from repro.bench.report_md import (
    breakdown_section,
    build_report,
    commvolume_section,
    md_table,
    scaling_section,
)
from repro.bench.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(n_batches=1, scale=0.05, device_counts=(1, 2))


class TestMdTable:
    def test_structure(self):
        out = md_table(["a", "b"], [["1", "2"]])
        lines = out.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"


class TestSections:
    def test_scaling_section_has_paper_columns(self, runner):
        out = scaling_section(runner.weak())
        assert "2.10×" in out  # the paper's 2-GPU weak speedup
        assert "measured" in out
        assert "geomean" in out

    def test_breakdown_section(self, runner):
        out = breakdown_section(runner.fig6())
        assert "Fig. 6" in out
        assert "sync+unpack" in out

    def test_commvolume_section(self, runner):
        out = commvolume_section(runner.fig7(), "Fig. 7")
        assert "flat-at-zero" in out
        assert "pgas" in out and "baseline" in out


class TestFullReport:
    def test_contains_all_artifacts(self, runner):
        report = build_report(runner)
        for marker in ("Weak scaling", "Strong scaling", "Fig. 6", "Fig. 7",
                       "Fig. 9", "Fig. 10", "1.97×", "2.63×"):
            assert marker in report

    def test_is_valid_markdown_tables(self, runner):
        report = build_report(runner)
        # every table line is pipe-delimited and balanced
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
