"""Tests for the telemetry bench and its JSON artifact."""

from __future__ import annotations

import json

import pytest

from repro.bench.telemetry import (
    MetricsComparison,
    preset_workload,
    run_metrics,
    validate_metrics_json,
)
from repro.telemetry.report import ReportValidationError


@pytest.fixture(scope="module")
def comparison() -> MetricsComparison:
    return run_metrics("tiny", n_devices=2, include_series=False)


class TestPresets:
    def test_tiny_is_small(self):
        cfg = preset_workload("tiny", 2)
        assert cfg.num_tables == 8
        assert cfg.batch_size == 256

    def test_weak_scales_tables_per_gpu(self):
        assert preset_workload("weak", 2).num_tables == 128
        assert preset_workload("weak", 4).num_tables == 256

    def test_strong_is_fixed_total(self):
        assert preset_workload("strong", 2) == preset_workload("strong", 8)

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown preset"):
            preset_workload("huge", 2)


class TestRunMetrics:
    def test_both_backends_reported(self, comparison):
        assert set(comparison.reports) == {"pgas", "baseline"}
        for backend, report in comparison.reports.items():
            assert report.backend == backend
            assert report.n_devices == 2
            assert report.metric("comm_bytes_total") > 0

    def test_acceptance_invariant_on_tiny(self, comparison):
        # pgas must hide more comm than the synchronous baseline
        assert comparison.metric("pgas", "overlap_fraction") > comparison.metric(
            "baseline", "overlap_fraction"
        )

    def test_render_table(self, comparison):
        text = comparison.render()
        assert "overlap fraction" in text
        assert "link peak-to-mean" in text
        assert "pgas" in text and "baseline" in text
        assert "tiny preset" in text

    def test_seed_changes_stream(self):
        # comm volume is fixed by the bag count; wall time tracks the
        # seed-dependent pooling lengths
        a = run_metrics("tiny", backends=("pgas",), include_series=False, seed=1)
        b = run_metrics("tiny", backends=("pgas",), include_series=False, seed=2)
        assert a.metric("pgas", "run_wall_ns") != b.metric("pgas", "run_wall_ns")


class TestArtifact:
    def test_write_and_validate(self, comparison, tmp_path):
        path = tmp_path / "BENCH_metrics.json"
        comparison.write_json(str(path))
        data = json.loads(path.read_text())
        validate_metrics_json(data)
        assert data["preset"] == "tiny"
        assert set(data["reports"]) == {"pgas", "baseline"}

    def test_artifact_sorted_keys(self, comparison, tmp_path):
        path = tmp_path / "m.json"
        comparison.write_json(str(path))
        data = json.loads(path.read_text())
        assert list(data) == sorted(data)

    def test_invalid_payloads_rejected(self, comparison):
        with pytest.raises(ReportValidationError):
            validate_metrics_json([])
        with pytest.raises(ReportValidationError):
            validate_metrics_json({"schema_version": 1})
        payload = comparison.as_dict()
        payload["schema_version"] = 2
        with pytest.raises(ReportValidationError):
            validate_metrics_json(payload)
        bad = comparison.as_dict()
        bad["reports"]["pgas"].pop("metrics")
        with pytest.raises(ReportValidationError, match="pgas"):
            validate_metrics_json(bad)
