"""Tests for the overlap-analysis instrument."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.overlap import OverlapReport, analyze_overlap, measure_overlap
from repro.dlrm.data import WorkloadConfig
from repro.simgpu.profiler import Profiler


def wave_rich_config():
    return WorkloadConfig(num_tables=64, rows_per_table=1000, dim=64,
                          batch_size=16384, max_pooling=64, seed=4)


class TestAnalyze:
    def test_synthetic_half_hidden(self):
        p = Profiler()
        p.record_span("k", "compute", 0, 0.0, 100.0)
        p.add_count("comm_bytes", 50.0, 10.0)   # inside compute
        p.add_count("comm_bytes", 200.0, 10.0)  # after compute
        r = analyze_overlap(p)
        assert r.total_comm_bytes == 20.0
        assert r.hidden_comm_bytes == 10.0
        assert r.hidden_fraction == pytest.approx(0.5)
        assert r.exposed_comm_bytes == 10.0

    def test_fused_category_counts_as_compute(self):
        p = Profiler()
        p.record_span("f", "fused", -1, 0.0, 100.0)
        p.add_count("pgas_bytes", 40.0, 5.0)
        assert analyze_overlap(p).hidden_fraction == 1.0

    def test_no_comm_is_fully_hidden(self):
        p = Profiler()
        p.record_span("k", "compute", 0, 0.0, 10.0)
        assert analyze_overlap(p).hidden_fraction == 1.0

    def test_overlapping_spans_merged(self):
        p = Profiler()
        p.record_span("a", "compute", 0, 0.0, 60.0)
        p.record_span("b", "compute", 1, 40.0, 100.0)
        r = analyze_overlap(p)
        assert r.compute_wall_ns == pytest.approx(100.0)

    def test_summary(self):
        r = OverlapReport(100.0, 90.0, 1e6, 2e6)
        assert "90.0%" in r.summary()


class TestMeasure:
    def test_pgas_hides_nearly_everything(self):
        r = measure_overlap(wave_rich_config(), 2, "pgas")
        assert r.total_comm_bytes > 0
        assert r.hidden_fraction > 0.9

    def test_baseline_hides_nothing(self):
        r = measure_overlap(wave_rich_config(), 2, "baseline")
        assert r.total_comm_bytes > 0
        assert r.hidden_fraction < 0.05

    def test_single_gpu_trivial(self):
        r = measure_overlap(wave_rich_config(), 1, "pgas")
        assert r.total_comm_bytes == 0
        assert r.hidden_fraction == 1.0
