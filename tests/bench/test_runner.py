"""Tests for the one-call experiment runner."""

from __future__ import annotations

import pytest

from repro.bench.runner import EXPERIMENT_IDS, ExperimentRunner, scaled_config
from repro.dlrm.data import WEAK_SCALING_BASE


class TestScaledConfig:
    def test_identity_at_full_scale(self):
        assert scaled_config(WEAK_SCALING_BASE, 1.0).batch_size == 16384

    def test_shrinks_batch(self):
        assert scaled_config(WEAK_SCALING_BASE, 0.25).batch_size == 4096

    def test_floor(self):
        assert scaled_config(WEAK_SCALING_BASE, 0.001).batch_size == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            scaled_config(WEAK_SCALING_BASE, 0.0)
        with pytest.raises(ValueError):
            scaled_config(WEAK_SCALING_BASE, 1.5)


@pytest.fixture(scope="module")
def runner():
    # Tiny but wave-meaningful: scale 1/8 batch, 2 batches, 1-2 GPUs.
    return ExperimentRunner(n_batches=2, scale=0.125, device_counts=(1, 2))


class TestRunner:
    def test_all_ids_render(self, runner):
        for eid in EXPERIMENT_IDS:
            text = runner.render(eid)
            assert isinstance(text, str) and text

    def test_unknown_id(self, runner):
        with pytest.raises(KeyError):
            runner.render("F99")

    def test_case_insensitive(self, runner):
        assert runner.render("t1") == runner.render("T1")

    def test_sweeps_cached(self, runner):
        assert runner.weak() is runner.weak()
        assert runner.strong() is runner.strong()

    def test_run_all_covers_everything(self, runner):
        rendered = runner.run_all()
        assert set(rendered) == set(EXPERIMENT_IDS)

    def test_weak_speedup_above_one(self, runner):
        assert runner.weak().geomean_speedup > 1.0

    def test_strong_speedup_above_one(self, runner):
        assert runner.strong().geomean_speedup > 1.0
