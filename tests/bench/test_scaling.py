"""Tests for the scaling experiment drivers."""

from __future__ import annotations

import math

import pytest

from repro.bench.scaling import (
    ScalingResult,
    geomean,
    run_strong_scaling,
    run_weak_scaling,
)
from repro.dlrm.data import WorkloadConfig


def small_weak():
    return WorkloadConfig(num_tables=8, rows_per_table=1000, dim=16,
                          batch_size=1024, max_pooling=8, seed=1)


def small_strong():
    # Strong scaling needs a comm-heavy shape (low pooling, real batch) for
    # the paper's multi-GPU slowdown to appear; tiny toys parallelise fine.
    return WorkloadConfig(num_tables=24, rows_per_table=1000, dim=64,
                          batch_size=8192, max_pooling=8, seed=1)


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_single(self):
        assert geomean([7.0]) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_weak_scaling(small_weak(), device_counts=(1, 2, 4), n_batches=2)

    def test_points_and_counts(self, result):
        assert result.kind == "weak"
        assert result.device_counts == [1, 2, 4]
        assert result.point(2).n_devices == 2
        with pytest.raises(KeyError):
            result.point(3)

    def test_batches_accumulated(self, result):
        assert result.point(1).baseline.batches == 2
        assert result.point(1).pgas.batches == 2

    def test_pgas_wins_multi_gpu(self, result):
        for g in (2, 4):
            assert result.point(g).speedup > 1.0

    def test_speedup_table_excludes_single_gpu(self, result):
        assert set(result.speedup_table()) == {2, 4}

    def test_geomean_consistent(self, result):
        table = result.speedup_table()
        expect = math.exp(sum(math.log(v) for v in table.values()) / len(table))
        assert result.geomean_speedup == pytest.approx(expect)

    def test_scaling_factor_definition(self, result):
        f = result.scaling_factor("baseline", 2)
        assert f == pytest.approx(
            result.total_ns("baseline", 1) / result.total_ns("baseline", 2)
        )

    def test_pgas_weak_factor_near_ideal(self, result):
        """PGAS's weak scaling stays near 1 — the paper's headline."""
        for g in (2, 4):
            assert result.scaling_factor("pgas", g) > 0.8
            assert result.scaling_factor("baseline", g) < result.scaling_factor("pgas", g)


class TestStrongScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_strong_scaling(small_strong(), device_counts=(1, 2, 4), n_batches=2)

    def test_kind(self, result):
        assert result.kind == "strong"

    def test_pgas_beats_baseline(self, result):
        for g in (2, 4):
            assert result.point(g).speedup > 1.0

    def test_baseline_slows_down_with_gpus(self, result):
        """Paper: baseline multi-GPU is slower than its own single GPU."""
        for g in (2, 4):
            assert result.scaling_factor("baseline", g) < 1.0


class TestDeterminism:
    def test_same_seed_same_results(self):
        a = run_weak_scaling(small_weak(), device_counts=(2,), n_batches=2, seed=5)
        b = run_weak_scaling(small_weak(), device_counts=(2,), n_batches=2, seed=5)
        assert a.point(2).baseline.total_ns == b.point(2).baseline.total_ns
        assert a.point(2).pgas.total_ns == b.point(2).pgas.total_ns

    def test_different_seed_different_inputs(self):
        a = run_weak_scaling(small_weak(), device_counts=(2,), n_batches=1, seed=5)
        b = run_weak_scaling(small_weak(), device_counts=(2,), n_batches=1, seed=6)
        assert a.point(2).baseline.total_ns != b.point(2).baseline.total_ns
