"""Tests for the capacity-growth study."""

from __future__ import annotations

import pytest

from repro.bench.capacity import run_capacity_study


@pytest.fixture(scope="module")
def study():
    # small rows so the functional-side stays light; growth still forces
    # multiple GPUs by table count x 1M rows
    return run_capacity_study(base_tables=32, steps=3, growth_per_step=2.0,
                              batch_size=4096)


class TestCapacityStudy:
    def test_growth_projection(self, study):
        tables = [p.num_tables for p in study.points]
        assert tables == [32, 64, 128]
        gib = [p.total_gib for p in study.points]
        assert gib == sorted(gib)

    def test_gpu_count_grows_with_memory(self, study):
        gpus = [p.min_gpus for p in study.points]
        assert gpus == sorted(gpus)
        assert gpus[-1] > 1  # 128 tables x 1M x 64 floats > one V100

    def test_pgas_wins_once_distributed(self, study):
        for p in study.points:
            if p.min_gpus > 1:
                assert p.speedup > 1.2

    def test_render(self, study):
        out = study.render()
        assert "capacity study" in out
        assert "min GPUs" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            run_capacity_study(steps=0)
        with pytest.raises(ValueError):
            run_capacity_study(growth_per_step=1.0)
