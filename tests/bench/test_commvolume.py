"""Tests for the comm-volume-over-time instrument (Figs. 7/10)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.commvolume import UNIT_BYTES, CommVolumeTrace, trace_comm_volume
from repro.dlrm.data import WorkloadConfig
from repro.simgpu.units import us


@pytest.fixture(scope="module")
def cfg():
    # Wave-rich so PGAS messages spread over the kernel.
    return WorkloadConfig(num_tables=64, rows_per_table=1000, dim=64,
                          batch_size=16384, max_pooling=64, seed=4)


@pytest.fixture(scope="module")
def pgas_trace(cfg):
    return trace_comm_volume(cfg, 2, "pgas", sample_period_ns=20 * us)


@pytest.fixture(scope="module")
def baseline_trace(cfg):
    return trace_comm_volume(cfg, 2, "baseline", sample_period_ns=20 * us)


class TestTraceStructure:
    def test_times_start_at_zero_end_at_total(self, pgas_trace):
        assert pgas_trace.times_ns[0] == 0.0
        assert pgas_trace.times_ns[-1] == pytest.approx(pgas_trace.total_ns)

    def test_volume_monotone_cumulative(self, pgas_trace, baseline_trace):
        for tr in (pgas_trace, baseline_trace):
            assert np.all(np.diff(tr.volume_units) >= 0)

    def test_both_backends_move_same_payload(self, pgas_trace, baseline_trace):
        assert pgas_trace.total_units == pytest.approx(baseline_trace.total_units)

    def test_total_units_are_256B_messages(self, pgas_trace, cfg):
        # remote volume = B/2 x T x 256 B → in units of 256 B
        expected = (cfg.batch_size / 2) * cfg.num_tables * 256 / UNIT_BYTES
        assert pgas_trace.total_units == pytest.approx(expected)

    def test_normalized_in_unit_box(self, pgas_trace):
        t, v = pgas_trace.normalized()
        assert t[0] == 0.0 and t[-1] == pytest.approx(1.0)
        assert v[-1] == pytest.approx(1.0)


class TestPaperShapes:
    def test_baseline_has_long_flat_prefix(self, baseline_trace):
        """'a long initial period when communication volume stays flat at 0'."""
        assert baseline_trace.flat_prefix_fraction() > 0.3

    def test_pgas_starts_almost_immediately(self, pgas_trace):
        assert pgas_trace.flat_prefix_fraction() < 0.15

    def test_pgas_roughly_linear_over_run(self, pgas_trace):
        """Mid-run volume is near mid-total: messages spread across waves."""
        t, v = pgas_trace.normalized()
        mid = v[np.searchsorted(t, 0.5)]
        assert 0.25 < mid < 0.75

    def test_baseline_backloaded(self, baseline_trace):
        t, v = baseline_trace.normalized()
        mid = v[np.searchsorted(t, 0.5)]
        assert mid < 0.2

    def test_pgas_run_is_shorter(self, pgas_trace, baseline_trace):
        assert pgas_trace.total_ns < baseline_trace.total_ns


class TestEdgeCases:
    def test_single_gpu_no_volume(self, cfg):
        tr = trace_comm_volume(cfg, 1, "pgas")
        assert tr.total_units == 0.0
        assert tr.flat_prefix_fraction() == 1.0

    def test_empty_trace_normalization_safe(self):
        tr = CommVolumeTrace(
            backend="pgas", n_devices=1, total_ns=0.0,
            times_ns=np.array([]), volume_units=np.array([]),
        )
        t, v = tr.normalized()
        assert t.size == 0 and tr.total_units == 0.0
