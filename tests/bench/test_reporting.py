"""Tests for result rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.breakdown import breakdown_from_scaling
from repro.bench.reporting import (
    ascii_series,
    format_table,
    render_breakdown,
    render_comm_volume,
    render_scaling_figure,
    render_speedup_table,
    to_csv,
)
from repro.bench.commvolume import CommVolumeTrace
from repro.bench.scaling import run_weak_scaling
from repro.dlrm.data import WorkloadConfig


@pytest.fixture(scope="module")
def weak():
    cfg = WorkloadConfig(num_tables=4, rows_per_table=500, dim=8,
                         batch_size=512, max_pooling=4, seed=2)
    return run_weak_scaling(cfg, device_counts=(1, 2), n_batches=1)


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows same width
        assert len({len(l) for l in lines}) == 1

    def test_empty_rows(self):
        out = format_table(["x"], [])
        assert "x" in out


class TestRenderers:
    def test_speedup_table_contains_paper_row(self, weak):
        out = render_speedup_table(weak)
        assert "PGAS over baseline" in out
        assert "2 GPUs" in out
        assert "geomean" in out

    def test_scaling_figure_lists_all_counts(self, weak):
        out = render_scaling_figure(weak)
        assert "baseline factor" in out
        assert "Fig. 5" in out

    def test_breakdown_render(self, weak):
        out = render_breakdown(breakdown_from_scaling(weak))
        assert "sync+unpack" in out
        assert "PGAS total" in out

    def test_comm_volume_render(self):
        tr = CommVolumeTrace(
            backend="pgas", n_devices=2, total_ns=1000.0,
            times_ns=np.linspace(0, 1000, 11),
            volume_units=np.linspace(0, 100, 11),
        )
        out = render_comm_volume([tr])
        assert "pgas @ 2 GPUs" in out
        assert "*" in out


class TestAsciiSeries:
    def test_plots_points(self):
        out = ascii_series(np.arange(10), np.arange(10), width=20, height=5, label="lbl")
        assert "lbl" in out
        assert out.count("*") >= 5

    def test_empty(self):
        assert "(empty)" in ascii_series(np.array([]), np.array([]), label="e")

    def test_constant_series_safe(self):
        out = ascii_series(np.arange(5), np.ones(5))
        assert "*" in out


class TestCsv:
    def test_roundtrip(self):
        out = to_csv(["a", "b"], [[1, 2], [3, 4]])
        assert out == "a,b\n1,2\n3,4\n"
