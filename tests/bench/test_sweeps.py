"""Tests for the generic parameter sweep machinery."""

from __future__ import annotations

import pytest

from repro.bench.sweeps import (
    Sweep,
    batch_size_sweep,
    pooling_sweep,
    table_count_sweep,
)
from repro.dlrm.data import WorkloadConfig


def base_cfg():
    return WorkloadConfig(num_tables=8, rows_per_table=2000, dim=16,
                          batch_size=1024, max_pooling=8, seed=4)


class TestSweepMachinery:
    def test_points_in_order(self):
        result = batch_size_sweep(base_cfg()).run([256, 512, 1024])
        assert result.values == [256.0, 512.0, 1024.0]
        assert len(result.speedups) == 3

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            batch_size_sweep(base_cfg()).run([])

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            Sweep("x", lambda c, v: c, base_cfg(), n_devices=0)
        with pytest.raises(ValueError):
            Sweep("x", lambda c, v: c, base_cfg(), n_batches=0)

    def test_render_contains_rows(self):
        result = pooling_sweep(base_cfg()).run([4, 8])
        text = result.render()
        assert "max_pooling" in text
        assert "speedup" in text
        assert "4" in text and "8" in text

    def test_deterministic(self):
        a = pooling_sweep(base_cfg()).run([4])
        b = pooling_sweep(base_cfg()).run([4])
        assert a.points[0].baseline.total_ns == b.points[0].baseline.total_ns

    def test_n_batches_accumulate(self):
        one = batch_size_sweep(base_cfg(), n_batches=1).run([512])
        three = batch_size_sweep(base_cfg(), n_batches=3).run([512])
        assert three.points[0].baseline.batches == 3
        assert three.points[0].baseline.total_ns > one.points[0].baseline.total_ns


class TestSweepSemantics:
    def test_batch_size_monotone_runtime(self):
        result = batch_size_sweep(base_cfg()).run([256, 1024, 4096])
        base_times = [p.baseline.total_ns for p in result.points]
        assert base_times == sorted(base_times)

    def test_pooling_monotone_runtime(self):
        result = pooling_sweep(base_cfg()).run([2, 8, 32])
        pgas_times = [p.pgas.total_ns for p in result.points]
        assert pgas_times == sorted(pgas_times)

    def test_table_count_sweep_changes_tables(self):
        result = table_count_sweep(base_cfg()).run([4, 16])
        assert result.points[1].baseline.total_ns > result.points[0].baseline.total_ns

    def test_speedup_above_one_everywhere(self):
        result = pooling_sweep(base_cfg()).run([4, 16])
        assert all(s > 1.0 for s in result.speedups)
