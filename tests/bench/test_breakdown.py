"""Tests for the runtime-breakdown derivation (Figs. 6/9)."""

from __future__ import annotations

import pytest

from repro.bench.breakdown import breakdown_from_scaling
from repro.bench.scaling import run_weak_scaling
from repro.dlrm.data import WorkloadConfig


@pytest.fixture(scope="module")
def weak_breakdown():
    cfg = WorkloadConfig(num_tables=8, rows_per_table=1000, dim=16,
                         batch_size=2048, max_pooling=8, seed=1)
    return breakdown_from_scaling(
        run_weak_scaling(cfg, device_counts=(1, 2, 4), n_batches=2)
    )


class TestBreakdown:
    def test_one_bar_per_point(self, weak_breakdown):
        assert weak_breakdown.device_counts == [1, 2, 4]
        with pytest.raises(KeyError):
            weak_breakdown.bar(3)

    def test_components_sum_to_total(self, weak_breakdown):
        for b in weak_breakdown.bars:
            assert b.baseline_total_ns == pytest.approx(
                b.baseline_compute_ns + b.baseline_comm_ns + b.baseline_sync_unpack_ns
            )

    def test_single_gpu_has_no_comm(self, weak_breakdown):
        b1 = weak_breakdown.bar(1)
        assert b1.baseline_comm_ns == 0.0

    def test_weak_compute_flat(self, weak_breakdown):
        """Weak scaling: per-GPU computation stays constant (paper §IV-A)."""
        c1 = weak_breakdown.bar(1).baseline_compute_ns
        for g in (2, 4):
            assert weak_breakdown.bar(g).baseline_compute_ns == pytest.approx(c1, rel=0.05)

    def test_weak_comm_decreases(self, weak_breakdown):
        """More GPUs → more parallel links → shorter comm phase."""
        assert weak_breakdown.bar(4).baseline_comm_ns < weak_breakdown.bar(2).baseline_comm_ns

    def test_weak_sync_unpack_increases(self, weak_breakdown):
        """More received data per GPU → more unpack work (paper §IV-A)."""
        assert (
            weak_breakdown.bar(4).baseline_sync_unpack_ns
            > weak_breakdown.bar(2).baseline_sync_unpack_ns
        )

    def test_pgas_total_near_baseline_compute(self, weak_breakdown):
        """The paper's key plot: PGAS bar ≈ baseline compute component."""
        for g in (2, 4):
            b = weak_breakdown.bar(g)
            assert b.pgas_total_ns < 1.25 * b.baseline_compute_ns
            assert b.pgas_total_ns < 0.7 * b.baseline_total_ns

    def test_as_dict_keys(self, weak_breakdown):
        d = weak_breakdown.bar(2).as_dict()
        assert set(d) == {
            "n_devices",
            "baseline_compute_ns",
            "baseline_comm_ns",
            "baseline_sync_unpack_ns",
            "baseline_total_ns",
            "pgas_total_ns",
        }
