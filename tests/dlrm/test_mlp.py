"""Tests for the dense layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm.mlp import MLP, Linear, relu, sigmoid


class TestActivations:
    def test_relu(self):
        x = np.array([-2.0, 0.0, 3.0], dtype=np.float32)
        assert np.array_equal(relu(x), [0.0, 0.0, 3.0])

    def test_sigmoid_midpoint(self):
        assert sigmoid(np.array([0.0], dtype=np.float32))[0] == pytest.approx(0.5)

    def test_sigmoid_bounds(self):
        x = np.array([-100.0, 100.0], dtype=np.float32)
        out = sigmoid(x)
        assert 0.0 <= out[0] < 1e-6
        assert 1.0 - 1e-6 < out[1] <= 1.0

    def test_sigmoid_no_overflow_warnings(self):
        x = np.array([-1000.0, 1000.0], dtype=np.float32)
        with np.errstate(over="raise"):
            out = sigmoid(x)
        assert np.isfinite(out).all()

    def test_sigmoid_symmetry(self):
        x = np.linspace(-5, 5, 11).astype(np.float32)
        assert np.allclose(sigmoid(x) + sigmoid(-x), 1.0, atol=1e-6)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(8, 3, rng=np.random.default_rng(0))
        out = layer.forward(np.ones((5, 8), dtype=np.float32))
        assert out.shape == (5, 3)

    def test_affine_definition(self):
        layer = Linear(2, 2, rng=np.random.default_rng(0))
        layer.weight = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        layer.bias = np.array([10.0, 20.0], dtype=np.float32)
        out = layer.forward(np.array([[1.0, 1.0]], dtype=np.float32))
        assert np.allclose(out, [[13.0, 27.0]])

    def test_wrong_input_dim(self):
        layer = Linear(4, 2)
        with pytest.raises(ValueError, match="in_features"):
            layer.forward(np.ones((3, 5), dtype=np.float32))

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_flops(self):
        assert Linear(10, 20).flops_per_sample == 400

    def test_deterministic_init(self):
        a = Linear(4, 4, rng=np.random.default_rng(5))
        b = Linear(4, 4, rng=np.random.default_rng(5))
        assert np.array_equal(a.weight, b.weight)


class TestMLP:
    def test_stack_shapes(self):
        mlp = MLP([16, 8, 4, 2], rng=np.random.default_rng(0))
        out = mlp.forward(np.ones((7, 16), dtype=np.float32))
        assert out.shape == (7, 2)

    def test_sigmoid_output_in_unit_interval(self):
        mlp = MLP([4, 8, 1], sigmoid_output=True, rng=np.random.default_rng(0))
        out = mlp.forward(np.random.default_rng(1).normal(size=(20, 4)).astype(np.float32))
        assert (out > 0).all() and (out < 1).all()

    def test_hidden_relu_applied(self):
        """With wildly negative bias on layer 0, ReLU forces zeros into layer 1."""
        mlp = MLP([2, 2, 2], rng=np.random.default_rng(0))
        mlp.layers[0].bias[:] = -1e6
        out = mlp.forward(np.ones((1, 2), dtype=np.float32))
        # layer 1 sees all-zeros → output equals its bias
        assert np.allclose(out, mlp.layers[1].bias)

    def test_too_few_sizes_rejected(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_flops_sum(self):
        mlp = MLP([4, 8, 2])
        assert mlp.flops_per_sample == 2 * 4 * 8 + 2 * 8 * 2

    def test_no_sigmoid_by_default(self):
        mlp = MLP([4, 4], rng=np.random.default_rng(0))
        x = np.random.default_rng(2).normal(size=(50, 4)).astype(np.float32) * 10
        out = mlp.forward(x)
        assert out.max() > 1.0 or out.min() < 0.0  # unbounded output
