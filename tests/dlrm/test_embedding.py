"""Tests for embedding tables: hash/lookup/pool, collections, gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dlrm.batch import JaggedField, SparseBatch
from repro.dlrm.embedding import (
    EmbeddingBagCollection,
    EmbeddingTable,
    EmbeddingTableConfig,
    segment_pool,
)


def make_table(rows=10, dim=4, pooling="sum", name="t", **kw):
    cfg = EmbeddingTableConfig(name=name, num_rows=rows, dim=dim, pooling=pooling, **kw)
    return EmbeddingTable(cfg, rng=np.random.default_rng(0))


class TestConfig:
    def test_nbytes(self):
        cfg = EmbeddingTableConfig("t", num_rows=100, dim=64)
        assert cfg.nbytes == 100 * 64 * 4
        assert cfg.row_bytes == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            EmbeddingTableConfig("t", num_rows=0, dim=4)
        with pytest.raises(ValueError):
            EmbeddingTableConfig("t", num_rows=4, dim=0)
        with pytest.raises(ValueError):
            EmbeddingTableConfig("t", num_rows=4, dim=4, pooling="avg")  # type: ignore[arg-type]


class TestSegmentPool:
    def test_sum(self):
        vecs = np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]], dtype=np.float32)
        out = segment_pool(vecs, np.array([0, 2, 3]), "sum")
        assert np.allclose(out, [[4.0, 6.0], [5.0, 6.0]])

    def test_empty_segment_is_zero(self):
        vecs = np.array([[1.0], [2.0]], dtype=np.float32)
        out = segment_pool(vecs, np.array([0, 0, 2, 2]), "sum")
        assert np.allclose(out, [[0.0], [3.0], [0.0]])

    def test_mean(self):
        vecs = np.array([[2.0], [4.0], [9.0]], dtype=np.float32)
        out = segment_pool(vecs, np.array([0, 2, 3]), "mean")
        assert np.allclose(out, [[3.0], [9.0]])

    def test_mean_empty_segment_zero_not_nan(self):
        vecs = np.array([[2.0]], dtype=np.float32)
        out = segment_pool(vecs, np.array([0, 0, 1]), "mean")
        assert np.allclose(out, [[0.0], [2.0]])
        assert not np.isnan(out).any()

    def test_max(self):
        vecs = np.array([[1.0, 9.0], [5.0, 2.0]], dtype=np.float32)
        out = segment_pool(vecs, np.array([0, 2]), "max")
        assert np.allclose(out, [[5.0, 9.0]])

    def test_all_segments_empty(self):
        out = segment_pool(np.empty((0, 3), dtype=np.float32), np.array([0, 0, 0]), "sum")
        assert out.shape == (2, 3)
        assert np.all(out == 0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            segment_pool(np.ones((1, 1), dtype=np.float32), np.array([0, 1]), "median")  # type: ignore[arg-type]

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=20),
        dim=st.integers(min_value=1, max_value=8),
    )
    def test_sum_matches_manual(self, lengths, dim):
        rng = np.random.default_rng(42)
        nnz = sum(lengths)
        vecs = rng.normal(size=(nnz, dim)).astype(np.float64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        out = segment_pool(vecs, offsets, "sum")
        for i, l in enumerate(lengths):
            manual = vecs[offsets[i] : offsets[i + 1]].sum(axis=0) if l else np.zeros(dim)
            assert np.allclose(out[i], manual, atol=1e-9)


class TestEmbeddingTable:
    def test_lookup_shape(self):
        t = make_table(rows=10, dim=4)
        out = t.lookup(np.array([0, 3, 7]))
        assert out.shape == (3, 4)

    def test_lookup_hashes_out_of_range(self):
        t = make_table(rows=10, dim=4)
        assert np.array_equal(t.lookup(np.array([12])), t.lookup(np.array([2])))

    def test_hash_collisions_share_vector(self):
        t = make_table(rows=5, dim=2)
        out = t.lookup(np.array([1, 6, 11]))
        assert np.array_equal(out[0], out[1])
        assert np.array_equal(out[1], out[2])

    def test_forward_sum_pooling(self):
        t = make_table(rows=10, dim=3)
        f = JaggedField.from_bags([[0, 1], [2], []])
        out = t.forward(f)
        assert out.shape == (3, 3)
        assert np.allclose(out[0], t.weights[0] + t.weights[1], atol=1e-6)
        assert np.allclose(out[1], t.weights[2])
        assert np.allclose(out[2], 0.0)

    def test_forward_mean_pooling(self):
        t = make_table(rows=10, dim=3, pooling="mean")
        f = JaggedField.from_bags([[0, 1]])
        out = t.forward(f)
        assert np.allclose(out[0], (t.weights[0] + t.weights[1]) / 2, atol=1e-6)

    def test_explicit_weights(self):
        w = np.arange(12, dtype=np.float32).reshape(3, 4)
        t = EmbeddingTable(EmbeddingTableConfig("t", 3, 4), weights=w)
        assert np.array_equal(t.weights, w)

    def test_weight_shape_validated(self):
        with pytest.raises(ValueError, match="weights shape"):
            EmbeddingTable(EmbeddingTableConfig("t", 3, 4), weights=np.zeros((2, 4)))

    def test_init_bound_scales_with_rows(self):
        big = make_table(rows=10_000, dim=8, name="big")
        assert np.abs(big.weights).max() <= 1.0 / np.sqrt(10_000) + 1e-7

    def test_apply_row_gradients_accumulates_duplicates(self):
        t = make_table(rows=4, dim=2)
        before = t.weights.copy()
        rows = np.array([1, 1, 2])
        grads = np.ones((3, 2), dtype=np.float32)
        t.apply_row_gradients(rows, grads, lr=0.5)
        assert np.allclose(t.weights[1], before[1] - 1.0)  # two contributions
        assert np.allclose(t.weights[2], before[2] - 0.5)
        assert np.allclose(t.weights[0], before[0])

    def test_apply_gradients_shape_mismatch(self):
        t = make_table()
        with pytest.raises(ValueError):
            t.apply_row_gradients(np.array([0]), np.ones((2, 4), dtype=np.float32))


class TestCollection:
    def make_collection(self, n=3, rows=10, dim=4):
        cfgs = [EmbeddingTableConfig(f"f{i}", rows, dim) for i in range(n)]
        return EmbeddingBagCollection.from_configs(cfgs, rng=np.random.default_rng(1))

    def test_forward_shape_and_order(self):
        ebc = self.make_collection(n=3)
        batch = SparseBatch(
            {
                "f0": JaggedField.from_bags([[0], [1]]),
                "f1": JaggedField.from_bags([[2], []]),
                "f2": JaggedField.from_bags([[], [3, 4]]),
            }
        )
        out = ebc.forward(batch)
        assert out.shape == (2, 3, 4)
        assert np.allclose(out[0, 0], ebc.table("f0").weights[0])
        assert np.allclose(out[1, 2], ebc.table("f2").weights[3] + ebc.table("f2").weights[4], atol=1e-6)

    def test_mixed_dims_rejected(self):
        tables = [
            EmbeddingTable(EmbeddingTableConfig("a", 4, 4)),
            EmbeddingTable(EmbeddingTableConfig("b", 4, 8)),
        ]
        with pytest.raises(ValueError, match="share one dim"):
            EmbeddingBagCollection(tables)

    def test_duplicate_names_rejected(self):
        tables = [
            EmbeddingTable(EmbeddingTableConfig("a", 4, 4)),
            EmbeddingTable(EmbeddingTableConfig("a", 4, 4)),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            EmbeddingBagCollection(tables)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmbeddingBagCollection([])

    def test_nbytes(self):
        ebc = self.make_collection(n=2, rows=10, dim=4)
        assert ebc.nbytes == 2 * 10 * 4 * 4

    def test_feature_names_in_order(self):
        assert self.make_collection(4).feature_names == ["f0", "f1", "f2", "f3"]
