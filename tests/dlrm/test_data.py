"""Tests for synthetic workload generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm.data import (
    STRONG_SCALING_TOTAL,
    SyntheticDataGenerator,
    WEAK_SCALING_BASE,
    WorkloadConfig,
)


class TestWorkloadConfig:
    def test_paper_weak_config(self):
        c = WEAK_SCALING_BASE
        assert c.num_tables == 64
        assert c.rows_per_table == 1_000_000
        assert c.dim == 64
        assert c.batch_size == 16_384
        assert c.max_pooling == 128

    def test_paper_strong_config(self):
        c = STRONG_SCALING_TOTAL
        assert c.num_tables == 96
        assert c.max_pooling == 32

    def test_weak_memory_fits_v100(self):
        """64 tables x 1M x 64 floats ≈ 16.4 GB — fits the 32 GB V100."""
        assert WEAK_SCALING_BASE.total_table_bytes < 32 * 1024**3

    def test_strong_memory_fits_single_v100(self):
        """96 tables total chosen to maximise single-GPU memory (paper)."""
        total = STRONG_SCALING_TOTAL.total_table_bytes
        assert 16 * 1024**3 < total < 32 * 1024**3

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_tables=0)
        with pytest.raises(ValueError):
            WorkloadConfig(num_tables=1, min_pooling=5, max_pooling=4)
        with pytest.raises(ValueError):
            WorkloadConfig(num_tables=1, index_distribution="zipf", zipf_alpha=1.0)

    def test_scaled_tables(self):
        c = WEAK_SCALING_BASE.scaled_tables(128)
        assert c.num_tables == 128
        assert c.batch_size == WEAK_SCALING_BASE.batch_size

    def test_feature_names_stable(self):
        c = WorkloadConfig(num_tables=3)
        assert c.feature_names == ["sparse_0", "sparse_1", "sparse_2"]

    def test_table_configs(self):
        cfgs = WorkloadConfig(num_tables=2, rows_per_table=10, dim=4).table_configs()
        assert len(cfgs) == 2
        assert cfgs[0].num_rows == 10 and cfgs[0].dim == 4

    def test_mean_pooling(self):
        assert WorkloadConfig(num_tables=1, min_pooling=0, max_pooling=128).mean_pooling == 64.0


def small(**kw):
    defaults = dict(
        num_tables=4, rows_per_table=100, dim=8, batch_size=50,
        max_pooling=6, min_pooling=0, seed=7,
    )
    defaults.update(kw)
    return WorkloadConfig(**defaults)


class TestSparseGeneration:
    def test_batch_structure(self):
        gen = SyntheticDataGenerator(small())
        b = gen.sparse_batch()
        assert b.batch_size == 50
        assert b.num_features == 4
        assert b.feature_names == ["sparse_0", "sparse_1", "sparse_2", "sparse_3"]

    def test_pooling_within_bounds(self):
        gen = SyntheticDataGenerator(small(min_pooling=2, max_pooling=5))
        b = gen.sparse_batch()
        for _, f in b:
            assert (f.lengths >= 2).all() and (f.lengths <= 5).all()

    def test_indices_within_cardinality(self):
        gen = SyntheticDataGenerator(small())
        b = gen.sparse_batch()
        for _, f in b:
            if f.nnz:
                assert f.indices.min() >= 0 and f.indices.max() < 100

    def test_deterministic_given_seed(self):
        a = SyntheticDataGenerator(small()).sparse_batch()
        b = SyntheticDataGenerator(small()).sparse_batch()
        for name, f in a:
            assert f == b.field(name)

    def test_reset_replays_stream(self):
        gen = SyntheticDataGenerator(small())
        first = gen.sparse_batch()
        gen.sparse_batch()
        gen.reset()
        again = gen.sparse_batch()
        for name, f in first:
            assert f == again.field(name)

    def test_custom_batch_size(self):
        gen = SyntheticDataGenerator(small())
        assert gen.sparse_batch(batch_size=7).batch_size == 7

    def test_zipf_skews_indices(self):
        gen = SyntheticDataGenerator(
            small(index_distribution="zipf", zipf_alpha=1.2, batch_size=500, max_pooling=20)
        )
        b = gen.sparse_batch()
        idx = np.concatenate([f.indices for _, f in b])
        # Zipf: index 0 should be far more frequent than uniform would give.
        frac_zero = np.mean(idx == 0)
        assert frac_zero > 5.0 / 100  # uniform would be ~1/100

    def test_zipf_deterministic_given_seed(self):
        cfg = small(index_distribution="zipf", zipf_alpha=1.2, batch_size=200)
        a = SyntheticDataGenerator(cfg).sparse_batch()
        b = SyntheticDataGenerator(cfg).sparse_batch()
        for name, f in a:
            assert f == b.field(name)

    def test_zipf_skew_grows_with_alpha(self):
        """Higher alpha concentrates more mass on the low indices."""
        def low_index_mass(alpha):
            cfg = small(
                index_distribution="zipf", zipf_alpha=alpha,
                batch_size=1000, max_pooling=20,
            )
            b = SyntheticDataGenerator(cfg).sparse_batch()
            idx = np.concatenate([f.indices for _, f in b])
            return np.mean(idx < 10)

        masses = [low_index_mass(a) for a in (1.05, 1.3, 1.8)]
        assert masses[0] < masses[1] < masses[2]
        assert masses[0] > 10.0 / 100  # already above the uniform share

    def test_zipf_per_device_reproducibility(self):
        """Independent generators (e.g. one per simulated device) with the
        same config replay the same stream — the distributed tests rely on
        this instead of broadcasting inputs."""
        cfg = small(index_distribution="zipf", zipf_alpha=1.1, batch_size=100)
        gens = [SyntheticDataGenerator(cfg) for _ in range(3)]
        for _ in range(2):  # stays in lockstep across successive batches
            batches = [g.sparse_batch() for g in gens]
            for name, f in batches[0]:
                for other in batches[1:]:
                    assert f == other.field(name)

    def test_raw_cardinality_above_rows(self):
        gen = SyntheticDataGenerator(small(raw_cardinality=10_000))
        b = gen.sparse_batch()
        idx = np.concatenate([f.indices for _, f in b])
        assert idx.max() >= 100  # exceeds table rows → exercises hashing


class TestLengthsOnly:
    def test_lengths_batch_structure(self):
        gen = SyntheticDataGenerator(small())
        lengths = gen.lengths_batch()
        assert set(lengths) == set(small().feature_names)
        for arr in lengths.values():
            assert arr.shape == (50,)
            assert (arr >= 0).all() and (arr <= 6).all()

    def test_lengths_distribution_matches_sparse(self):
        """Same marginal: means agree within noise at moderate size."""
        cfg = small(batch_size=2000)
        l = SyntheticDataGenerator(cfg).lengths_batch()
        s = SyntheticDataGenerator(cfg).sparse_batch()
        m1 = np.mean([arr.mean() for arr in l.values()])
        m2 = np.mean([f.lengths.mean() for _, f in s])
        assert abs(m1 - m2) < 0.3


class TestDense:
    def test_dense_shape_and_range(self):
        gen = SyntheticDataGenerator(small(num_dense_features=13))
        d = gen.dense_batch()
        assert d.shape == (50, 13)
        assert d.dtype == np.float32
        assert (d >= 0).all() and (d <= 1).all()

    def test_batches_iterator(self):
        gen = SyntheticDataGenerator(small())
        pairs = list(gen.batches(3))
        assert len(pairs) == 3
        d, s = pairs[0]
        assert d.shape[0] == s.batch_size == 50

    def test_negative_count_rejected(self):
        gen = SyntheticDataGenerator(small())
        with pytest.raises(ValueError):
            list(gen.batches(-1))
