"""Tests for model checkpointing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm import DLRM, DLRMConfig, DLRMTrainer, SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from repro.dlrm.optim import RowWiseAdagrad


def make_model(F=3, d=8, dense=4, seed=0, interaction="dot"):
    wl = WorkloadConfig(num_tables=F, rows_per_table=30, dim=d, batch_size=8,
                        max_pooling=3, num_dense_features=dense, seed=seed)
    cfg = DLRMConfig(
        num_dense_features=dense, embedding_dim=d, table_configs=wl.table_configs(),
        bottom_mlp_sizes=(8,), top_mlp_sizes=(8,), interaction=interaction,
    )
    return DLRM(cfg, rng=np.random.default_rng(seed)), wl


class TestRoundTrip:
    def test_weights_restored_exactly(self, tmp_path):
        model, _ = make_model(seed=1)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        other, _ = make_model(seed=2)  # different weights
        load_checkpoint(other, path)
        for a, b in zip(model.embeddings.tables, other.embeddings.tables):
            assert np.array_equal(a.weights, b.weights)
        for la, lb in zip(model.bottom_mlp.layers, other.bottom_mlp.layers):
            assert np.array_equal(la.weight, lb.weight)
            assert np.array_equal(la.bias, lb.bias)

    def test_predictions_identical_after_restore(self, tmp_path):
        model, wl = make_model(seed=3)
        gen = SyntheticDataGenerator(wl)
        dense, sparse = next(gen.batches(1))
        preds = model.forward(dense, sparse)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        other, _ = make_model(seed=9)
        load_checkpoint(other, path)
        assert np.array_equal(other.forward(dense, sparse), preds)

    def test_optimizer_state_roundtrip(self, tmp_path):
        model, wl = make_model(seed=4)
        opt = RowWiseAdagrad(lr=0.2)
        trainer = DLRMTrainer(model, lr=0.2, embedding_optimizer=opt)
        gen = SyntheticDataGenerator(wl)
        dense, sparse = next(gen.batches(1))
        trainer.train_step(dense, sparse, np.ones(8, dtype=np.float32))
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path, optimizer=opt)

        other, _ = make_model(seed=5)
        opt2 = RowWiseAdagrad(lr=0.2)
        load_checkpoint(other, path, optimizer=opt2)
        for a, b in zip(model.embeddings.tables, other.embeddings.tables):
            assert np.array_equal(opt.accumulator(a), opt2.accumulator(b))

    def test_training_resumes_identically(self, tmp_path):
        """Train 2 steps == train 1, checkpoint, restore, train 1."""
        gen_cfg = make_model(seed=6)[1]
        gen = SyntheticDataGenerator(gen_cfg)
        dense, sparse = next(gen.batches(1))
        labels = np.ones(8, dtype=np.float32)

        straight, _ = make_model(seed=6)
        t1 = DLRMTrainer(straight, lr=0.3)
        t1.train_step(dense, sparse, labels)
        t1.train_step(dense, sparse, labels)

        half, _ = make_model(seed=6)
        t2 = DLRMTrainer(half, lr=0.3)
        t2.train_step(dense, sparse, labels)
        path = str(tmp_path / "mid.npz")
        save_checkpoint(half, path)
        resumed, _ = make_model(seed=99)
        load_checkpoint(resumed, path)
        DLRMTrainer(resumed, lr=0.3).train_step(dense, sparse, labels)

        for a, b in zip(straight.embeddings.tables, resumed.embeddings.tables):
            assert np.allclose(a.weights, b.weights, atol=1e-6)


class TestValidation:
    def test_architecture_mismatch_rejected(self, tmp_path):
        model, _ = make_model(F=3)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        wrong, _ = make_model(F=4)
        with pytest.raises(CheckpointError, match="mismatch"):
            load_checkpoint(wrong, path)

    def test_dim_mismatch_rejected(self, tmp_path):
        model, _ = make_model(d=8)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        wrong, _ = make_model(d=16)
        with pytest.raises(CheckpointError):
            load_checkpoint(wrong, path)

    def test_interaction_mismatch_rejected(self, tmp_path):
        model, _ = make_model(interaction="dot")
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        wrong, _ = make_model(interaction="cat")
        with pytest.raises(CheckpointError):
            load_checkpoint(wrong, path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, stuff=np.arange(3))
        model, _ = make_model()
        with pytest.raises(CheckpointError, match="header"):
            load_checkpoint(model, path)


class TestCorruption:
    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        model, _ = make_model(seed=7)
        path = str(tmp_path / "ckpt.npz")
        save_checkpoint(model, path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        other, _ = make_model(seed=8)
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(other, path)

    def test_garbage_bytes_raise_checkpoint_error(self, tmp_path):
        path = str(tmp_path / "garbage.npz")
        open(path, "wb").write(b"this is not a zip archive at all")
        model, _ = make_model()
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(model, path)

    def test_missing_file_stays_file_not_found(self, tmp_path):
        model, _ = make_model()
        with pytest.raises(FileNotFoundError):
            load_checkpoint(model, str(tmp_path / "absent.npz"))
