"""Tests for heterogeneous table profiles and Criteo-like workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm.heterogeneous import (
    HeterogeneousDataGenerator,
    HeterogeneousWorkload,
    TableProfile,
    criteo_like,
)


def small_workload():
    return HeterogeneousWorkload(
        tables=(
            TableProfile("states", num_rows=50, max_pooling=1, min_pooling=1),
            TableProfile("pages", num_rows=5000, max_pooling=16,
                         raw_cardinality=1_000_000),
            TableProfile("items", num_rows=800, max_pooling=4),
        ),
        dim=8,
        batch_size=40,
        seed=5,
    )


class TestTableProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            TableProfile("x", num_rows=0, max_pooling=1)
        with pytest.raises(ValueError):
            TableProfile("x", num_rows=1, max_pooling=1, min_pooling=2)
        with pytest.raises(ValueError):
            TableProfile("x", num_rows=1, max_pooling=1, raw_cardinality=0)

    def test_mean_pooling(self):
        assert TableProfile("x", 10, max_pooling=4, min_pooling=2).mean_pooling == 3.0

    def test_nbytes(self):
        assert TableProfile("x", 100, max_pooling=1).nbytes(dim=8) == 3200


class TestWorkload:
    def test_table_configs_share_dim(self):
        wl = small_workload()
        cfgs = wl.table_configs()
        assert [c.name for c in cfgs] == ["states", "pages", "items"]
        assert all(c.dim == 8 for c in cfgs)
        assert cfgs[0].num_rows == 50

    def test_total_bytes(self):
        wl = small_workload()
        assert wl.total_table_bytes == (50 + 5000 + 800) * 8 * 4

    def test_profile_lookup(self):
        wl = small_workload()
        assert wl.profile("pages").max_pooling == 16
        with pytest.raises(KeyError):
            wl.profile("nope")

    def test_duplicate_names_rejected(self):
        t = TableProfile("a", 10, 1)
        with pytest.raises(ValueError):
            HeterogeneousWorkload(tables=(t, t), dim=4, batch_size=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            HeterogeneousWorkload(tables=(), dim=4, batch_size=2)


class TestGenerator:
    def test_per_table_pooling_ranges(self):
        gen = HeterogeneousDataGenerator(small_workload())
        batch = gen.sparse_batch()
        states = batch.field("states")
        assert (states.lengths == 1).all()  # single-valued feature
        pages = batch.field("pages")
        assert pages.lengths.max() <= 16

    def test_raw_cardinality_used(self):
        gen = HeterogeneousDataGenerator(small_workload())
        batch = gen.sparse_batch()
        pages = batch.field("pages")
        # raw indices exceed the hashed table size → hashing is exercised
        assert pages.indices.max() >= 5000

    def test_lengths_batch_matches_profiles(self):
        gen = HeterogeneousDataGenerator(small_workload())
        lengths = gen.lengths_batch()
        assert set(lengths) == {"states", "pages", "items"}
        assert (lengths["states"] == 1).all()
        assert lengths["items"].max() <= 4

    def test_deterministic(self):
        a = HeterogeneousDataGenerator(small_workload()).sparse_batch()
        b = HeterogeneousDataGenerator(small_workload()).sparse_batch()
        for name, f in a:
            assert f == b.field(name)

    def test_reset(self):
        gen = HeterogeneousDataGenerator(small_workload())
        first = gen.sparse_batch()
        gen.sparse_batch()
        gen.reset()
        again = gen.sparse_batch()
        for name, f in first:
            assert f == again.field(name)

    def test_dense_and_batches(self):
        gen = HeterogeneousDataGenerator(small_workload())
        d = gen.dense_batch()
        assert d.shape == (40, 13)
        pairs = list(gen.batches(2))
        assert len(pairs) == 2


class TestCriteoLike:
    def test_shape(self):
        wl = criteo_like(num_tables=26, dim=64)
        assert wl.num_tables == 26
        assert wl.dim == 64
        assert len(set(wl.feature_names)) == 26

    def test_cardinalities_span_orders_of_magnitude(self):
        wl = criteo_like(num_tables=26, seed=7)
        rows = [t.num_rows for t in wl.tables]
        assert min(rows) < 10_000
        assert max(rows) > 1_000_000

    def test_hash_cap(self):
        wl = criteo_like(num_tables=40, max_rows=500_000_000, seed=1)
        assert max(t.num_rows for t in wl.tables) <= 10_000_000
        # but raw cardinalities can exceed the cap (hashing is real)
        assert max(t.raw_cardinality for t in wl.tables) > 10_000_000

    def test_multivalued_fraction(self):
        wl = criteo_like(num_tables=20, multivalued_fraction=0.5, seed=2)
        multi = [t for t in wl.tables if t.max_pooling > 1]
        assert len(multi) == 10
        single = [t for t in wl.tables if t.max_pooling == 1]
        assert all(t.min_pooling == 1 for t in single)

    def test_validation(self):
        with pytest.raises(ValueError):
            criteo_like(num_tables=0)
        with pytest.raises(ValueError):
            criteo_like(multivalued_fraction=1.5)

    def test_works_with_distributed_embedding(self):
        """End to end: heterogeneous workload through the retrieval API."""
        from repro.core import DistributedEmbedding

        wl = criteo_like(num_tables=8, dim=16, batch_size=256,
                         max_rows=10_000, seed=3)
        emb = DistributedEmbedding(wl.table_configs(), 2, backend="pgas")
        lengths = HeterogeneousDataGenerator(wl).lengths_batch()
        t = emb.forward_timed(lengths)
        assert t.total_ns > 0
