"""Tests for the feature-interaction layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm.interaction import (
    cat_interaction,
    dot_interaction,
    interact,
    interaction_output_dim,
    sum_interaction,
)


def make_inputs(B=3, F=4, d=8, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.normal(size=(B, d)).astype(np.float32)
    sparse = rng.normal(size=(B, F, d)).astype(np.float32)
    return dense, sparse


class TestDot:
    def test_output_shape(self):
        dense, sparse = make_inputs(B=3, F=4, d=8)
        out = dot_interaction(dense, sparse)
        assert out.shape == (3, interaction_output_dim(4, 8, "dot"))
        assert out.shape == (3, 8 + 5 * 4 // 2)

    def test_dense_passthrough(self):
        dense, sparse = make_inputs()
        out = dot_interaction(dense, sparse)
        assert np.array_equal(out[:, : dense.shape[1]], dense)

    def test_pairs_are_dot_products(self):
        dense, sparse = make_inputs(B=1, F=2, d=4)
        out = dot_interaction(dense, sparse)
        stacked = np.concatenate([dense[:, None, :], sparse], axis=1)[0]
        # pair order: strictly-lower triangle of the (F+1)x(F+1) Gram matrix
        expected = [
            stacked[1] @ stacked[0],
            stacked[2] @ stacked[0],
            stacked[2] @ stacked[1],
        ]
        assert np.allclose(out[0, 4:], expected, atol=1e-5)

    def test_single_sparse_feature(self):
        dense, sparse = make_inputs(F=1)
        out = dot_interaction(dense, sparse)
        assert out.shape[1] == dense.shape[1] + 1


class TestCatAndSum:
    def test_cat_shape_and_content(self):
        dense, sparse = make_inputs(B=2, F=3, d=4)
        out = cat_interaction(dense, sparse)
        assert out.shape == (2, 16)
        assert np.array_equal(out[:, :4], dense)
        assert np.array_equal(out[:, 4:8], sparse[:, 0, :])

    def test_sum_shape_and_content(self):
        dense, sparse = make_inputs(B=2, F=3, d=4)
        out = sum_interaction(dense, sparse)
        assert out.shape == (2, 4)
        assert np.allclose(out, dense + sparse.sum(axis=1), atol=1e-6)


class TestDispatchAndValidation:
    def test_dispatch(self):
        dense, sparse = make_inputs()
        assert np.array_equal(interact(dense, sparse, "dot"), dot_interaction(dense, sparse))
        assert np.array_equal(interact(dense, sparse, "cat"), cat_interaction(dense, sparse))
        assert np.array_equal(interact(dense, sparse, "sum"), sum_interaction(dense, sparse))

    def test_unknown_mode(self):
        dense, sparse = make_inputs()
        with pytest.raises(ValueError):
            interact(dense, sparse, "hadamard")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            interaction_output_dim(3, 8, "hadamard")  # type: ignore[arg-type]

    def test_mismatched_batch(self):
        dense, sparse = make_inputs(B=3)
        with pytest.raises(ValueError):
            interact(dense[:2], sparse)

    def test_mismatched_dim(self):
        dense, sparse = make_inputs(d=8)
        with pytest.raises(ValueError):
            interact(dense[:, :4], sparse)

    def test_wrong_rank(self):
        dense, sparse = make_inputs()
        with pytest.raises(ValueError):
            interact(dense, dense)  # sparse must be 3-D

    def test_output_dims_consistent(self):
        dense, sparse = make_inputs(B=2, F=5, d=16)
        for mode in ("dot", "cat", "sum"):
            out = interact(dense, sparse, mode)  # type: ignore[arg-type]
            assert out.shape[1] == interaction_output_dim(5, 16, mode)  # type: ignore[arg-type]
