"""Tests for the training substrate, including numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm import DLRM, DLRMConfig, EmbeddingTableConfig, SyntheticDataGenerator, WorkloadConfig
from repro.dlrm.interaction import interact
from repro.dlrm.mlp import MLP, Linear
from repro.dlrm.training import (
    DLRMTrainer,
    bce_grad,
    bce_loss,
    interaction_backward,
)


def make_model(F=3, d=6, dense=4, interaction="dot", seed=0):
    cfgs = [EmbeddingTableConfig(f"sparse_{i}", 30, d) for i in range(F)]
    cfg = DLRMConfig(
        num_dense_features=dense, embedding_dim=d, table_configs=cfgs,
        bottom_mlp_sizes=(8,), top_mlp_sizes=(8,), interaction=interaction,
    )
    return DLRM(cfg, rng=np.random.default_rng(seed))


def make_batch(F=3, B=12, dense=4, seed=1):
    wl = WorkloadConfig(num_tables=F, rows_per_table=30, dim=6, batch_size=B,
                        max_pooling=3, num_dense_features=dense, seed=seed)
    gen = SyntheticDataGenerator(wl)
    return gen.dense_batch(), gen.sparse_batch()


class TestLoss:
    def test_bce_perfect_prediction_near_zero(self):
        assert bce_loss(np.array([0.9999, 0.0001]), np.array([1.0, 0.0])) < 1e-3

    def test_bce_uninformative_is_log2(self):
        assert bce_loss(np.full(10, 0.5), np.arange(10) % 2) == pytest.approx(
            np.log(2), rel=1e-6
        )

    def test_bce_shape_mismatch(self):
        with pytest.raises(ValueError):
            bce_loss(np.ones(3), np.ones(4))

    def test_bce_grad_direction(self):
        g = bce_grad(np.array([0.9]), np.array([0.0]))
        assert g[0, 0] > 0  # overprediction → positive logit gradient
        g = bce_grad(np.array([0.1]), np.array([1.0]))
        assert g[0, 0] < 0

    def test_bce_grad_numerical(self):
        """(p - y)/B matches the numerical derivative of BCE(sigmoid(z))."""
        rng = np.random.default_rng(0)
        z = rng.normal(size=5)
        y = (rng.uniform(size=5) > 0.5).astype(np.float64)

        def loss_at(zv):
            return bce_loss(1 / (1 + np.exp(-zv)), y)

        analytic = bce_grad(1 / (1 + np.exp(-z)), y).reshape(-1)
        eps = 1e-6
        for i in range(5):
            zp, zm = z.copy(), z.copy()
            zp[i] += eps
            zm[i] -= eps
            num = (loss_at(zp) - loss_at(zm)) / (2 * eps)
            assert analytic[i] == pytest.approx(num, rel=1e-4, abs=1e-8)


class TestLinearBackward:
    def test_grad_input_numerical(self):
        rng = np.random.default_rng(2)
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4)).astype(np.float32)
        g_out = rng.normal(size=(5, 3)).astype(np.float32)
        g_in = layer.backward(x, g_out, lr=0.0)

        eps = 1e-3
        for i in (0, 3):
            for j in (0, 2):
                xp, xm = x.copy(), x.copy()
                xp[i, j] += eps
                xm[i, j] -= eps
                num = ((layer.forward(xp) * g_out).sum() - (layer.forward(xm) * g_out).sum()) / (2 * eps)
                assert g_in[i, j] == pytest.approx(num, rel=1e-2, abs=1e-4)

    def test_sgd_reduces_linear_loss(self):
        rng = np.random.default_rng(3)
        layer = Linear(4, 1, rng=rng)
        x = rng.normal(size=(64, 4)).astype(np.float32)
        target = x @ np.array([[1.0], [-2.0], [0.5], [3.0]], dtype=np.float32)
        losses = []
        for _ in range(50):
            pred = layer.forward(x)
            losses.append(float(((pred - target) ** 2).mean()))
            layer.backward(x, 2 * (pred - target) / len(x), lr=0.05)
        assert losses[-1] < 0.05 * losses[0]

    def test_backward_shape_checked(self):
        layer = Linear(4, 3)
        with pytest.raises(ValueError):
            layer.backward(np.ones((5, 4), np.float32), np.ones((5, 2), np.float32))


class TestMLPBackward:
    def test_forward_cached_matches_forward(self):
        mlp = MLP([4, 8, 2], rng=np.random.default_rng(1))
        x = np.random.default_rng(2).normal(size=(6, 4)).astype(np.float32)
        out, _ = mlp.forward_cached(x)
        assert np.array_equal(out, mlp.forward(x))

    def test_grad_input_numerical(self):
        rng = np.random.default_rng(4)
        mlp = MLP([4, 6, 2], rng=rng)
        x = rng.normal(size=(3, 4)).astype(np.float64)
        g_out = rng.normal(size=(3, 2)).astype(np.float64)
        _, cache = mlp.forward_cached(x)
        g_in = mlp.backward(cache, g_out, lr=0.0)

        eps = 1e-5
        for i in range(3):
            for j in range(4):
                xp, xm = x.copy(), x.copy()
                xp[i, j] += eps
                xm[i, j] -= eps
                num = ((mlp.forward(xp) * g_out).sum() - (mlp.forward(xm) * g_out).sum()) / (2 * eps)
                assert g_in[i, j] == pytest.approx(num, rel=5e-3, abs=1e-6)


class TestInteractionBackward:
    @pytest.mark.parametrize("mode", ["dot", "cat", "sum"])
    def test_numerical_gradient(self, mode):
        rng = np.random.default_rng(5)
        B, F, d = 3, 2, 4
        dense = rng.normal(size=(B, d))
        sparse = rng.normal(size=(B, F, d))
        out = interact(dense, sparse, mode)
        g_out = rng.normal(size=out.shape)
        g_dense, g_sparse = interaction_backward(g_out, dense, sparse, mode)

        eps = 1e-6

        def total(dn, sp):
            return float((interact(dn, sp, mode) * g_out).sum())

        for i in range(B):
            for k in range(d):
                dp, dm = dense.copy(), dense.copy()
                dp[i, k] += eps
                dm[i, k] -= eps
                num = (total(dp, sparse) - total(dm, sparse)) / (2 * eps)
                assert g_dense[i, k] == pytest.approx(num, rel=1e-4, abs=1e-7)
        for i in range(B):
            for f in range(F):
                sp, sm = sparse.copy(), sparse.copy()
                sp[i, f, 0] += eps
                sm[i, f, 0] -= eps
                num = (total(dense, sp) - total(dense, sm)) / (2 * eps)
                assert g_sparse[i, f, 0] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            interaction_backward(np.zeros((1, 4)), np.zeros((1, 2)), np.zeros((1, 1, 2)), "x")  # type: ignore[arg-type]


class TestTrainer:
    def test_loss_decreases_on_fixed_batch(self):
        model = make_model()
        dense, sparse = make_batch()
        rng = np.random.default_rng(6)
        labels = (rng.uniform(size=12) > 0.5).astype(np.float32)
        trainer = DLRMTrainer(model, lr=0.5)
        losses = [trainer.train_step(dense, sparse, labels).loss for _ in range(40)]
        assert losses[-1] < 0.5 * losses[0]

    def test_embedding_weights_move(self):
        model = make_model()
        dense, sparse = make_batch()
        before = [t.weights.copy() for t in model.embeddings.tables]
        DLRMTrainer(model, lr=1.0).train_step(
            dense, sparse, np.ones(12, dtype=np.float32)
        )
        assert any(
            not np.array_equal(t.weights, w)
            for t, w in zip(model.embeddings.tables, before)
        )

    def test_apply_embedding_grads_false_freezes_tables(self):
        model = make_model()
        dense, sparse = make_batch()
        before = [t.weights.copy() for t in model.embeddings.tables]
        result = DLRMTrainer(model, lr=1.0).train_step(
            dense, sparse, np.ones(12, dtype=np.float32),
            apply_embedding_grads=False,
        )
        assert all(
            np.array_equal(t.weights, w)
            for t, w in zip(model.embeddings.tables, before)
        )
        assert result.grad_sparse.shape == (12, 3, 6)

    def test_distributed_backward_matches_reference(self):
        """The hand-off: trainer's grad through PGAS backward == reference."""
        from repro.core import (
            RowWiseSharding,
            ShardedEmbeddingTables,
            TableWiseSharding,
            minibatch_bounds,
            pgas_functional_backward,
        )

        dense, sparse = make_batch()
        labels = np.ones(12, dtype=np.float32)

        ref_model = make_model(seed=9)
        ref_result = DLRMTrainer(ref_model, lr=1.0).train_step(dense, sparse, labels)

        dist_model = make_model(seed=9)
        result = DLRMTrainer(dist_model, lr=1.0).train_step(
            dense, sparse, labels, apply_embedding_grads=False
        )
        assert np.allclose(result.grad_sparse, ref_result.grad_sparse, atol=1e-6)
        plan = TableWiseSharding(dist_model.config.table_configs, 3)
        sharded = ShardedEmbeddingTables.from_collection(dist_model.embeddings, plan)
        bounds = minibatch_bounds(12, 3)
        pgas_functional_backward(
            sharded, sparse, [result.grad_sparse[lo:hi] for lo, hi in bounds], lr=1.0
        )
        for a, b in zip(dist_model.embeddings.tables, ref_model.embeddings.tables):
            assert np.allclose(a.weights, b.weights, atol=1e-4)

    def test_fit_loop(self):
        model = make_model()
        wl = WorkloadConfig(num_tables=3, rows_per_table=30, dim=6, batch_size=12,
                            max_pooling=3, num_dense_features=4, seed=2)
        gen = SyntheticDataGenerator(wl)
        rng = np.random.default_rng(0)
        trainer = DLRMTrainer(model, lr=0.1)
        losses = trainer.fit(
            gen.batches(5),
            labels_fn=lambda d, s: (rng.uniform(size=d.shape[0]) > 0.5).astype(np.float32),
        )
        assert len(losses) == 5
        assert all(np.isfinite(l) for l in losses)

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            DLRMTrainer(make_model(), lr=0.0)

    @pytest.mark.parametrize("mode", ["dot", "cat", "sum"])
    def test_all_interactions_trainable(self, mode):
        model = make_model(interaction=mode)
        dense, sparse = make_batch()
        labels = np.zeros(12, dtype=np.float32)
        trainer = DLRMTrainer(model, lr=0.5)
        l0 = trainer.train_step(dense, sparse, labels).loss
        for _ in range(20):
            l1 = trainer.train_step(dense, sparse, labels).loss
        assert l1 < l0
