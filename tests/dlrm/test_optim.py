"""Tests for embedding-table optimizers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dlrm.embedding import EmbeddingTable, EmbeddingTableConfig
from repro.dlrm.optim import RowWiseAdagrad, SparseSGD, aggregate_row_gradients


def make_table(rows=10, dim=4, seed=0):
    return EmbeddingTable(
        EmbeddingTableConfig("t", rows, dim), rng=np.random.default_rng(seed)
    )


class TestAggregate:
    def test_no_duplicates_passthrough(self):
        rows = np.array([3, 1, 7])
        grads = np.eye(3, 4, dtype=np.float32)
        u, s = aggregate_row_gradients(rows, grads)
        assert sorted(u) == [1, 3, 7]
        # total mass preserved
        assert s.sum() == pytest.approx(grads.sum())

    def test_duplicates_summed(self):
        rows = np.array([2, 2, 2])
        grads = np.ones((3, 4), dtype=np.float32)
        u, s = aggregate_row_gradients(rows, grads)
        assert list(u) == [2]
        assert np.allclose(s, 3.0)

    def test_empty(self):
        u, s = aggregate_row_gradients(np.empty(0, np.int64), np.empty((0, 4)))
        assert u.size == 0

    def test_mismatch_rejected(self):
        with pytest.raises(ValueError):
            aggregate_row_gradients(np.array([1]), np.ones((2, 4)))

    @given(
        rows=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=30),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_aggregation_preserves_total_gradient(self, rows, seed):
        rng = np.random.default_rng(seed)
        grads = rng.normal(size=(len(rows), 3))
        u, s = aggregate_row_gradients(np.array(rows), grads)
        dense_direct = np.zeros((10, 3))
        np.add.at(dense_direct, np.array(rows), grads)
        dense_agg = np.zeros((10, 3))
        dense_agg[u] = s
        assert np.allclose(dense_direct, dense_agg, atol=1e-9)


class TestSparseSGD:
    def test_matches_apply_row_gradients(self):
        t1, t2 = make_table(seed=1), make_table(seed=1)
        rows = np.array([1, 1, 3])
        grads = np.ones((3, 4), dtype=np.float32)
        SparseSGD(lr=0.5).update(t1, rows, grads)
        t2.apply_row_gradients(rows, grads, lr=0.5)
        assert np.allclose(t1.weights, t2.weights, atol=1e-6)

    def test_stateless(self):
        opt = SparseSGD(lr=0.1)
        t = make_table()
        opt.update(t, np.array([0]), np.ones((1, 4), dtype=np.float32))
        assert opt.state_bytes(t) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            SparseSGD(lr=0.0)


class TestRowWiseAdagrad:
    def test_first_step_is_scaled_sgd(self):
        t = make_table(seed=2)
        w0 = t.weights.copy()
        g = np.full((1, 4), 2.0, dtype=np.float32)
        opt = RowWiseAdagrad(lr=1.0, eps=1e-8)
        opt.update(t, np.array([5]), g)
        # accumulator = mean(g^2) = 4 → step = g / 2
        assert np.allclose(t.weights[5], w0[5] - 1.0, atol=1e-4)

    def test_step_size_anneals_for_hot_rows(self):
        t = make_table(seed=3)
        opt = RowWiseAdagrad(lr=1.0)
        g = np.ones((1, 4), dtype=np.float32)
        before1 = t.weights[0].copy()
        opt.update(t, np.array([0]), g)
        step1 = np.abs(t.weights[0] - before1).mean()
        before2 = t.weights[0].copy()
        opt.update(t, np.array([0]), g)
        step2 = np.abs(t.weights[0] - before2).mean()
        assert step2 < step1

    def test_cold_rows_unaffected(self):
        t = make_table(seed=4)
        w0 = t.weights.copy()
        RowWiseAdagrad().update(t, np.array([1]), np.ones((1, 4), dtype=np.float32))
        assert np.array_equal(t.weights[0], w0[0])
        assert not np.array_equal(t.weights[1], w0[1])

    def test_duplicates_equal_one_aggregated_step(self):
        """Two contributions to one row == one step on their sum."""
        ta, tb = make_table(seed=5), make_table(seed=5)
        opt_a, opt_b = RowWiseAdagrad(lr=0.5), RowWiseAdagrad(lr=0.5)
        g = np.array([[1.0, 0.0, 1.0, 0.0], [0.0, 2.0, 0.0, 2.0]], dtype=np.float32)
        opt_a.update(ta, np.array([3, 3]), g)
        opt_b.update(tb, np.array([3]), g.sum(axis=0, keepdims=True))
        assert np.allclose(ta.weights, tb.weights, atol=1e-6)

    def test_state_bytes_lazy(self):
        opt = RowWiseAdagrad()
        t = make_table(rows=100)
        assert opt.state_bytes(t) == 0
        opt.update(t, np.array([0]), np.ones((1, 4), dtype=np.float32))
        assert opt.state_bytes(t) == 400  # one float32 per row

    def test_state_is_per_table(self):
        opt = RowWiseAdagrad()
        t1, t2 = make_table(seed=6), make_table(seed=7)
        opt.update(t1, np.array([0]), np.ones((1, 4), dtype=np.float32))
        assert opt.state_bytes(t2) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RowWiseAdagrad(lr=0.0)
        with pytest.raises(ValueError):
            RowWiseAdagrad(eps=0.0)


class TestTrainerIntegration:
    def test_adagrad_trainer_learns(self):
        from repro.dlrm import (
            DLRM,
            DLRMConfig,
            DLRMTrainer,
            SyntheticDataGenerator,
            WorkloadConfig,
        )

        wl = WorkloadConfig(num_tables=3, rows_per_table=30, dim=6, batch_size=16,
                            max_pooling=3, num_dense_features=4, seed=1)
        model = DLRM(DLRMConfig(
            num_dense_features=4, embedding_dim=6, table_configs=wl.table_configs(),
            bottom_mlp_sizes=(8,), top_mlp_sizes=(8,),
        ), rng=np.random.default_rng(0))
        trainer = DLRMTrainer(model, lr=0.3, embedding_optimizer=RowWiseAdagrad(lr=0.3))
        gen = SyntheticDataGenerator(wl)
        dense, sparse = next(gen.batches(1))
        labels = np.ones(16, dtype=np.float32)
        losses = [trainer.train_step(dense, sparse, labels).loss for _ in range(30)]
        assert losses[-1] < 0.5 * losses[0]
        # Adagrad state actually allocated on the hot tables.
        touched = sum(
            trainer.embedding_optimizer.state_bytes(t) for t in model.embeddings.tables
        )
        assert touched > 0
