"""Tests for jagged batch representation and partitioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dlrm.batch import JaggedField, SparseBatch


def field_from(bags):
    return JaggedField.from_bags(bags)


class TestJaggedField:
    def test_from_bags_roundtrip(self):
        f = field_from([[1, 2], [], [3, 4, 5]])
        assert f.batch_size == 3
        assert f.nnz == 5
        assert list(f.bag(0)) == [1, 2]
        assert list(f.bag(1)) == []
        assert list(f.bag(2)) == [3, 4, 5]

    def test_lengths(self):
        f = field_from([[1], [], [2, 3]])
        assert list(f.lengths) == [1, 0, 2]

    def test_from_lengths(self):
        f = JaggedField.from_lengths([2, 0, 1], np.array([7, 8, 9]))
        assert list(f.bag(0)) == [7, 8]
        assert list(f.bag(2)) == [9]

    def test_all_empty_bags(self):
        f = field_from([[], [], []])
        assert f.nnz == 0
        assert f.batch_size == 3

    def test_validation_offsets_start_at_zero(self):
        with pytest.raises(ValueError, match="offsets\\[0\\]"):
            JaggedField(offsets=np.array([1, 2]), indices=np.array([5]))

    def test_validation_offsets_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            JaggedField(offsets=np.array([0, 3, 1]), indices=np.arange(3))

    def test_validation_last_offset_matches_nnz(self):
        with pytest.raises(ValueError, match="len\\(indices\\)"):
            JaggedField(offsets=np.array([0, 2]), indices=np.arange(5))

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValueError):
            JaggedField.from_lengths([2, -1], np.array([1]))

    def test_bags_iterator(self):
        f = field_from([[1], [2, 3]])
        assert [list(b) for b in f.bags()] == [[1], [2, 3]]

    def test_equality(self):
        a = field_from([[1, 2], [3]])
        b = field_from([[1, 2], [3]])
        c = field_from([[1], [2, 3]])
        assert a == b
        assert a != c

    def test_slice_samples(self):
        f = field_from([[1], [2, 3], [], [4, 5, 6]])
        sub = f.slice_samples(1, 3)
        assert sub.batch_size == 2
        assert list(sub.bag(0)) == [2, 3]
        assert list(sub.bag(1)) == []

    def test_slice_bounds_checked(self):
        f = field_from([[1], [2]])
        with pytest.raises(ValueError):
            f.slice_samples(1, 5)
        with pytest.raises(ValueError):
            f.slice_samples(-1, 1)

    def test_concat_inverts_slice(self):
        f = field_from([[1], [2, 3], [], [4]])
        joined = f.slice_samples(0, 2).concat(f.slice_samples(2, 4))
        assert joined == f

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=30),
        cut=st.integers(min_value=0, max_value=30),
    )
    def test_slice_concat_roundtrip_property(self, lengths, cut):
        cut = min(cut, len(lengths))
        nnz = sum(lengths)
        f = JaggedField.from_lengths(lengths, np.arange(nnz))
        rejoined = f.slice_samples(0, cut).concat(f.slice_samples(cut, len(lengths)))
        assert rejoined == f


class TestSparseBatch:
    def make(self):
        return SparseBatch(
            {
                "a": field_from([[1], [2, 3], []]),
                "b": field_from([[], [4], [5, 6]]),
            }
        )

    def test_basic_properties(self):
        b = self.make()
        assert b.batch_size == 3
        assert b.feature_names == ["a", "b"]
        assert b.num_features == 2
        assert b.total_nnz == 6
        assert "a" in b and "z" not in b

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SparseBatch({})

    def test_inconsistent_batch_rejected(self):
        with pytest.raises(ValueError, match="inconsistent"):
            SparseBatch({"a": field_from([[1]]), "b": field_from([[1], [2]])})

    def test_select_features_keeps_full_batch(self):
        b = self.make()
        sel = b.select_features(["b"])
        assert sel.feature_names == ["b"]
        assert sel.batch_size == 3

    def test_select_unknown_feature_raises(self):
        with pytest.raises(KeyError):
            self.make().select_features(["nope"])

    def test_slice_samples_applies_to_all_features(self):
        b = self.make().slice_samples(1, 3)
        assert b.batch_size == 2
        assert list(b.field("a").bag(0)) == [2, 3]
        assert list(b.field("b").bag(1)) == [5, 6]

    def test_minibatch_bounds_even(self):
        b = self.make()
        assert b.minibatch_bounds(3) == [(0, 1), (1, 2), (2, 3)]

    def test_minibatch_bounds_remainder_spread(self):
        f = field_from([[i] for i in range(7)])
        b = SparseBatch({"a": f})
        bounds = b.minibatch_bounds(3)
        assert bounds == [(0, 3), (3, 5), (5, 7)]
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 7

    def test_minibatch_bounds_validation(self):
        with pytest.raises(ValueError):
            self.make().minibatch_bounds(0)

    @given(
        batch=st.integers(min_value=1, max_value=64),
        parts=st.integers(min_value=1, max_value=8),
    )
    def test_minibatch_bounds_partition_property(self, batch, parts):
        f = JaggedField.from_lengths([1] * batch, np.arange(batch))
        bounds = SparseBatch({"a": f}).minibatch_bounds(parts)
        # exact cover, in order, balanced within 1
        assert bounds[0][0] == 0 and bounds[-1][1] == batch
        for (l1, h1), (l2, h2) in zip(bounds, bounds[1:]):
            assert h1 == l2
        sizes = [h - l for l, h in bounds]
        assert max(sizes) - min(sizes) <= 1
