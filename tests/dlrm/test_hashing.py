"""Tests for index hashing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dlrm.hashing import hash_indices, hasher, mod_hash, multiply_shift_hash


class TestModHash:
    def test_in_range_identity(self):
        idx = np.array([0, 5, 99])
        assert np.array_equal(mod_hash(idx, 100), idx)

    def test_wraps(self):
        assert np.array_equal(mod_hash(np.array([100, 205]), 100), [0, 5])

    def test_non_positive_rows_rejected(self):
        with pytest.raises(ValueError):
            mod_hash(np.array([1]), 0)

    def test_empty_input(self):
        out = mod_hash(np.empty(0, dtype=np.int64), 10)
        assert out.size == 0


class TestMultiplyShift:
    def test_range(self):
        idx = np.arange(10_000)
        out = multiply_shift_hash(idx, 64)
        assert out.min() >= 0 and out.max() < 64

    def test_deterministic(self):
        idx = np.arange(100)
        assert np.array_equal(
            multiply_shift_hash(idx, 50), multiply_shift_hash(idx, 50)
        )

    def test_spreads_sequential_inputs(self):
        """Sequential ids should hit most buckets (unlike pathological hashes)."""
        out = multiply_shift_hash(np.arange(10_000), 100)
        counts = np.bincount(out, minlength=100)
        assert (counts > 0).all()
        # roughly uniform: no bucket more than 3x the mean
        assert counts.max() < 3 * counts.mean()

    def test_differs_from_mod(self):
        idx = np.arange(1000)
        assert not np.array_equal(mod_hash(idx, 100), multiply_shift_hash(idx, 100))


class TestDispatch:
    def test_kinds(self):
        idx = np.array([123456789])
        assert hash_indices(idx, 100, "mod") == mod_hash(idx, 100)
        assert hash_indices(idx, 100, "multiply_shift") == multiply_shift_hash(idx, 100)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown hash kind"):
            hash_indices(np.array([1]), 10, "fnv")  # type: ignore[arg-type]

    def test_hasher_partial(self):
        h = hasher(64, "mod")
        assert np.array_equal(h(np.array([65])), [1])
        with pytest.raises(ValueError):
            hasher(10, "bad")  # type: ignore[arg-type]


@given(
    idx=st.lists(st.integers(min_value=0, max_value=2**62), min_size=1, max_size=100),
    rows=st.integers(min_value=1, max_value=10_000),
    kind=st.sampled_from(["mod", "multiply_shift"]),
)
def test_hash_always_in_range(idx, rows, kind):
    out = hash_indices(np.array(idx, dtype=np.int64), rows, kind)
    assert out.dtype == np.int64
    assert (out >= 0).all() and (out < rows).all()


@given(
    idx=st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=50),
    rows=st.integers(min_value=1, max_value=1000),
)
def test_collisions_are_consistent(idx, rows):
    """Equal raw indices always collide to the same row (a pure function)."""
    arr = np.array(idx + idx, dtype=np.int64)
    out = hash_indices(arr, rows, "multiply_shift")
    n = len(idx)
    assert np.array_equal(out[:n], out[n:])
