"""Tests for the full DLRM reference model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dlrm import (
    DLRM,
    DLRMConfig,
    EmbeddingTableConfig,
    SyntheticDataGenerator,
    WorkloadConfig,
)


def make_model(F=3, d=8, dense=5, interaction="dot"):
    cfgs = [EmbeddingTableConfig(f"sparse_{i}", 40, d) for i in range(F)]
    cfg = DLRMConfig(
        num_dense_features=dense,
        embedding_dim=d,
        table_configs=cfgs,
        bottom_mlp_sizes=(16,),
        top_mlp_sizes=(16,),
        interaction=interaction,
    )
    return DLRM(cfg, rng=np.random.default_rng(0))


def make_batch(F=3, B=6, dense=5, seed=0):
    wl = WorkloadConfig(
        num_tables=F, rows_per_table=40, dim=8, batch_size=B,
        max_pooling=4, num_dense_features=dense, seed=seed,
    )
    gen = SyntheticDataGenerator(wl)
    return gen.dense_batch(), gen.sparse_batch()


class TestConfig:
    def test_dim_mismatch_rejected(self):
        cfgs = [EmbeddingTableConfig("a", 10, 8), EmbeddingTableConfig("b", 10, 16)]
        with pytest.raises(ValueError, match="dim != embedding_dim"):
            DLRMConfig(num_dense_features=4, embedding_dim=8, table_configs=cfgs)

    def test_empty_tables_rejected(self):
        with pytest.raises(ValueError):
            DLRMConfig(num_dense_features=4, embedding_dim=8, table_configs=[])

    def test_interaction_dim(self):
        cfgs = [EmbeddingTableConfig(f"t{i}", 10, 8) for i in range(3)]
        cfg = DLRMConfig(num_dense_features=4, embedding_dim=8, table_configs=cfgs)
        assert cfg.interaction_dim == 8 + 4 * 3 // 2
        assert cfg.num_sparse_features == 3


class TestForward:
    def test_predictions_shape_and_range(self):
        model = make_model()
        dense, sparse = make_batch()
        out = model.forward(dense, sparse)
        assert out.shape == (6, 1)
        assert (out > 0).all() and (out < 1).all()

    def test_batch_mismatch_rejected(self):
        model = make_model()
        dense, sparse = make_batch()
        with pytest.raises(ValueError, match="batch"):
            model.forward(dense[:3], sparse)

    def test_stagewise_equals_forward(self):
        model = make_model()
        dense, sparse = make_batch()
        de = model.dense_forward(dense)
        se = model.emb_forward(sparse)
        assert np.array_equal(
            model.predict_from_embeddings(de, se), model.forward(dense, sparse)
        )

    def test_emb_forward_shape(self):
        model = make_model(F=3, d=8)
        _, sparse = make_batch(F=3)
        assert model.emb_forward(sparse).shape == (6, 3, 8)

    def test_deterministic_given_seed(self):
        dense, sparse = make_batch()
        a = make_model().forward(dense, sparse)
        b = make_model().forward(dense, sparse)
        assert np.array_equal(a, b)

    def test_different_inputs_different_outputs(self):
        model = make_model()
        d1, s1 = make_batch(seed=1)
        d2, s2 = make_batch(seed=2)
        assert not np.array_equal(model.forward(d1, s1), model.forward(d2, s2))

    @pytest.mark.parametrize("interaction", ["dot", "cat", "sum"])
    def test_all_interaction_modes_run(self, interaction):
        model = make_model(interaction=interaction)
        dense, sparse = make_batch()
        out = model.forward(dense, sparse)
        assert out.shape == (6, 1)
        assert np.isfinite(out).all()


class TestGeneratorIntegration:
    def test_hundred_batch_loop(self):
        """The paper's 100-batch inference loop at toy scale."""
        model = make_model()
        wl = WorkloadConfig(
            num_tables=3, rows_per_table=40, dim=8, batch_size=6,
            max_pooling=4, num_dense_features=5,
        )
        gen = SyntheticDataGenerator(wl)
        count = 0
        for dense, sparse in gen.batches(100):
            out = model.forward(dense, sparse)
            assert np.isfinite(out).all()
            count += 1
        assert count == 100
