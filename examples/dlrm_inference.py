#!/usr/bin/env python
"""Full DLRM inference over 100 batches — the paper's measurement protocol.

Runs the complete recommendation pipeline (bottom MLP over dense features,
distributed EMB retrieval, dot interaction, top MLP + sigmoid) at reduced
scale, with the EMB layer going through each communication backend, and
reports the accumulated EMB-layer time — exactly what the paper measures:
"the accumulated time of embedding table forward pass and the subsequent
communication and data unpacking and rearranging over the 100 batches".

Run:  python examples/dlrm_inference.py [n_batches]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    DLRM,
    DLRMConfig,
    DistributedEmbedding,
    SyntheticDataGenerator,
    WorkloadConfig,
)
from repro.core import PhaseTiming, minibatch_bounds
from repro.simgpu.units import to_ms


def main(n_batches: int = 100) -> None:
    n_gpus = 4
    workload = WorkloadConfig(
        num_tables=32, rows_per_table=20_000, dim=32,
        batch_size=2048, max_pooling=16, num_dense_features=13, seed=7,
    )
    model = DLRM(
        DLRMConfig(
            num_dense_features=workload.num_dense_features,
            embedding_dim=workload.dim,
            table_configs=workload.table_configs(),
            bottom_mlp_sizes=(128, 64),
            top_mlp_sizes=(128, 64),
        ),
        rng=np.random.default_rng(1),
    )
    # Share the model's tables with the distributed retrieval module.
    from repro.core import ShardedEmbeddingTables, TableWiseSharding

    emb = {
        be: DistributedEmbedding(workload, n_gpus, backend=be)
        for be in ("baseline", "pgas")
    }
    plan = TableWiseSharding(workload.table_configs(), n_gpus)
    sharded = ShardedEmbeddingTables.from_collection(model.embeddings, plan)

    totals = {be: PhaseTiming() for be in emb}
    clicks = 0
    gen = SyntheticDataGenerator(workload)
    bounds = minibatch_bounds(workload.batch_size, n_gpus)

    for i, (dense, sparse) in enumerate(gen.batches(n_batches)):
        # Data-parallel dense path (concurrent with EMB on real systems).
        dense_emb = model.dense_forward(dense)

        # Distributed EMB layer, timed on the simulator per backend.
        for be, module in emb.items():
            totals[be].add(module.forward(sparse).timing)

        # Functional path for the actual predictions (PGAS layout).
        from repro.core import pgas_functional_forward

        outputs = pgas_functional_forward(sharded, sparse)
        sparse_emb = np.concatenate(outputs, axis=0)  # gather minibatches

        preds = model.predict_from_embeddings(dense_emb, sparse_emb)
        clicks += int((preds > 0.5).sum())

    print(f"DLRM inference: {n_batches} batches x {workload.batch_size} samples "
          f"on {n_gpus} simulated GPUs")
    print(f"predicted clicks: {clicks} / {n_batches * workload.batch_size}\n")

    tb, tp = totals["baseline"], totals["pgas"]
    print(f"accumulated EMB-layer time over {n_batches} batches:")
    print(f"  baseline   {to_ms(tb.total_ns):9.2f} ms   "
          f"(compute {to_ms(tb.compute_ns):.2f} / comm {to_ms(tb.comm_ns):.2f} / "
          f"sync+unpack {to_ms(tb.sync_unpack_ns):.2f})")
    print(f"  PGAS fused {to_ms(tp.total_ns):9.2f} ms")
    print(f"  speedup    {tb.total_ns / tp.total_ns:9.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100)
