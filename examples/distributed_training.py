#!/usr/bin/env python
"""Distributed DLRM training steps — the paper's §V backward pass in action.

Trains a small DLRM with real SGD where the embedding gradients flow back
through the *distributed* backward schemes:

* functional: the trainer's per-mini-batch gradients are applied through
  the PGAS remote-atomic path and verified to track a single-device
  reference run;
* timed: the same batches are replayed on the simulator through both the
  collective and the PGAS backward, reporting the accumulated times.

Run:  python examples/distributed_training.py [steps]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core import (
    BaselineBackward,
    PGASFusedBackward,
    PhaseTiming,
    ShardedEmbeddingTables,
    TableWiseSharding,
    build_device_workloads,
    minibatch_bounds,
    pgas_functional_backward,
)
from repro.dlrm import (
    DLRM,
    DLRMConfig,
    DLRMTrainer,
    SyntheticDataGenerator,
    WorkloadConfig,
)
from repro.simgpu import dgx_v100
from repro.simgpu.units import to_ms


def main(steps: int = 30) -> None:
    n_gpus = 4
    workload = WorkloadConfig(
        num_tables=16, rows_per_table=5_000, dim=16,
        batch_size=1024, max_pooling=8, num_dense_features=8, seed=11,
    )
    model = DLRM(
        DLRMConfig(
            num_dense_features=8, embedding_dim=16,
            table_configs=workload.table_configs(),
            bottom_mlp_sizes=(32,), top_mlp_sizes=(32,),
        ),
        rng=np.random.default_rng(0),
    )
    plan = TableWiseSharding(workload.table_configs(), n_gpus)
    sharded = ShardedEmbeddingTables.from_collection(model.embeddings, plan)
    trainer = DLRMTrainer(model, lr=0.2)
    gen = SyntheticDataGenerator(workload)
    label_rng = np.random.default_rng(1)
    bounds = minibatch_bounds(workload.batch_size, n_gpus)

    # A learnable synthetic objective: label = 1 iff mean dense feature > 0.5.
    def labels_for(dense):
        return (dense.mean(axis=1) > 0.5).astype(np.float32)

    bwd_base_total, bwd_pgas_total = PhaseTiming(), PhaseTiming()
    losses = []
    for step, (dense, sparse) in enumerate(gen.batches(steps)):
        labels = labels_for(dense)
        # Forward/backward through MLPs; embedding grads handed to us.
        result = trainer.train_step(dense, sparse, labels, apply_embedding_grads=False)
        losses.append(result.loss)

        # Distributed embedding update: each device's mini-batch gradient
        # scattered into the owning tables via remote atomics (PGAS path).
        grads_per_dev = [result.grad_sparse[lo:hi] for lo, hi in bounds]
        pgas_functional_backward(sharded, sparse, grads_per_dev, lr=trainer.lr)

        # Timed replay of the gradient exchange on the simulator.
        from repro.core import lengths_from_batch

        wls = build_device_workloads(plan, lengths_from_batch(sparse))
        bwd_base_total.add(BaselineBackward(dgx_v100(n_gpus)).run_batch(wls))
        bwd_pgas_total.add(PGASFusedBackward(dgx_v100(n_gpus)).run_batch(wls))

    print(f"trained {steps} steps x {workload.batch_size} samples on "
          f"{n_gpus} simulated GPUs")
    print(f"loss: {losses[0]:.4f} -> {losses[-1]:.4f} "
          f"({'improving' if losses[-1] < losses[0] else 'NOT improving'})")
    print(f"\nsimulated EMB backward time over {steps} steps:")
    print(f"  collective baseline {to_ms(bwd_base_total.total_ns):9.2f} ms")
    print(f"  PGAS atomic adds    {to_ms(bwd_pgas_total.total_ns):9.2f} ms")
    print(f"  speedup             {bwd_base_total.total_ns / bwd_pgas_total.total_ns:9.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
