#!/usr/bin/env python
"""Quickstart: distributed embedding retrieval with both backends.

Builds a small sharded embedding collection on a simulated 2-GPU NVLink
node, runs one batch through the NCCL-style baseline and the PGAS fused
backend, checks the outputs are bit-identical, and prints the simulated
phase timings that show why PGAS wins.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import DistributedEmbedding, SyntheticDataGenerator, WorkloadConfig
from repro.simgpu.units import to_ms


def main() -> None:
    # A workload small enough to hold real weights in numpy.
    config = WorkloadConfig(
        num_tables=32,        # embedding tables (sparse features)
        rows_per_table=10_000,
        dim=64,               # embedding dimension
        batch_size=8192,
        max_pooling=24,       # bag size ~ U[0, 24]
        seed=42,
    )
    n_gpus = 2

    print(f"workload: {config.num_tables} tables x {config.rows_per_table} rows "
          f"x d={config.dim}, batch {config.batch_size}, {n_gpus} GPUs\n")

    # materialize=True keeps real numpy weights so outputs can be compared.
    emb = DistributedEmbedding(
        config, n_gpus, backend="pgas", materialize=True,
        rng=np.random.default_rng(0),
    )
    batch = SyntheticDataGenerator(config).sparse_batch()

    pgas = emb.forward(batch, backend="pgas")
    baseline = emb.forward(batch, backend="baseline")

    # Functional equivalence: one-sided writes place every embedding at the
    # exact coordinates the unpack step would have produced.
    for g, (a, b) in enumerate(zip(pgas.outputs, baseline.outputs)):
        assert np.array_equal(a, b), f"device {g} outputs diverge"
    print("outputs: PGAS == baseline (bit-identical) "
          f"on {len(pgas.outputs)} devices, shape {pgas.outputs[0].shape}")

    # Simulated timing: where the baseline's time goes, and where it doesn't.
    tb, tp = baseline.timing, pgas.timing
    print("\nsimulated EMB forward pass (one batch):")
    print(f"  baseline total      {to_ms(tb.total_ns):7.3f} ms")
    print(f"    computation       {to_ms(tb.compute_ns):7.3f} ms")
    print(f"    communication     {to_ms(tb.comm_ns):7.3f} ms")
    print(f"    sync + unpack     {to_ms(tb.sync_unpack_ns):7.3f} ms")
    print(f"  PGAS fused total    {to_ms(tp.total_ns):7.3f} ms  "
          f"(comm hidden inside the kernel)")
    print(f"\n  PGAS speedup: {tb.total_ns / tp.total_ns:.2f}x")


if __name__ == "__main__":
    main()
