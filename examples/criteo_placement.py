#!/usr/bin/env python
"""Heterogeneous tables: placement planning + retrieval on a Criteo-like set.

The paper's experiments use 64 identical tables; production table sets
span six orders of magnitude in cardinality (§II-A).  This example

1. generates a Criteo-shaped workload (26 features, log-uniform sizes,
   a quarter of them multi-valued),
2. plans a capacity-feasible, balanced table-wise placement on V100s
   (LPT packing with a 10% HBM reserve),
3. compares naive contiguous sharding vs the planned placement, and
4. runs both communication backends on the planned placement.

Run:  python examples/criteo_placement.py
"""

from __future__ import annotations

from repro.core import (
    DistributedEmbedding,
    TableWiseSharding,
    plan_table_wise,
)
from repro.core.planner import PlacementError, PlacementReport
from repro.dlrm import HeterogeneousDataGenerator, criteo_like
from repro.simgpu import dgx_v100
from repro.simgpu.units import GiB, to_ms


def main() -> None:
    workload = criteo_like(num_tables=96, dim=64, batch_size=16_384, seed=7)
    configs = workload.table_configs()
    total_gib = workload.total_table_bytes / GiB
    sizes = sorted(t.num_rows for t in workload.tables)
    print(f"Criteo-like workload: {workload.num_tables} tables, "
          f"{total_gib:.1f} GiB of embeddings")
    print(f"table sizes: min {sizes[0]:,} rows, median {sizes[len(sizes)//2]:,}, "
          f"max {sizes[-1]:,}\n")

    # Planned placement (minimal feasible device count, balanced).
    report: PlacementReport = plan_table_wise(configs, reserve_fraction=0.1)
    print(report.summary())

    # Naive contiguous placement on the same device count, for contrast.
    naive = TableWiseSharding(configs, report.n_devices, strategy="contiguous")
    naive_loads = [naive.memory_bytes(d) / GiB for d in range(report.n_devices)]
    mean = sum(naive_loads) / len(naive_loads)
    print(f"\nnaive contiguous placement imbalance (max/mean): "
          f"{max(naive_loads) / mean:.3f}  vs planned {report.imbalance:.3f}")

    # Retrieval on the planned placement, both backends.
    G = max(report.n_devices, 2)  # need >= 2 GPUs for any communication
    gen = HeterogeneousDataGenerator(workload)
    lengths = gen.lengths_batch()
    print(f"\nEMB forward on {G} GPUs (one batch of {workload.batch_size}):")
    for backend in ("baseline", "pgas"):
        emb = DistributedEmbedding(
            configs, G, backend=backend, cluster=dgx_v100(G),
        )
        t = emb.forward_timed(lengths)
        print(f"  {backend:9s} {to_ms(t.total_ns):8.3f} ms")


if __name__ == "__main__":
    main()
