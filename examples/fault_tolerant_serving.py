#!/usr/bin/env python
"""Fault injection + resilient serving: SLOs under a degrading fabric.

Serves the same Poisson request stream through ``pgas+resilient`` on a
healthy cluster and on one with an installed :class:`~repro.faults.FaultPlan`
(degraded links, latency spikes, a link flap, a straggler device).  The
resilient wrapper retries attempts that blow the EMB deadline, reroutes
around downed links through a healthy peer, and zero-fills what it still
cannot reach — reporting the degraded share instead of crashing — while
the server sheds load past its queue bound and hedges slow batches.

Prints both SLO reports plus the severity sweep table, and writes a
Chrome trace of the faulty run in which every fault window is visible.

Run:  python examples/fault_tolerant_serving.py
"""

from __future__ import annotations

from repro import FaultInjector, FaultPlan, ResilienceSpec, WorkloadConfig
from repro.bench.faultsweep import run_fault_sweep
from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.core.serving import InferenceServer, ServingSpec
from repro.simgpu.trace import write_chrome_trace
from repro.simgpu.units import ms


def main() -> None:
    config = WorkloadConfig(
        num_tables=8,
        rows_per_table=4_096,
        dim=16,
        batch_size=512,
        max_pooling=4,
        seed=11,
    )
    n_gpus = 4
    n_requests = 48
    severity = 0.8

    spec = ServingSpec(
        arrival_qps=50_000.0,
        max_batch=8,
        batch_window_ns=0.2 * ms,
        seed=1,
        deadline_ns=2 * ms,       # request SLO
        queue_limit=64,           # shed beyond this queue depth
        hedge_after_ns=1 * ms,    # re-execute batches slower than this
    )
    resilience = ResilienceSpec(deadline_ns=0.25 * ms, seed=0)

    print(f"workload: {config.num_tables} tables x {config.rows_per_table} rows "
          f"x d={config.dim}, {n_gpus} GPUs, {n_requests} requests @ "
          f"{spec.arrival_qps:,.0f} qps\n")

    results = {}
    for label, sev in (("healthy", 0.0), ("faulty", severity)):
        pipeline = DLRMInferencePipeline(
            PipelineConfig(workload=config), n_gpus,
            backend="pgas+resilient", resilience=resilience,
        )
        plan = FaultPlan.generate(n_gpus, 2 * ms, severity=sev, seed=7)
        FaultInjector(pipeline.cluster, plan).install()
        result = InferenceServer(pipeline, spec).simulate(n_requests)
        results[label] = result
        print(f"-- {label} (severity {sev:g}, {len(plan)} fault windows) --")
        print(result.slo_report())
        print()
        if label == "faulty":
            write_chrome_trace(pipeline.cluster.profiler, "faulty_serving.json")

    h, f = results["healthy"], results["faulty"]
    print(f"p99 {h.p99_ms:.2f} -> {f.p99_ms:.2f} ms, "
          f"goodput {h.goodput_qps:,.0f} -> {f.goodput_qps:,.0f} qps under fault")
    print("trace with fault windows written to faulty_serving.json\n")

    print("-- severity sweep (pgas vs baseline under the same plans) --")
    sweep = run_fault_sweep(
        config,
        severities=[0.0, 0.3, 0.6, 0.9],
        bases=("pgas", "baseline"),
        n_devices=n_gpus,
        n_requests=n_requests,
        arrival_qps=spec.arrival_qps,
        deadline_ns=spec.deadline_ns,
        emb_deadline_ns=resilience.deadline_ns,
    )
    print(sweep.render())


if __name__ == "__main__":
    main()
