#!/usr/bin/env python
"""Hot-row caching: skewed traffic, fewer wire bytes, same outputs.

Runs a zipf-skewed workload through the PGAS backend with and without the
per-device hot-row cache (`backend="pgas+cache"`): the cache replicates
frequently fetched remote rows locally, so fully cache-covered embedding
bags stop crossing the wire while every output stays bit-identical to
the uncached backends.  Prints the cache hit rate, the comm-volume cut,
and the simulated EMB speedup over a short batch stream.

Run:  python examples/cached_retrieval.py
"""

from __future__ import annotations

import numpy as np

from repro import (DistributedEmbedding, FeatureSpec, SyntheticDataGenerator,
                   WorkloadConfig)
from repro.cache import CacheConfig
from repro.simgpu.units import to_ms


def main() -> None:
    # Zipf-skewed lookups: the regime where hot-row caching pays.
    config = WorkloadConfig(
        num_tables=16,
        rows_per_table=8_192,
        dim=32,
        batch_size=2_048,
        max_pooling=4,
        index_distribution="zipf",
        zipf_alpha=1.1,
        seed=42,
    )
    n_gpus = 2
    n_batches = 4
    cache = CacheConfig(capacity_fraction=0.05, policy="lru")

    print(f"workload: {config.num_tables} tables x {config.rows_per_table} rows "
          f"x d={config.dim}, batch {config.batch_size}, zipf({config.zipf_alpha}), "
          f"{n_gpus} GPUs")
    print(f"cache: {cache.policy}, capacity {cache.capacity_fraction:.0%} of remote rows\n")

    rng_seed = 0
    plain = DistributedEmbedding(config, n_gpus, backend="pgas", materialize=True,
                                 rng=np.random.default_rng(rng_seed))
    cached = DistributedEmbedding(config, n_gpus, backend="pgas+cache",
                                  features=FeatureSpec(cache=cache),
                                  materialize=True, rng=np.random.default_rng(rng_seed))

    gen = SyntheticDataGenerator(config)
    batches = [gen.sparse_batch() for _ in range(n_batches)]

    t_plain = t_cached = 0.0
    for batch in batches:
        r_plain = plain.forward(batch)
        r_cached = cached.forward(batch)
        t_plain += r_plain.timing.total_ns
        t_cached += r_cached.timing.total_ns
        # Functional guarantee: the cache serves exact row replicas, so
        # cached and uncached outputs are bit-identical.
        for g, (a, b) in enumerate(zip(r_plain.outputs, r_cached.outputs)):
            assert np.array_equal(a, b), f"device {g} outputs diverge"

    engine = cached.backend_adapter()  # the CachedRetrieval instance
    stats = engine.stats()
    print(f"outputs: pgas == pgas+cache (bit-identical) over {n_batches} batches")
    print(f"cache:   {stats.hits} hits / {stats.lookups} remote lookups "
          f"({stats.hit_rate:.1%} hit rate), {stats.evictions} evictions")
    print(f"\nsimulated EMB forward ({n_batches} batches):")
    print(f"  pgas        {to_ms(t_plain):7.3f} ms")
    print(f"  pgas+cache  {to_ms(t_cached):7.3f} ms")
    print(f"  speedup     {t_plain / t_cached:.3f}x")


if __name__ == "__main__":
    main()
