#!/usr/bin/env python
"""Wire compression: quantized embedding transfer, measured error.

Runs one workload through the PGAS backend three ways: bare, wrapped with
the fp32 passthrough codec (`backend="pgas+compress"`, which must be
bit-identical and event-for-event free), and with row-scaled int8 (each
64-dim pooled vector shrinks from 256 B to 68 B on the wire, paying an
encode pass fused into the EMB kernel and a decode pass on the
destination GPU).  Prints wire bytes, compression ratio, the measured
round-trip error against the codec's per-row bound, and the simulated
timing shift for both transports.

Run:  python examples/compressed_retrieval.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CompressionSpec,
    DistributedEmbedding,
    FeatureSpec,
    SyntheticDataGenerator,
    WorkloadConfig,
)
from repro.simgpu.units import to_ms


def main() -> None:
    config = WorkloadConfig(
        num_tables=16,
        rows_per_table=8_192,
        dim=64,
        batch_size=2_048,
        max_pooling=8,
        seed=42,
    )
    n_gpus = 2
    print(f"workload: {config.num_tables} tables x {config.rows_per_table} rows "
          f"x d={config.dim}, batch {config.batch_size}, {n_gpus} GPUs\n")

    gen = SyntheticDataGenerator(config)
    batch = gen.sparse_batch()

    def build(backend, codec=None):
        return DistributedEmbedding(
            config, n_gpus, backend=backend,
            features=FeatureSpec(
                compression=CompressionSpec(codec=codec) if codec else None,
            ),
            materialize=True, rng=np.random.default_rng(0),
        )

    # fp32 passthrough is a correctness gate, not a feature: wrapping the
    # backend with the identity codec must change nothing at all.
    plain = build("pgas")
    passthrough = build("pgas+compress", codec="fp32")
    out_plain = plain.forward(batch).outputs
    out_pass = passthrough.forward(batch).outputs
    for g, (a, b) in enumerate(zip(out_plain, out_pass)):
        assert np.array_equal(a, b), f"device {g}: fp32 passthrough diverged"
    print("fp32 passthrough: pgas == pgas+compress (bit-identical)")

    # int8: real quantization on every remote vector, measured error.
    int8 = build("pgas+compress", codec="int8")
    out_int8 = int8.forward(batch).outputs
    adapter = int8.backend_adapter()
    stats = adapter.errors
    bound = adapter.codec.error_bound(
        np.concatenate([o.reshape(-1, config.dim) for o in out_plain])
    ).max()
    worst = max(
        float(np.abs(a.astype(np.float64) - b.astype(np.float64)).max())
        for a, b in zip(out_plain, out_int8)
    )
    print(f"int8 outputs:     max |error| {worst:.3e} "
          f"(codec bound {bound:.3e}), rmse {stats.rmse:.3e}")

    # Wire + timing: same batch through the timed paths of both transports.
    lengths = gen.lengths_batch()
    rows = []
    for base in ("pgas", "baseline"):
        ref = build(base)
        comp = build(f"{base}+compress", codec="int8")
        t_ref = ref.forward_timed(lengths)
        t_comp = comp.forward_timed(lengths)
        raw, wire = comp.backend_adapter().wire_bytes_for(
            comp.build_workloads(lengths)
        )
        rows.append((base, raw, wire, t_ref, t_comp))

    print(f"\nint8 wire ({rows[0][1] / rows[0][2]:.2f}x compression, "
          f"d={config.dim}: 256 B -> 68 B per vector):")
    for base, raw, wire, t_ref, t_comp in rows:
        print(f"  {base:8s}  {raw / 1e6:7.2f} MB -> {wire / 1e6:6.2f} MB on the wire"
              f"  |  total {to_ms(t_ref.total_ns):7.3f} -> "
              f"{to_ms(t_comp.total_ns):7.3f} ms"
              f"  (comm {to_ms(t_ref.comm_ns):6.3f} -> {to_ms(t_comp.comm_ns):6.3f} ms)")
    print("\nthe baseline's bulk all-to-all shrinks with the payload; PGAS "
          "already hides\nits comm, so int8 mostly trades overlap headroom "
          "for a decode tail there.")


if __name__ == "__main__":
    main()
