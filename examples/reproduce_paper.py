#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Renders T1/T2 (speedup tables), Figs. 5/8 (scaling factors), Figs. 6/9
(runtime breakdowns), and Figs. 7/10 (communication volume over time) from
the calibrated simulator, at the paper's workload configuration.

Run:  python examples/reproduce_paper.py [--batches N] [--scale S]

--batches 100 --scale 1.0 is the paper's exact protocol (~1 min);
the defaults (10 batches) give the same ratios in a few seconds.
"""

from __future__ import annotations

import argparse

from repro.bench import EXPERIMENT_IDS, ExperimentRunner

PAPER_NOTES = {
    "T1": "paper: 2.10x / 1.95x / 1.87x, geomean 1.97x",
    "F5": "paper: baseline drops to ~0.46 at 2 GPUs then flattens; PGAS near 1.0",
    "F6": "paper: compute flat, comm shrinks, sync+unpack grows; PGAS ~ compute",
    "F7": "paper: PGAS volume spread over the kernel; baseline flat then ramp",
    "T2": "paper: 2.95x / 2.55x / 2.44x, geomean 2.63x",
    "F8": "paper: baseline < 1.0 everywhere; PGAS ~1.6x at 2 GPUs, declining",
    "F9": "paper: compute drops then flattens (latency-limited); PGAS ~ compute",
    "F10": "paper: same shapes as F7, at 4 GPUs / strong config",
}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--batches", type=int, default=10,
                    help="batches per measurement (paper: 100)")
    ap.add_argument("--scale", type=float, default=1.0,
                    help="batch-size scale factor (1.0 = paper's 16384)")
    ap.add_argument("--only", choices=EXPERIMENT_IDS, default=None,
                    help="render a single artifact")
    args = ap.parse_args()

    runner = ExperimentRunner(n_batches=args.batches, scale=args.scale)
    ids = [args.only] if args.only else list(EXPERIMENT_IDS)
    for eid in ids:
        print("=" * 72)
        print(f"{eid}  ({PAPER_NOTES[eid]})")
        print("=" * 72)
        print(runner.render(eid))
        print()


if __name__ == "__main__":
    main()
