#!/usr/bin/env python
"""Continuous batching: goodput vs. in-flight batch depth K.

A sequential server (K=1) leaves the interconnect idle between batches:
while one batch's dense compute finishes, no embedding traffic flows.
The continuous-batching scheduler keeps up to K batches in flight on
separate stream sets, so batch i+1's embedding retrieval overlaps batch
i's tail.  This example sweeps K at a saturating arrival rate and prints
goodput, the queue/form/execute latency split, and the interconnect-idle
share the extra depth reclaims — everything configured through one
:class:`~repro.core.RunSpec`.

Run:  python examples/continuous_batching.py
"""

from __future__ import annotations

from repro.core import InferenceServer, RunSpec, SchedulerSpec, ServingSpec
from repro.core.runspec import preset_runspec
from repro.simgpu.units import ms


def main() -> None:
    base = preset_runspec("tiny", n_devices=2)
    n_requests = 64
    qps = 300_000.0
    print(f"continuous batching on 2 simulated GPUs (tiny preset: "
          f"{base.workload.num_tables} tables, d={base.workload.dim}); "
          f"{n_requests} requests at {qps:,.0f} qps, max batch 8\n")
    header = (f"{'backend':>9} {'K':>3} {'p99 (ms)':>9} {'form (ms)':>10} "
              f"{'queue (ms)':>11} {'exec (ms)':>10} {'goodput':>9} "
              f"{'idle (ms)':>10}")
    print(header)
    for backend in ("baseline", "pgas"):
        for k in (1, 2, 4):
            spec = RunSpec(
                workload=base.workload,
                n_devices=2,
                backend=backend,
                name=f"k{k}",
                serving=ServingSpec(
                    arrival_qps=qps, max_batch=8, batch_window_ns=0.1 * ms,
                    seed=3, scheduler=SchedulerSpec(max_in_flight=k),
                ),
            )
            res = InferenceServer.from_spec(spec).simulate(n_requests)
            print(f"{backend:>9} {k:>3} {res.p99_ms:>9.3f} "
                  f"{res.mean_form_ns / ms:>10.3f} "
                  f"{res.mean_queue_ns / ms:>11.3f} "
                  f"{res.mean_execute_ns / ms:>10.3f} "
                  f"{res.goodput_qps:>9,.0f} "
                  f"{res.interconnect_idle_ns / ms:>10.3f}")
    print("\nAt K=1 requests spend most of their life queued behind the one"
          "\nbatch slot.  Raising K converts that queueing delay into overlap:"
          "\nthe interconnect sits idle for less wall-clock time and goodput"
          "\nclimbs, until the replica's compute is the bottleneck.  The"
          "\nfunctional outputs are bit-identical at every K — the scheduler"
          "\nchanges when work runs, never what it computes.")


if __name__ == "__main__":
    main()
