#!/usr/bin/env python
"""Online inference serving: latency under load, baseline vs PGAS.

Recommendation inference is served online — requests stream in, a batcher
groups them, and tail latency is the SLO (the paper cites DeepRecSys for
this setting).  This example drives one simulated model replica with a
Poisson request stream at increasing load and prints the p50/p99 latency
and sustained throughput for both EMB backends: hiding the embedding
communication buys headroom before the queue blows up.

Run:  python examples/inference_serving.py
"""

from __future__ import annotations

from repro.core import InferenceServer, ServingSpec
from repro.core.pipeline import DLRMInferencePipeline, PipelineConfig
from repro.dlrm import WorkloadConfig
from repro.simgpu.units import ms


def main() -> None:
    workload = WorkloadConfig(
        num_tables=32, rows_per_table=50_000, dim=64,
        batch_size=512, max_pooling=16, seed=2,
    )
    n_requests = 3000
    print(f"serving DLRM inference on 2 simulated GPUs "
          f"({workload.num_tables} tables, d={workload.dim}); "
          f"{n_requests} requests per point, max batch 512, 2 ms window\n")
    header = (f"{'offered qps':>12} {'backend':>9} {'p50 (ms)':>9} "
              f"{'p99 (ms)':>9} {'mean batch':>11} {'served qps':>11}")
    print(header)
    for qps in (50_000, 200_000, 400_000):
        for backend in ("baseline", "pgas"):
            pipe = DLRMInferencePipeline(
                PipelineConfig(workload=workload), 2, backend=backend
            )
            server = InferenceServer(
                pipe,
                ServingSpec(arrival_qps=qps, max_batch=512,
                            batch_window_ns=2 * ms, seed=3),
            )
            res = server.simulate(n_requests)
            print(f"{qps:>12,} {backend:>9} {res.p50_ms:>9.2f} "
                  f"{res.p99_ms:>9.2f} {res.mean_batch_size:>11.0f} "
                  f"{res.throughput_qps:>11,.0f}")
    print("\nAt low load both backends idle between batches; as offered load"
          "\napproaches the replica's capacity, the baseline's exposed EMB"
          "\ncommunication turns into queueing delay first — the PGAS replica"
          "\nsustains more traffic at lower tail latency.")


if __name__ == "__main__":
    main()
