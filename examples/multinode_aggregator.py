#!/usr/bin/env python
"""Multi-node scenario: small messages vs the §V asynchronous aggregator.

The paper's single-node results ride on NVLink, where 256-byte one-sided
writes are nearly free to issue.  Its future-work section predicts that on
inter-node NICs the same messages lose to per-message injection costs and
proposes buffering them through an aggregator ("replacing the operation
sum.store(outputs[output_idx], pe) with aggregator.store(...)").

This example runs the weak-scaling workload on three fabrics — NVLink,
PCIe, and a 2-node NIC system — with plain small messages and with the
aggregator, and prints the crossover.

Run:  python examples/multinode_aggregator.py
"""

from __future__ import annotations

from repro.comm.pgas import PGASSpec
from repro.core import AggregatorSpec, PGASFusedRetrieval, TableWiseSharding
from repro.core.workload import build_device_workloads
from repro.dlrm import SyntheticDataGenerator, WorkloadConfig
from repro.simgpu import Cluster, multinode, nvlink_dgx1, pcie_topology
from repro.simgpu.units import KiB, to_ms


def fabric_clusters():
    yield "NVLink (intra-node)", lambda: Cluster(2, topology=nvlink_dgx1(2))
    yield "PCIe   (intra-node)", lambda: Cluster(2, topology=pcie_topology(2))
    yield "NIC    (2 nodes)   ", lambda: multinode(2, devices_per_node=1)


def main() -> None:
    config = WorkloadConfig(
        num_tables=128, rows_per_table=100_000, dim=64,
        batch_size=16_384, max_pooling=64, seed=3,
    )
    plan = TableWiseSharding(config.table_configs(), 2)
    lengths = SyntheticDataGenerator(config).lengths_batch()
    workloads = build_device_workloads(plan, lengths)
    remote_mb = sum(w.remote_output_bytes for w in workloads) / 1e6
    print(f"weak-scaling workload on 2 GPUs; {remote_mb:.0f} MB of remote "
          f"embeddings per batch\n")

    print(f"{'fabric':22s} {'small msgs':>12s} {'aggregated':>12s} {'benefit':>9s}")
    for name, make_cluster in fabric_clusters():
        small = PGASFusedRetrieval(
            make_cluster(), pgas_spec=PGASSpec(message_bytes=256, header_bytes=32)
        ).run_batch(workloads)
        agg = PGASFusedRetrieval(
            make_cluster(),
            pgas_spec=PGASSpec(message_bytes=256, header_bytes=32),
            aggregator_spec=AggregatorSpec(flush_bytes=512 * KiB),
        ).run_batch(workloads)
        print(f"{name:22s} {to_ms(small.total_ns):9.2f} ms {to_ms(agg.total_ns):9.2f} ms "
              f"{small.total_ns / agg.total_ns:8.2f}x")

    print("\nOn NVLink the aggregator is pure overhead-neutral plumbing; on the")
    print("NIC, batching 256-byte writes into 512 KiB flushes recovers the")
    print("message-rate budget — the crossover the paper's §V predicts.")


if __name__ == "__main__":
    main()
