"""Replacement policies for the hot-row embedding cache.

A policy tracks *which* ``(table, hashed_row)`` keys are resident and in
what order they should leave; the slot/value storage and byte accounting
live in :class:`~repro.cache.hotrow.HotRowCache`.  Three policies cover
the design space the caching literature (Stochastic Communication
Avoidance; EmbedCache-style hot-row studies) identifies for skewed
embedding traffic:

* :class:`LRUPolicy` — recency: adapts to drift, no profiling needed.
* :class:`LFUPolicy` — frequency with periodic *aging* (all counts decay
  by ``aging_factor`` every ``aging_interval`` accesses) so stale-hot rows
  can fall out.
* :class:`StaticTopKPolicy` — a frozen set seeded from a profiled
  frequency pass (:meth:`~repro.cache.retrieval.CachedRetrieval.warm_static`);
  never admits at runtime, so steady-state behaviour is exactly the
  profiled working set.

All policies are deterministic: ties break in insertion (FIFO) order.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CacheKey",
    "CachePolicy",
    "LRUPolicy",
    "LFUPolicy",
    "StaticTopKPolicy",
    "make_policy",
]

#: A cached row's identity: ``(table_name, hashed_row_id)``.
CacheKey = Tuple[str, int]


class CachePolicy:
    """Residency bookkeeping over ``(table, hashed_row)`` keys.

    Contract (all deterministic):

    * :meth:`access` — one lookup touches ``key``; returns hit/miss.
    * :meth:`admit` — offer a missed key for runtime installation; returns
      ``(admitted, evicted_key_or_None)``.
    * :meth:`seed` — warm-phase insertion (profiled pass); same shape.
    * :meth:`remove` — explicit invalidation; returns whether it was resident.
    """

    name = "base"

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = int(capacity)

    def access(self, key: CacheKey) -> bool:
        """Touch ``key`` for one lookup; True when it is resident (a hit)."""
        raise NotImplementedError

    def admit(self, key: CacheKey) -> Tuple[bool, Optional[CacheKey]]:
        """Offer a missed key; returns ``(admitted, evicted)``."""
        raise NotImplementedError

    def seed(self, key: CacheKey) -> Tuple[bool, Optional[CacheKey]]:
        """Warm-phase insert (defaults to the runtime admission path)."""
        return self.admit(key)

    def remove(self, key: CacheKey) -> bool:
        """Drop ``key`` if resident; returns whether it was."""
        raise NotImplementedError

    def __contains__(self, key: CacheKey) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def resident(self) -> List[CacheKey]:
        """Resident keys in eviction order (next victim first)."""
        raise NotImplementedError


class LRUPolicy(CachePolicy):
    """Least-recently-used: every hit refreshes recency; evict the coldest."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._order: "OrderedDict[CacheKey, None]" = OrderedDict()

    def access(self, key: CacheKey) -> bool:
        """Hit moves the key to most-recent; miss returns False."""
        if key in self._order:
            self._order.move_to_end(key)
            return True
        return False

    def admit(self, key: CacheKey) -> Tuple[bool, Optional[CacheKey]]:
        """Always admits (when capacity > 0), evicting the LRU key if full."""
        if self.capacity == 0:
            return False, None
        evicted: Optional[CacheKey] = None
        if len(self._order) >= self.capacity:
            evicted, _ = self._order.popitem(last=False)
        self._order[key] = None
        return True, evicted

    def remove(self, key: CacheKey) -> bool:
        """Drop ``key`` if resident."""
        return self._order.pop(key, False) is None

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._order

    def __len__(self) -> int:
        return len(self._order)

    def resident(self) -> List[CacheKey]:
        """Keys from least- to most-recently used."""
        return list(self._order)


class LFUPolicy(CachePolicy):
    """Least-frequently-used with periodic aging.

    O(1) per operation via frequency buckets (each an insertion-ordered
    dict, so ties evict FIFO).  Every ``aging_interval`` accesses, all
    frequencies decay to ``max(1, int(freq * aging_factor))`` — without
    aging, rows hot long ago would be unevictable forever.
    """

    name = "lfu"

    def __init__(self, capacity: int, aging_interval: int = 1024, aging_factor: float = 0.5):
        super().__init__(capacity)
        if aging_interval <= 0:
            raise ValueError("aging_interval must be positive")
        if not (0.0 <= aging_factor < 1.0):
            raise ValueError("aging_factor must be in [0, 1)")
        self.aging_interval = int(aging_interval)
        self.aging_factor = float(aging_factor)
        self._freq: Dict[CacheKey, int] = {}
        self._buckets: Dict[int, "OrderedDict[CacheKey, None]"] = {}
        self._min_freq = 0
        self._accesses = 0

    # -- internals --------------------------------------------------------------

    def _bucket(self, f: int) -> "OrderedDict[CacheKey, None]":
        b = self._buckets.get(f)
        if b is None:
            b = OrderedDict()
            self._buckets[f] = b
        return b

    def _unlink(self, key: CacheKey, f: int) -> None:
        bucket = self._buckets[f]
        del bucket[key]
        if not bucket:
            del self._buckets[f]
            if self._min_freq == f:
                # During access() the key is transiently in no bucket, so
                # _buckets may be empty here; the caller re-fixes _min_freq.
                self._min_freq = min(self._buckets) if self._buckets else 0

    def _tick(self) -> None:
        self._accesses += 1
        if self._accesses % self.aging_interval == 0 and self._freq:
            # Decay every count; rebuild buckets preserving FIFO tie order.
            order = [k for f in sorted(self._buckets) for k in self._buckets[f]]
            self._freq = {k: max(1, int(self._freq[k] * self.aging_factor)) for k in order}
            self._buckets = {}
            for k in order:
                self._bucket(self._freq[k])[k] = None
            self._min_freq = min(self._buckets)

    # -- contract ---------------------------------------------------------------

    def access(self, key: CacheKey) -> bool:
        """Hit bumps the key's frequency; every call advances the aging clock."""
        self._tick()
        f = self._freq.get(key)
        if f is None:
            return False
        self._unlink(key, f)
        self._freq[key] = f + 1
        self._bucket(f + 1)[key] = None
        if not self._buckets.get(self._min_freq):
            self._min_freq = min(self._buckets)
        return True

    def admit(self, key: CacheKey) -> Tuple[bool, Optional[CacheKey]]:
        """Admit at frequency 1, evicting the min-frequency FIFO victim."""
        if self.capacity == 0:
            return False, None
        evicted: Optional[CacheKey] = None
        if len(self._freq) >= self.capacity:
            victims = self._buckets[self._min_freq]
            evicted, _ = victims.popitem(last=False)
            if not victims:
                del self._buckets[self._min_freq]
            del self._freq[evicted]
        self._freq[key] = 1
        self._bucket(1)[key] = None
        self._min_freq = 1
        return True, evicted

    def remove(self, key: CacheKey) -> bool:
        """Drop ``key`` if resident."""
        f = self._freq.pop(key, None)
        if f is None:
            return False
        self._unlink(key, f)
        if not self._freq:
            self._min_freq = 0
        return True

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._freq

    def __len__(self) -> int:
        return len(self._freq)

    def resident(self) -> List[CacheKey]:
        """Keys ordered lowest frequency first, FIFO within a frequency."""
        return [k for f in sorted(self._buckets) for k in self._buckets[f]]

    def frequency(self, key: CacheKey) -> int:
        """Current (aged) frequency count of a resident key (0 if absent)."""
        return self._freq.get(key, 0)


class StaticTopKPolicy(CachePolicy):
    """Frozen top-K set from a profiled pass; never admits at runtime.

    :meth:`seed` fills the set (in profiled-rank order) until capacity;
    :meth:`admit` always declines, so after warm-up the resident set — and
    therefore the hit pattern — is fully determined by the profile.
    """

    name = "static-topk"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._keys: "OrderedDict[CacheKey, None]" = OrderedDict()

    def access(self, key: CacheKey) -> bool:
        """Pure membership test; residency never changes on access."""
        return key in self._keys

    def admit(self, key: CacheKey) -> Tuple[bool, Optional[CacheKey]]:
        """Runtime misses are never installed."""
        return False, None

    def seed(self, key: CacheKey) -> Tuple[bool, Optional[CacheKey]]:
        """Warm-phase insert while below capacity; never evicts."""
        if len(self._keys) >= self.capacity or key in self._keys:
            return False, None
        self._keys[key] = None
        return True, None

    def remove(self, key: CacheKey) -> bool:
        """Drop ``key`` if resident (invalidation still applies)."""
        return self._keys.pop(key, False) is None

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def resident(self) -> List[CacheKey]:
        """Seeded keys in rank order."""
        return list(self._keys)


def make_policy(
    name: str,
    capacity: int,
    *,
    aging_interval: int = 1024,
    aging_factor: float = 0.5,
) -> CachePolicy:
    """Instantiate a policy by registry name (``lru``/``lfu``/``static-topk``)."""
    if name == "lru":
        return LRUPolicy(capacity)
    if name == "lfu":
        return LFUPolicy(capacity, aging_interval=aging_interval, aging_factor=aging_factor)
    if name == "static-topk":
        return StaticTopKPolicy(capacity)
    raise ValueError(f"unknown cache policy {name!r} (use lru, lfu, or static-topk)")
