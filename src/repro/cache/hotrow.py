"""Per-device hot-row cache: slot storage, capacity accounting, stats.

A :class:`HotRowCache` replicates frequently accessed *remote* embedding
rows on one simulated device.  Its storage is allocated from the device's
:class:`~repro.simgpu.memory.MemoryPool`, so cache capacity competes with
the resident embedding shards for the same HBM budget — an over-sized
cache raises :class:`~repro.simgpu.memory.OutOfDeviceMemory` exactly like
an over-sized table would.

The cache keys on ``(table_name, hashed_row_id)`` — post-hash row ids,
the coordinates gradients are applied at, so invalidation composes with
the backward pass.  When materialised it stores exact bitwise replicas of
the owner's rows, which is what lets the cached functional forward stay
bit-identical to the uncached backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dlrm.embedding import EmbeddingTableConfig
from ..simgpu.device import Device
from .policy import CacheKey, CachePolicy, make_policy

__all__ = ["CacheConfig", "CacheStats", "CacheAccess", "HotRowCache"]


@dataclass(frozen=True)
class CacheConfig:
    """Knobs of one per-device hot-row cache.

    Capacity is either absolute (``capacity_rows``) or a fraction of the
    rows the device does *not* own (``capacity_fraction``, the default 5 %
    of remote rows).  ``policy`` selects the replacement policy; the aging
    knobs only apply to ``"lfu"``.
    """

    capacity_rows: Optional[int] = None
    capacity_fraction: float = 0.05
    policy: str = "lru"
    aging_interval: int = 1024
    aging_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.capacity_rows is not None and self.capacity_rows < 0:
            raise ValueError("capacity_rows must be non-negative")
        if not (0.0 <= self.capacity_fraction <= 1.0):
            raise ValueError("capacity_fraction must be in [0, 1]")
        if self.policy not in ("lru", "lfu", "static-topk"):
            raise ValueError(
                f"unknown cache policy {self.policy!r} (use lru, lfu, or static-topk)"
            )
        if self.aging_interval <= 0:
            raise ValueError("aging_interval must be positive")
        if not (0.0 <= self.aging_factor < 1.0):
            raise ValueError("aging_factor must be in [0, 1)")

    def resolve_capacity(self, remote_rows: int) -> int:
        """Concrete row capacity for a device seeing ``remote_rows`` remote rows."""
        if self.capacity_rows is not None:
            return self.capacity_rows
        return int(remote_rows * self.capacity_fraction)

    def build_policy(self, capacity_rows: int) -> CachePolicy:
        """Instantiate this config's replacement policy."""
        return make_policy(
            self.policy,
            capacity_rows,
            aging_interval=self.aging_interval,
            aging_factor=self.aging_factor,
        )


@dataclass
class CacheStats:
    """Cumulative cache counters (one device, or aggregated)."""

    hits: int = 0
    misses: int = 0
    installs: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total lookups observed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def copy(self) -> "CacheStats":
        """Snapshot for later delta computation."""
        return replace(self)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counter increments since an earlier snapshot."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            installs=self.installs - since.installs,
            evictions=self.evictions - since.evictions,
            invalidations=self.invalidations - since.invalidations,
        )

    def add(self, other: "CacheStats") -> None:
        """Accumulate another stats object (cross-device aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.installs += other.installs
        self.evictions += other.evictions
        self.invalidations += other.invalidations


@dataclass
class CacheAccess:
    """Result of one vectorised row-lookup walk.

    ``hit_mask`` flags, per lookup (in original order), whether the row was
    cached *at access time* — later installs in the same walk never
    retroactively flip earlier lookups.  ``values`` carries the gathered
    ``(n, dim)`` row vectors (hits from the cache store, misses from the
    owner's weights) when a source array was supplied, else ``None``.
    """

    hit_mask: np.ndarray
    values: Optional[np.ndarray] = None

    @property
    def hits(self) -> int:
        """Lookups served from cache."""
        return int(np.count_nonzero(self.hit_mask))

    @property
    def misses(self) -> int:
        """Lookups forwarded to the owner."""
        return int(self.hit_mask.size - self.hits)


class HotRowCache:
    """One device's software-managed cache of remote embedding rows.

    ``table_configs`` are the *remote* tables this device may cache rows
    of; they must share one ``(dim, dtype)`` because all rows live in one
    slab.  The slab is allocated through ``device.memory`` (debiting the
    simulated HBM budget); with ``materialize=True`` it carries a real
    numpy array so the functional path can gather exact row replicas.
    """

    def __init__(
        self,
        device: Device,
        table_configs: Sequence[EmbeddingTableConfig],
        config: CacheConfig,
        *,
        materialize: bool = False,
    ):
        self.device = device
        self.config = config
        self.table_configs = list(table_configs)
        dims = {(t.dim, t.dtype) for t in self.table_configs}
        if len(dims) > 1:
            raise ValueError("cached tables must share one (dim, dtype)")
        if self.table_configs:
            self.dim, self.dtype = self.table_configs[0].dim, self.table_configs[0].dtype
        else:
            self.dim, self.dtype = 0, np.dtype(np.float32)
        self.remote_rows = sum(t.num_rows for t in self.table_configs)
        self.capacity_rows = config.resolve_capacity(self.remote_rows)
        self.policy = config.build_policy(self.capacity_rows)
        self.stats = CacheStats()
        self._slot: Dict[CacheKey, int] = {}
        self._free: List[int] = list(range(self.capacity_rows - 1, -1, -1))
        self._buffer = None
        self._store: Optional[np.ndarray] = None
        if self.capacity_rows > 0 and self.dim > 0:
            self._buffer = device.memory.alloc(
                (self.capacity_rows, self.dim),
                self.dtype,
                materialize=materialize,
                label=f"cache.dev{device.id}",
            )
            if materialize:
                self._store = self._buffer.array()

    # -- queries -----------------------------------------------------------------

    @property
    def resident_rows(self) -> int:
        """Rows currently cached."""
        return len(self._slot)

    @property
    def nbytes(self) -> int:
        """HBM bytes the cache slab occupies."""
        return self._buffer.nbytes if self._buffer is not None else 0

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._slot

    # -- access ------------------------------------------------------------------

    def lookup_rows(
        self,
        table_name: str,
        rows: np.ndarray,
        source: Optional[np.ndarray] = None,
    ) -> CacheAccess:
        """Walk hashed ``rows`` in order: classify hits, install misses.

        Hit values are captured *at access time* (a later install may evict
        and reuse the slot within the same walk).  ``source`` is the owning
        table's full weight array; when given, the returned ``values`` is
        the complete ``(n, dim)`` gather — hits from the cache store,
        misses from ``source`` — so callers can pool it directly.
        """
        rows = np.asarray(rows, dtype=np.int64)
        n = rows.size
        hit_mask = np.zeros(n, dtype=bool)
        values: Optional[np.ndarray] = None
        if source is not None:
            values = np.empty((n, self.dim), dtype=self.dtype)
        policy = self.policy
        slot = self._slot
        store = self._store
        stats = self.stats
        for j, r in enumerate(rows.tolist()):
            key = (table_name, r)
            if policy.access(key):
                hit_mask[j] = True
                stats.hits += 1
                if values is not None:
                    values[j] = store[slot[key]] if store is not None else source[r]
            else:
                stats.misses += 1
                if values is not None:
                    values[j] = source[r]
                admitted, evicted = policy.admit(key)
                if admitted:
                    if evicted is not None:
                        self._release(evicted)
                        stats.evictions += 1
                    self._install(key, source)
        return CacheAccess(hit_mask=hit_mask, values=values)

    def _install(self, key: CacheKey, source: Optional[np.ndarray]) -> None:
        s = self._free.pop()
        self._slot[key] = s
        self.stats.installs += 1
        if self._store is not None and source is not None:
            self._store[s] = source[key[1]]

    def _release(self, key: CacheKey) -> None:
        self._free.append(self._slot.pop(key))

    # -- warm / invalidate --------------------------------------------------------

    def warm(
        self,
        keys: Iterable[CacheKey],
        source_of: Optional[Callable[[str], np.ndarray]] = None,
    ) -> int:
        """Pre-fill from ranked ``keys`` (hottest first); returns seeded count.

        This is the profiled-frequency path the static-topk policy needs
        (and the only way rows enter it); lru/lfu accept warming too.
        ``source_of(table_name)`` supplies weight arrays for materialised
        caches.
        """
        seeded = 0
        for key in keys:
            if key in self._slot:
                continue
            admitted, evicted = self.policy.seed(key)
            if not admitted:
                continue
            if evicted is not None:
                self._release(evicted)
                self.stats.evictions += 1
            self._install(key, source_of(key[0]) if source_of is not None else None)
            seeded += 1
        return seeded

    def invalidate(
        self, table_name: Optional[str] = None, rows: Optional[np.ndarray] = None
    ) -> int:
        """Drop stale replicas; returns how many were dropped.

        ``rows`` are post-hash row ids (the coordinates the backward pass
        updates).  ``rows=None`` drops the whole table; ``table_name=None``
        flushes everything.  This is the staleness hook: call it after any
        owner-side weight update so the functional guarantee holds.
        """
        if table_name is None:
            victims = list(self._slot)
        elif rows is None:
            victims = [k for k in self._slot if k[0] == table_name]
        else:
            victims = [
                (table_name, int(r))
                for r in np.unique(np.asarray(rows, dtype=np.int64))
                if (table_name, int(r)) in self._slot
            ]
        for key in victims:
            self.policy.remove(key)
            self._release(key)
        self.stats.invalidations += len(victims)
        return len(victims)

    def release(self) -> None:
        """Free the cache slab back to the device memory pool."""
        if self._buffer is not None and not self._buffer.freed:
            self.device.memory.free(self._buffer)
        self._buffer = None
        self._store = None
        self._slot.clear()
        self._free = list(range(self.capacity_rows - 1, -1, -1))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<HotRowCache dev={self.device.id} {self.policy.name} "
            f"{self.resident_rows}/{self.capacity_rows} rows d={self.dim}>"
        )
