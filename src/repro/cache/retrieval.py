"""Cache-aware distributed retrieval: the ``"+cache"`` backends.

:class:`CachedRetrieval` wraps either base backend (``pgas`` or
``baseline``) with per-device :class:`~repro.cache.hotrow.HotRowCache`
instances.  Each batch runs one cache pass (:meth:`plan_batch`) that walks
every device's remote lookups in order, classifying hits and installing
misses per policy, and produces a :class:`CacheBatchPlan` consumed by both
the timed and the functional path — a single pass, so cache state mutates
exactly once per batch.

Communication model (partial-sum serving)
-----------------------------------------
The owner of table *t* pools what the destination cannot: for a remote
``(sample, t)`` bag it sends **one** partial pooled vector unless *every*
index of the bag hit the destination's cache — fully covered non-empty
bags move zero wire bytes, and the destination pools its cached rows with
a local gather instead.  Empty bags keep their (zero-lookup) output slot
exactly as the uncached backends model it.  Consequences:

* a capacity-0 cache reproduces the uncached per-device workloads
  bit-for-bit, so ``"pgas+cache"`` with no capacity times identically to
  ``"pgas"``;
* total lookup work is conserved (each row is still read exactly once,
  just on the destination for hits), while wire bytes, NVLink drag, and
  unpack volume all shrink with full-bag coverage.

The timed path expresses this as adjusted
:class:`~repro.core.workload.DeviceWorkload` objects — the owner's blocks
keep only miss lookups and only non-covered samples' destination bytes,
and the destination gains *gather blocks* whose output stays local — then
delegates to the unmodified base backend.  The functional path gathers
each lookup's vector (hits from the cache replica, misses from the
owner's weights) in original index order and pools with the same
``segment_pool`` kernel, which keeps outputs bit-identical to the
uncached backends as long as replicas are not stale (see
:meth:`CachedRetrieval.invalidate`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.baseline import BaselineRetrieval, PhaseTiming
from ..core.calibration import EMB_SAMPLES_PER_BLOCK
from ..core.functional import ShardedEmbeddingTables
from ..core.pgas_retrieval import PGASFusedRetrieval
from ..core.retrieval import RetrievalBackend
from ..core.sharding import TableWiseSharding, minibatch_bounds, sample_owner
from ..core.workload import DeviceWorkload
from ..dlrm.batch import SparseBatch
from ..dlrm.embedding import segment_pool
from ..dlrm.hashing import hash_indices
from ..simgpu.cluster import Cluster
from .hotrow import CacheConfig, CacheStats, HotRowCache

__all__ = ["CacheBatchPlan", "CachedRetrieval", "HIT_COUNTER", "MISS_COUNTER", "EVICT_COUNTER"]

#: Profiler counter name prefixes (suffixed ``.dev{g}`` per device).
HIT_COUNTER = "cache.hits"
MISS_COUNTER = "cache.misses"
EVICT_COUNTER = "cache.evictions"


@dataclass
class CacheBatchPlan:
    """Everything one batch's cache pass decided.

    ``workloads`` are the cache-adjusted per-device simulator workloads;
    ``hit_values`` maps ``(device, feature)`` to the gathered ``(nnz, d)``
    vectors of that device's mini-batch slice (present only when the
    wrapper is materialised); ``stats`` holds per-device counter deltas
    for this batch.
    """

    batch_size: int
    row_bytes: int
    workloads: List[DeviceWorkload]
    hit_values: Dict[Tuple[int, str], np.ndarray] = field(default_factory=dict)
    stats: List[CacheStats] = field(default_factory=list)
    saved_vectors: int = 0  #: fully cache-covered non-empty remote bags

    @property
    def remote_bytes(self) -> float:
        """Wire bytes the adjusted workloads still move."""
        return float(sum(wl.remote_output_bytes for wl in self.workloads))

    @property
    def uncached_remote_bytes(self) -> float:
        """Wire bytes the same batch would move with no cache."""
        return self.remote_bytes + float(self.saved_vectors) * self.row_bytes

    @property
    def hits(self) -> int:
        """Cache hits across all devices this batch."""
        return sum(s.hits for s in self.stats)

    @property
    def misses(self) -> int:
        """Cache misses across all devices this batch."""
        return sum(s.misses for s in self.stats)

    @property
    def hit_rate(self) -> float:
        """Hits over remote lookups this batch."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class CachedRetrieval(RetrievalBackend):
    """A base retrieval backend fronted by per-device hot-row caches.

    Standalone use takes a cluster plus sharding plan; as a registered
    backend (``"pgas+cache"``, ``"baseline+cache"``) it is built from a
    :class:`~repro.core.retrieval.DistributedEmbedding` and its
    ``cache`` config.  All tables must share one ``(dim, dtype)`` (one
    cache slab per device).
    """

    requires_indices = True

    def __init__(
        self,
        cluster: Cluster,
        plan: TableWiseSharding,
        config: Optional[CacheConfig] = None,
        *,
        base: str = "pgas",
        collective_spec=None,
        pgas_spec=None,
        sharded: Optional[ShardedEmbeddingTables] = None,
    ):
        if base == "pgas":
            self.base = PGASFusedRetrieval(cluster, pgas_spec)
        elif base == "baseline":
            self.base = BaselineRetrieval(cluster, collective_spec)
        else:
            raise ValueError(f"unknown base backend {base!r} (use 'pgas' or 'baseline')")
        if cluster.n_devices != plan.n_devices:
            raise ValueError(
                f"cluster has {cluster.n_devices} devices, plan has {plan.n_devices}"
            )
        row_bytes = {t.row_bytes for t in plan.table_configs}
        if len(row_bytes) != 1:
            raise ValueError("cached retrieval needs tables sharing one (dim, dtype)")
        self.cluster = cluster
        self.table_plan = plan
        self.base_name = base
        self.config = config or CacheConfig()
        self.sharded = sharded
        self._row_bytes = row_bytes.pop()
        self._tables = {}
        if sharded is not None:
            for tables in sharded.per_device:
                for t in tables:
                    self._tables[t.name] = t
        self.caches: List[HotRowCache] = [
            HotRowCache(
                dev,
                [t for t in plan.table_configs if plan.owner_of(t.name) != dev.id],
                self.config,
                materialize=sharded is not None,
            )
            for dev in cluster.devices
        ]

    # -- queries -----------------------------------------------------------------

    def stats(self) -> CacheStats:
        """Aggregated lifetime counters across every device cache."""
        total = CacheStats()
        for cache in self.caches:
            total.add(cache.stats)
        return total

    def _weights_of(self, table_name: str) -> Optional[np.ndarray]:
        table = self._tables.get(table_name)
        return table.weights if table is not None else None

    # -- the per-batch cache pass -------------------------------------------------

    def plan_batch(self, batch: SparseBatch) -> CacheBatchPlan:
        """Run the cache pass for one batch and derive adjusted workloads.

        This mutates cache state (hits refresh recency/frequency, misses
        install per policy) — call it once per batch and reuse the plan for
        both the timed and the functional path.
        """
        plan = self.table_plan
        G = plan.n_devices
        B = batch.batch_size
        bounds = minibatch_bounds(B, G)
        owners = sample_owner(B, G)
        spb = EMB_SAMPLES_PER_BLOCK
        n_chunks = math.ceil(B / spb)
        chunk_ids = np.arange(B) // spb
        materialized = self.sharded is not None

        before = [cache.stats.copy() for cache in self.caches]
        hit_values: Dict[Tuple[int, str], np.ndarray] = {}
        adj_lengths: Dict[str, np.ndarray] = {}
        sent: Dict[str, np.ndarray] = {}
        hits_per_sample: Dict[str, np.ndarray] = {}
        saved_vectors = 0

        for t in plan.table_configs:
            fld = batch.field(t.name)
            lengths = fld.lengths
            owner = plan.owner_of(t.name)
            adj = lengths.astype(np.int64).copy()
            snt = np.ones(B, dtype=bool)
            hps = np.zeros(B, dtype=np.int64)
            source = self._weights_of(t.name) if materialized else None
            for g in range(G):
                if g == owner:
                    continue
                lo, hi = bounds[g]
                sl = fld.slice_samples(lo, hi)
                rows = hash_indices(sl.indices, t.num_rows, t.hash_kind)
                acc = self.caches[g].lookup_rows(t.name, rows, source=source)
                if acc.values is not None:
                    hit_values[(g, t.name)] = acc.values
                if sl.nnz:
                    sample_ids = np.repeat(np.arange(lo, hi), lengths[lo:hi])
                    np.add.at(hps, sample_ids[acc.hit_mask], 1)
                h = hps[lo:hi]
                adj[lo:hi] = lengths[lo:hi] - h
                covered = (h == lengths[lo:hi]) & (lengths[lo:hi] > 0)
                snt[lo:hi] = ~covered
                saved_vectors += int(np.count_nonzero(covered))
            adj_lengths[t.name] = adj
            sent[t.name] = snt
            hits_per_sample[t.name] = hps

        workloads = self._build_workloads(
            B, G, bounds, owners, chunk_ids, n_chunks, spb,
            adj_lengths, sent, hits_per_sample,
        )
        deltas = [cache.stats.delta(b) for cache, b in zip(self.caches, before)]
        return CacheBatchPlan(
            batch_size=B,
            row_bytes=self._row_bytes,
            workloads=workloads,
            hit_values=hit_values,
            stats=deltas,
            saved_vectors=saved_vectors,
        )

    def _build_workloads(
        self, B, G, bounds, owners, chunk_ids, n_chunks, spb,
        adj_lengths, sent, hits_per_sample,
    ) -> List[DeviceWorkload]:
        """Cache-adjusted per-device workloads (serve + gather components).

        Mirrors :func:`~repro.core.workload.build_device_workloads` block
        layout exactly when nothing is cached (the zero-capacity
        invariant): per local table, one block per sample chunk whose
        weight is the (miss) lookup count and whose destination bytes count
        only samples whose partial vector is still sent.  Hits reappear as
        *gather blocks* on the destination device — same grid geometry,
        output bytes in the device's own column only (zero wire bytes).
        """
        plan = self.table_plan
        rb = self._row_bytes
        starts = np.arange(n_chunks) * spb
        workloads: List[DeviceWorkload] = []
        for d in range(G):
            tables = plan.tables_on(d)
            weight_parts: List[np.ndarray] = []
            dst_parts: List[np.ndarray] = []
            nnz = 0
            # Serve component: this device's own tables, full batch, misses only.
            for t in tables:
                adj = adj_lengths[t.name]
                weight_parts.append(np.add.reduceat(adj, starts).astype(np.float64))
                nnz += int(adj.sum())
                snt = sent[t.name]
                cd = np.zeros((n_chunks, G), dtype=np.float64)
                np.add.at(cd, (chunk_ids[snt], owners[snt]), 1.0)
                dst_parts.append(cd * rb)
            # Gather component: local pooling of cached rows of remote tables.
            lo, hi = bounds[d]
            for t in plan.table_configs:
                if plan.owner_of(t.name) == d:
                    continue
                h = hits_per_sample[t.name][lo:hi]
                total_hits = int(h.sum())
                if total_hits == 0:
                    continue
                gw = np.zeros(n_chunks, dtype=np.float64)
                np.add.at(gw, chunk_ids[lo:hi], h.astype(np.float64))
                nz = np.flatnonzero(gw)
                gv = np.zeros(n_chunks, dtype=np.float64)
                np.add.at(gv, chunk_ids[lo:hi][h > 0], 1.0)
                gdst = np.zeros((nz.size, G), dtype=np.float64)
                gdst[:, d] = gv[nz] * rb
                weight_parts.append(gw[nz])
                dst_parts.append(gdst)
                nnz += total_hits
            if weight_parts:
                block_weights = np.concatenate(weight_parts)
                block_dst = np.vstack(dst_parts)
            else:
                block_weights = np.empty(0)
                block_dst = np.zeros((0, G))
            workloads.append(
                DeviceWorkload(
                    device_id=d,
                    n_devices=G,
                    batch_size=B,
                    row_bytes=rb,
                    num_local_tables=len(tables),
                    nnz=nnz,
                    num_blocks=len(block_weights),
                    samples_per_block=spb,
                    block_weights=block_weights,
                    block_dst_bytes=block_dst,
                )
            )
        return workloads

    # -- timed path ---------------------------------------------------------------

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Cache pass + base-backend simulation (``workloads`` is ignored —
        the cost model depends on the index values, so the adjusted
        workloads are derived from ``batch``)."""
        if batch is None:
            raise ValueError("cached backends need the SparseBatch (index values)")
        return self.run_plan(self.plan_batch(batch))

    def run_plan(self, cplan: CacheBatchPlan) -> PhaseTiming:
        """Simulate an already-planned batch and stamp the cache counters."""
        timing = self.base.run_batch(cplan.workloads)
        self._stamp_counters(cplan)
        return timing

    def batch_process(
        self,
        cluster: Cluster,
        cplan: CacheBatchPlan,
        timing: PhaseTiming,
        stream_suffix: str = "",
    ):
        """Process generator for one planned batch — composable into larger
        host programs (the inference pipeline's EMB stage).
        ``stream_suffix`` passes through to the wrapped backend's per-batch
        stream set."""
        yield from self.base.batch_process(
            cluster, cplan.workloads, timing, stream_suffix=stream_suffix
        )
        self._stamp_counters(cplan)

    def _stamp_counters(self, cplan: CacheBatchPlan) -> None:
        prof = self.cluster.profiler
        t = self.cluster.engine.now
        for g, delta in enumerate(cplan.stats):
            prof.add_count(f"{HIT_COUNTER}.dev{g}", t, float(delta.hits), unit="rows")
            prof.add_count(f"{MISS_COUNTER}.dev{g}", t, float(delta.misses), unit="rows")
            prof.add_count(f"{EVICT_COUNTER}.dev{g}", t, float(delta.evictions), unit="rows")

    # -- functional path ------------------------------------------------------------

    def functional_forward(
        self, batch: SparseBatch, plan: Optional[CacheBatchPlan] = None
    ) -> List[np.ndarray]:
        """Numpy forward, bit-identical to the uncached backends.

        Local features pool on the owner and slice, exactly like the
        uncached paths; remote features pool the per-lookup gather captured
        by the cache pass (hits from replicas, misses from owner weights)
        with the same ``segment_pool`` kernel over the same index order.
        """
        if self.sharded is None:
            raise ValueError("functional forward needs materialize=True weights")
        cplan = plan if plan is not None else self.plan_batch(batch)
        splan = self.table_plan
        G = splan.n_devices
        bounds = minibatch_bounds(batch.batch_size, G)
        F = splan.num_tables
        dim = self.sharded.dim
        outputs: List[np.ndarray] = []
        for g, (lo, hi) in enumerate(bounds):
            out = np.zeros((hi - lo, F, dim), dtype=self.sharded.dtype)
            for f, t in enumerate(splan.table_configs):
                fld = batch.field(t.name)
                if splan.owner_of(t.name) == g:
                    pooled = self._tables[t.name].forward(fld)
                    out[:, f, :] = pooled[lo:hi]
                else:
                    vectors = cplan.hit_values[(g, t.name)]
                    sl = fld.slice_samples(lo, hi)
                    out[:, f, :] = segment_pool(vectors, sl.offsets, t.pooling)
            outputs.append(out)
        return outputs

    def forward(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch],
        functional: bool = False,
    ) -> Tuple[PhaseTiming, Optional[List[np.ndarray]]]:
        """One cache pass feeding both the timed and the functional path."""
        if batch is None:
            raise ValueError("cached backends need the SparseBatch (index values)")
        cplan = self.plan_batch(batch)
        timing = self.run_plan(cplan)
        outputs = self.functional_forward(batch, plan=cplan) if functional else None
        return timing, outputs

    # -- maintenance ----------------------------------------------------------------

    def warm_static(
        self, batches: Sequence[SparseBatch], top_k: Optional[int] = None
    ) -> List[int]:
        """Profiled frequency pass: rank each device's remote rows over
        ``batches`` and pre-fill its cache hottest-first.

        This is how the ``static-topk`` policy gets its working set (lru /
        lfu caches accept warming too).  Returns per-device seeded counts.
        """
        plan = self.table_plan
        G = plan.n_devices
        freq: List[Dict[Tuple[str, int], int]] = [dict() for _ in range(G)]
        for batch in batches:
            bounds = minibatch_bounds(batch.batch_size, G)
            for t in plan.table_configs:
                owner = plan.owner_of(t.name)
                fld = batch.field(t.name)
                for g in range(G):
                    if g == owner:
                        continue
                    lo, hi = bounds[g]
                    sl = fld.slice_samples(lo, hi)
                    if not sl.nnz:
                        continue
                    rows = hash_indices(sl.indices, t.num_rows, t.hash_kind)
                    vals, counts = np.unique(rows, return_counts=True)
                    table_freq = freq[g]
                    for r, c in zip(vals.tolist(), counts.tolist()):
                        key = (t.name, r)
                        table_freq[key] = table_freq.get(key, 0) + c
        source_of: Optional[Callable[[str], np.ndarray]] = None
        if self.sharded is not None:
            source_of = lambda name: self._tables[name].weights  # noqa: E731
        seeded = []
        for g in range(G):
            ranked = sorted(freq[g].items(), key=lambda kv: (-kv[1], kv[0]))
            keys = [k for k, _ in ranked]
            if top_k is not None:
                keys = keys[:top_k]
            seeded.append(self.caches[g].warm(keys, source_of=source_of))
        return seeded

    def invalidate(
        self, table_name: Optional[str] = None, rows: Optional[np.ndarray] = None
    ) -> int:
        """Drop stale replicas on every device (see
        :meth:`~repro.cache.hotrow.HotRowCache.invalidate`); returns the
        total dropped.  Call after owner-side weight updates (the
        training/backward extension) to preserve functional equivalence."""
        return sum(cache.invalidate(table_name, rows) for cache in self.caches)

    def release(self) -> None:
        """Free every device's cache slab back to its memory pool."""
        for cache in self.caches:
            cache.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        s = self.stats()
        return (
            f"<CachedRetrieval base={self.base_name} policy={self.config.policy} "
            f"G={len(self.caches)} hit_rate={s.hit_rate:.2f}>"
        )
