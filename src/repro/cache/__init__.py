"""Hot-row embedding cache subsystem.

Skewed (zipfian) recommendation traffic re-fetches a small set of hot
rows over and over; replicating those rows on the requesting device
turns repeat remote fetches into local gathers and removes their wire
bytes entirely.  This package provides:

* :mod:`repro.cache.policy` — pluggable replacement policies
  (``lru``, ``lfu`` with aging, ``static-topk`` from a profiled pass);
* :mod:`repro.cache.hotrow` — the per-device cache: slot storage
  allocated from the simulated HBM budget, hit/miss/eviction stats,
  warm-up and invalidation hooks;
* :mod:`repro.cache.retrieval` — :class:`CachedRetrieval`, which fronts
  either base backend with the caches on both the timed (DES) and the
  functional (numpy, bit-identical) path.

Importing this package registers the ``"pgas+cache"`` and
``"baseline+cache"`` backends with the core registry, so

>>> emb = DistributedEmbedding(cfg, n_devices=2, backend="pgas+cache",
...                            features=FeatureSpec(cache=CacheConfig(policy="lru")))

works exactly like the uncached backends (``repro`` imports it for you).
"""

from __future__ import annotations

from ..core.factory import build_adapter
from ..core.retrieval import register_backend
from .hotrow import CacheAccess, CacheConfig, CacheStats, HotRowCache
from .policy import (
    CacheKey,
    CachePolicy,
    LFUPolicy,
    LRUPolicy,
    StaticTopKPolicy,
    make_policy,
)
from .retrieval import CacheBatchPlan, CachedRetrieval

__all__ = [
    "CacheAccess",
    "CacheBatchPlan",
    "CacheConfig",
    "CacheKey",
    "CachePolicy",
    "CacheStats",
    "CachedRetrieval",
    "HotRowCache",
    "LFUPolicy",
    "LRUPolicy",
    "StaticTopKPolicy",
    "cached_retrieval_for",
    "make_policy",
]


def cached_retrieval_for(emb, base: str) -> CachedRetrieval:
    """Build a :class:`CachedRetrieval` bound to a
    :class:`~repro.core.retrieval.DistributedEmbedding` (the registry
    factories' shared implementation)."""
    config = emb.cache_config
    if config is not None and not isinstance(config, CacheConfig):
        raise TypeError(
            f"DistributedEmbedding cache must be a CacheConfig, got {type(config).__name__}"
        )
    return CachedRetrieval(
        emb.cluster,
        emb.plan,
        config or CacheConfig(),
        base=base,
        collective_spec=emb.collective_spec,
        pgas_spec=emb.pgas_spec,
        sharded=emb.sharded,
    )


# Thin aliases: composition lives in repro.core.factory.build_adapter.
register_backend(
    "pgas+cache",
    lambda emb: build_adapter(emb, "pgas+cache"),
    requires_indices=True,
    description="PGAS retrieval with the hot-row cache short-circuiting remote reads",
)
register_backend(
    "baseline+cache",
    lambda emb: build_adapter(emb, "baseline+cache"),
    requires_indices=True,
    description="collective retrieval with the hot-row cache shrinking the all-to-all",
)
