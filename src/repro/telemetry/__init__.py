"""Unified telemetry: time-series gauges, paper-facing metrics, run reports.

Layers (see DESIGN.md §9):

* :mod:`repro.telemetry.timeline` — fixed-grid gauges (link utilisation,
  compute occupancy, queue depth) derived from profiler spans/counters;
* :mod:`repro.telemetry.metrics` — scalar metrics (overlap fraction,
  exposed comm time, peak-to-mean / Gini burstiness, unpack share) and
  the :class:`MetricsRegistry`;
* :mod:`repro.telemetry.report` — the versioned :class:`RunReport` JSON
  artifact and its validator;
* :mod:`repro.telemetry.export` — derived-gauge counter tracks for the
  Chrome/Perfetto trace.

This package depends only on :mod:`repro.simgpu` and :mod:`repro.comm`;
:mod:`repro.core` and :mod:`repro.bench` build on it.
"""

from .export import (
    TELEMETRY_PID,
    chrome_trace_with_telemetry,
    telemetry_trace_events,
    write_chrome_trace_with_telemetry,
)
from .metrics import (
    Metric,
    MetricsRegistry,
    compute_metrics,
    exposed_comm_ns,
    gini,
    interconnect_idle_ns,
    link_stats,
    overlap_fraction,
    peak_to_mean,
)
from .report import (
    BATCH_FORMED_COUNTER,
    IN_FLIGHT_COUNTER,
    QUEUE_DEPTH_COUNTER,
    SCHEMA_VERSION,
    ReportValidationError,
    RunReport,
    collect_run_report,
    validate_report,
)
from .timeline import (
    COMM_COUNTER_NAMES,
    COMPUTE_CATEGORIES,
    TimeSeries,
    comm_rate_series,
    compute_occupancy_series,
    gauge_series,
    link_utilization_series,
    merged_intervals,
    per_pair_comm_counters,
    run_window,
    sample_edges,
)

__all__ = [
    "BATCH_FORMED_COUNTER",
    "COMM_COUNTER_NAMES",
    "COMPUTE_CATEGORIES",
    "IN_FLIGHT_COUNTER",
    "Metric",
    "MetricsRegistry",
    "QUEUE_DEPTH_COUNTER",
    "ReportValidationError",
    "RunReport",
    "SCHEMA_VERSION",
    "TELEMETRY_PID",
    "TimeSeries",
    "chrome_trace_with_telemetry",
    "collect_run_report",
    "comm_rate_series",
    "compute_metrics",
    "compute_occupancy_series",
    "exposed_comm_ns",
    "gauge_series",
    "gini",
    "interconnect_idle_ns",
    "link_stats",
    "link_utilization_series",
    "merged_intervals",
    "overlap_fraction",
    "peak_to_mean",
    "per_pair_comm_counters",
    "run_window",
    "sample_edges",
    "telemetry_trace_events",
    "validate_report",
    "write_chrome_trace_with_telemetry",
]
