"""Time-series gauges derived from profiler spans and counters.

The paper's temporal claims (comm hidden under compute, NVLink usage
smoothed instead of bursted) are statements about *series*, not totals.
This module turns a :class:`~repro.simgpu.profiler.Profiler` record into
fixed-grid gauges, re-using the paper's own instrument — the cumulative
communication counter polled on a period (§IV-A2b) — and extending it:

* :func:`comm_rate_series` — delivered payload bytes per nanosecond, per
  bin, summed over every comm counter (collective chunks + one-sided puts);
* :func:`link_utilization_series` — the same, per directed device pair,
  normalised to that link's bandwidth when a topology is supplied (a
  dimensionless occupancy in ``[0, ~1]``);
* :func:`compute_occupancy_series` — the fraction of each bin covered by a
  device's compute/fused spans (device ``-1`` spans count for everyone);
* :func:`gauge_series` — a level gauge from a ±delta counter (e.g. the
  serving queue depth counter): the cumulative value at each bin edge.

All series share one bin grid from :func:`sample_edges`, so they can be
compared bin-by-bin (overlap, exposure) without resampling.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..comm.pgas import PGASContext
from ..simgpu.interconnect import Interconnect, Topology
from ..simgpu.profiler import Counter, Profiler

__all__ = [
    "COMM_COUNTER_NAMES",
    "COMPUTE_CATEGORIES",
    "TimeSeries",
    "comm_rate_series",
    "compute_occupancy_series",
    "gauge_series",
    "link_utilization_series",
    "merged_intervals",
    "per_pair_comm_counters",
    "run_window",
    "sample_edges",
]

#: base (non-pair) counters that carry delivered communication payload
COMM_COUNTER_NAMES = (Interconnect.COUNTER, PGASContext.COUNTER)

#: span categories during which "compute is running" (the baseline's
#: dedicated kernel phase, and the PGAS fused kernel which is all three
#: phases at once)
COMPUTE_CATEGORIES = ("compute", "fused")

#: per-pair sub-counter names stamped by :meth:`Interconnect.transfer`
_PAIR_RE = re.compile(r"^(?P<base>[a-z_]+)\.dev(?P<src>\d+)->dev(?P<dst>\d+)$")


@dataclass(frozen=True)
class TimeSeries:
    """One gauge sampled on a fixed bin grid.

    ``times`` holds the left edge of each bin; every bin is ``bin_ns``
    wide except possibly the last, which is clipped to the run window.
    """

    name: str
    unit: str
    times: np.ndarray  #: bin left edges (ns)
    values: np.ndarray  #: one value per bin
    bin_ns: float

    def __post_init__(self) -> None:
        if self.times.shape != self.values.shape:
            raise ValueError(
                f"times/values length mismatch: {self.times.shape} vs {self.values.shape}"
            )

    @property
    def peak(self) -> float:
        """Largest bin value (0 for an empty series)."""
        return float(self.values.max()) if self.values.size else 0.0

    @property
    def mean(self) -> float:
        """Mean bin value (0 for an empty series)."""
        return float(self.values.mean()) if self.values.size else 0.0

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready plain-python view."""
        return {
            "unit": self.unit,
            "bin_ns": float(self.bin_ns),
            "times_ns": [float(t) for t in self.times],
            "values": [float(v) for v in self.values],
        }


def run_window(profiler: Profiler) -> Tuple[float, float]:
    """``(t_start, t_end)`` covering every span and counter event.

    ``(0.0, 0.0)`` when nothing was recorded.
    """
    starts: List[float] = [s.t_start for s in profiler.spans]
    ends: List[float] = [s.t_end for s in profiler.spans]
    for counter in profiler.counters.values():
        evs = counter.events()
        if evs:
            starts.append(evs[0][0])
            ends.append(evs[-1][0])
    if not starts:
        return 0.0, 0.0
    return min(starts), max(ends)


def sample_edges(t_start: float, t_end: float, n_bins: int = 240) -> np.ndarray:
    """``n_bins + 1`` evenly spaced bin edges over ``[t_start, t_end]``.

    A zero-width window degenerates to one 1-ns bin so downstream
    rate math never divides by zero.
    """
    if n_bins <= 0:
        raise ValueError(f"n_bins must be positive, got {n_bins}")
    if t_end < t_start:
        raise ValueError("t_end < t_start")
    if t_end == t_start:
        return np.array([t_start, t_start + 1.0], dtype=np.float64)
    return np.linspace(t_start, t_end, n_bins + 1, dtype=np.float64)


def _bin_volumes(counter: Counter, edges: np.ndarray) -> np.ndarray:
    """Payload delivered inside each bin (cumulative diff at the edges)."""
    cum = counter.values_at(edges)
    vols = np.diff(cum)
    if vols.size:
        # The first bin also owns anything delivered exactly at its left
        # edge (values_at is inclusive, so diff would drop those events).
        before = float(
            counter.values_at(np.array([np.nextafter(edges[0], -np.inf)]))[0]
        )
        vols[0] += cum[0] - before
    return vols


def comm_rate_series(
    profiler: Profiler,
    edges: np.ndarray,
    *,
    counters: Sequence[str] = COMM_COUNTER_NAMES,
    name: str = "comm_rate",
) -> TimeSeries:
    """Aggregate delivered-comm rate (bytes/ns) per bin across ``counters``."""
    vols = np.zeros(len(edges) - 1, dtype=np.float64)
    for cname in counters:
        counter = profiler.counters.get(cname)
        if counter is not None:
            vols += _bin_volumes(counter, edges)
    widths = np.diff(edges)
    return TimeSeries(
        name=name, unit="bytes/ns", times=edges[:-1], values=vols / widths,
        bin_ns=float(widths[0]),
    )


def per_pair_comm_counters(
    profiler: Profiler,
    bases: Sequence[str] = COMM_COUNTER_NAMES,
) -> Dict[Tuple[int, int], List[Counter]]:
    """All per-pair comm sub-counters, keyed on ``(src, dst)``.

    Both backends' counters land in the same pair bucket, so a run that
    mixed backends (e.g. resilient fallback) still attributes correctly.
    """
    pairs: Dict[Tuple[int, int], List[Counter]] = {}
    for cname, counter in profiler.counters.items():
        m = _PAIR_RE.match(cname)
        if m is None or m.group("base") not in bases:
            continue
        key = (int(m.group("src")), int(m.group("dst")))
        pairs.setdefault(key, []).append(counter)
    return pairs


def link_utilization_series(
    profiler: Profiler,
    edges: np.ndarray,
    *,
    topology: Optional[Topology] = None,
) -> Dict[Tuple[int, int], TimeSeries]:
    """Per-link delivered-payload gauge over the bin grid.

    With ``topology`` supplied, each pair's series is its payload rate
    divided by that link's bandwidth — an occupancy fraction (headers are
    excluded, so a saturated link reads slightly below 1).  Without a
    topology the raw rate in bytes/ns is returned.
    """
    widths = np.diff(edges)
    out: Dict[Tuple[int, int], TimeSeries] = {}
    for (src, dst), counters in sorted(per_pair_comm_counters(profiler).items()):
        vols = np.zeros(len(edges) - 1, dtype=np.float64)
        for counter in counters:
            vols += _bin_volumes(counter, edges)
        rate = vols / widths
        unit = "bytes/ns"
        if topology is not None:
            spec = topology.link_spec(src, dst)
            if spec is not None:
                rate = rate / spec.bandwidth
                unit = "fraction"
        out[(src, dst)] = TimeSeries(
            name=f"link_util.dev{src}->dev{dst}", unit=unit,
            times=edges[:-1], values=rate, bin_ns=float(widths[0]),
        )
    return out


def merged_intervals(
    profiler: Profiler,
    categories: Sequence[str],
    device_id: Optional[int] = None,
) -> List[Tuple[float, float]]:
    """Merged ``(start, end)`` intervals of the given span categories.

    With ``device_id`` given, spans on that device *and* device-less spans
    (``device_id == -1``, e.g. the PGAS fused span) are included — a
    global span keeps every device busy.
    """
    spans = sorted(
        (
            s
            for s in profiler.spans
            if s.category in categories
            and (device_id is None or s.device_id == device_id or s.device_id == -1)
        ),
        key=lambda s: s.t_start,
    )
    merged: List[Tuple[float, float]] = []
    for s in spans:
        if merged and s.t_start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], s.t_end))
        else:
            merged.append((s.t_start, s.t_end))
    return merged


def _coverage(intervals: List[Tuple[float, float]], edges: np.ndarray) -> np.ndarray:
    """Fraction of each bin covered by the (merged) intervals."""
    widths = np.diff(edges)
    covered = np.zeros(len(edges) - 1, dtype=np.float64)
    for lo, hi in intervals:
        first = int(np.searchsorted(edges, lo, side="right")) - 1
        last = int(np.searchsorted(edges, hi, side="left")) - 1
        first = max(first, 0)
        last = min(last, len(covered) - 1)
        for b in range(first, last + 1):
            covered[b] += max(
                0.0, min(hi, edges[b + 1]) - max(lo, edges[b])
            )
    return np.clip(covered / widths, 0.0, 1.0)


def compute_occupancy_series(
    profiler: Profiler,
    edges: np.ndarray,
    device_id: Optional[int] = None,
    *,
    categories: Sequence[str] = COMPUTE_CATEGORIES,
) -> TimeSeries:
    """Fraction of each bin during which compute was running.

    ``device_id=None`` merges every device's compute intervals (any
    device computing counts).
    """
    intervals = merged_intervals(profiler, categories, device_id)
    label = "all" if device_id is None else f"dev{device_id}"
    return TimeSeries(
        name=f"compute_occupancy.{label}", unit="fraction",
        times=edges[:-1], values=_coverage(intervals, edges),
        bin_ns=float(np.diff(edges)[0]),
    )


def gauge_series(
    counter: Counter, edges: np.ndarray, *, name: Optional[str] = None
) -> TimeSeries:
    """Level gauge from a ±delta counter: cumulative value at bin starts.

    The serving queue-depth counter (+1 on admission, −k on dequeue) read
    this way is the instantaneous queue length.
    """
    values = counter.values_at(edges[:-1])
    return TimeSeries(
        name=name or counter.name, unit=counter.unit,
        times=edges[:-1], values=values.astype(np.float64),
        bin_ns=float(np.diff(edges)[0]),
    )
