"""Paper-facing scalar metrics derived from a profiler record.

Each metric quantifies one claim from the paper's evaluation:

* **overlap fraction** — share of delivered communication payload that
  landed while compute was running on the *source* device (device-less
  spans such as the PGAS fused pass count for every device).  The fused
  kernel overlaps essentially all of its traffic (§IV-A); the baseline's
  dedicated all-to-all phase overlaps none.
* **exposed comm time** — wall time during which traffic was moving but
  no compute was running: the non-hidden communication cost.
* **peak-to-mean / Gini burstiness** — shape statistics of the per-bin
  link-traffic series (Figs. 7/10): the baseline's start-of-batch burst
  gives a high peak-to-mean; PGAS's per-wave writes smooth it out.
* **unpack share** — fraction of the run spent in the host-side
  sync/unpack staging phase the fused kernel eliminates.

Values are registered in a :class:`MetricsRegistry`, a plain name→metric
mapping with a stable dict form for the run report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..simgpu.interconnect import Topology
from ..simgpu.profiler import Profiler
from .timeline import (
    COMM_COUNTER_NAMES,
    COMPUTE_CATEGORIES,
    comm_rate_series,
    compute_occupancy_series,
    link_utilization_series,
    merged_intervals,
    per_pair_comm_counters,
    run_window,
    sample_edges,
)

__all__ = [
    "BURSTINESS_BINS",
    "Metric",
    "MetricsRegistry",
    "compute_metrics",
    "exposed_comm_ns",
    "gini",
    "interconnect_idle_ns",
    "link_stats",
    "overlap_fraction",
    "peak_to_mean",
]

#: grid resolution for the burstiness statistics.  Counter deltas are
#: point masses at delivery instants, so on a fine grid peak-to-mean
#: degenerates into "how many deliveries happened" (every nonzero bin
#: holds exactly one delivery).  A coarser grid — a few deliveries per
#: busy bin — measures the *shape* of the traffic instead: the baseline's
#: dedicated burst stays concentrated while PGAS's per-wave writes spread
#: across the whole kernel.
BURSTINESS_BINS = 48


@dataclass(frozen=True)
class Metric:
    """One named scalar with its unit and provenance."""

    name: str
    value: float
    unit: str
    description: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "value": float(self.value),
            "unit": self.unit,
            "description": self.description,
        }


class MetricsRegistry:
    """Ordered name → :class:`Metric` mapping with a stable dict form."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def record(
        self, name: str, value: float, unit: str, description: str = ""
    ) -> Metric:
        """Register (or overwrite) a metric and return it."""
        metric = Metric(name, float(value), unit, description)
        self._metrics[name] = metric
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def value(self, name: str, default: float = float("nan")) -> float:
        """Value of ``name``, or ``default`` when absent."""
        metric = self._metrics.get(name)
        return metric.value if metric is not None else default

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return list(self._metrics.keys())

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view, insertion-ordered, JSON-ready."""
        return {name: m.as_dict() for name, m in self._metrics.items()}

    @classmethod
    def from_dict(cls, data: Dict[str, Dict[str, object]]) -> "MetricsRegistry":
        reg = cls()
        for name, payload in data.items():
            reg.record(
                name,
                float(payload["value"]),
                str(payload["unit"]),
                str(payload.get("description", "")),
            )
        return reg


# ---------------------------------------------------------------------------
# metric primitives
# ---------------------------------------------------------------------------


def _stab_counts(
    intervals: List[Tuple[float, float]], times: np.ndarray
) -> np.ndarray:
    """True where ``times[i]`` lies inside any closed interval."""
    if not intervals:
        return np.zeros(times.shape, dtype=bool)
    starts = np.array([iv[0] for iv in intervals])
    ends = np.array([iv[1] for iv in intervals])
    inside = np.searchsorted(starts, times, side="right") - np.searchsorted(
        ends, times, side="left"
    )
    return inside > 0


def overlap_fraction(
    profiler: Profiler, device_id: Optional[int] = None
) -> Tuple[float, float, float]:
    """``(fraction, hidden_bytes, total_bytes)`` of comm hidden by compute.

    A delivered payload byte counts as *hidden* when its delivery instant
    falls inside a merged compute interval on its **source** device (or on
    any device when ``device_id`` is None — any compute counts).  Because
    hidden bytes are a subset of delivered bytes, the fraction is bounded
    by 1.0 by construction.  Returns fraction 0.0 when no traffic moved.
    """
    pairs = per_pair_comm_counters(profiler)
    hidden = 0.0
    total = 0.0
    cache: Dict[int, List[Tuple[float, float]]] = {}
    for (src, _dst), counters in pairs.items():
        if device_id is not None and src != device_id:
            continue
        intervals = cache.get(src)
        if intervals is None:
            intervals = merged_intervals(profiler, COMPUTE_CATEGORIES, src)
            cache[src] = intervals
        for counter in counters:
            evs = counter.events()
            if not evs:
                continue
            times = np.array([t for t, _ in evs])
            deltas = np.array([d for _, d in evs])
            total += float(deltas.sum())
            hidden += float(deltas[_stab_counts(intervals, times)].sum())
    if total <= 0:
        return 0.0, 0.0, 0.0
    return hidden / total, hidden, total


def exposed_comm_ns(profiler: Profiler, edges: np.ndarray) -> float:
    """Wall time with traffic in flight but no compute anywhere.

    Per bin: ``bin_width · 1[comm > 0] · (1 − compute_coverage)`` —
    the communication cost the run actually pays on the critical path.
    """
    comm = comm_rate_series(profiler, edges)
    occupancy = compute_occupancy_series(profiler, edges, device_id=None)
    widths = np.diff(edges)
    active = comm.values > 0
    return float(np.sum(widths * active * (1.0 - occupancy.values)))


def interconnect_idle_ns(profiler: Profiler, edges: np.ndarray) -> float:
    """Wall time during which *no* traffic moved on any link.

    Per bin: ``bin_width · 1[comm == 0]`` — the inter-batch bubble the
    continuous-batching scheduler exists to close.  Sequential serving
    leaves the fabric dark between one batch's EMB drain and the next
    batch's kernels; with K batches in flight the writes of batch k fill
    the gap left by batch k+1's compute-only phases, so this shrinks.
    """
    comm = comm_rate_series(profiler, edges)
    widths = np.diff(edges)
    return float(np.sum(widths * (comm.values <= 0)))


def peak_to_mean(values: np.ndarray) -> float:
    """Peak-to-mean ratio of a series (1.0 for flat, 0.0 for empty/all-zero)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return 0.0
    mean = float(values.mean())
    if mean <= 0:
        return 0.0
    return float(values.max()) / mean


def gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative series (0 = uniform, →1 = bursty)."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return 0.0
    total = float(values.sum())
    if total <= 0:
        return 0.0
    n = values.size
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float((2.0 * np.sum(ranks * values)) / (n * total) - (n + 1.0) / n)


def link_stats(
    profiler: Profiler,
    edges: np.ndarray,
    *,
    topology: Optional[Topology] = None,
) -> Dict[str, Dict[str, float]]:
    """Per-link occupancy statistics over the sample grid.

    Keys are ``"dev{src}->dev{dst}"``; values carry total bytes plus the
    peak/mean/burstiness of the per-bin series (an occupancy fraction when
    a topology is supplied, bytes/ns otherwise).
    """
    out: Dict[str, Dict[str, float]] = {}
    series = link_utilization_series(profiler, edges, topology=topology)
    pairs = per_pair_comm_counters(profiler)
    for (src, dst), ts in series.items():
        total = sum(c.total for c in pairs.get((src, dst), []))
        out[f"dev{src}->dev{dst}"] = {
            "bytes": float(total),
            "peak": ts.peak,
            "mean": ts.mean,
            "peak_to_mean": peak_to_mean(ts.values),
            "gini": gini(ts.values),
        }
    return out


# ---------------------------------------------------------------------------
# full derivation
# ---------------------------------------------------------------------------


def compute_metrics(
    profiler: Profiler,
    n_devices: int,
    *,
    topology: Optional[Topology] = None,
    n_bins: int = 240,
) -> MetricsRegistry:
    """Derive the full paper-facing metric set from one run's record."""
    reg = MetricsRegistry()
    t0, t1 = run_window(profiler)
    wall = t1 - t0
    edges = sample_edges(t0, t1, n_bins)

    reg.record("run_wall_ns", wall, "ns", "end-to-end run window")

    frac, hidden, total = overlap_fraction(profiler)
    reg.record(
        "overlap_fraction", frac, "fraction",
        "share of delivered comm bytes hidden under compute",
    )
    reg.record("comm_bytes_total", total, "bytes", "delivered comm payload")
    reg.record("comm_bytes_hidden", hidden, "bytes", "payload delivered during compute")
    for dev in range(n_devices):
        dfrac, _, dtotal = overlap_fraction(profiler, dev)
        if dtotal > 0:
            reg.record(
                f"overlap_fraction.dev{dev}", dfrac, "fraction",
                f"overlap fraction for traffic sourced by device {dev}",
            )

    exposed = exposed_comm_ns(profiler, edges)
    reg.record(
        "exposed_comm_ns", exposed, "ns",
        "wall time with traffic moving but no compute running",
    )
    if wall > 0:
        reg.record(
            "exposed_comm_share", exposed / wall, "fraction",
            "exposed comm time / run wall time",
        )

    idle = interconnect_idle_ns(profiler, edges)
    reg.record(
        "interconnect_idle_ns", idle, "ns",
        "wall time with zero interconnect traffic (inter-batch bubbles)",
    )
    if wall > 0:
        reg.record(
            "interconnect_idle_share", idle / wall, "fraction",
            "interconnect idle time / run wall time",
        )

    burst_edges = sample_edges(t0, t1, min(BURSTINESS_BINS, n_bins))
    comm = comm_rate_series(profiler, burst_edges)
    reg.record(
        "link_peak_to_mean", peak_to_mean(comm.values), "ratio",
        "peak/mean of the aggregate comm-rate series (burstiness)",
    )
    reg.record(
        "link_gini", gini(comm.values), "ratio",
        "Gini coefficient of per-bin comm volume (0 smooth, 1 bursty)",
    )
    reg.record(
        "comm_rate_peak", comm.peak, "bytes/ns", "peak per-bin comm rate"
    )
    reg.record(
        "comm_rate_mean", comm.mean, "bytes/ns", "mean per-bin comm rate"
    )

    unpack_wall = profiler.category_wall_time("sync_unpack")
    reg.record("unpack_wall_ns", unpack_wall, "ns", "sync/unpack staging wall time")
    if wall > 0:
        reg.record(
            "unpack_share", unpack_wall / wall, "fraction",
            "sync/unpack staging share of the run",
        )

    # Per-phase wall breakdown: every recorded category, merged per phase.
    for category in sorted({s.category for s in profiler.spans}):
        reg.record(
            f"phase_wall_ns.{category}",
            profiler.category_wall_time(category),
            "ns",
            f"merged wall time of {category} spans",
        )

    # Per-device compute occupancy over the run window.
    for dev in range(n_devices):
        occ = compute_occupancy_series(profiler, edges, dev)
        reg.record(
            f"compute_occupancy.dev{dev}", occ.mean, "fraction",
            f"mean fraction of the run device {dev} spent computing",
        )

    # Compression (repro.compress): counter names are hardcoded rather than
    # imported to keep telemetry free of a repro.compress dependency.
    wire_counter = profiler.counters.get("compress.bytes_on_wire")
    if wire_counter is not None:
        wire = float(wire_counter.total)
        raw_counter = profiler.counters.get("compress.bytes_uncompressed")
        raw = float(raw_counter.total) if raw_counter is not None else 0.0
        reg.record(
            "compression.bytes_on_wire", wire, "bytes",
            "remote payload bytes after codec compression",
        )
        reg.record(
            "compression.bytes_uncompressed", raw, "bytes",
            "remote payload bytes before codec compression (fp32)",
        )
        if wire > 0:
            reg.record(
                "compression.ratio", raw / wire, "ratio",
                "uncompressed / on-wire remote payload bytes",
            )
        for suffix, desc in (
            ("encode_ns", "modelled source-side encode kernel time"),
            ("decode_ns", "modelled destination-side decode kernel time"),
        ):
            counter = profiler.counters.get(f"compress.{suffix}")
            reg.record(
                f"compression.{suffix}",
                float(counter.total) if counter is not None else 0.0,
                "ns",
                desc,
            )
        err_counter = profiler.counters.get("compress.max_abs_error")
        if err_counter is not None:
            reg.record(
                "compression.max_abs_error",
                max((delta for _, delta in err_counter.events()), default=0.0),
                "abs",
                "largest measured |decoded - fp32| across functional batches",
            )
        sq = profiler.counters.get("compress.sq_error")
        n_elems = profiler.counters.get("compress.error_elems")
        if sq is not None and n_elems is not None and n_elems.total > 0:
            reg.record(
                "compression.rmse",
                float(np.sqrt(sq.total / n_elems.total)),
                "abs",
                "RMS of measured decode error across functional batches",
            )

    # Availability (repro.replication): counters only exist on runs where
    # the heartbeat detector declared a failure, so healthy reports carry
    # no availability metrics at all.  Names are hardcoded, as above.
    failures = profiler.counters.get("availability.failures")
    if failures is not None:
        def total_of(name: str) -> float:
            counter = profiler.counters.get(name)
            return float(counter.total) if counter is not None else 0.0

        failover = total_of("availability.failover_lookups")
        unavailable = total_of("availability.unavailable_lookups")
        impaired_lookups = total_of("availability.batch_lookups")
        reg.record(
            "availability.failures", float(failures.total), "failures",
            "devices declared permanently failed by the heartbeat detector",
        )
        reg.record(
            "availability.failover_lookups", failover, "lookups",
            "lookups rerouted from a failed primary to a live replica",
        )
        reg.record(
            "availability.unavailable_fraction",
            unavailable / impaired_lookups if impaired_lookups > 0 else 0.0,
            "fraction",
            "lookups with no live replica / lookups of impaired batches",
        )
        reg.record(
            "availability.recovery_bytes",
            total_of("availability.recovery_bytes"), "bytes",
            "re-replication bytes streamed over the interconnect",
        )
        reg.record(
            "availability.detection_ns",
            total_of("availability.detection_ns"), "ns",
            "summed down-edge -> declared-failed latency",
        )
        reprotect = profiler.counters.get("availability.time_to_reprotect_ns")
        if reprotect is not None:
            reg.record(
                "availability.time_to_reprotect_ns",
                max((delta for _, delta in reprotect.events()), default=0.0),
                "ns",
                "slowest down-edge -> replication-factor-restored latency",
            )

    # Resharding (repro.reshard): counters only exist on runs where the
    # planner adopted at least one migration plan, so balanced runs carry
    # no reshard metrics at all.  Names are hardcoded, as above.
    plans = profiler.counters.get("reshard.plans")
    if plans is not None:
        def reshard_total(name: str) -> float:
            counter = profiler.counters.get(name)
            return float(counter.total) if counter is not None else 0.0

        reg.record(
            "reshard.plans", float(plans.total), "plans",
            "migration plans adopted by the skew-aware planner",
        )
        reg.record(
            "reshard.moves", reshard_total("reshard.moves"), "moves",
            "table moves submitted for background migration",
        )
        reg.record(
            "reshard.migrations", reshard_total("reshard.migrations"),
            "migrations", "table migrations completed (cutover reached)",
        )
        reg.record(
            "reshard.migration_bytes", reshard_total("reshard.migration_bytes"),
            "bytes", "migration bytes streamed over the interconnect",
        )
        reg.record(
            "reshard.migration_ns", reshard_total("reshard.migration_ns"),
            "ns", "summed per-migration stream durations",
        )
        advisories = profiler.counters.get("reshard.advisories")
        if advisories is not None:
            reg.record(
                "reshard.advisories", float(advisories.total), "advisories",
                "row-split advisories for tables too hot to balance table-wise",
            )

    return reg
