"""Machine-readable run reports: one JSON artifact per simulated run.

:class:`RunReport` gathers everything a perf gate needs to diff two runs —
the workload identity, phase timings, derived metrics, per-link stats,
selected time series, cache/fault/serving counters — under a stable,
versioned schema.  ``to_json`` is canonical (sorted keys, plain floats),
so ``RunReport.from_json(r.to_json()).to_json() == r.to_json()`` holds
bit-exact and CI can diff artifacts textually.

:func:`collect_run_report` derives a report from a profiler record;
:func:`validate_report` checks an untrusted dict against the schema
(hand-rolled — no jsonschema dependency).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..obs.critpath import critical_path_report
from ..simgpu.interconnect import Topology
from ..simgpu.profiler import Profiler
from .metrics import BURSTINESS_BINS, MetricsRegistry, compute_metrics, link_stats
from .timeline import (
    comm_rate_series,
    compute_occupancy_series,
    gauge_series,
    run_window,
    sample_edges,
)

__all__ = [
    "SCHEMA_VERSION",
    "QUEUE_DEPTH_COUNTER",
    "IN_FLIGHT_COUNTER",
    "BATCH_FORMED_COUNTER",
    "ReportValidationError",
    "RunReport",
    "collect_run_report",
    "validate_report",
]

#: bump on any backwards-incompatible change to the report layout
#: (2: added the ``compression`` counter section;
#:  3: added the ``availability`` counter section;
#:  4: added the ``critical_path`` section;
#:  5: added the ``reshard`` counter section;
#:  6: added the ``hier`` counter section)
SCHEMA_VERSION = 6

#: level counter stamped by :class:`repro.core.serving.InferenceServer`
QUEUE_DEPTH_COUNTER = "serving.queue_depth"

#: level counter: batches currently executing on the cluster (≤ the
#: scheduler's ``max_in_flight``); stamped +1 at dispatch, −1 at completion
IN_FLIGHT_COUNTER = "serving.in_flight"

#: event-counter prefix: one count per formed batch, suffixed by the
#: formation trigger (``.size`` / ``.timeout`` / ``.exhausted``)
BATCH_FORMED_COUNTER = "serving.batches_formed"


class ReportValidationError(ValueError):
    """A report dict does not conform to the :data:`SCHEMA_VERSION` schema."""


def _plain(obj: Any) -> Any:
    """Recursively coerce to canonical plain-python JSON types.

    Numpy scalars/arrays become floats/lists, tuples become lists, ints
    stay ints — so two reports with equal content serialize identically.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return float(obj)
    if hasattr(obj, "item") and not isinstance(obj, (list, tuple, dict)):
        # numpy scalar
        return _plain(obj.item())
    if hasattr(obj, "tolist"):
        return _plain(obj.tolist())
    if isinstance(obj, dict):
        return {str(k): _plain(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_plain(v) for v in obj]
    if dataclasses.is_dataclass(obj):
        return _plain(dataclasses.asdict(obj))
    raise TypeError(f"cannot serialise {type(obj).__name__} into a run report")


@dataclass
class RunReport:
    """One run's complete telemetry artifact (see DESIGN.md §9 for schema)."""

    backend: str
    n_devices: int
    schema_version: int = SCHEMA_VERSION
    workload: Dict[str, Any] = field(default_factory=dict)
    timing: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    links: Dict[str, Dict[str, float]] = field(default_factory=dict)
    series: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    cache: Dict[str, float] = field(default_factory=dict)
    compression: Dict[str, float] = field(default_factory=dict)
    availability: Dict[str, float] = field(default_factory=dict)
    reshard: Dict[str, float] = field(default_factory=dict)
    hier: Dict[str, float] = field(default_factory=dict)
    critical_path: Dict[str, Any] = field(default_factory=dict)
    serving: Dict[str, Any] = field(default_factory=dict)
    faults: Dict[str, Any] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def registry(self) -> MetricsRegistry:
        """The metrics as a :class:`MetricsRegistry` view."""
        return MetricsRegistry.from_dict(self.metrics)

    def metric(self, name: str, default: float = float("nan")) -> float:
        """Shortcut: one metric's value (``default`` when absent)."""
        payload = self.metrics.get(name)
        return float(payload["value"]) if payload is not None else default

    def as_dict(self) -> Dict[str, Any]:
        """Canonical plain-dict form (what ``to_json`` serialises)."""
        return _plain(
            {
                "schema_version": self.schema_version,
                "backend": self.backend,
                "n_devices": self.n_devices,
                "workload": self.workload,
                "timing": self.timing,
                "metrics": self.metrics,
                "links": self.links,
                "series": self.series,
                "cache": self.cache,
                "compression": self.compression,
                "availability": self.availability,
                "reshard": self.reshard,
                "hier": self.hier,
                "critical_path": self.critical_path,
                "serving": self.serving,
                "faults": self.faults,
                "meta": self.meta,
            }
        )

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Canonical JSON: sorted keys, plain floats — diff- and hash-stable."""
        return json.dumps(self.as_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        """Rebuild from a dict; validates against the schema first."""
        validate_report(data)
        return cls(
            backend=data["backend"],
            n_devices=data["n_devices"],
            schema_version=data["schema_version"],
            workload=dict(data.get("workload", {})),
            timing=dict(data.get("timing", {})),
            metrics=dict(data.get("metrics", {})),
            links=dict(data.get("links", {})),
            series=dict(data.get("series", {})),
            cache=dict(data.get("cache", {})),
            compression=dict(data.get("compression", {})),
            availability=dict(data.get("availability", {})),
            reshard=dict(data.get("reshard", {})),
            hier=dict(data.get("hier", {})),
            critical_path=dict(data.get("critical_path", {})),
            serving=dict(data.get("serving", {})),
            faults=dict(data.get("faults", {})),
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        """Inverse of :meth:`to_json` (bit-exact round-trip)."""
        return cls.from_dict(json.loads(text))


#: top-level schema: key -> (required, allowed types)
_SCHEMA: Dict[str, tuple] = {
    "schema_version": (True, (int,)),
    "backend": (True, (str,)),
    "n_devices": (True, (int,)),
    "workload": (False, (dict,)),
    "timing": (False, (dict,)),
    "metrics": (True, (dict,)),
    "links": (False, (dict,)),
    "series": (False, (dict,)),
    "cache": (False, (dict,)),
    "compression": (False, (dict,)),
    "availability": (False, (dict,)),
    "reshard": (False, (dict,)),
    "hier": (False, (dict,)),
    "critical_path": (False, (dict,)),
    "serving": (False, (dict,)),
    "faults": (False, (dict,)),
    "meta": (False, (dict,)),
}


def validate_report(data: Any) -> None:
    """Raise :class:`ReportValidationError` unless ``data`` fits the schema."""
    if not isinstance(data, dict):
        raise ReportValidationError(f"report must be a dict, got {type(data).__name__}")
    for key, (required, types) in _SCHEMA.items():
        if key not in data:
            if required:
                raise ReportValidationError(f"missing required key {key!r}")
            continue
        if not isinstance(data[key], types) or isinstance(data[key], bool):
            raise ReportValidationError(
                f"key {key!r} must be {'/'.join(t.__name__ for t in types)}, "
                f"got {type(data[key]).__name__}"
            )
    unknown = set(data) - set(_SCHEMA)
    if unknown:
        raise ReportValidationError(f"unknown top-level keys: {sorted(unknown)}")
    if data["schema_version"] != SCHEMA_VERSION:
        raise ReportValidationError(
            f"schema_version {data['schema_version']} != supported {SCHEMA_VERSION}"
        )
    if data["n_devices"] < 1:
        raise ReportValidationError("n_devices must be >= 1")
    for name, payload in data["metrics"].items():
        if not isinstance(payload, dict) or "value" not in payload or "unit" not in payload:
            raise ReportValidationError(
                f"metric {name!r} must be a dict with 'value' and 'unit'"
            )
        if isinstance(payload["value"], bool) or not isinstance(
            payload["value"], (int, float)
        ):
            raise ReportValidationError(f"metric {name!r} value must be a number")
    for key in ("timing", "cache", "compression", "availability", "reshard", "hier"):
        for name, value in data.get(key, {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ReportValidationError(f"{key}[{name!r}] must be a number")
    cp = data.get("critical_path", {})
    if cp:
        for cp_key in ("wall_ns", "path_ns"):
            if cp_key not in cp:
                raise ReportValidationError(f"critical_path missing {cp_key!r}")
            if isinstance(cp[cp_key], bool) or not isinstance(cp[cp_key], (int, float)):
                raise ReportValidationError(f"critical_path[{cp_key!r}] must be a number")
        if not isinstance(cp.get("by_category", {}), dict):
            raise ReportValidationError("critical_path['by_category'] must be a dict")
        if not isinstance(cp.get("batches", []), list):
            raise ReportValidationError("critical_path['batches'] must be a list")
    for window in data.get("faults", {}).get("windows", []):
        for wkey in ("name", "t_start_ns", "t_end_ns"):
            if wkey not in window:
                raise ReportValidationError(f"fault window missing {wkey!r}")


def _counter_totals(profiler: Profiler, prefix: str) -> Dict[str, float]:
    """Grand totals of every counter whose name starts with ``prefix``."""
    return {
        name: float(counter.total)
        for name, counter in sorted(profiler.counters.items())
        if name.startswith(prefix)
    }


def _fault_windows(profiler: Profiler) -> List[Dict[str, Any]]:
    """Fault spans as plain window records."""
    return [
        {
            "name": s.name,
            "device": s.device_id,
            "t_start_ns": float(s.t_start),
            "t_end_ns": float(s.t_end),
        }
        for s in profiler.spans_by_category("fault")
    ]


def collect_run_report(
    profiler: Profiler,
    *,
    backend: str,
    n_devices: int,
    workload: Optional[Any] = None,
    timing: Optional[Any] = None,
    topology: Optional[Topology] = None,
    serving: Optional[Any] = None,
    n_bins: int = 240,
    include_series: bool = True,
    meta: Optional[Dict[str, Any]] = None,
) -> RunReport:
    """Derive a full :class:`RunReport` from one run's profiler record.

    ``workload``/``timing``/``serving`` accept either a plain dict or any
    object exposing ``as_dict()`` (``WorkloadConfig`` dataclasses also
    work).  Pass ``include_series=False`` to keep the artifact small
    (metrics and link stats are retained; the per-bin gauges are dropped).
    The ``critical_path`` section is derived from the same span record
    (run-level always; per-batch entries when the run was traced).
    """

    def to_dict(obj: Any) -> Dict[str, Any]:
        if obj is None:
            return {}
        if isinstance(obj, dict):
            return dict(obj)
        if hasattr(obj, "as_dict"):
            return dict(obj.as_dict())
        if dataclasses.is_dataclass(obj):
            return dataclasses.asdict(obj)
        raise TypeError(f"cannot convert {type(obj).__name__} into report payload")

    registry = compute_metrics(profiler, n_devices, topology=topology, n_bins=n_bins)
    t0, t1 = run_window(profiler)
    edges = sample_edges(t0, t1, n_bins)

    series: Dict[str, Dict[str, Any]] = {}
    if include_series:
        series["comm_rate"] = comm_rate_series(profiler, edges).as_dict()
        for dev in range(n_devices):
            ts = compute_occupancy_series(profiler, edges, dev)
            series[ts.name] = ts.as_dict()
        for gauge_name in (QUEUE_DEPTH_COUNTER, IN_FLIGHT_COUNTER):
            counter = profiler.counters.get(gauge_name)
            if counter is not None:
                series[gauge_name] = gauge_series(counter, edges).as_dict()

    faults: Dict[str, Any] = {}
    windows = _fault_windows(profiler)
    fault_counters = _counter_totals(profiler, "faults.")
    if windows or fault_counters:
        faults = {"windows": windows, "counters": fault_counters}

    # Burstiness-style link stats use the coarse grid (see BURSTINESS_BINS).
    burst_edges = sample_edges(t0, t1, min(BURSTINESS_BINS, n_bins))
    return RunReport(
        backend=backend,
        n_devices=n_devices,
        workload=to_dict(workload),
        timing=to_dict(timing),
        metrics=registry.as_dict(),
        links=link_stats(profiler, burst_edges, topology=topology),
        series=series,
        cache=_counter_totals(profiler, "cache."),
        compression=_counter_totals(profiler, "compress."),
        availability=_counter_totals(profiler, "availability."),
        reshard=_counter_totals(profiler, "reshard."),
        hier=_counter_totals(profiler, "hier."),
        critical_path=critical_path_report(profiler) if profiler.spans else {},
        serving=to_dict(serving),
        faults=faults,
        meta=dict(meta or {}),
    )
