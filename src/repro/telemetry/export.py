"""Derived-gauge counter tracks for the Chrome/Perfetto trace.

The base :func:`repro.simgpu.trace.chrome_trace` already exports raw
cumulative counters; this module adds the *derived* telemetry gauges —
aggregate comm rate, per-device compute occupancy, serving queue depth —
as additional ``'C'`` counter tracks (named ``telemetry.*``) so the
timeline view shows the paper's Figs. 7/10 series right next to the span
rows.  Fault windows are already rendered as instant events by the base
exporter.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from ..simgpu.profiler import Profiler
from ..simgpu.trace import chrome_trace
from ..simgpu.units import to_us
from .report import QUEUE_DEPTH_COUNTER
from .timeline import (
    TimeSeries,
    comm_rate_series,
    compute_occupancy_series,
    gauge_series,
    run_window,
    sample_edges,
)

__all__ = [
    "TELEMETRY_PID",
    "chrome_trace_with_telemetry",
    "telemetry_trace_events",
    "write_chrome_trace_with_telemetry",
]

#: synthetic pid that groups the derived-gauge tracks in the trace viewer
TELEMETRY_PID = 9998


def _counter_events(series: TimeSeries) -> List[Dict[str, Any]]:
    """One 'C' event per bin for a derived gauge."""
    name = f"telemetry.{series.name}"
    return [
        {
            "name": name,
            "ph": "C",
            "ts": to_us(float(t)),
            "pid": TELEMETRY_PID,
            "args": {name: float(v)},
        }
        for t, v in zip(series.times, series.values)
    ]


def telemetry_trace_events(
    profiler: Profiler, *, n_devices: int, n_bins: int = 240
) -> List[Dict[str, Any]]:
    """Derived-gauge counter tracks plus their process-name metadata row."""
    t0, t1 = run_window(profiler)
    if t1 <= t0:
        return []
    edges = sample_edges(t0, t1, n_bins)
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TELEMETRY_PID,
            "tid": 0,
            "args": {"name": "telemetry (derived gauges)"},
        }
    ]
    events.extend(_counter_events(comm_rate_series(profiler, edges)))
    for dev in range(n_devices):
        events.extend(_counter_events(compute_occupancy_series(profiler, edges, dev)))
    depth = profiler.counters.get(QUEUE_DEPTH_COUNTER)
    if depth is not None:
        events.extend(_counter_events(gauge_series(depth, edges, name="queue_depth")))
    return events


def chrome_trace_with_telemetry(
    profiler: Profiler, *, n_devices: int, n_bins: int = 240, **kwargs: Any
) -> Dict[str, Any]:
    """The base chrome trace plus the ``telemetry.*`` gauge tracks.

    ``kwargs`` pass through to :func:`repro.simgpu.trace.chrome_trace`
    (e.g. ``counters=False`` keeps only the derived tracks).
    """
    trace = chrome_trace(profiler, **kwargs)
    trace["traceEvents"].extend(
        telemetry_trace_events(profiler, n_devices=n_devices, n_bins=n_bins)
    )
    return trace


def write_chrome_trace_with_telemetry(
    profiler: Profiler, path: str, *, n_devices: int, **kwargs: Any
) -> None:
    """Serialise :func:`chrome_trace_with_telemetry` to ``path``."""
    with open(path, "w") as fh:
        json.dump(
            chrome_trace_with_telemetry(profiler, n_devices=n_devices, **kwargs), fh
        )
