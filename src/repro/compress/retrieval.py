"""Compressed distributed retrieval: the ``"+compress"`` backends.

:class:`CompressedRetrieval` wraps either base backend (``pgas`` or
``baseline``) with a row codec on the wire:

* the ``fp32`` codec is a **zero-overhead passthrough** — every call
  delegates to the unmodified base engine with the caller's own comm
  specs, so the timed path is event-for-event identical to the bare
  backend and the functional path is bit-identical;
* lossy codecs shrink every off-diagonal byte in the per-device
  workloads to the codec's wire size (payload + per-row scale), which
  automatically shrinks the baseline's all-to-all splits and unpack
  volume, the PGAS puts and their NVLink drag, and the per-message
  header count (one compressed vector per one-sided message — the PGAS
  spec's ``message_bytes`` is replaced by the codec's row wire bytes so
  each vector still pays exactly one header).

Compression is charged, not assumed free.  The **encode** pass is fused
into the EMB kernel: each device's kernel additionally streams its remote
fp32 outputs in and their wire form out (extra ``bytes_read`` /
``bytes_written`` on the same roofline), so waves retire — and PGAS puts
leave — correspondingly later.  The **decode** pass runs on the
*destination* device after the base pass completes: a memory-bound
kernel (launch + streamed bytes over achieved HBM bandwidth) priced by
:func:`~repro.compress.spec.compress_cost_model`, recorded as
``compress.decode.dev{g}`` spans and added to the ``sync_unpack`` phase.

The functional path mirrors :func:`~repro.core.functional.pgas_functional_forward`
but routes every *remote* slice through a real ``encode → decode``
round-trip, accumulating measured ``max_abs_error`` / RMSE against the
fp32 values and enforcing the spec's ``error_bound`` guard.  Counters
(``compress.bytes_on_wire``, ``compress.bytes_uncompressed``,
``compress.encode_ns``, ``compress.decode_ns``, error stats) feed
:func:`repro.telemetry.compute_metrics` and the run report.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..comm.pgas import PGASSpec
from ..core.baseline import BaselineRetrieval, PhaseTiming
from ..core.functional import ShardedEmbeddingTables
from ..core.pgas_retrieval import PGASFusedRetrieval
from ..core.retrieval import RetrievalBackend
from ..core.sharding import TableWiseSharding, minibatch_bounds
from ..core.workload import DeviceWorkload, unpack_bytes_received
from ..dlrm.batch import SparseBatch
from ..simgpu.cluster import Cluster
from .codec import Codec
from .spec import CompressionSpec

__all__ = [
    "CompressedRetrieval",
    "CompressionErrorStats",
    "WIRE_COUNTER",
    "RAW_COUNTER",
    "ENCODE_NS_COUNTER",
    "DECODE_NS_COUNTER",
    "MAX_ERROR_COUNTER",
    "SQ_ERROR_COUNTER",
    "ERROR_ELEMS_COUNTER",
]

#: Profiler counter names stamped by the timed path (also read by
#: ``repro.telemetry.metrics`` — keep the ``compress.`` prefix stable).
WIRE_COUNTER = "compress.bytes_on_wire"
RAW_COUNTER = "compress.bytes_uncompressed"
ENCODE_NS_COUNTER = "compress.encode_ns"
DECODE_NS_COUNTER = "compress.decode_ns"
#: counters stamped by the functional path (measured round-trip error)
MAX_ERROR_COUNTER = "compress.max_abs_error"
SQ_ERROR_COUNTER = "compress.sq_error"
ERROR_ELEMS_COUNTER = "compress.error_elems"


@dataclass
class CompressionErrorStats:
    """Measured round-trip error of the functional path."""

    max_abs_error: float = 0.0
    sq_error: float = 0.0
    n_elements: int = 0

    @property
    def rmse(self) -> float:
        """Root-mean-square error over every compared element."""
        if self.n_elements == 0:
            return 0.0
        return float(np.sqrt(self.sq_error / self.n_elements))

    def merge(self, other: "CompressionErrorStats") -> None:
        """Fold another batch's stats into this accumulator."""
        self.max_abs_error = max(self.max_abs_error, other.max_abs_error)
        self.sq_error += other.sq_error
        self.n_elements += other.n_elements


@dataclass
class _EncodeChargedWorkload(DeviceWorkload):
    """A workload whose kernel additionally streams the encode pass.

    ``codec_read_bytes`` (remote fp32 outputs re-read) and
    ``codec_write_bytes`` (their wire form written) inflate the roofline
    traffic of the inherited :meth:`DeviceWorkload.kernel_spec`, so the
    fused quantisation stretches the kernel — and delays wave retirement
    — instead of being a free pre-pass.
    """

    codec_read_bytes: float = 0.0
    codec_write_bytes: float = 0.0

    @property
    def bytes_read(self) -> float:
        return DeviceWorkload.bytes_read.fget(self) + self.codec_read_bytes

    @property
    def bytes_written(self) -> float:
        return DeviceWorkload.bytes_written.fget(self) + self.codec_write_bytes


class CompressedRetrieval(RetrievalBackend):
    """A base retrieval backend with codec-compressed remote transfers.

    Standalone use takes a cluster plus sharding plan; as a registered
    backend (``"pgas+compress"``, ``"baseline+compress"``) it is built
    from a :class:`~repro.core.retrieval.DistributedEmbedding` and its
    ``compression`` config.  Lossy codecs require all tables to share one
    float32 ``dim`` (one wire-row shape per cluster); the ``fp32``
    passthrough accepts anything the base backend does.
    """

    requires_indices = False

    def __init__(
        self,
        cluster: Cluster,
        plan: TableWiseSharding,
        spec: Optional[CompressionSpec] = None,
        *,
        base: str = "pgas",
        collective_spec=None,
        pgas_spec=None,
        sharded: Optional[ShardedEmbeddingTables] = None,
    ):
        if base not in ("pgas", "baseline"):
            raise ValueError(f"unknown base backend {base!r} (use 'pgas' or 'baseline')")
        if cluster.n_devices != plan.n_devices:
            raise ValueError(
                f"cluster has {cluster.n_devices} devices, plan has {plan.n_devices}"
            )
        self.cluster = cluster
        self.table_plan = plan
        self.base_name = base
        self.spec = spec or CompressionSpec()
        self.codec: Codec = self.spec.codec_obj()
        self.passthrough = self.spec.codec == "fp32"
        self.sharded = sharded
        self._row_wire_bytes: Optional[int] = None
        eff_pgas_spec = pgas_spec
        if not self.passthrough:
            dims = {t.dim for t in plan.table_configs}
            dtypes = {np.dtype(t.dtype) for t in plan.table_configs}
            if len(dims) != 1 or dtypes != {np.dtype(np.float32)}:
                raise ValueError(
                    "lossy compression needs tables sharing one dim with float32 weights"
                )
            self._dim = dims.pop()
            self._row_wire_bytes = self.codec.row_wire_bytes(self._dim)
            if base == "pgas":
                # One compressed vector per one-sided message: the per-row
                # scale rides in the same message and every vector still
                # pays exactly one wire header.
                eff_pgas_spec = dataclasses.replace(
                    pgas_spec or PGASSpec(), message_bytes=self._row_wire_bytes
                )
        if base == "pgas":
            self.base = PGASFusedRetrieval(cluster, eff_pgas_spec)
        else:
            self.base = BaselineRetrieval(cluster, collective_spec)
        #: lifetime error accumulation across functional batches
        self.errors = CompressionErrorStats()
        #: error stats of the most recent functional batch (None before one)
        self.last_batch_errors: Optional[CompressionErrorStats] = None

    # -- workload scaling ---------------------------------------------------------

    def _scaled_workloads(
        self, workloads: Sequence[DeviceWorkload]
    ) -> List[DeviceWorkload]:
        """Workloads whose off-diagonal bytes shrink to codec wire bytes.

        Destination-byte entries are exact vector counts times
        ``row_wire_bytes`` (no float drift), the local column is left at
        fp32 size (local vectors never cross the wire), and the fused
        encode traffic is attached via :class:`_EncodeChargedWorkload`.
        """
        if self.passthrough:
            return list(workloads)
        row_wire = float(self._row_wire_bytes)
        out: List[DeviceWorkload] = []
        for wl in workloads:
            counts = wl.block_dst_bytes / float(wl.row_bytes)
            dst = counts * row_wire
            if dst.size:
                dst[:, wl.device_id] = wl.block_dst_bytes[:, wl.device_id]
            raw_remote = wl.remote_output_bytes
            fields = {f.name: getattr(wl, f.name) for f in dataclasses.fields(DeviceWorkload)}
            fields["block_dst_bytes"] = dst
            swl = _EncodeChargedWorkload(
                **fields,
                codec_read_bytes=raw_remote,
                codec_write_bytes=raw_remote / wl.row_bytes * row_wire,
            )
            out.append(swl)
        return out

    def wire_bytes_for(self, workloads: Sequence[DeviceWorkload]) -> Tuple[float, float]:
        """``(uncompressed, on_wire)`` remote payload bytes of one batch."""
        raw = float(sum(wl.remote_output_bytes for wl in workloads))
        if self.passthrough:
            return raw, raw
        scaled = self._scaled_workloads(workloads)
        return raw, float(sum(swl.remote_output_bytes for swl in scaled))

    # -- timed path ---------------------------------------------------------------

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Simulate one batch; decode is charged on the destinations."""
        if self.passthrough:
            # Zero-overhead passthrough: same events, spans, counters, and
            # timing as the bare base backend.
            return self.base.run_batch(workloads)
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self.batch_process(cl, workloads, timing))
        return timing

    def batch_process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PhaseTiming,
        stream_suffix: str = "",
    ):
        """Process generator for one batch — composable into larger host
        programs.  ``stream_suffix`` passes through to the wrapped backend's
        per-batch stream set."""
        if self.passthrough:
            yield from self.base.batch_process(
                cluster, workloads, timing, stream_suffix=stream_suffix
            )
            return
        if len(workloads) != cluster.n_devices:
            raise ValueError(
                f"got {len(workloads)} workloads for {cluster.n_devices} devices"
            )
        engine = cluster.engine
        prof = cluster.profiler
        spec0 = cluster.devices[0].spec
        scaled = self._scaled_workloads(workloads)

        # Base pass over the shrunk workloads: the EMB kernels carry the
        # fused encode traffic, the wire moves codec bytes.
        yield from self.base.batch_process(
            cluster, scaled, timing, stream_suffix=stream_suffix
        )

        # Decode pass: each destination dequantises what it received.
        t2 = engine.now
        encode_ns = 0.0
        decode_ns = 0.0
        dec_ops = []
        for dev, wl, swl in zip(cluster.devices, workloads, scaled):
            encode_ns += self.spec.encode_cost_ns(
                wl.remote_output_bytes, swl.remote_output_bytes, dev.spec
            )
            wire_in = unpack_bytes_received(scaled, dev.id)
            if wire_in <= 0:
                continue
            raw_in = unpack_bytes_received(workloads, dev.id)
            dec = self.spec.decode_cost_ns(raw_in, wire_in, dev.spec)
            decode_ns += dec
            stream = dev.stream("default" + stream_suffix)
            dec_ops.append(
                (
                    dev.id,
                    stream.submit_delay(
                        dev.spec.kernel_launch_overhead_ns + dec,
                        name=f"decode.dev{dev.id}",
                    ),
                )
            )
        if dec_ops:
            yield engine.all_of([op.done for _, op in dec_ops])
            yield engine.timeout(spec0.sync_overhead_ns)
            t3 = engine.now
            for dev_id, _op in dec_ops:
                prof.record_span(f"compress.decode.dev{dev_id}", "compress", dev_id, t2, t3)
            # The base pass assigned its phase fields; the decode tail is
            # extra staging on top of them.
            timing.sync_unpack_ns += t3 - t2
            timing.total_ns += t3 - t2
        self._stamp_counters(workloads, scaled, encode_ns, decode_ns)

    def _stamp_counters(
        self,
        workloads: Sequence[DeviceWorkload],
        scaled: Sequence[DeviceWorkload],
        encode_ns: float,
        decode_ns: float,
    ) -> None:
        prof = self.cluster.profiler
        t = self.cluster.engine.now
        raw = sum(wl.remote_output_bytes for wl in workloads)
        wire = sum(swl.remote_output_bytes for swl in scaled)
        prof.add_count(WIRE_COUNTER, t, float(wire), unit="bytes")
        prof.add_count(RAW_COUNTER, t, float(raw), unit="bytes")
        prof.add_count(ENCODE_NS_COUNTER, t, float(encode_ns), unit="ns")
        prof.add_count(DECODE_NS_COUNTER, t, float(decode_ns), unit="ns")

    # -- functional path ----------------------------------------------------------

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """Numpy forward with the real codec round-trip on remote slices.

        Local (``src == dst``) vectors never cross the wire and stay
        exact; remote slices go through ``encode → decode``.  Measured
        error statistics accumulate on :attr:`errors` /
        :attr:`last_batch_errors` and are stamped as ``compress.*``
        counters; a configured ``error_bound`` is enforced here.
        """
        if self.sharded is None:
            raise ValueError("functional forward needs materialize=True weights")
        if self.passthrough:
            from ..core.functional import (
                baseline_functional_forward,
                pgas_functional_forward,
            )

            if self.base_name == "pgas":
                return pgas_functional_forward(self.sharded, batch)
            outputs, _blocks = baseline_functional_forward(self.sharded, batch)
            return outputs

        plan = self.table_plan
        G = plan.n_devices
        bounds = minibatch_bounds(batch.batch_size, G)
        F = plan.num_tables
        dim = self.sharded.dim
        stats = CompressionErrorStats()
        outputs = [
            np.zeros((hi - lo, F, dim), dtype=self.sharded.dtype) for lo, hi in bounds
        ]
        for src in range(G):
            cols = plan.feature_indices_on(src)
            for j, table in enumerate(self.sharded.per_device[src]):
                pooled = table.forward(batch.field(table.name))  # (B, d)
                for dst, (lo, hi) in enumerate(bounds):
                    rows = pooled[lo:hi]
                    if dst == src:
                        outputs[dst][:, cols[j], :] = rows
                        continue
                    decoded = self.codec.roundtrip(rows)
                    err = np.abs(decoded.astype(np.float64) - rows.astype(np.float64))
                    if err.size:
                        stats.max_abs_error = max(stats.max_abs_error, float(err.max()))
                        stats.sq_error += float(np.square(err).sum())
                        stats.n_elements += int(err.size)
                    outputs[dst][:, cols[j], :] = decoded
        if (
            self.spec.error_bound is not None
            and stats.max_abs_error > self.spec.error_bound
        ):
            raise ValueError(
                f"codec {self.codec.name!r} exceeded the configured error bound: "
                f"max |err| {stats.max_abs_error:.3e} > {self.spec.error_bound:.3e}"
            )
        self.errors.merge(stats)
        self.last_batch_errors = stats
        self._stamp_error_counters(stats)
        return outputs

    def _stamp_error_counters(self, stats: CompressionErrorStats) -> None:
        prof = self.cluster.profiler
        t = self.cluster.engine.now
        prof.add_count(MAX_ERROR_COUNTER, t, float(stats.max_abs_error), unit="abs")
        prof.add_count(SQ_ERROR_COUNTER, t, float(stats.sq_error), unit="abs^2")
        prof.add_count(ERROR_ELEMS_COUNTER, t, float(stats.n_elements), unit="elems")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CompressedRetrieval base={self.base_name} codec={self.codec.name} "
            f"G={self.cluster.n_devices}>"
        )
