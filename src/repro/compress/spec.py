"""Validated compression configuration and the encode/decode cost model.

:class:`CompressionSpec` is the frozen value carried by
:class:`~repro.core.runspec.RunSpec` and
:class:`~repro.core.retrieval.DistributedEmbedding` (the ``compression=``
keyword): which codec, plus an optional hard ``error_bound`` guard the
functional path enforces against the *measured* round-trip error.

:func:`compress_cost_model` is the simulator-side price of a codec pass.
Compression is not free: encode reads the fp32 output and writes the wire
form, decode reads the wire form and writes fp32 — both are memory-bound
streaming kernels, so their time is total bytes moved over the device's
achieved HBM bandwidth (the same roofline the EMB kernel uses).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simgpu.device import DeviceSpec
from .codec import Codec, make_codec

__all__ = ["CompressionSpec", "compress_cost_model"]


def compress_cost_model(nbytes: float, device_spec: DeviceSpec) -> float:
    """Time (ns) of a memory-bound codec pass moving ``nbytes`` total.

    ``nbytes`` counts reads *and* writes (encode: fp32 in + wire out;
    decode: wire in + fp32 out), streamed at the device's achieved HBM
    bandwidth.
    """
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    return float(nbytes) / device_spec.effective_mem_bandwidth


@dataclass(frozen=True)
class CompressionSpec:
    """One experiment's compression configuration (validated, frozen).

    Attributes
    ----------
    codec:
        Codec name: ``"fp32"`` (bit-identical passthrough), ``"fp16"``,
        ``"int8"``, or ``"int4"``.
    error_bound:
        Optional hard cap on the measured per-element absolute error of
        the functional round-trip.  The compressed backends raise
        ``ValueError`` when a batch exceeds it — a quality guard, not an
        adaptive control loop.
    """

    codec: str = "fp32"
    error_bound: Optional[float] = None

    def __post_init__(self) -> None:
        make_codec(self.codec)  # unknown codec names raise here
        if self.error_bound is not None and not (self.error_bound >= 0):
            raise ValueError(
                f"error_bound must be non-negative, got {self.error_bound}"
            )

    @property
    def lossless(self) -> bool:
        """True when the configured codec reconstructs bit-identically."""
        return self.codec_obj().lossless

    def codec_obj(self) -> Codec:
        """A (stateless) codec instance for this spec."""
        return make_codec(self.codec)

    # -- cost model -------------------------------------------------------------

    def encode_cost_ns(
        self, fp32_bytes: float, wire_bytes: float, device_spec: DeviceSpec
    ) -> float:
        """Source-side encode time: read fp32, write the wire form."""
        if self.codec == "fp32":
            return 0.0  # passthrough sends the kernel output as-is
        return compress_cost_model(fp32_bytes + wire_bytes, device_spec)

    def decode_cost_ns(
        self, fp32_bytes: float, wire_bytes: float, device_spec: DeviceSpec
    ) -> float:
        """Destination-side decode time: read the wire form, write fp32."""
        if self.codec == "fp32":
            return 0.0
        return compress_cost_model(fp32_bytes + wire_bytes, device_spec)
