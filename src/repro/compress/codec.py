"""Embedding-row codecs: real numpy encode/decode + exact wire accounting.

A :class:`Codec` turns a ``(n, d)`` float32 matrix of pooled embedding
vectors into a wire payload and back.  Both halves matter equally here:

* **bytes** — every codec reports its exact wire footprint
  (:meth:`Codec.row_wire_bytes` = payload + per-row scale overhead;
  :meth:`Codec.wire_bytes` additionally charges the PGAS per-message
  header when one vector rides per one-sided message), so the timed
  simulation and the byte-accounting tests agree to the byte;
* **values** — :meth:`Codec.encode` / :meth:`Codec.decode` run the actual
  quantisation arithmetic on numpy arrays, so functional outputs and
  quantisation error are *computed*, never estimated.

Codecs
------
``fp32``
    Bit-identical passthrough; the zero-overhead reference.
``fp16``
    IEEE half precision, no scale (relative error ~2⁻¹¹).
``int8`` / ``int4``
    Row-wise scaled symmetric quantisation: one float32 absmax-derived
    scale per row rides alongside the payload.  ``int4`` packs two
    4-bit levels (±7) per byte.

:meth:`Codec.error_bound` returns the *per-row* worst-case absolute
error each codec guarantees, derived from the same absmax the encoder
used — the bound the round-trip property tests and the
``CompressionSpec.error_bound`` guard check against.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Type

import numpy as np

__all__ = [
    "CODEC_NAMES",
    "Codec",
    "EncodedRows",
    "FP16Codec",
    "FP32Codec",
    "Int4Codec",
    "Int8Codec",
    "make_codec",
    "roundtrip_error_report",
]

#: largest finite fp16 value; rows with a bigger absmax overflow to inf
_FP16_MAX = 65504.0


@dataclass
class EncodedRows:
    """One encoded ``(n_rows, dim)`` matrix plus its wire accounting."""

    codec: str
    data: np.ndarray  #: quantised payload (dtype depends on the codec)
    scales: Optional[np.ndarray]  #: per-row float32 scales (None when scale-free)
    n_rows: int
    dim: int

    @property
    def payload_nbytes(self) -> int:
        """Exact bytes of the quantised values."""
        return int(self.data.nbytes)

    @property
    def scale_nbytes(self) -> int:
        """Exact bytes of the per-row scales riding alongside."""
        return int(self.scales.nbytes) if self.scales is not None else 0

    @property
    def wire_nbytes(self) -> int:
        """Payload + scale bytes this matrix occupies on the wire."""
        return self.payload_nbytes + self.scale_nbytes


def _check_rows(rows: np.ndarray) -> np.ndarray:
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"codec input must be 2-D (n_rows, dim), got shape {rows.shape}")
    if rows.dtype != np.float32:
        raise ValueError(f"codec input must be float32, got {rows.dtype}")
    return rows


class Codec(ABC):
    """One embedding-row compression scheme (stateless)."""

    name: str = ""
    #: per-row float32 scale overhead on the wire (0 for scale-free codecs)
    scale_bytes_per_row: int = 0
    #: True when decode(encode(x)) == x bit-for-bit
    lossless: bool = False

    # -- wire accounting --------------------------------------------------------

    @abstractmethod
    def payload_bytes(self, dim: int) -> int:
        """Exact payload bytes of one encoded ``dim``-vector."""

    def row_wire_bytes(self, dim: int) -> int:
        """Wire bytes of one vector: payload + its share of the scales."""
        return self.payload_bytes(dim) + self.scale_bytes_per_row

    def wire_bytes(self, n_rows: int, dim: int, *, header_bytes: int = 0) -> int:
        """Exact wire bytes of ``n_rows`` vectors.

        ``header_bytes`` charges the PGAS per-message framing — one
        compressed vector (payload + scale) rides per one-sided message,
        so each row pays one header.
        """
        if n_rows < 0:
            raise ValueError("n_rows must be non-negative")
        return n_rows * (self.row_wire_bytes(dim) + header_bytes)

    def compression_ratio(self, dim: int) -> float:
        """fp32 bytes over wire bytes for one ``dim``-vector."""
        return 4.0 * dim / self.row_wire_bytes(dim)

    # -- values -----------------------------------------------------------------

    @abstractmethod
    def encode(self, rows: np.ndarray) -> EncodedRows:
        """Quantise a float32 ``(n, d)`` matrix into its wire form."""

    @abstractmethod
    def decode(self, enc: EncodedRows) -> np.ndarray:
        """Reconstruct the float32 ``(n, d)`` matrix from its wire form."""

    def roundtrip(self, rows: np.ndarray) -> np.ndarray:
        """``decode(encode(rows))`` — the values the destination sees."""
        return self.decode(self.encode(rows))

    @abstractmethod
    def error_bound(self, rows: np.ndarray) -> np.ndarray:
        """Per-row worst-case ``|decoded - original|``, shape ``(n,)``."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Codec {self.name}>"


class FP32Codec(Codec):
    """Bit-identical passthrough: the uncompressed reference wire format."""

    name = "fp32"
    lossless = True

    def payload_bytes(self, dim: int) -> int:
        return 4 * dim

    def encode(self, rows: np.ndarray) -> EncodedRows:
        rows = _check_rows(rows)
        return EncodedRows("fp32", rows, None, rows.shape[0], rows.shape[1])

    def decode(self, enc: EncodedRows) -> np.ndarray:
        return enc.data

    def error_bound(self, rows: np.ndarray) -> np.ndarray:
        rows = _check_rows(rows)
        return np.zeros(rows.shape[0], dtype=np.float64)


class FP16Codec(Codec):
    """IEEE half-precision cast: no scales, ~2⁻¹¹ relative error."""

    name = "fp16"

    def payload_bytes(self, dim: int) -> int:
        return 2 * dim

    def encode(self, rows: np.ndarray) -> EncodedRows:
        rows = _check_rows(rows)
        return EncodedRows(
            "fp16", rows.astype(np.float16), None, rows.shape[0], rows.shape[1]
        )

    def decode(self, enc: EncodedRows) -> np.ndarray:
        return enc.data.astype(np.float32)

    def error_bound(self, rows: np.ndarray) -> np.ndarray:
        rows = _check_rows(rows)
        absmax = np.abs(rows).max(axis=1, initial=0.0).astype(np.float64)
        # Half-epsilon relative error plus the subnormal absolute floor;
        # values past the finite range overflow to inf (unbounded error).
        bound = absmax * 2.0 ** -11 + 2.0 ** -24
        return np.where(absmax > _FP16_MAX, np.inf, bound)


def _row_absmax(rows: np.ndarray) -> np.ndarray:
    return np.abs(rows).max(axis=1, initial=0.0).astype(np.float64)


class Int8Codec(Codec):
    """Row-wise scaled symmetric int8: levels ±127, one fp32 scale per row."""

    name = "int8"
    scale_bytes_per_row = 4
    _levels = 127

    def payload_bytes(self, dim: int) -> int:
        return dim

    def encode(self, rows: np.ndarray) -> EncodedRows:
        rows = _check_rows(rows)
        absmax = _row_absmax(rows)
        scales = (absmax / self._levels).astype(np.float32)
        safe = np.where(scales > 0, scales, 1.0).astype(np.float64)
        q = np.rint(rows.astype(np.float64) / safe[:, None])
        q = np.clip(q, -self._levels, self._levels).astype(np.int8)
        return EncodedRows("int8", q, scales, rows.shape[0], rows.shape[1])

    def decode(self, enc: EncodedRows) -> np.ndarray:
        assert enc.scales is not None
        return (
            enc.data.astype(np.float64) * enc.scales.astype(np.float64)[:, None]
        ).astype(np.float32)

    def error_bound(self, rows: np.ndarray) -> np.ndarray:
        rows = _check_rows(rows)
        absmax = _row_absmax(rows)
        # Half a quantisation step (absmax / 254) plus the float32
        # rounding of the reconstructed value.
        return absmax / (2.0 * self._levels) + absmax * 2.0 ** -23


class Int4Codec(Codec):
    """Row-wise scaled symmetric int4: levels ±7, two values packed per byte."""

    name = "int4"
    scale_bytes_per_row = 4
    _levels = 7

    def payload_bytes(self, dim: int) -> int:
        return math.ceil(dim / 2)

    def encode(self, rows: np.ndarray) -> EncodedRows:
        rows = _check_rows(rows)
        n, d = rows.shape
        absmax = _row_absmax(rows)
        scales = (absmax / self._levels).astype(np.float32)
        safe = np.where(scales > 0, scales, 1.0).astype(np.float64)
        q = np.rint(rows.astype(np.float64) / safe[:, None])
        q = np.clip(q, -self._levels, self._levels).astype(np.int64) + self._levels
        if d % 2:  # pad odd dims with a zero nibble
            q = np.concatenate([q, np.full((n, 1), self._levels, dtype=np.int64)], axis=1)
        # low nibble = even column, high nibble = odd column
        packed = (q[:, 0::2] | (q[:, 1::2] << 4)).astype(np.uint8)
        return EncodedRows("int4", packed, scales, n, d)

    def decode(self, enc: EncodedRows) -> np.ndarray:
        assert enc.scales is not None
        packed = enc.data.astype(np.int64)
        q = np.empty((enc.n_rows, packed.shape[1] * 2), dtype=np.int64)
        q[:, 0::2] = packed & 0x0F
        q[:, 1::2] = packed >> 4
        q = q[:, : enc.dim] - self._levels
        return (
            q.astype(np.float64) * enc.scales.astype(np.float64)[:, None]
        ).astype(np.float32)

    def error_bound(self, rows: np.ndarray) -> np.ndarray:
        rows = _check_rows(rows)
        absmax = _row_absmax(rows)
        return absmax / (2.0 * self._levels) + absmax * 2.0 ** -23


_CODECS: Dict[str, Type[Codec]] = {
    "fp32": FP32Codec,
    "fp16": FP16Codec,
    "int8": Int8Codec,
    "int4": Int4Codec,
}

#: registered codec names in preferred display order
CODEC_NAMES = tuple(_CODECS)


def make_codec(name: str) -> Codec:
    """Instantiate a codec by name; unknown names raise ``ValueError``."""
    try:
        return _CODECS[name]()
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; available: {', '.join(CODEC_NAMES)}"
        ) from None


def roundtrip_error_report(codec: Codec, rows: np.ndarray) -> Dict[str, float]:
    """Measured round-trip error of ``codec`` on real data.

    Encodes and decodes ``rows`` (real numpy arithmetic, no estimation) and
    returns ``max_abs_error`` / ``rmse`` of the reconstruction, the largest
    per-row ``error_bound``, and ``within_bound`` — whether every row's
    measured error respects its own bound.
    """
    rows = _check_rows(rows)
    decoded = codec.roundtrip(rows)
    err = np.abs(decoded.astype(np.float64) - rows.astype(np.float64))
    bound = codec.error_bound(rows)
    if err.size == 0:
        return {
            "max_abs_error": 0.0,
            "rmse": 0.0,
            "error_bound": 0.0,
            "within_bound": True,
        }
    per_row = err.max(axis=1)
    return {
        "max_abs_error": float(err.max()),
        "rmse": float(np.sqrt(np.mean(np.square(err)))),
        "error_bound": float(bound.max()),
        "within_bound": bool(np.all(per_row <= bound)),
    }
