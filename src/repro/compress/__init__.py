"""Communication compression subsystem: quantized embedding transfer.

The paper's speedup comes from changing *how* retrieval bytes move
(one-sided fine-grained writes vs. bulk all-to-all); this package adds
the complementary lever — moving *fewer* bytes.  Embedding rows are
quantised before they cross the interconnect and dequantised on arrival,
on **both** comm paths:

* :mod:`repro.compress.codec` — the :class:`Codec` ABC and concrete
  codecs (``fp32`` bit-identical passthrough, ``fp16``, row-wise scaled
  ``int8`` / ``int4``) with exact wire accounting (payload + per-row
  scale + PGAS per-message headers) and real numpy encode/decode;
* :mod:`repro.compress.spec` — the frozen :class:`CompressionSpec`
  (codec choice + hard error-bound guard) and
  :func:`compress_cost_model`, which prices encode/decode as
  memory-bound kernel passes — compression is not free;
* :mod:`repro.compress.retrieval` — :class:`CompressedRetrieval`, which
  fronts either base backend: the baseline's all-to-all splits and
  unpack volume and the PGAS puts all shrink to codec wire bytes, the
  encode pass is fused into the EMB kernel, and the decode pass is
  charged on the destination device.

Importing this package registers the ``"pgas+compress"`` and
``"baseline+compress"`` backends with the core registry, so

>>> emb = DistributedEmbedding(cfg, n_devices=2, backend="pgas+compress",
...                            features=FeatureSpec(compression=CompressionSpec(codec="int8")))

works exactly like the uncompressed backends (``repro`` imports it for
you).
"""

from __future__ import annotations

from ..core.factory import build_adapter
from ..core.retrieval import register_backend
from .codec import (
    CODEC_NAMES,
    Codec,
    EncodedRows,
    FP16Codec,
    FP32Codec,
    Int4Codec,
    Int8Codec,
    make_codec,
    roundtrip_error_report,
)
from .retrieval import (
    DECODE_NS_COUNTER,
    ENCODE_NS_COUNTER,
    ERROR_ELEMS_COUNTER,
    MAX_ERROR_COUNTER,
    RAW_COUNTER,
    SQ_ERROR_COUNTER,
    WIRE_COUNTER,
    CompressedRetrieval,
    CompressionErrorStats,
)
from .spec import CompressionSpec, compress_cost_model

__all__ = [
    "CODEC_NAMES",
    "Codec",
    "CompressedRetrieval",
    "CompressionErrorStats",
    "CompressionSpec",
    "DECODE_NS_COUNTER",
    "ENCODE_NS_COUNTER",
    "ERROR_ELEMS_COUNTER",
    "EncodedRows",
    "FP16Codec",
    "FP32Codec",
    "Int4Codec",
    "Int8Codec",
    "MAX_ERROR_COUNTER",
    "RAW_COUNTER",
    "SQ_ERROR_COUNTER",
    "WIRE_COUNTER",
    "compress_cost_model",
    "compressed_retrieval_for",
    "make_codec",
    "roundtrip_error_report",
]


def compressed_retrieval_for(emb, base: str) -> CompressedRetrieval:
    """Build a :class:`CompressedRetrieval` bound to a
    :class:`~repro.core.retrieval.DistributedEmbedding` (the registry
    factories' shared implementation)."""
    spec = emb.compression_config
    if spec is not None and not isinstance(spec, CompressionSpec):
        raise TypeError(
            f"DistributedEmbedding compression must be a CompressionSpec, "
            f"got {type(spec).__name__}"
        )
    return CompressedRetrieval(
        emb.cluster,
        emb.plan,
        spec or CompressionSpec(),
        base=base,
        collective_spec=emb.collective_spec,
        pgas_spec=emb.pgas_spec,
        sharded=emb.sharded,
    )


# Thin aliases: composition lives in repro.core.factory.build_adapter.
register_backend(
    "pgas+compress",
    lambda emb: build_adapter(emb, "pgas+compress"),
    description="PGAS retrieval with quantized one-sided writes (fp32/fp16/int8/int4 row codecs)",
)
register_backend(
    "baseline+compress",
    lambda emb: build_adapter(emb, "baseline+compress"),
    description="collective retrieval with quantized all-to-all payloads and a destination-side decode pass",
)
