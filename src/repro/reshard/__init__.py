"""Skew-aware online resharding: dynamic load balancing of table shards.

Static table-wise placement balances *capacity*, but real recommendation
traffic is zipf-skewed per table: a handful of hot tables can leave one
GPU moving several times the retrieval bytes of its neighbours, and the
hot device's EMB + comm time bounds every batch.  This package adds the
closed observe → plan → migrate → cutover loop that fixes the placement
online:

* :mod:`repro.reshard.spec` — the frozen :class:`ReshardSpec` policy
  (window length, planning cadence, imbalance threshold, move budget,
  migration bandwidth share);
* :mod:`repro.reshard.tracker` — :class:`LoadTracker`, sliding-window
  per-table traffic from what the retrieval layer already knows (batch
  lookup bytes, optional cache hit rates);
* :mod:`repro.reshard.planner` — :class:`ReshardPlanner`, greedy
  whole-table moves under :class:`~repro.simgpu.memory.MemoryPool`
  capacity, plus :class:`RowSplitAdvisory` for tables too hot for any
  table-wise placement;
* :mod:`repro.reshard.executor` — :class:`ReshardExecutor`, background
  engine processes streaming moving shards over the real interconnect,
  chunked and bandwidth-share-paced like replication recovery;
* :mod:`repro.reshard.retrieval` — :class:`ReshardRetrieval`, the
  serving wrapper: batches snapshot ownership at start and migrating
  tables keep serving from the old owner until their last chunk lands,
  so functional outputs stay bit-identical throughout.

Importing this package registers the ``"pgas+reshard"`` and
``"baseline+reshard"`` backends with the core registry, so

>>> emb = DistributedEmbedding(cfg, n_devices=4, backend="pgas+reshard",
...                            features=FeatureSpec(reshard=ReshardSpec()))

works exactly like the static backends (``repro`` imports it for you).
"""

from __future__ import annotations

from ..core.factory import build_adapter
from ..core.retrieval import register_backend
from .executor import (
    ADVISORIES_COUNTER,
    MIGRATION_BYTES_COUNTER,
    MIGRATION_NS_COUNTER,
    MIGRATIONS_COUNTER,
    MOVES_COUNTER,
    PLANS_COUNTER,
    ReshardExecutor,
)
from .planner import MigrationPlan, ReshardPlanner, RowSplitAdvisory, TableMove
from .retrieval import ReshardLedger, ReshardRetrieval
from .spec import ReshardSpec
from .tracker import LoadTracker

__all__ = [
    "ADVISORIES_COUNTER",
    "LoadTracker",
    "MIGRATIONS_COUNTER",
    "MIGRATION_BYTES_COUNTER",
    "MIGRATION_NS_COUNTER",
    "MOVES_COUNTER",
    "MigrationPlan",
    "PLANS_COUNTER",
    "ReshardExecutor",
    "ReshardLedger",
    "ReshardPlanner",
    "ReshardRetrieval",
    "ReshardSpec",
    "RowSplitAdvisory",
    "TableMove",
    "reshard_retrieval_for",
]


def reshard_retrieval_for(emb, base: str) -> ReshardRetrieval:
    """Build a :class:`ReshardRetrieval` bound to a
    :class:`~repro.core.retrieval.DistributedEmbedding` (the registry
    factories' shared implementation)."""
    spec = emb.reshard_config
    if spec is not None and not isinstance(spec, ReshardSpec):
        raise TypeError(
            f"DistributedEmbedding reshard must be a ReshardSpec, "
            f"got {type(spec).__name__}"
        )
    return ReshardRetrieval(
        emb.cluster,
        emb.plan,
        spec or ReshardSpec(),
        base=base,
        collective_spec=emb.collective_spec,
        pgas_spec=emb.pgas_spec,
        sharded=emb.sharded,
        weight_buffers=emb.weight_buffer_map(),
    )


# Thin aliases: composition lives in repro.core.factory.build_adapter.
register_backend(
    "pgas+reshard",
    lambda emb: build_adapter(emb, "pgas+reshard"),
    description="PGAS retrieval with skew-aware online table migration and serve-from-old-owner cutover",
)
register_backend(
    "baseline+reshard",
    lambda emb: build_adapter(emb, "baseline+reshard"),
    description="collective retrieval with skew-aware online table migration and serve-from-old-owner cutover",
)
