"""Resharding policy: when to re-balance and how fast to move shards.

A :class:`ReshardSpec` configures the skew-aware online load balancer:
how much traffic history the :class:`~repro.reshard.tracker.LoadTracker`
keeps, how lopsided the per-device traffic must get before the
:class:`~repro.reshard.planner.ReshardPlanner` acts, how many tables one
:class:`~repro.reshard.planner.MigrationPlan` may move, and how
aggressively the :class:`~repro.reshard.executor.ReshardExecutor` may
use the interconnect while foreground batches are running.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simgpu.units import MiB

__all__ = ["ReshardSpec"]


@dataclass(frozen=True)
class ReshardSpec:
    """Policy knobs of the skew-aware online resharding layer.

    Attributes
    ----------
    window_batches:
        Sliding-window length of the load tracker, in batches.  Planning
        decisions look at the traffic of the most recent ``window_batches``
        batches only, so the balancer adapts when the skew shifts.
    min_batches:
        Batches that must be observed before the planner may act at all
        (avoids re-balancing on one batch's noise).
    check_interval_batches:
        Planning cadence: imbalance is evaluated every this many batches.
    imbalance_threshold:
        Max/mean per-device traffic ratio above which a migration plan is
        drawn up.  ``1.0`` is perfect balance; must be ``>= 1.0``.  A
        uniform workload sits at ~1.0 and never triggers.
    max_moves_per_plan:
        Cap on table moves in one plan; remaining imbalance is left for
        the next planning round (keeps each migration burst bounded).
    migration_bandwidth_share:
        Fraction of link bandwidth one migration stream may consume, in
        ``(0, 1]``.  Chunks pace themselves so foreground retrieval
        traffic keeps the rest, exactly like replication recovery.
    migration_chunk_bytes:
        Granularity of migration transfers (pacing quantum).
    """

    window_batches: int = 8
    min_batches: int = 2
    check_interval_batches: int = 4
    imbalance_threshold: float = 1.25
    max_moves_per_plan: int = 4
    migration_bandwidth_share: float = 0.25
    migration_chunk_bytes: int = 4 * MiB

    def __post_init__(self) -> None:
        if self.window_batches < 1:
            raise ValueError("window_batches must be >= 1")
        if self.min_batches < 1:
            raise ValueError("min_batches must be >= 1")
        if self.min_batches > self.window_batches:
            raise ValueError(
                f"min_batches ({self.min_batches}) cannot exceed "
                f"window_batches ({self.window_batches})"
            )
        if self.check_interval_batches < 1:
            raise ValueError("check_interval_batches must be >= 1")
        if self.imbalance_threshold < 1.0:
            raise ValueError(
                f"imbalance_threshold must be >= 1.0 (max/mean ratio), "
                f"got {self.imbalance_threshold}"
            )
        if self.max_moves_per_plan < 1:
            raise ValueError("max_moves_per_plan must be >= 1")
        if not (0.0 < self.migration_bandwidth_share <= 1.0):
            raise ValueError(
                f"migration_bandwidth_share must be in (0, 1], "
                f"got {self.migration_bandwidth_share}"
            )
        if self.migration_chunk_bytes <= 0:
            raise ValueError("migration_chunk_bytes must be positive")
