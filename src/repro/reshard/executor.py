"""Migration execution: stream moving shards over the real interconnect.

The :class:`ReshardExecutor` turns a :class:`~repro.reshard.planner.
MigrationPlan` into background engine processes, one per table move,
reusing the chunked, bandwidth-share-paced transfer discipline of the
replication recovery stream (`repro.replication.retrieval`): each chunk
occupies the link for its real simulated duration (so migration bytes
compete with, and are visible next to, foreground retrieval traffic in
Chrome traces), then idles long enough that the stream averages the
configured bandwidth share.

Cutover protocol
----------------
The destination's :class:`~repro.simgpu.memory.MemoryPool` buffer is
reserved *at submit time* (so the space is committed before any bytes
move; a destination without room rejects the move).  While the stream is
in flight the table keeps serving from its old owner — batches snapshot
ownership at batch start, so no batch ever observes a half-migrated
table.  Only when the last chunk lands does the executor invoke the
cutover callback (flipping the serving owner) and free the old owner's
weight buffer.  Functional outputs are bit-identical throughout: weights
are aliased by table name, and the output tensors partition by *sample*,
not by table placement.

Counter names are module constants (also read by
``repro.telemetry.metrics`` — keep the ``reshard.`` prefix stable).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..core.sharding import TableWiseSharding
from ..simgpu.cluster import Cluster
from ..simgpu.memory import Buffer, OutOfDeviceMemory
from .planner import MigrationPlan, TableMove
from .spec import ReshardSpec

__all__ = [
    "ADVISORIES_COUNTER",
    "MIGRATIONS_COUNTER",
    "MIGRATION_BYTES_COUNTER",
    "MIGRATION_NS_COUNTER",
    "MOVES_COUNTER",
    "PLANS_COUNTER",
    "ReshardExecutor",
    "SPAN_CATEGORY",
]

#: migration plans adopted (stamped once per non-empty plan)
PLANS_COUNTER = "reshard.plans"
#: table moves submitted for execution
MOVES_COUNTER = "reshard.moves"
#: migration bytes streamed (per-link variants appear in Chrome traces)
MIGRATION_BYTES_COUNTER = "reshard.migration_bytes"
#: table migrations completed (cutover reached)
MIGRATIONS_COUNTER = "reshard.migrations"
#: per-migration stream duration, ns
MIGRATION_NS_COUNTER = "reshard.migration_ns"
#: row-split advisories emitted by the planner
ADVISORIES_COUNTER = "reshard.advisories"
#: profiler span category of migration extents
SPAN_CATEGORY = "reshard"


class ReshardExecutor:
    """Background migration streams with reserve-then-cutover semantics."""

    def __init__(
        self,
        cluster: Cluster,
        plan: TableWiseSharding,
        spec: Optional[ReshardSpec] = None,
        *,
        weight_buffers: Optional[Dict[str, Buffer]] = None,
    ):
        """``weight_buffers`` optionally maps table name → the owner's
        current weight :class:`~repro.simgpu.memory.Buffer`; when given,
        cutover frees the old owner's buffer so migrated capacity is
        actually returned to its pool (standalone/test use may omit it,
        leaving the stale copy accounted)."""
        self.cluster = cluster
        self.table_plan = plan
        self.spec = spec or ReshardSpec()
        self._cfg = {cfg.name: cfg for cfg in plan.table_configs}
        self._weight_buffers = weight_buffers
        self._dst_buffers: Dict[str, Buffer] = {}
        self._procs: List[object] = []
        self.in_flight: set = set()
        self.completed: List[TableMove] = []
        self.bytes_streamed = 0

    def submit(
        self,
        plan: MigrationPlan,
        on_cutover: Callable[[TableMove], None],
    ) -> List[TableMove]:
        """Start one background stream per move; returns the moves begun.

        Destination buffers are reserved immediately; a move whose
        destination pool cannot hold the table is skipped (the planner
        checks capacity too, but foreground allocations may have landed
        since it looked).  ``on_cutover(move)`` runs on the engine clock
        the instant a table's last chunk arrives — that is the only
        point where serving ownership may change.
        """
        engine = self.cluster.engine
        started: List[TableMove] = []
        for move in plan.moves:
            if move.table_name in self.in_flight:
                raise ValueError(f"table {move.table_name!r} is already migrating")
            cfg = self._cfg[move.table_name]
            try:
                self._dst_buffers[move.table_name] = self.cluster.device(
                    move.dst
                ).memory.alloc(
                    (cfg.num_rows, cfg.dim),
                    cfg.dtype,
                    materialize=False,
                    label=f"weights.{cfg.name}",
                )
            except OutOfDeviceMemory:
                continue
            self.in_flight.add(move.table_name)
            proc = engine.process(
                self._migrate_process(move, on_cutover),
                name=f"reshard.migrate.{move.table_name}",
            )
            self._procs.append(proc)
            started.append(move)
        return started

    def _migrate_process(
        self, move: TableMove, on_cutover: Callable[[TableMove], None]
    ):
        """Engine process: one table's paced stream, then atomic cutover."""
        engine = self.cluster.engine
        share = self.spec.migration_bandwidth_share
        t0 = engine.now
        remaining = float(move.nbytes)
        while remaining > 0:
            size = min(float(self.spec.migration_chunk_bytes), remaining)
            remaining -= size
            c0 = engine.now
            yield self.cluster.interconnect.transfer(
                move.src, move.dst, size, counter=MIGRATION_BYTES_COUNTER
            )
            if share < 1.0:
                # Pacing: after a chunk occupies the link for dt, idle long
                # enough that this stream averages share * bandwidth.
                pause = (engine.now - c0) * (1.0 / share - 1.0)
                if pause > 0:
                    yield engine.timeout(pause)
        now = engine.now
        prof = self.cluster.profiler
        prof.record_span(
            f"reshard.migrate.{move.table_name}.dev{move.src}->dev{move.dst}",
            SPAN_CATEGORY,
            move.src,
            t0,
            now,
        )
        prof.add_count(MIGRATIONS_COUNTER, now, 1.0, unit="migrations")
        prof.add_count(MIGRATION_NS_COUNTER, now, now - t0, unit="ns")
        self._cutover(move)
        on_cutover(move)

    def _cutover(self, move: TableMove) -> None:
        """Retire the old owner's copy; the destination buffer takes over."""
        self.in_flight.discard(move.table_name)
        self.completed.append(move)
        self.bytes_streamed += move.nbytes
        dst_buf = self._dst_buffers.pop(move.table_name)
        if self._weight_buffers is not None:
            old = self._weight_buffers.get(move.table_name)
            if old is not None and not old.freed:
                self.cluster.device(old.device_id).memory.free(old)
            self._weight_buffers[move.table_name] = dst_buf

    @property
    def migrating(self) -> bool:
        """True while any migration stream is in flight."""
        return bool(self.in_flight)

    def wait_for_migrations(self, limit_ns: Optional[float] = None) -> None:
        """Run the simulated clock forward until pending streams finish.

        Migration processes outlive the batch whose planning round started
        them; call this (e.g. at the end of a benchmark) to let them
        drain.  No-op when nothing is migrating.
        """
        engine = self.cluster.engine
        pending = [p for p in self._procs if not p.triggered]
        if not pending:
            return
        engine.run_until_event(engine.all_of(pending), limit=limit_ns)

    def totals(self) -> Dict[str, float]:
        """Cross-run migration totals (Python-side ledger)."""
        return {
            "migrations_completed": float(len(self.completed)),
            "migration_bytes": float(self.bytes_streamed),
            "in_flight": float(len(self.in_flight)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReshardExecutor in_flight={sorted(self.in_flight)} "
            f"completed={len(self.completed)}>"
        )
