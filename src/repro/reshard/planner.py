"""Skew-aware migration planning: turn observed traffic into table moves.

The :class:`ReshardPlanner` consumes the :class:`~repro.reshard.tracker.
LoadTracker`'s windowed per-table traffic plus the current ownership and
emits a :class:`MigrationPlan` — a bounded set of whole-table
:class:`TableMove`\\ s that greedily shrinks the max/mean per-device
traffic ratio, subject to destination
:class:`~repro.simgpu.memory.MemoryPool` capacity.

When a single table is so hot that *no* placement of whole tables can
balance it (its window traffic alone exceeds the per-device mean), the
planner attaches a :class:`RowSplitAdvisory` carrying the
:class:`~repro.core.sharding.RowWiseSharding` row ranges that would
spread it.  Advisories are reported, not executed: mixing row-wise and
table-wise serving in one plan is a separate (future) execution path, and
silently dropping the diagnosis would hide the one imbalance this planner
cannot fix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Set, Tuple

from ..core.sharding import RowShard, RowWiseSharding, TableWiseSharding
from .spec import ReshardSpec

__all__ = ["MigrationPlan", "ReshardPlanner", "RowSplitAdvisory", "TableMove"]


@dataclass(frozen=True)
class TableMove:
    """One whole-table migration: stream ``nbytes`` from src to dst."""

    table_name: str
    src: int
    dst: int
    nbytes: int  #: weight bytes to stream over the interconnect
    traffic_bytes: float  #: window traffic this move re-homes

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (for counters, logs, artifacts)."""
        return {
            "table_name": self.table_name,
            "src": self.src,
            "dst": self.dst,
            "nbytes": self.nbytes,
            "traffic_bytes": self.traffic_bytes,
        }


@dataclass(frozen=True)
class RowSplitAdvisory:
    """A table too hot for any whole-table placement to balance.

    Carries the row-wise split (via :class:`RowWiseSharding`) that would
    spread its traffic; surfaced in reports rather than executed.
    """

    table_name: str
    device_id: int  #: current owner of the hot table
    traffic_bytes: float
    shards: Tuple[RowShard, ...]  #: the even row ranges a split would use


@dataclass(frozen=True)
class MigrationPlan:
    """The planner's verdict for one planning round."""

    moves: Tuple[TableMove, ...] = ()
    advisories: Tuple[RowSplitAdvisory, ...] = ()
    imbalance_before: float = 1.0
    imbalance_after: float = 1.0  #: projected, under the window's traffic
    window_batches: int = 0  #: batches of traffic the plan was based on

    @property
    def empty(self) -> bool:
        """True when the plan moves nothing (balance already acceptable)."""
        return not self.moves

    @property
    def total_bytes(self) -> int:
        """Weight bytes the plan will stream."""
        return sum(m.nbytes for m in self.moves)


@dataclass
class ReshardPlanner:
    """Greedy traffic balancer over whole-table moves.

    Stateless between calls apart from its configuration: every
    :meth:`plan` call sees the current traffic, ownership, free memory,
    and in-flight set, and decides from scratch.
    """

    plan: TableWiseSharding
    spec: ReshardSpec = field(default_factory=ReshardSpec)

    def propose(
        self,
        traffic: Mapping[str, float],
        owners: Mapping[str, int],
        free_bytes: Sequence[float],
        frozen: Sequence[str] = (),
    ) -> MigrationPlan:
        """Plan migrations for the observed per-table ``traffic``.

        ``owners`` is the current serving ownership, ``free_bytes`` the
        per-device free :class:`~repro.simgpu.memory.MemoryPool` capacity
        (a move is only planned when the destination can hold the
        table's weights), and ``frozen`` names tables that must not move
        (already migrating).  Returns an empty plan whenever the max/mean
        device traffic is at or below the spec's threshold — under
        uniform (zero-skew) traffic that ratio is ~1.0, so the planner
        provably emits no migrations there.
        """
        G = self.plan.n_devices
        if len(free_bytes) != G:
            raise ValueError(
                f"free_bytes has {len(free_bytes)} entries for a {G}-device plan"
            )
        nbytes = {cfg.name: cfg.nbytes for cfg in self.plan.table_configs}
        cur: Dict[str, int] = dict(owners)
        loads = [0.0] * G
        for name, b in traffic.items():
            dev = cur.get(name)
            if dev is not None:
                loads[dev] += float(b)
        total = sum(loads)
        mean = total / G
        imbalance_before = max(loads) / mean if mean > 0 else 1.0
        if imbalance_before <= self.spec.imbalance_threshold:
            return MigrationPlan(
                imbalance_before=imbalance_before,
                imbalance_after=imbalance_before,
                window_batches=self.spec.window_batches,
            )

        free = [float(b) for b in free_bytes]
        blocked: Set[str] = set(frozen)
        moves: List[TableMove] = []
        advisories: List[RowSplitAdvisory] = []
        for _ in range(self.spec.max_moves_per_plan):
            src = max(range(G), key=lambda d: loads[d])
            dst = min(range(G), key=lambda d: loads[d])
            gap = loads[src] - loads[dst]
            if gap <= 0:
                break
            candidates = [
                name
                for name, dev in cur.items()
                if dev == src
                and name not in blocked
                and traffic.get(name, 0.0) > 0
                # Strict improvement of the (src, dst) pair's max load:
                # moving t makes dst = L_d + t < L_s and src = L_s - t < L_s.
                and traffic.get(name, 0.0) < gap
                and nbytes.get(name, 0) <= free[dst]
            ]
            if not candidates:
                self._advise_row_split(
                    traffic, cur, loads, mean, src, blocked, advisories
                )
                break
            pick = max(candidates, key=lambda name: traffic.get(name, 0.0))
            moves.append(
                TableMove(
                    table_name=pick,
                    src=src,
                    dst=dst,
                    nbytes=int(nbytes[pick]),
                    traffic_bytes=float(traffic.get(pick, 0.0)),
                )
            )
            blocked.add(pick)
            cur[pick] = dst
            t = float(traffic.get(pick, 0.0))
            loads[src] -= t
            loads[dst] += t
            # The source frees its copy only after cutover, so only the
            # destination's budget is debited for planning purposes.
            free[dst] -= nbytes[pick]
            if mean > 0 and max(loads) / mean <= self.spec.imbalance_threshold:
                break
        imbalance_after = max(loads) / mean if mean > 0 else 1.0
        return MigrationPlan(
            moves=tuple(moves),
            advisories=tuple(advisories),
            imbalance_before=imbalance_before,
            imbalance_after=imbalance_after,
            window_batches=self.spec.window_batches,
        )

    def _advise_row_split(
        self,
        traffic: Mapping[str, float],
        cur: Mapping[str, int],
        loads: Sequence[float],
        mean: float,
        src: int,
        blocked: Set[str],
        advisories: List[RowSplitAdvisory],
    ) -> None:
        """Attach a row-split advisory for the hot device's dominant table.

        Fires when whole-table moves ran out: if one table's traffic alone
        exceeds the per-device mean, no table-wise placement can balance
        it and only a row-range split (RowWiseSharding) would.
        """
        src_tables = [
            (name, traffic.get(name, 0.0))
            for name, dev in cur.items()
            if dev == src and name not in blocked
        ]
        if not src_tables:
            return
        hottest, t = max(src_tables, key=lambda item: item[1])
        if t <= mean or any(a.table_name == hottest for a in advisories):
            return
        cfg = next(c for c in self.plan.table_configs if c.name == hottest)
        rowwise = RowWiseSharding([cfg], self.plan.n_devices)
        advisories.append(
            RowSplitAdvisory(
                table_name=hottest,
                device_id=src,
                traffic_bytes=float(t),
                shards=tuple(rowwise.shards_of(hottest)),
            )
        )
