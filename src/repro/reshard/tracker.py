"""Sliding-window traffic observation feeding the reshard planner.

The :class:`LoadTracker` is the telemetry half of the load balancer: it
consumes what the retrieval layer already knows about every batch — the
per-table retrieval bytes implied by the jagged lengths, and (when a
hot-row cache is layered underneath) the per-table hit rates that shrink
a table's *effective* remote traffic — and maintains per-table exponents
over a sliding window of recent batches.  The planner reads
:meth:`table_traffic` / :meth:`device_traffic` and never touches raw
batches.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Mapping, Optional

__all__ = ["LoadTracker"]


class LoadTracker:
    """Per-table traffic over a sliding window of recent batches.

    ``window_batches`` bounds how much history influences planning; the
    tracker is pure Python bookkeeping (no simulated time, no profiler
    writes), so observing a batch can never perturb trace bit-identity.
    """

    def __init__(self, window_batches: int):
        if window_batches < 1:
            raise ValueError("window_batches must be >= 1")
        self.window_batches = window_batches
        self._window: Deque[Dict[str, float]] = deque(maxlen=window_batches)
        self._totals: Dict[str, float] = {}
        self.batches_observed = 0

    def observe(
        self,
        table_bytes: Mapping[str, float],
        hit_rates: Optional[Mapping[str, float]] = None,
    ) -> None:
        """Record one batch's per-table retrieval bytes.

        ``table_bytes`` maps table name → bytes its lookups moved this
        batch (``nnz * row_bytes``).  ``hit_rates`` optionally maps table
        name → cache hit fraction in ``[0, 1]``; a hit is served locally,
        so the table's *tracked* traffic shrinks to ``(1 - hit_rate)`` of
        its raw bytes — a hot-but-well-cached table should not trigger a
        pointless migration.
        """
        entry: Dict[str, float] = {}
        for name, nbytes in table_bytes.items():
            b = float(nbytes)
            if b < 0:
                raise ValueError(f"negative traffic for table {name!r}")
            if hit_rates is not None and name in hit_rates:
                rate = float(hit_rates[name])
                if not (0.0 <= rate <= 1.0):
                    raise ValueError(
                        f"hit rate for table {name!r} outside [0, 1]: {rate}"
                    )
                b *= 1.0 - rate
            entry[name] = b
        if len(self._window) == self._window.maxlen:
            evicted = self._window[0]
            for name, b in evicted.items():
                self._totals[name] -= b
        self._window.append(entry)
        for name, b in entry.items():
            self._totals[name] = self._totals.get(name, 0.0) + b
        self.batches_observed += 1

    @property
    def window_fill(self) -> int:
        """Batches currently in the window (≤ ``window_batches``)."""
        return len(self._window)

    def table_traffic(self) -> Dict[str, float]:
        """Per-table bytes summed over the current window."""
        # Guard against float drift from the incremental eviction updates.
        return {name: max(0.0, b) for name, b in self._totals.items()}

    def device_traffic(self, owners: Mapping[str, int], n_devices: int) -> list:
        """Window traffic aggregated per device under an ownership map."""
        loads = [0.0] * n_devices
        for name, b in self.table_traffic().items():
            dev = owners.get(name)
            if dev is not None:
                loads[dev] += b
        return loads

    def imbalance(self, owners: Mapping[str, int], n_devices: int) -> float:
        """Max/mean per-device traffic (1.0 = perfectly balanced)."""
        loads = self.device_traffic(owners, n_devices)
        mean = sum(loads) / len(loads) if loads else 0.0
        return max(loads) / mean if mean > 0 else 1.0

    def reset(self) -> None:
        """Drop all observed history."""
        self._window.clear()
        self._totals.clear()
        self.batches_observed = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LoadTracker window={self.window_fill}/{self.window_batches} "
            f"tables={len(self._totals)}>"
        )
