"""Skew-aware online resharding: the ``"+reshard"`` backends.

:class:`ReshardRetrieval` wraps either base backend (``pgas`` or
``baseline``) with a closed-loop load balancer over table placement:

* **observe** — after every batch the wrapper feeds the per-table
  retrieval bytes (recovered exactly from the workloads'
  block segments via :func:`~repro.core.workload.table_segments`) into a
  sliding-window :class:`~repro.reshard.tracker.LoadTracker`;
* **plan** — every ``check_interval_batches`` batches the
  :class:`~repro.reshard.planner.ReshardPlanner` compares the windowed
  max/mean per-device traffic against the spec threshold and, when the
  placement is skewed, emits a bounded
  :class:`~repro.reshard.planner.MigrationPlan`;
* **migrate** — the :class:`~repro.reshard.executor.ReshardExecutor`
  streams each moving table's weights over the simulated interconnect in
  background engine processes, chunked and paced to a bandwidth share so
  foreground batches keep the rest of the link;
* **cutover** — a batch snapshots the ownership map when its generator
  starts, and a migrating table flips owner only when its last chunk has
  landed, so **no batch ever observes a half-migrated table**; weights
  are aliased by name and outputs partition by sample, so functional
  outputs are bit-identical before, during, and after any migration.

Under uniform traffic the planner provably proposes nothing (max/mean is
~1.0, below any legal threshold), no counter is stamped and no process is
spawned, so zero-skew runs are event-for-event identical to the bare
base backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..core.baseline import BaselineRetrieval, PhaseTiming
from ..core.functional import (
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
)
from ..core.pgas_retrieval import PGASFusedRetrieval
from ..core.retrieval import RetrievalBackend
from ..core.sharding import ShardingError, TableWiseSharding
from ..core.workload import DeviceWorkload, rehome_workloads, table_segments
from ..dlrm.batch import SparseBatch
from ..simgpu.cluster import Cluster
from .executor import (
    ADVISORIES_COUNTER,
    MOVES_COUNTER,
    PLANS_COUNTER,
    ReshardExecutor,
)
from .planner import MigrationPlan, ReshardPlanner, TableMove
from .spec import ReshardSpec
from .tracker import LoadTracker

__all__ = ["ReshardLedger", "ReshardRetrieval"]


@dataclass
class ReshardLedger:
    """Python-side per-adapter resharding tally (never stamped on
    no-migration batches, so it cannot perturb trace bit-identity)."""

    batches: int = 0
    plans_adopted: int = 0
    moves_submitted: int = 0
    advisories: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "batches": float(self.batches),
            "plans_adopted": float(self.plans_adopted),
            "moves_submitted": float(self.moves_submitted),
            "advisories": float(self.advisories),
        }


class ReshardRetrieval(RetrievalBackend):
    """A base retrieval backend with skew-aware online table migration.

    Standalone use takes a cluster plus sharding plan; as a registered
    backend (``"pgas+reshard"``, ``"baseline+reshard"``) it is built from
    a :class:`~repro.core.retrieval.DistributedEmbedding` and its
    ``reshard`` config.
    """

    requires_indices = False

    def __init__(
        self,
        cluster: Cluster,
        plan: TableWiseSharding,
        spec: Optional[ReshardSpec] = None,
        *,
        base: str = "pgas",
        collective_spec=None,
        pgas_spec=None,
        sharded: Optional[ShardedEmbeddingTables] = None,
        weight_buffers: Optional[Dict[str, object]] = None,
    ):
        if base not in ("pgas", "baseline"):
            raise ValueError(f"unknown base backend {base!r} (use 'pgas' or 'baseline')")
        if cluster.n_devices != plan.n_devices:
            raise ValueError(
                f"cluster has {cluster.n_devices} devices, plan has {plan.n_devices}"
            )
        self.cluster = cluster
        self.table_plan = plan
        self.base_name = base
        self.spec = spec or ReshardSpec()
        self.sharded = sharded
        if base == "pgas":
            self.base = PGASFusedRetrieval(cluster, pgas_spec)
        else:
            self.base = BaselineRetrieval(cluster, collective_spec)
        self._static_owners: Dict[str, int] = {
            cfg.name: plan.owner_of(cfg.name) for cfg in plan.table_configs
        }
        #: current serving ownership; only cutover (or force_cutover) mutates it
        self._owners: Dict[str, int] = dict(self._static_owners)
        self._row_bytes = {cfg.name: cfg.row_bytes for cfg in plan.table_configs}
        self.tracker = LoadTracker(self.spec.window_batches)
        self.planner = ReshardPlanner(plan, self.spec)
        self.executor = ReshardExecutor(
            cluster, plan, self.spec, weight_buffers=weight_buffers
        )
        #: optional hook returning per-table cache hit rates in ``[0, 1]``
        #: (the cache layer's view); tracked traffic shrinks accordingly.
        self.hit_rates_fn: Optional[Callable[[], Mapping[str, float]]] = None
        #: most recent planner verdict (None until the first planning round)
        self.last_plan: Optional[MigrationPlan] = None
        self.ledger = ReshardLedger()

    # -- ownership ---------------------------------------------------------------

    @property
    def owners(self) -> Dict[str, int]:
        """Current serving ownership, table name → device (a copy)."""
        return dict(self._owners)

    def moved_tables(self) -> Dict[str, int]:
        """Tables serving away from their static placement, name → device."""
        return {
            name: dev
            for name, dev in self._owners.items()
            if dev != self._static_owners[name]
        }

    def imbalance(self) -> float:
        """Windowed max/mean device traffic under the current ownership."""
        return self.tracker.imbalance(self._owners, self.table_plan.n_devices)

    def force_cutover(self, table_name: str, dst: int) -> None:
        """Test hook: flip a table's serving owner instantly, no streaming.

        Exists so property tests can interleave ownership changes with
        batches at arbitrary points; production cutover only ever happens
        from the executor's migration stream.
        """
        if table_name not in self._owners:
            raise ShardingError(f"unknown table {table_name!r}")
        if not (0 <= dst < self.table_plan.n_devices):
            raise ShardingError(
                f"device {dst} outside 0..{self.table_plan.n_devices - 1}"
            )
        self._owners[table_name] = dst

    def _on_cutover(self, move: TableMove) -> None:
        self._owners[move.table_name] = move.dst

    # -- timed path --------------------------------------------------------------

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Simulate one batch under the current ownership, then observe it."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self.batch_process(cl, workloads, timing))
        return timing

    def batch_process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PhaseTiming,
        stream_suffix: str = "",
    ):
        """Process generator for one batch — composable into larger host
        programs.  Ownership is snapshotted here, at generator start: a
        cutover that fires mid-batch (in simulated time) only affects the
        *next* batch.  While ownership still matches the static plan this
        is the wrapped backend's generator, event for event."""
        owners = dict(self._owners)
        if owners == self._static_owners:
            yield from self.base.batch_process(
                cluster, workloads, timing, stream_suffix=stream_suffix
            )
        else:
            adjusted = rehome_workloads(self.table_plan, list(workloads), owners)
            yield from self.base.batch_process(
                cluster, adjusted, timing, stream_suffix=stream_suffix
            )
        self._after_batch(list(workloads))

    # -- observe / plan loop -----------------------------------------------------

    def _after_batch(self, workloads: List[DeviceWorkload]) -> None:
        """Feed the tracker and, on planning rounds, maybe start migrations."""
        self.ledger.batches += 1
        segments = table_segments(self.table_plan, workloads)
        table_bytes = {
            name: float(seg[2]) * self._row_bytes[name]
            for name, seg in segments.items()
        }
        hit_rates = self.hit_rates_fn() if self.hit_rates_fn is not None else None
        self.tracker.observe(table_bytes, hit_rates)
        if self.tracker.batches_observed % self.spec.check_interval_batches != 0:
            return
        if self.tracker.window_fill < self.spec.min_batches:
            return
        self._plan_round()

    def _plan_round(self) -> None:
        """One planning round: propose, stamp, submit migration streams."""
        G = self.table_plan.n_devices
        free = [self.cluster.device(d).memory.free_bytes for d in range(G)]
        plan = self.planner.propose(
            self.tracker.table_traffic(),
            self._owners,
            free,
            frozen=tuple(self.executor.in_flight),
        )
        self.last_plan = plan
        if plan.empty and not plan.advisories:
            return
        # Only rounds that actually act stamp counters, so balanced runs
        # stay byte-identical to the bare base backend.
        prof = self.cluster.profiler
        now = self.cluster.engine.now
        if plan.advisories:
            self.ledger.advisories += len(plan.advisories)
            prof.add_count(
                ADVISORIES_COUNTER, now, float(len(plan.advisories)), unit="advisories"
            )
        if plan.empty:
            return
        started = self.executor.submit(plan, self._on_cutover)
        if not started:
            return
        self.ledger.plans_adopted += 1
        self.ledger.moves_submitted += len(started)
        prof.add_count(PLANS_COUNTER, now, 1.0, unit="plans")
        prof.add_count(MOVES_COUNTER, now, float(len(started)), unit="moves")

    def wait_for_migrations(self, limit_ns: Optional[float] = None) -> None:
        """Run the simulated clock until in-flight migrations cut over."""
        self.executor.wait_for_migrations(limit_ns)

    # -- functional path ---------------------------------------------------------

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """Numpy forward honouring the current serving ownership.

        A migrated table's weights alias the original tensor by name, and
        outputs partition by sample, so results are bit-identical to the
        static-plan reference regardless of how many tables have moved.
        """
        if self.sharded is None:
            raise ValueError("functional forward needs materialize=True weights")
        if self._owners == self._static_owners:
            if self.base_name == "pgas":
                return pgas_functional_forward(self.sharded, batch)
            outputs, _blocks = baseline_functional_forward(self.sharded, batch)
            return outputs
        plan = self.table_plan
        current_plan = TableWiseSharding.from_assignment(
            plan.table_configs, plan.n_devices, dict(self._owners)
        )
        tables = {t.name: t for per in self.sharded.per_device for t in per}
        per_device = [
            [tables[cfg.name] for cfg in current_plan.tables_on(d)]
            for d in range(plan.n_devices)
        ]
        current_sharded = ShardedEmbeddingTables(current_plan, per_device)
        if self.base_name == "pgas":
            return pgas_functional_forward(current_sharded, batch)
        outputs, _blocks = baseline_functional_forward(current_sharded, batch)
        return outputs

    # -- reporting ---------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Cross-batch resharding totals (Python-side ledger)."""
        d = self.ledger.as_dict()
        d.update(self.executor.totals())
        d["tables_moved"] = float(len(self.moved_tables()))
        d["imbalance"] = self.imbalance()
        return d

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReshardRetrieval base={self.base_name} "
            f"moved={sorted(self.moved_tables())} "
            f"in_flight={sorted(self.executor.in_flight)}>"
        )
