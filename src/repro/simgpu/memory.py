"""Device memory: accounting allocator and typed buffers.

The simulator tracks memory two ways at once:

* **Accounting** — every allocation debits a per-device byte budget so that
  paper-scale experiments (64 tables × 1M rows × 64 floats ≈ 16 GiB/GPU)
  hit the same capacity wall the authors describe, *without* allocating
  host RAM.  A :class:`Buffer` created with ``materialize=False`` costs only
  its metadata.
* **Functional storage** — buffers created with ``materialize=True`` carry a
  real numpy array, used by the functional layer of the retrieval backends
  so tests can assert bit-exact outputs.

The allocator is a simple offset-bump with a free list merged by address —
enough to model fragmentation-free CUDA caching-allocator behaviour while
keeping invariants easy to property-test (see tests/simgpu/test_memory.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["OutOfDeviceMemory", "Buffer", "MemoryPool"]


class OutOfDeviceMemory(MemoryError):
    """Allocation exceeded the simulated device's HBM capacity."""

    def __init__(self, device_id: int, requested: int, free: int):
        super().__init__(
            f"device {device_id}: out of memory "
            f"(requested {requested} B, {free} B free)"
        )
        self.device_id = device_id
        self.requested = requested
        self.free = free


@dataclass
class Buffer:
    """A device allocation.

    Attributes
    ----------
    device_id:
        Owning simulated device.
    offset:
        Byte offset within the device heap (stable address for the lifetime
        of the buffer; used by the PGAS symmetric-heap layer).
    nbytes:
        Allocation size.
    shape / dtype:
        Logical array view of the buffer.
    data:
        Backing numpy array if materialised, else ``None``.
    label:
        Free-form tag for profiler output ("emb_table_12", "a2a_recv", ...).
    """

    device_id: int
    offset: int
    nbytes: int
    shape: Tuple[int, ...]
    dtype: np.dtype
    data: Optional[np.ndarray] = None
    label: str = ""
    freed: bool = False

    @property
    def materialized(self) -> bool:
        """Whether the buffer carries real numpy storage."""
        return self.data is not None

    def array(self) -> np.ndarray:
        """The backing array; raises if the buffer is metadata-only or freed."""
        if self.freed:
            raise ValueError(f"use-after-free of buffer {self.label!r}")
        if self.data is None:
            raise ValueError(
                f"buffer {self.label!r} is not materialized; "
                "create it with materialize=True for functional use"
            )
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "mat" if self.materialized else "virt"
        return (
            f"<Buffer dev={self.device_id} {self.label!r} {self.shape} "
            f"{np.dtype(self.dtype).name} {self.nbytes}B {kind}>"
        )


class MemoryPool:
    """Per-device byte-accounting allocator.

    Maintains a sorted free list of ``(offset, size)`` holes; ``alloc`` is
    first-fit, ``free`` coalesces neighbours.  Invariants (property-tested):

    * sum(free holes) + sum(live allocations) == capacity
    * holes are disjoint, sorted, and non-adjacent (always coalesced)
    * live allocations never overlap
    """

    def __init__(self, capacity: int, device_id: int = 0):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.device_id = device_id
        self._holes: List[Tuple[int, int]] = [(0, self.capacity)]  # (offset, size)
        self._live: Dict[int, Buffer] = {}  # offset -> Buffer
        self.peak_used = 0

    # -- queries -----------------------------------------------------------------

    @property
    def used(self) -> int:
        """Bytes currently allocated."""
        return self.capacity - self.free_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return sum(size for _, size in self._holes)

    @property
    def num_allocations(self) -> int:
        """Count of live buffers."""
        return len(self._live)

    def live_buffers(self) -> List[Buffer]:
        """Snapshot of live buffers sorted by address."""
        return [self._live[o] for o in sorted(self._live)]

    # -- alloc / free --------------------------------------------------------------

    def alloc(
        self,
        shape: Tuple[int, ...],
        dtype: np.dtype = np.dtype(np.float32),
        *,
        materialize: bool = False,
        label: str = "",
        fill: Optional[float] = None,
    ) -> Buffer:
        """Allocate a buffer for an array of ``shape``/``dtype``.

        ``materialize=True`` attaches a real numpy array (zero-initialised,
        or ``fill``-initialised).  Raises :class:`OutOfDeviceMemory` when the
        accounting budget is exhausted.
        """
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(d) for d in shape)
        if any(d < 0 for d in shape):
            raise ValueError(f"negative dimension in shape {shape}")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        offset = self._take_hole(nbytes)
        data: Optional[np.ndarray] = None
        if materialize:
            data = np.zeros(shape, dtype=dtype)
            if fill is not None:
                data[...] = fill
        buf = Buffer(
            device_id=self.device_id,
            offset=offset,
            nbytes=nbytes,
            shape=shape,
            dtype=dtype,
            data=data,
            label=label,
        )
        self._live[offset] = buf
        self.peak_used = max(self.peak_used, self.used)
        return buf

    def free(self, buf: Buffer) -> None:
        """Return a buffer's bytes to the pool; double-free raises."""
        if buf.freed:
            raise ValueError(f"double free of buffer {buf.label!r}")
        if self._live.get(buf.offset) is not buf:
            raise ValueError(f"buffer {buf.label!r} does not belong to this pool")
        del self._live[buf.offset]
        buf.freed = True
        buf.data = None
        self._insert_hole(buf.offset, buf.nbytes)

    def reset(self) -> None:
        """Free everything (device reset)."""
        for buf in list(self._live.values()):
            self.free(buf)

    # -- internals ---------------------------------------------------------------

    def _take_hole(self, nbytes: int) -> int:
        """First-fit: carve ``nbytes`` out of the free list."""
        if nbytes == 0:
            # Zero-size allocations get a unique non-conflicting pseudo-offset
            # just past any live allocation; they consume no budget.
            nbytes_max = max((b.offset + b.nbytes for b in self._live.values()), default=0)
            offset = nbytes_max
            while offset in self._live:
                offset += 1
            return offset
        for i, (offset, size) in enumerate(self._holes):
            if size >= nbytes:
                if size == nbytes:
                    del self._holes[i]
                else:
                    self._holes[i] = (offset + nbytes, size - nbytes)
                return offset
        raise OutOfDeviceMemory(self.device_id, nbytes, self.free_bytes)

    def _insert_hole(self, offset: int, nbytes: int) -> None:
        """Insert a hole, merging with adjacent holes."""
        if nbytes == 0:
            return
        holes = self._holes
        # binary-search insertion point by offset
        lo, hi = 0, len(holes)
        while lo < hi:
            mid = (lo + hi) // 2
            if holes[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        holes.insert(lo, (offset, nbytes))
        # merge with next
        if lo + 1 < len(holes):
            o, s = holes[lo]
            no, ns_ = holes[lo + 1]
            if o + s == no:
                holes[lo] = (o, s + ns_)
                del holes[lo + 1]
        # merge with previous
        if lo > 0:
            po, ps = holes[lo - 1]
            o, s = holes[lo]
            if po + ps == o:
                holes[lo - 1] = (po, ps + s)
                del holes[lo]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<MemoryPool dev={self.device_id} used={self.used}/{self.capacity}B "
            f"allocs={len(self._live)}>"
        )
