"""CUDA-style streams and events.

A :class:`Stream` executes submitted operations strictly in order, one at a
time, mirroring CUDA stream semantics.  Operations are process generators
(see :mod:`repro.simgpu.engine`); submitting returns a :class:`StreamOp`
handle whose ``done`` event fires at completion, so host code (itself a
process) can ``yield op.done`` — the analogue of ``cudaStreamSynchronize``
on a single op — or ``yield stream.drained()`` for the whole stream.

:class:`CudaEvent` reproduces ``cudaEventRecord`` / ``cudaStreamWaitEvent``
cross-stream ordering: recording enqueues a marker op; waiting enqueues an
op that blocks the stream until the marker has executed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from .engine import Engine, Event, ProcessGenerator

if TYPE_CHECKING:  # pragma: no cover
    from .device import Device

__all__ = ["Stream", "StreamOp", "StreamLease", "StreamPool", "CudaEvent"]


class StreamOp:
    """Handle for one operation enqueued on a stream."""

    __slots__ = ("name", "done", "enqueued_at", "started_at", "finished_at")

    def __init__(self, name: str, done: Event, enqueued_at: float):
        self.name = name
        self.done = done
        self.enqueued_at = enqueued_at
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

    @property
    def completed(self) -> bool:
        """True once the operation has run to completion."""
        return self.done.triggered

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.completed else "pending"
        return f"<StreamOp {self.name!r} {state}>"


class Stream:
    """An in-order execution queue on one device."""

    def __init__(self, device: "Device", name: str = "default"):
        self.device = device
        self.name = name
        self.engine: Engine = device.engine
        self._queue: List[tuple] = []  # (op, factory)
        self._busy = False
        self._idle_waiters: List[Event] = []

    # -- submission -------------------------------------------------------------

    def submit(
        self, factory: Callable[[], ProcessGenerator], name: str = "op"
    ) -> StreamOp:
        """Enqueue an operation; it runs after everything already queued.

        ``factory`` is called (lazily, when the op reaches the head of the
        queue) to produce the process generator that performs the work.
        """
        op = StreamOp(name, self.engine.event(f"{self}:{name}"), self.engine.now)
        self._queue.append((op, factory))
        if not self._busy:
            self._busy = True
            self.engine.process(self._dispatch(), name=f"stream{self.device.id}:{self.name}")
        return op

    def submit_delay(self, delay_ns: float, name: str = "delay") -> StreamOp:
        """Enqueue a fixed-duration operation (e.g. a modelled memcpy)."""

        def factory() -> ProcessGenerator:
            yield self.engine.timeout(delay_ns)

        return self.submit(factory, name=name)

    # -- synchronisation -----------------------------------------------------------

    def drained(self) -> Event:
        """Event that fires when the stream has no queued or running work."""
        ev = self.engine.event(f"{self}:drained")
        if not self._busy and not self._queue:
            ev.succeed()
        else:
            self._idle_waiters.append(ev)
        return ev

    def synchronize(self) -> ProcessGenerator:
        """Process generator: block until drained, charging host sync cost."""
        yield self.drained()
        yield self.engine.timeout(self.device.spec.sync_overhead_ns)

    # -- events (cudaEvent analogue) -------------------------------------------------

    def record_event(self) -> "CudaEvent":
        """Record a marker after all currently-enqueued ops (cudaEventRecord)."""
        ev = CudaEvent(self.engine)

        def factory() -> ProcessGenerator:
            ev._fire(self.engine.now)
            return
            yield  # pragma: no cover - makes this a generator

        self.submit(factory, name="event_record")
        return ev

    def wait_event(self, ev: "CudaEvent") -> StreamOp:
        """Block this stream until ``ev`` fires (cudaStreamWaitEvent)."""

        def factory() -> ProcessGenerator:
            if not ev.fired:
                yield ev.event

        return self.submit(factory, name="event_wait")

    # -- dispatcher -------------------------------------------------------------

    def _dispatch(self) -> ProcessGenerator:
        while self._queue:
            op, factory = self._queue.pop(0)
            op.started_at = self.engine.now
            gen = factory()
            if gen is not None:
                result = yield self.engine.process(gen, name=f"{self.name}:{op.name}")
            else:
                result = None
            op.finished_at = self.engine.now
            op.done.succeed(result)
        self._busy = False
        waiters, self._idle_waiters = self._idle_waiters, []
        for ev in waiters:
            ev.succeed()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stream dev={self.device.id} {self.name!r}>"


class StreamLease:
    """Exclusive hold on one :class:`StreamPool` slot.

    The ``suffix`` is appended to the base stream names a batch uses
    (``"h2d"``, ``"dense"``, ``"default"``), giving each concurrent batch
    its own disjoint FIFO queues on every device.  Slot 0's suffix is the
    empty string, so single-slot execution uses exactly the pre-pool
    stream names (traces and tests see no difference).
    """

    __slots__ = ("pool", "slot", "_released")

    def __init__(self, pool: "StreamPool", slot: int):
        self.pool = pool
        self.slot = slot
        self._released = False

    @property
    def suffix(self) -> str:
        """Stream-name suffix for this slot (``""`` for slot 0)."""
        return "" if self.slot == 0 else f"#{self.slot}"

    def release(self) -> None:
        """Return the slot to the pool (idempotent)."""
        if not self._released:
            self._released = True
            self.pool._release(self.slot)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "released" if self._released else "held"
        return f"<StreamLease slot={self.slot} {state}>"


class StreamPool:
    """A fixed set of per-batch stream-name slots for concurrent contexts.

    The continuous-batching scheduler keeps up to K batches in flight;
    each needs its own set of streams on every device or their kernels
    would serialise on the shared FIFO queues.  A ``StreamPool`` hands out
    ``n_slots`` leases; the holder derives concrete streams via
    ``device.stream(base_name + lease.suffix)``.  Acquisition is
    non-blocking — callers that find the pool empty wait on their own
    scheduling signal (e.g. an :class:`~repro.simgpu.engine.Notifier`
    kicked at batch completion) and retry.
    """

    def __init__(self, n_slots: int):
        if n_slots < 1:
            raise ValueError("a StreamPool needs at least one slot")
        self.n_slots = n_slots
        self._free: List[int] = list(range(n_slots))

    @property
    def n_free(self) -> int:
        """Currently available slots."""
        return len(self._free)

    @property
    def n_in_use(self) -> int:
        """Currently leased slots."""
        return self.n_slots - len(self._free)

    def try_acquire(self) -> Optional[StreamLease]:
        """Lease the lowest free slot, or ``None`` when all are in use."""
        if not self._free:
            return None
        return StreamLease(self, self._free.pop(0))

    def acquire(self) -> StreamLease:
        """Lease the lowest free slot; raises when the pool is exhausted."""
        lease = self.try_acquire()
        if lease is None:
            raise RuntimeError(f"all {self.n_slots} stream slots are in use")
        return lease

    def _release(self, slot: int) -> None:
        self._free.append(slot)
        self._free.sort()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StreamPool {self.n_in_use}/{self.n_slots} in use>"


class CudaEvent:
    """A cross-stream marker (cudaEvent analogue) with a timestamp."""

    __slots__ = ("engine", "event", "timestamp")

    def __init__(self, engine: Engine):
        self.engine = engine
        self.event = engine.event("cuda_event")
        self.timestamp: Optional[float] = None

    @property
    def fired(self) -> bool:
        """True once the marker has been reached in its recording stream."""
        return self.event.triggered

    def _fire(self, when: float) -> None:
        self.timestamp = when
        self.event.succeed(when)

    def elapsed_since(self, earlier: "CudaEvent") -> float:
        """cudaEventElapsedTime analogue, in nanoseconds."""
        if self.timestamp is None or earlier.timestamp is None:
            raise ValueError("both events must have fired")
        return self.timestamp - earlier.timestamp
