"""Unit helpers for the simulator.

All simulator times are nanoseconds (float); all sizes are bytes (int);
all bandwidths are bytes per nanosecond (== GB/s, conveniently).

Keeping conversions in one place avoids the classic off-by-1e3 bugs when
mixing µs-scale launch overheads with ms-scale kernels.
"""

from __future__ import annotations

__all__ = [
    "ns",
    "us",
    "ms",
    "s",
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "gbps",
    "to_ms",
    "to_us",
    "to_s",
    "transfer_time",
]

# -- time --------------------------------------------------------------------

ns = 1.0
us = 1_000.0
ms = 1_000_000.0
s = 1_000_000_000.0


def to_ms(t_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return t_ns / ms


def to_us(t_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return t_ns / us


def to_s(t_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return t_ns / s


# -- sizes ---------------------------------------------------------------------

KiB = 1024
MiB = 1024**2
GiB = 1024**3
KB = 1000
MB = 1000**2
GB = 1000**3


def gbps(x: float) -> float:
    """Bandwidth: gigabytes/second expressed in bytes/nanosecond.

    1 GB/s == 1e9 B / 1e9 ns == 1 B/ns, so this is the identity — it exists
    to make call sites self-documenting (``gbps(25)`` reads as 25 GB/s).
    """
    return float(x)


def transfer_time(nbytes: float, bandwidth_bpns: float, latency_ns: float = 0.0) -> float:
    """Time to move ``nbytes`` at ``bandwidth_bpns`` with a fixed latency.

    The classic alpha-beta model: ``t = alpha + n * beta``.
    """
    if bandwidth_bpns <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_bpns}")
    if nbytes < 0:
        raise ValueError(f"negative transfer size: {nbytes}")
    return latency_ns + nbytes / bandwidth_bpns
