"""Timeline profiler: spans, counters, and comm-volume sampling.

Two instruments matter for the paper's evaluation:

* **Spans** — named intervals (kernel, collective, unpack, sync) per device,
  from which the runtime breakdowns of Figs. 6 and 9 are computed.
* **Counters** — monotonically accumulating quantities stamped with the
  simulation time at which they changed.  The communication counter
  reproduces the paper's instrument for Figs. 7 and 10: "with each RDMA
  write, that thread also atomically adds to that counter ... sequential
  reads of the communication counter show the communication volume over
  time" (§IV-A2b).  :meth:`Counter.sample` re-reads the counter on a fixed
  period, exactly like the paper's every-hundred-GPU-clock-cycles poll.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["Span", "Counter", "Profiler", "TraceRef"]


@dataclass(frozen=True)
class TraceRef:
    """Trace context: which request/batch a span belongs to.

    ``trace_id`` identifies the run-level trace (one per
    :class:`~repro.obs.TraceSpec`); ``batch_id`` identifies the dispatched
    batch within it.  Spans recorded while a trace is active carry the ref,
    which the Chrome exporter turns into Perfetto flow arrows and the
    critical-path analyser uses to group spans per batch.
    """

    trace_id: int
    batch_id: int


@dataclass(frozen=True)
class Span:
    """One named interval on the timeline."""

    name: str
    category: str
    device_id: int
    t_start: float
    t_end: float
    # Trace context, stamped from Profiler.active_trace.  Last field with a
    # default so positional construction (and equality for untraced spans)
    # is unchanged from the pre-obs layout.
    trace: Optional[TraceRef] = None

    @property
    def duration(self) -> float:
        """Span length in nanoseconds."""
        return self.t_end - self.t_start


class Counter:
    """A time-stamped cumulative counter.

    ``add(t, delta)`` must be called with non-decreasing ``t`` *per caller*;
    out-of-order stamps from independent devices are merged on read.
    """

    def __init__(self, name: str, unit: str = "bytes"):
        self.name = name
        self.unit = unit
        self._events: List[Tuple[float, float]] = []  # (time, delta)
        self._sorted = True

    def add(self, t: float, delta: float) -> None:
        """Record ``delta`` units at simulation time ``t``."""
        if self._events and t < self._events[-1][0]:
            self._sorted = False
        self._events.append((t, delta))

    @property
    def total(self) -> float:
        """Grand total accumulated."""
        return sum(d for _, d in self._events)

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._events.sort(key=lambda e: e[0])
            self._sorted = True

    def value_at(self, t: float) -> float:
        """Cumulative value at time ``t`` (inclusive)."""
        self._ensure_sorted()
        total = 0.0
        for et, d in self._events:
            if et > t:
                break
            total += d
        return total

    def events(self) -> List[Tuple[float, float]]:
        """Time-sorted ``(time, delta)`` events (a copy; safe to iterate)."""
        self._ensure_sorted()
        return list(self._events)

    def values_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value_at` over an array of sample instants."""
        times = np.asarray(times, dtype=np.float64)
        self._ensure_sorted()
        if not self._events:
            return np.zeros_like(times)
        ev_t = np.array([e[0] for e in self._events])
        ev_c = np.cumsum([e[1] for e in self._events])
        idx = np.searchsorted(ev_t, times, side="right") - 1
        return np.where(idx >= 0, ev_c[np.maximum(idx, 0)], 0.0)

    def sample(
        self, t_start: float, t_end: float, period: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Poll the counter every ``period`` ns over ``[t_start, t_end]``.

        Returns ``(times, cumulative_values)`` — the paper's Figs. 7/10
        series.  The final sample lands exactly on ``t_end``.  A zero-width
        window (``t_start == t_end``) or an empty counter yields a single
        zero sample at ``t_start`` rather than an empty or degenerate
        series, so downstream rate/occupancy math never divides by a
        zero-width bin.
        """
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if t_end < t_start:
            raise ValueError("t_end < t_start")
        self._ensure_sorted()
        if t_end == t_start or not self._events:
            return np.array([t_start], dtype=np.float64), np.array([0.0])
        times = np.arange(t_start, t_end, period, dtype=np.float64)
        times = np.append(times, t_end)
        return times, self.values_at(times)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name!r} total={self.total:.0f}{self.unit}>"


class Profiler:
    """Collects spans and counters for one simulated run."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.counters: Dict[str, Counter] = {}
        self.enabled = True
        # Trace context stamped onto every span recorded while set.  None
        # (the default) keeps record_span's output identical to a repo
        # without observability — zero overhead when tracing is off.
        self.active_trace: Optional[TraceRef] = None

    # -- spans -------------------------------------------------------------------

    def record_span(
        self, name: str, category: str, device_id: int, t_start: float, t_end: float
    ) -> None:
        """Append a finished span (no-op when disabled)."""
        if not self.enabled:
            return
        if t_end < t_start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.spans.append(Span(name, category, device_id, t_start, t_end, self.active_trace))

    def spans_by_category(self, category: str, device_id: Optional[int] = None) -> List[Span]:
        """All spans of ``category`` (optionally restricted to one device)."""
        return [
            s
            for s in self.spans
            if s.category == category and (device_id is None or s.device_id == device_id)
        ]

    def category_time(self, category: str, device_id: Optional[int] = None) -> float:
        """Total duration of all spans of ``category`` (per device if given)."""
        return sum(s.duration for s in self.spans_by_category(category, device_id))

    def category_wall_time(self, category: str, device_id: Optional[int] = None) -> float:
        """Wall-clock extent (union, merged) of a category across devices.

        Overlapping spans are merged so concurrent per-device work counts
        once — this is what the paper's per-phase wall times report.  With
        ``device_id`` given, only that device's spans are merged.
        """
        spans = sorted(self.spans_by_category(category, device_id), key=lambda s: s.t_start)
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for s in spans:
            if cur_start is None:
                cur_start, cur_end = s.t_start, s.t_end
            elif s.t_start <= cur_end:
                cur_end = max(cur_end, s.t_end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = s.t_start, s.t_end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    # -- counters ----------------------------------------------------------------

    def counter(self, name: str, unit: str = "bytes") -> Counter:
        """Get (creating on first use) a named counter."""
        c = self.counters.get(name)
        if c is None:
            c = Counter(name, unit)
            self.counters[name] = c
        return c

    def add_count(self, name: str, t: float, delta: float, unit: str = "bytes") -> None:
        """Convenience: ``counter(name).add(t, delta)`` honouring ``enabled``."""
        if self.enabled:
            self.counter(name, unit).add(t, delta)

    # -- reset -------------------------------------------------------------------

    def clear(self) -> None:
        """Drop all recorded spans and counters."""
        self.spans.clear()
        self.counters.clear()
