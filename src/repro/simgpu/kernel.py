"""Wave-based kernel execution cost model.

Real GPUs execute a kernel's grid as successive *waves* of thread blocks:
with ``B`` resident blocks per device, a grid of ``G`` blocks runs in
``ceil(G / B)`` waves.  This module times each wave with a roofline model —
``max(bytes / effective_mem_bw, flops / effective_flops)`` — and exposes a
per-wave callback, which is exactly the hook the PGAS fused retrieval needs:
remote writes become visible to the interconnect *as each wave retires*,
not at kernel end.  That progressive availability is the mechanism behind
the paper's fine-grained communication/computation overlap (§III-B) and the
comm-volume-over-time curves of Figs. 7 and 10.

Memory-bound kernels with an empty grid still cost ``min_kernel_ns``: the
latency floor that makes the paper's strong-scaled partitions stop speeding
up beyond 2 GPUs (§IV-B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from .device import Device, DeviceSpec
from .engine import ProcessGenerator

__all__ = ["KernelSpec", "WaveInfo", "roofline_time", "kernel_time", "execute_kernel"]

#: Signature of the per-wave hook: called at each wave's retirement time.
WaveCallback = Callable[["WaveInfo"], None]


@dataclass(frozen=True)
class KernelSpec:
    """Workload description of one kernel launch.

    Costs are grid totals; the executor spreads them across waves in
    proportion to the number of blocks per wave (or per-block weights).

    Attributes
    ----------
    name:
        Profiler label.
    num_blocks:
        Grid size in thread blocks.
    bytes_read / bytes_written:
        Total DRAM traffic of the kernel.
    flops:
        Total floating-point work.
    block_weights:
        Optional per-block relative work weights (length ``num_blocks``) for
        jagged workloads — e.g. pooling factors varying per sample.  When
        omitted, blocks are uniform.
    tail_ns:
        Fixed epilogue latency (writeback / teardown).
    stretch_ns:
        Extra body duration distributed across waves in proportion to their
        work — e.g. store-queue backpressure from remote writes in the PGAS
        fused kernel.  Unlike ``tail_ns`` it slows every wave, shifting the
        per-wave message injection times accordingly.
    min_waves_for_peak:
        Occupancy/latency model for gather-heavy kernels: below this many
        waves the kernel cannot keep enough loads in flight to reach its
        roofline throughput, and effective bandwidth scales down as
        ``n_waves / min_waves_for_peak``.  ``0`` disables the derate.
        This is what makes small strong-scaled partitions latency-limited
        (paper §IV-B: "the computation kernel ... is latency-limited beyond
        2 GPUs", ncu showing <60% of both throughputs).
    """

    name: str
    num_blocks: int
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    flops: float = 0.0
    block_weights: Optional[Sequence[float]] = None
    tail_ns: float = 0.0
    stretch_ns: float = 0.0
    min_waves_for_peak: float = 0.0

    def __post_init__(self) -> None:
        if self.num_blocks < 0:
            raise ValueError(f"num_blocks must be >= 0, got {self.num_blocks}")
        if min(self.bytes_read, self.bytes_written, self.flops, self.tail_ns, self.stretch_ns) < 0:
            raise ValueError("kernel costs must be non-negative")
        if self.block_weights is not None and len(self.block_weights) != self.num_blocks:
            raise ValueError(
                f"block_weights length {len(self.block_weights)} != num_blocks {self.num_blocks}"
            )

    @property
    def total_bytes(self) -> float:
        """Combined DRAM read + write traffic."""
        return self.bytes_read + self.bytes_written


@dataclass(frozen=True)
class WaveInfo:
    """Passed to the per-wave callback at each wave's retirement."""

    index: int  #: wave number, 0-based
    count: int  #: total number of waves in the launch
    t_start: float  #: simulated start time of this wave (ns)
    t_end: float  #: simulated retirement time of this wave (ns)
    fraction: float  #: fraction of the kernel's work done by this wave
    blocks: range  #: grid block indices executed in this wave

    @property
    def is_last(self) -> bool:
        """True for the final wave of the launch."""
        return self.index == self.count - 1


def roofline_time(bytes_total: float, flops: float, spec: DeviceSpec) -> float:
    """Roofline duration of a workload slice on ``spec`` (no floors)."""
    mem_t = bytes_total / spec.effective_mem_bandwidth
    cmp_t = flops / spec.effective_flops
    return max(mem_t, cmp_t)


def _wave_fractions(kspec: KernelSpec, device_spec: DeviceSpec) -> List[float]:
    """Work fraction per wave, honouring per-block weights when present."""
    conc = device_spec.concurrent_blocks
    if kspec.num_blocks == 0:
        return []
    n_waves = math.ceil(kspec.num_blocks / conc)
    if kspec.block_weights is None:
        # Uniform blocks: each wave does (#blocks in wave) / num_blocks.
        fracs = []
        for w in range(n_waves):
            lo = w * conc
            hi = min(lo + conc, kspec.num_blocks)
            fracs.append((hi - lo) / kspec.num_blocks)
        return fracs
    weights = [float(w) for w in kspec.block_weights]
    total = sum(weights)
    if total <= 0:
        return [1.0 / n_waves] * n_waves
    fracs = []
    for w in range(n_waves):
        lo = w * conc
        hi = min(lo + conc, kspec.num_blocks)
        fracs.append(sum(weights[lo:hi]) / total)
    return fracs


def _occupancy_derate(kspec: KernelSpec, device_spec: DeviceSpec) -> float:
    """Throughput fraction achievable at this launch's wave count."""
    if kspec.min_waves_for_peak <= 0 or kspec.num_blocks == 0:
        return 1.0
    n_waves = math.ceil(kspec.num_blocks / device_spec.concurrent_blocks)
    return min(1.0, n_waves / kspec.min_waves_for_peak)


def kernel_time(kspec: KernelSpec, device_spec: DeviceSpec) -> float:
    """Closed-form duration of a kernel (excluding launch overhead).

    Identical to what :func:`execute_kernel` charges; exposed for analytical
    sanity checks in tests and for back-of-envelope calibration.
    """
    body = roofline_time(kspec.total_bytes, kspec.flops, device_spec)
    body /= _occupancy_derate(kspec, device_spec)
    body += kspec.stretch_ns
    return max(device_spec.min_kernel_ns, body + kspec.tail_ns)


def execute_kernel(
    device: Device,
    kspec: KernelSpec,
    on_wave: Optional[WaveCallback] = None,
) -> ProcessGenerator:
    """Process generator executing ``kspec`` on ``device``, wave by wave.

    The kernel's roofline duration is split across waves proportionally to
    per-wave work; ``on_wave`` (if given) runs at each wave's retirement —
    the injection point for PGAS one-sided messages.  The ``min_kernel_ns``
    floor and ``tail_ns`` are charged after the last wave.

    Device fault state stretches the realised schedule: each wave's body
    is scaled by ``device.slowdown`` *sampled at wave start* (a straggler
    window that opens mid-kernel only slows the remaining waves), and a
    ``device.stalled_until`` window freezes progress at wave boundaries.
    :func:`kernel_time` reports the healthy duration, so it diverges from
    the realised time only while a fault is active.
    """
    spec = device.spec
    engine = device.engine
    t0 = engine.now
    fracs = _wave_fractions(kspec, spec)
    body = roofline_time(kspec.total_bytes, kspec.flops, spec)
    body /= _occupancy_derate(kspec, spec)
    body += kspec.stretch_ns
    conc = spec.concurrent_blocks
    n_waves = len(fracs)
    for w, frac in enumerate(fracs):
        if engine.now < device.stalled_until:
            yield engine.timeout(device.stalled_until - engine.now)
        t_start = engine.now
        yield engine.timeout(body * frac * device.slowdown)
        if on_wave is not None:
            lo = w * conc
            hi = min(lo + conc, kspec.num_blocks)
            on_wave(
                WaveInfo(
                    index=w,
                    count=n_waves,
                    t_start=t_start,
                    t_end=engine.now,
                    fraction=frac,
                    blocks=range(lo, hi),
                )
            )
    # Epilogue: tail latency plus whatever is needed to respect the floor.
    if engine.now < device.stalled_until:
        yield engine.timeout(device.stalled_until - engine.now)
    elapsed = engine.now - t0
    remaining = max(spec.min_kernel_ns - elapsed, 0.0) + kspec.tail_ns
    if remaining > 0:
        yield engine.timeout(remaining)
    prof = getattr(device, "profiler", None)
    if prof is not None and prof.active_trace is not None:
        # Traced launches record a per-kernel span for critical-path detail.
        # Guarded on an active trace so untraced runs stay span-identical.
        prof.record_span(kspec.name, "kernel", device.id, t0, engine.now)
    return engine.now - t0
