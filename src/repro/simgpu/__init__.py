"""``repro.simgpu`` — discrete-event multi-GPU system simulator.

The substrate beneath the retrieval backends: devices with a roofline
kernel cost model, CUDA-style streams/events, an NVLink/PCIe/NIC
interconnect with FIFO link contention, and a profiler producing the
span breakdowns and comm-volume counters the paper's figures need.
"""

from .cluster import Cluster, dgx_v100, multinode, pcie_node
from .device import A100_SPEC, Device, DeviceSpec, H100_SPEC, V100_SPEC
from .engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Notifier,
    Process,
    SimulationError,
    Timeout,
)
from .interconnect import (
    Interconnect,
    Link,
    LinkSpec,
    NIC_SPEC,
    NVLINK_PAIR_SPEC,
    PCIE_SPEC,
    Topology,
    multinode_topology,
    nvlink_dgx1,
    pcie_topology,
    wire_bytes,
)
from .kernel import KernelSpec, WaveInfo, execute_kernel, kernel_time, roofline_time
from .memory import Buffer, MemoryPool, OutOfDeviceMemory
from .profiler import Counter, Profiler, Span
from .stream import CudaEvent, Stream, StreamLease, StreamOp, StreamPool
from .trace import chrome_trace, summarize_spans, write_chrome_trace
from . import units

__all__ = [
    "AllOf",
    "AnyOf",
    "A100_SPEC",
    "Buffer",
    "Cluster",
    "Counter",
    "CudaEvent",
    "Device",
    "DeviceSpec",
    "Engine",
    "Event",
    "H100_SPEC",
    "Interconnect",
    "Interrupt",
    "KernelSpec",
    "Link",
    "LinkSpec",
    "MemoryPool",
    "NIC_SPEC",
    "Notifier",
    "NVLINK_PAIR_SPEC",
    "OutOfDeviceMemory",
    "PCIE_SPEC",
    "Process",
    "Profiler",
    "SimulationError",
    "Span",
    "Stream",
    "StreamLease",
    "StreamOp",
    "StreamPool",
    "Timeout",
    "Topology",
    "V100_SPEC",
    "WaveInfo",
    "dgx_v100",
    "execute_kernel",
    "kernel_time",
    "multinode",
    "multinode_topology",
    "nvlink_dgx1",
    "pcie_node",
    "pcie_topology",
    "roofline_time",
    "chrome_trace",
    "summarize_spans",
    "units",
    "write_chrome_trace",
    "wire_bytes",
]
