"""Interconnect model: links, topologies, and message transfers.

Every ordered device pair gets a :class:`Link` — a FIFO store-and-forward
server with an alpha-beta cost (latency + bytes/bandwidth) and strict
serialisation: concurrent transfers on the same link queue behind each
other, which is how bursts (the baseline's all-to-all) congest while
spread-out traffic (PGAS per-wave writes) does not.

Topology presets mirror the paper's testbed (DGX-1 with four V100s, NVLink)
plus PCIe and multi-node NIC variants for the §V extension studies.  On the
DGX-1, each GPU pair in the 4-GPU clique is joined by NVLink2 lanes; we use
an effective 48 GB/s per direction per pair (two links of 25 GB/s minus
protocol overhead) with sub-microsecond latency.

Small-message inefficiency — central to the paper's PGAS cost analysis —
is modelled explicitly: a transfer of ``nbytes`` carried as messages of
``message_bytes`` each pays ``header_bytes`` per message on the wire
(§IV-A2d: "the message header takes a good portion of bandwidth").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .engine import Engine, Event
from .profiler import Profiler
from .units import gbps, us

__all__ = [
    "LinkSpec",
    "Link",
    "Interconnect",
    "Topology",
    "nvlink_dgx1",
    "pcie_topology",
    "multinode_topology",
    "wire_bytes",
    "NVLINK_PAIR_SPEC",
    "PCIE_SPEC",
    "NIC_SPEC",
]


@dataclass(frozen=True)
class LinkSpec:
    """Static description of one directed link.

    ``per_message_ns`` is the injection/processing cost of each message on
    the wire — effectively a message-rate ceiling.  NVLink stores coalesce
    in hardware (≈0); a NIC posts work-queue entries and pays descriptor
    handling per message, which is exactly why the paper's §V multi-node
    plan needs the aggregator.
    """

    bandwidth: float  #: bytes per nanosecond (== GB/s)
    latency_ns: float  #: propagation + first-word latency
    per_message_ns: float = 0.0  #: injection cost per message (rate limit)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth}")
        if self.latency_ns < 0:
            raise ValueError(f"latency must be non-negative, got {self.latency_ns}")
        if self.per_message_ns < 0:
            raise ValueError(f"per_message_ns must be non-negative, got {self.per_message_ns}")


#: Effective per-direction bandwidth between one V100 pair on a 4-GPU DGX-1
#: clique (2 NVLink2 lanes x 25 GB/s, ~96% protocol efficiency).
NVLINK_PAIR_SPEC = LinkSpec(bandwidth=gbps(48), latency_ns=700.0)

#: PCIe 3.0 x16 host-routed peer path (TLP handling per packet).
PCIE_SPEC = LinkSpec(bandwidth=gbps(12), latency_ns=1800.0, per_message_ns=20.0)

#: 100 Gb/s InfiniBand-class NIC between nodes (~10 M messages/s).
NIC_SPEC = LinkSpec(bandwidth=gbps(11), latency_ns=2500.0, per_message_ns=100.0)


def wire_bytes(payload_bytes: float, message_bytes: int, header_bytes: int) -> float:
    """Bytes actually occupying the wire for ``payload_bytes`` of payload.

    Payload carried in messages of at most ``message_bytes`` each, with
    ``header_bytes`` of framing per message.  ``message_bytes <= 0`` means a
    single message (one header).
    """
    if payload_bytes < 0:
        raise ValueError(f"negative payload: {payload_bytes}")
    if payload_bytes == 0:
        return 0.0
    if message_bytes <= 0:
        return payload_bytes + header_bytes
    n_messages = math.ceil(payload_bytes / message_bytes)
    return payload_bytes + n_messages * header_bytes


class Link:
    """A directed FIFO link between two devices.

    Transfers serialise: each reservation starts no earlier than the link's
    previous reservation finished.  Completion = start + wire/bandwidth +
    latency (latency is pipelined, charged once per transfer).

    Fault state (driven by :class:`repro.faults.FaultInjector`) composes
    multiplicatively/additively on top of the static :class:`LinkSpec`:
    ``bandwidth_scale`` derates throughput, ``extra_latency_ns`` adds
    propagation delay, and a downed link holds all traffic until
    ``down_until``.  At the defaults (1.0 / 0.0 / -inf) the arithmetic is
    bit-identical to the healthy model.
    """

    def __init__(self, engine: Engine, src: int, dst: int, spec: LinkSpec):
        self.engine = engine
        self.src = src
        self.dst = dst
        self.spec = spec
        self._free_at = 0.0
        self.busy_time = 0.0
        self.bytes_carried = 0.0
        self.transfer_count = 0
        self.messages_sent = 0
        self.bandwidth_scale = 1.0
        self.extra_latency_ns = 0.0
        self.down_until = float("-inf")

    # -- fault state -------------------------------------------------------------

    def degrade(self, bandwidth_scale: float = 1.0, extra_latency_ns: float = 0.0) -> None:
        """Apply a multiplicative bandwidth derate / additive latency spike."""
        if bandwidth_scale <= 0:
            raise ValueError(f"bandwidth_scale must be positive, got {bandwidth_scale}")
        if extra_latency_ns < 0:
            raise ValueError(f"extra_latency_ns must be non-negative, got {extra_latency_ns}")
        self.bandwidth_scale *= bandwidth_scale
        self.extra_latency_ns += extra_latency_ns

    def restore(self, bandwidth_scale: float = 1.0, extra_latency_ns: float = 0.0) -> None:
        """Undo a matching :meth:`degrade` (fault window end)."""
        if bandwidth_scale <= 0:
            raise ValueError(f"bandwidth_scale must be positive, got {bandwidth_scale}")
        self.bandwidth_scale /= bandwidth_scale
        self.extra_latency_ns = max(self.extra_latency_ns - extra_latency_ns, 0.0)

    def set_down_until(self, t: float) -> None:
        """Down the link until absolute time ``t`` (extends, never shortens)."""
        self.down_until = max(self.down_until, t)

    def is_down(self, t: float) -> bool:
        """True while the link is inside a down window at time ``t``."""
        return t < self.down_until

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth after the current fault derate."""
        return self.spec.bandwidth * self.bandwidth_scale

    def transfer(
        self,
        payload_bytes: float,
        *,
        message_bytes: int = 0,
        header_bytes: int = 0,
        on_complete: Optional[Callable[[float], None]] = None,
        on_schedule: Optional[Callable[[float, float], None]] = None,
    ) -> Event:
        """Reserve the link for a payload; returns an event firing at delivery.

        ``on_complete(t_delivered)`` runs at the delivery instant (before
        waiters), which the profiler uses to stamp comm counters.
        ``on_schedule(start, done_at)`` runs synchronously at reservation
        time with the computed occupancy window — the observability layer
        records traced link spans from it without perturbing the schedule.
        """
        engine = self.engine
        wire = wire_bytes(payload_bytes, message_bytes, header_bytes)
        if payload_bytes <= 0:
            n_messages = 0
        elif message_bytes <= 0:
            n_messages = 1
        else:
            n_messages = math.ceil(payload_bytes / message_bytes)
        # A downed link queues traffic until it comes back up.
        start = max(engine.now, self._free_at, self.down_until)
        busy = wire / self.effective_bandwidth + n_messages * self.spec.per_message_ns
        done_at = start + busy + self.spec.latency_ns + self.extra_latency_ns
        self._free_at = start + busy
        if on_schedule is not None:
            on_schedule(start, done_at)
        self.busy_time += busy
        self.bytes_carried += wire
        self.transfer_count += 1
        self.messages_sent += n_messages
        ev = engine.event(f"xfer{self.src}->{self.dst}")

        def fire() -> None:
            if on_complete is not None:
                on_complete(engine.now)
            ev.succeed(engine.now)

        engine.call_at(done_at, fire)
        return ev

    def utilization(self, horizon_ns: float) -> float:
        """Fraction of ``horizon_ns`` this link spent busy."""
        if horizon_ns <= 0:
            raise ValueError("horizon must be positive")
        return min(self.busy_time / horizon_ns, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Link {self.src}->{self.dst} {self.spec.bandwidth:.0f}GB/s>"


class Topology:
    """Maps ordered device pairs to :class:`LinkSpec`.

    ``spec_fn(src, dst)`` returns the link spec for that pair; ``None``
    means the pair is unreachable.
    """

    def __init__(
        self,
        n_devices: int,
        spec_fn: Callable[[int, int], Optional[LinkSpec]],
        name: str = "custom",
    ):
        if n_devices <= 0:
            raise ValueError("topology needs at least one device")
        self.n_devices = n_devices
        self.name = name
        self._spec_fn = spec_fn

    def link_spec(self, src: int, dst: int) -> Optional[LinkSpec]:
        """Spec for the directed pair, or None if unconnected."""
        if src == dst:
            return None
        if not (0 <= src < self.n_devices and 0 <= dst < self.n_devices):
            raise ValueError(f"device pair ({src}, {dst}) out of range")
        return self._spec_fn(src, dst)

    def connected(self, src: int, dst: int) -> bool:
        """True if ``src`` can reach ``dst`` directly."""
        return src != dst and self.link_spec(src, dst) is not None


def nvlink_dgx1(n_devices: int, pair_spec: LinkSpec = NVLINK_PAIR_SPEC) -> Topology:
    """All-pairs NVLink clique, as on the paper's 4-GPU DGX-1 testbed."""
    return Topology(n_devices, lambda s, d: pair_spec, name=f"nvlink-dgx1-{n_devices}")


def pcie_topology(n_devices: int, spec: LinkSpec = PCIE_SPEC) -> Topology:
    """Host-routed PCIe peer access (shared-ish; modelled as per-pair links)."""
    return Topology(n_devices, lambda s, d: spec, name=f"pcie-{n_devices}")


def multinode_topology(
    n_devices: int,
    devices_per_node: int,
    intra_spec: LinkSpec = NVLINK_PAIR_SPEC,
    inter_spec: LinkSpec = NIC_SPEC,
) -> Topology:
    """NVLink within a node, NIC across nodes — the §V multi-node setting."""
    if devices_per_node <= 0:
        raise ValueError("devices_per_node must be positive")

    def spec_fn(s: int, d: int) -> LinkSpec:
        return intra_spec if s // devices_per_node == d // devices_per_node else inter_spec

    return Topology(n_devices, spec_fn, name=f"multinode-{n_devices}x{devices_per_node}")


class Interconnect:
    """The fabric: lazily-built links over a topology, plus comm accounting."""

    #: profiler counter receiving every delivered payload byte
    COUNTER = "comm_bytes"

    def __init__(self, engine: Engine, topology: Topology, profiler: Optional[Profiler] = None):
        self.engine = engine
        self.topology = topology
        self.profiler = profiler
        self._links: Dict[Tuple[int, int], Link] = {}

    def link(self, src: int, dst: int) -> Link:
        """The directed link for ``(src, dst)``; raises if unreachable."""
        key = (src, dst)
        lk = self._links.get(key)
        if lk is None:
            spec = self.topology.link_spec(src, dst)
            if spec is None:
                raise ValueError(
                    f"devices {src} and {dst} are not connected in {self.topology.name}"
                )
            lk = Link(self.engine, src, dst, spec)
            self._links[key] = lk
        return lk

    def peek_link(self, src: int, dst: int) -> Optional[Link]:
        """The ``(src, dst)`` link if it has been instantiated, else None.

        Unlike :meth:`link` this never creates the link — fault-state
        queries use it so that merely *checking* a pair's health does not
        materialise its Link object (which would perturb bookkeeping).
        """
        return self._links.get((src, dst))

    def transfer(
        self,
        src: int,
        dst: int,
        payload_bytes: float,
        *,
        message_bytes: int = 0,
        header_bytes: int = 0,
        counter: Optional[str] = None,
    ) -> Event:
        """Move payload from ``src`` to ``dst``; stamps the comm counter.

        The counter (default :data:`COUNTER`) is credited with the *payload*
        bytes at delivery time — matching the paper's instrument, which
        counts RDMA-write payload in 256-byte units.
        """
        name = counter or self.COUNTER
        prof = self.profiler

        def on_complete(t: float) -> None:
            if prof is not None:
                prof.add_count(name, t, payload_bytes)
                prof.add_count(f"{name}.dev{src}->dev{dst}", t, payload_bytes)

        on_schedule = None
        if prof is not None and prof.active_trace is not None:
            # Traced transfers additionally record a link-occupancy span so
            # the critical-path analyser sees individual wire time.  Guarded
            # on an active trace: untraced runs stay span-for-span identical.
            def on_schedule(start: float, done_at: float) -> None:
                prof.record_span(f"xfer.dev{src}->dev{dst}", "link", src, start, done_at)

        return self.link(src, dst).transfer(
            payload_bytes,
            message_bytes=message_bytes,
            header_bytes=header_bytes,
            on_complete=on_complete,
            on_schedule=on_schedule,
        )

    # -- statistics -------------------------------------------------------------

    def total_wire_bytes(self) -> float:
        """Bytes (incl. headers) carried over all links so far."""
        return sum(lk.bytes_carried for lk in self._links.values())

    def links(self) -> List[Link]:
        """All links instantiated so far."""
        return list(self._links.values())
