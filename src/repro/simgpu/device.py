"""Simulated GPU device model.

A :class:`Device` bundles a hardware description (:class:`DeviceSpec`), a
memory allocator, and a set of execution streams.  It does not execute real
GPU code; kernels are timed by the roofline cost model in
:mod:`repro.simgpu.kernel`, and their *functional* effect (actual numpy
arrays) is carried by the buffers in :mod:`repro.simgpu.memory`.

The default spec is the V100-SXM2-32GB of the paper's DGX testbed; the
memory/compute efficiency factors come straight from the paper's ``ncu``
measurements of the embedding-retrieval kernel (§IV-B: 57% memory
throughput, 38% compute throughput).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, Optional

from .engine import Engine
from .memory import MemoryPool
from .units import GiB, gbps, us

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .stream import Stream

__all__ = ["DeviceSpec", "Device", "V100_SPEC", "A100_SPEC", "H100_SPEC"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static hardware description of a simulated GPU.

    Attributes
    ----------
    name:
        Human-readable model name.
    sm_count:
        Number of streaming multiprocessors; with ``max_blocks_per_sm`` this
        determines how many thread blocks run concurrently (one *wave*).
    clock_ghz:
        SM clock; used to convert cycle-denominated costs to time.
    mem_bytes:
        HBM capacity; allocations beyond this raise the simulator's OOM.
    mem_bandwidth:
        Peak HBM bandwidth in bytes/ns (== GB/s).
    mem_efficiency:
        Achieved fraction of peak bandwidth for gather-heavy kernels.  The
        paper measured 57% for the EMB retrieval kernel.
    flops_per_ns:
        Peak FP32 throughput in FLOPs per nanosecond (== GFLOP/s).
    compute_efficiency:
        Achieved fraction of peak FLOPs (paper: 38%).
    max_blocks_per_sm:
        Concurrent resident blocks per SM for the kernel occupancy model.
    kernel_launch_overhead_ns:
        Host-side latency from launch call to first instruction.
    sync_overhead_ns:
        Cost of a stream/device synchronisation observed by the host.
    min_kernel_ns:
        Floor on any kernel's duration: even an empty kernel occupies the
        device for scheduling + teardown.  This is what makes tiny
        strong-scaled partitions *latency-limited* (paper §IV-B).
    """

    name: str = "V100-SXM2-32GB"
    sm_count: int = 80
    clock_ghz: float = 1.53
    mem_bytes: int = 32 * GiB
    mem_bandwidth: float = gbps(900)
    mem_efficiency: float = 0.57
    flops_per_ns: float = 15_700.0  # 15.7 TFLOP/s FP32
    compute_efficiency: float = 0.38
    max_blocks_per_sm: int = 8
    kernel_launch_overhead_ns: float = 6 * us
    sync_overhead_ns: float = 8 * us
    min_kernel_ns: float = 4 * us

    def __post_init__(self) -> None:
        if self.sm_count <= 0:
            raise ValueError("sm_count must be positive")
        if not (0.0 < self.mem_efficiency <= 1.0):
            raise ValueError(f"mem_efficiency out of (0, 1]: {self.mem_efficiency}")
        if not (0.0 < self.compute_efficiency <= 1.0):
            raise ValueError(f"compute_efficiency out of (0, 1]: {self.compute_efficiency}")
        if self.mem_bytes <= 0 or self.mem_bandwidth <= 0 or self.flops_per_ns <= 0:
            raise ValueError("capacities and throughputs must be positive")

    @property
    def concurrent_blocks(self) -> int:
        """Thread blocks resident per wave across the whole device."""
        return self.sm_count * self.max_blocks_per_sm

    @property
    def effective_mem_bandwidth(self) -> float:
        """Achieved HBM bandwidth for the retrieval-style access pattern."""
        return self.mem_bandwidth * self.mem_efficiency

    @property
    def effective_flops(self) -> float:
        """Achieved FP32 throughput."""
        return self.flops_per_ns * self.compute_efficiency

    def with_memory(self, mem_bytes: int) -> "DeviceSpec":
        """A copy of this spec with a different HBM capacity."""
        return replace(self, mem_bytes=mem_bytes)


V100_SPEC = DeviceSpec()

A100_SPEC = DeviceSpec(
    name="A100-SXM4-40GB",
    sm_count=108,
    clock_ghz=1.41,
    mem_bytes=40 * GiB,
    mem_bandwidth=gbps(1555),
    flops_per_ns=19_500.0,
)

H100_SPEC = DeviceSpec(
    name="H100-SXM5-80GB",
    sm_count=132,
    clock_ghz=1.83,
    mem_bytes=80 * GiB,
    mem_bandwidth=gbps(3350),
    flops_per_ns=67_000.0,
)


class Device:
    """One simulated GPU: spec + memory pool + streams.

    Devices are created by :class:`repro.simgpu.cluster.Cluster`; user code
    rarely instantiates them directly.
    """

    def __init__(self, engine: Engine, device_id: int, spec: DeviceSpec = V100_SPEC):
        if device_id < 0:
            raise ValueError(f"device_id must be non-negative, got {device_id}")
        self.engine = engine
        self.id = device_id
        self.spec = spec
        self.memory = MemoryPool(capacity=spec.mem_bytes, device_id=device_id)
        self._streams: Dict[str, "Stream"] = {}
        self._peers: Dict[int, bool] = {}
        #: multiplicative kernel service-time factor (>= 1 while a
        #: "straggler" fault window is active; exactly 1.0 when healthy)
        self.slowdown = 1.0
        #: transient-stall window end: kernels make no progress at wave
        #: boundaries before this absolute time (-inf when healthy)
        self.stalled_until = float("-inf")
        #: absolute time of a permanent ``device_down`` failure (+inf when
        #: the device has never failed); unlike stalls this never reverts
        self.down_since = float("inf")
        #: cluster profiler, attached by Cluster so traced kernel launches
        #: can record per-kernel spans (None when running device-standalone)
        self.profiler = None

    # -- fault state -------------------------------------------------------------

    def stall_until(self, t: float) -> None:
        """Freeze kernel progress until absolute time ``t`` (extends only)."""
        self.stalled_until = max(self.stalled_until, t)

    def mark_down(self, t: float) -> None:
        """Record a permanent failure at absolute time ``t`` (first one wins)."""
        self.down_since = min(self.down_since, t)

    @property
    def is_down(self) -> bool:
        """True once the device has permanently failed (never reverts)."""
        return self.engine.now >= self.down_since

    @property
    def is_degraded(self) -> bool:
        """True while any device-level fault window is active."""
        return self.slowdown != 1.0 or self.engine.now < self.stalled_until or self.is_down

    # -- streams ---------------------------------------------------------------

    def stream(self, name: str = "default") -> "Stream":
        """Get (creating on first use) a named in-order stream."""
        from .stream import Stream  # local import: stream.py imports Device types

        st = self._streams.get(name)
        if st is None:
            st = Stream(self, name)
            self._streams[name] = st
        return st

    @property
    def default_stream(self) -> "Stream":
        """The device's default stream (CUDA's stream 0 analogue)."""
        return self.stream("default")

    def synchronize(self):
        """Process generator: wait for every stream on this device to drain.

        Mirrors ``cudaDeviceSynchronize``; charges the spec's sync overhead.
        """
        events = [st.drained() for st in self._streams.values()]
        if events:
            yield self.engine.all_of(events)
        yield self.engine.timeout(self.spec.sync_overhead_ns)

    # -- peer access -------------------------------------------------------------

    def enable_peer_access(self, other_id: int) -> None:
        """Allow direct load/store to ``other_id``'s memory (NVLink peer map)."""
        if other_id == self.id:
            raise ValueError("a device is always its own peer")
        self._peers[other_id] = True

    def can_access_peer(self, other_id: int) -> bool:
        """True if one-sided access to ``other_id`` has been enabled."""
        return other_id == self.id or self._peers.get(other_id, False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Device {self.id} {self.spec.name} {self.memory.used / GiB:.2f}GiB used>"
