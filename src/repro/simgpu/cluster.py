"""Multi-GPU node/cluster assembly.

A :class:`Cluster` owns the simulation engine, the devices, the interconnect,
and the profiler for one experiment — the analogue of "a DGX box plus the
processes driving it".  Factory helpers build the paper's testbed
(:func:`dgx_v100`) and variants for the extension studies.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from .device import Device, DeviceSpec, V100_SPEC
from .engine import Engine, Event, ProcessGenerator
from .interconnect import Interconnect, Topology, multinode_topology, nvlink_dgx1, pcie_topology
from .profiler import Profiler

__all__ = ["Cluster", "dgx_v100", "pcie_node", "multinode"]


class Cluster:
    """One simulated multi-GPU system.

    Parameters
    ----------
    n_devices:
        Number of GPUs.
    topology:
        Interconnect topology; defaults to the all-pairs NVLink clique of
        the paper's DGX-1.
    device_spec:
        Hardware spec shared by all devices (homogeneous node).
    """

    def __init__(
        self,
        n_devices: int,
        topology: Optional[Topology] = None,
        device_spec: DeviceSpec = V100_SPEC,
    ):
        if n_devices <= 0:
            raise ValueError(f"n_devices must be positive, got {n_devices}")
        self.engine = Engine()
        self.profiler = Profiler()
        self.topology = topology or nvlink_dgx1(n_devices)
        if self.topology.n_devices != n_devices:
            raise ValueError(
                f"topology is for {self.topology.n_devices} devices, cluster has {n_devices}"
            )
        self.interconnect = Interconnect(self.engine, self.topology, self.profiler)
        self.devices: List[Device] = [
            Device(self.engine, i, device_spec) for i in range(n_devices)
        ]
        for dev in self.devices:
            dev.profiler = self.profiler
        # NVLink peers: enable one-sided access between every connected pair.
        for src in self.devices:
            for dst in self.devices:
                if src.id != dst.id and self.topology.connected(src.id, dst.id):
                    src.enable_peer_access(dst.id)

    @property
    def n_devices(self) -> int:
        """Number of GPUs in the cluster."""
        return len(self.devices)

    def device(self, device_id: int) -> Device:
        """Device by id."""
        return self.devices[device_id]

    # -- running -------------------------------------------------------------------

    def run(self, process_fn: Callable[["Cluster"], ProcessGenerator]) -> float:
        """Run a top-level host process to completion; return elapsed ns.

        ``process_fn(cluster)`` is the "host program": a process generator
        that launches kernels, waits on streams, etc.  The clock is *not*
        reset, so successive ``run`` calls accumulate (100-batch loops).
        """
        t0 = self.engine.now
        proc = self.engine.process(process_fn(self), name="host")
        self.engine.run_until_event(proc)
        return self.engine.now - t0

    def barrier_all(self) -> ProcessGenerator:
        """Process generator: synchronise every device (host-side barrier)."""
        events: List[Event] = []
        for dev in self.devices:
            events.append(self.engine.process(dev.synchronize(), name=f"sync{dev.id}"))
        yield self.engine.all_of(events)

    def reset_profiler(self) -> None:
        """Clear recorded spans/counters (keeps the clock and memory state)."""
        self.profiler.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Cluster {self.n_devices}x{self.devices[0].spec.name} "
            f"topology={self.topology.name}>"
        )


def dgx_v100(n_devices: int = 4) -> Cluster:
    """The paper's testbed: up to 4 NVLink-connected V100s."""
    return Cluster(n_devices, topology=nvlink_dgx1(n_devices), device_spec=V100_SPEC)


def pcie_node(n_devices: int = 4, device_spec: DeviceSpec = V100_SPEC) -> Cluster:
    """A PCIe-only node (ablation: slower fabric)."""
    return Cluster(n_devices, topology=pcie_topology(n_devices), device_spec=device_spec)


def multinode(
    n_nodes: int, devices_per_node: int = 4, device_spec: DeviceSpec = V100_SPEC
) -> Cluster:
    """Multi-node system for the §V aggregator extension."""
    n = n_nodes * devices_per_node
    return Cluster(
        n,
        topology=multinode_topology(n, devices_per_node),
        device_spec=device_spec,
    )
