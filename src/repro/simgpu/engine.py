"""Discrete-event simulation engine.

The engine is the clock of the whole GPU-system simulator.  Everything that
takes simulated time — kernel waves, NVLink transfers, collective control
paths, stream synchronisation — is expressed as a *process*: a Python
generator that yields :class:`Timeout` or :class:`Event` objects.  The engine
advances a single scalar clock (in nanoseconds) through a binary heap of
scheduled callbacks, exactly in timestamp order, with FIFO tie-breaking so
that runs are fully deterministic.

Design notes
------------
* Time is a ``float`` of nanoseconds.  All cost models in :mod:`repro.simgpu`
  produce nanoseconds; helpers in :mod:`repro.simgpu.units` convert.
* Processes are plain generators.  ``yield Timeout(dt)`` suspends the process
  for ``dt`` simulated nanoseconds; ``yield event`` suspends until the event
  succeeds.  A process may also ``yield AllOf([...])`` / ``yield AnyOf([...])``
  to wait on several events.
* The engine is deliberately single-threaded and allocation-light: one run of
  the paper-scale weak-scaling experiment schedules a few thousand events, so
  a heap of tuples is more than fast enough (see the hpc guides: profile
  first; the hot path of this package is numpy, not the event loop).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Engine",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Notifier",
    "SimulationError",
]


class SimulationError(RuntimeError):
    """Raised for illegal engine operations (e.g. scheduling in the past)."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries whatever object the interrupter supplied.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A one-shot condition that processes may wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once and resumes every waiting process at the current
    simulation time.  Events triggered with :meth:`fail` re-raise their
    exception inside each waiter.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "_triggered", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self.engine = engine
        self.name = name
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The payload passed to :meth:`succeed` / exception from :meth:`fail`."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, waking all waiters now."""
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.engine._schedule_event(self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters see ``exc`` raised."""
        if self._triggered:
            raise SimulationError(f"event {self.name or id(self)} already triggered")
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exc
        self.engine._schedule_event(self)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event triggers (immediately if it has)."""
        if self._triggered:
            # Preserve "callbacks fire at trigger time" semantics as closely
            # as possible: fire at the current instant via the queue so that
            # ordering relative to other same-time callbacks stays FIFO.
            self.engine.call_at(self.engine.now, lambda: fn(self))
        else:
            self.callbacks.append(fn)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name or hex(id(self))} {state}>"


class Timeout(Event):
    """An event that succeeds automatically after ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(engine, name=f"timeout({delay:.1f}ns)")
        self.delay = delay
        self._value = value
        engine._schedule(engine.now + delay, self._fire)

    def _fire(self) -> None:
        self._triggered = True
        self._ok = True
        callbacks, self.callbacks = self.callbacks, []
        for fn in callbacks:
            fn(self)


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    Fails as soon as any child fails (with that child's exception).
    """

    __slots__ = ("_pending",)

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="all_of")
        events = list(events)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        for ev in events:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed(None)


class AnyOf(Event):
    """Succeeds when the first child event succeeds (or fails likewise)."""

    def __init__(self, engine: "Engine", events: Iterable[Event]):
        super().__init__(engine, name="any_of")
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for ev in events:
            ev.add_callback(self._child_done)

    def _child_done(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed(ev.value)
        else:
            self.fail(ev.value)


ProcessGenerator = Generator[Event, Any, Any]


class Notifier:
    """A re-armable broadcast wake-up shared by cooperating processes.

    Plain :class:`Event` objects are one-shot, so loops that repeatedly
    wait for "something changed" (a request arrived, a batch completed)
    have to hand-roll the replace-the-event dance.  A ``Notifier`` owns
    that: :meth:`wait` returns the current pending event (creating a fresh
    one after each firing), and :meth:`notify` triggers it — a no-op when
    nobody re-armed since the last firing, so producers can signal
    unconditionally.
    """

    __slots__ = ("engine", "name", "_event")

    def __init__(self, engine: "Engine", name: str = "notify"):
        self.engine = engine
        self.name = name
        self._event: Optional[Event] = None

    def wait(self) -> Event:
        """The pending wake-up event; yields until the next :meth:`notify`."""
        if self._event is None or self._event.triggered:
            self._event = self.engine.event(self.name)
        return self._event

    def notify(self) -> None:
        """Wake every process currently waiting (no-op when none are)."""
        if self._event is not None and not self._event.triggered:
            self._event.succeed()


class Process(Event):
    """A running generator-based process.

    A ``Process`` is itself an :class:`Event` that succeeds with the
    generator's return value when it finishes, so processes can wait on each
    other (fork/join).
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, engine: "Engine", generator: ProcessGenerator, name: str = ""):
        super().__init__(engine, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time, after already-queued same-time work.
        engine._schedule(engine.now, lambda: self._resume(None, None))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError("cannot interrupt a finished process")
        target = self._waiting_on
        if target is not None:
            # Detach from the event we were waiting on so a later trigger
            # (e.g. a pending Timeout firing) cannot double-resume us.
            try:
                target.callbacks.remove(self._on_event)
            except ValueError:
                pass
        self._waiting_on = None
        exc = Interrupt(cause)
        self.engine._schedule(self.engine.now, lambda: self._resume(None, exc))

    # -- internal machinery -------------------------------------------------

    def _on_event(self, ev: Event) -> None:
        self._waiting_on = None
        if ev.ok:
            self._resume(ev.value, None)
        else:
            self._resume(None, ev.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self._triggered:
            return  # interrupted after completion race; nothing to do
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as unhandled:
            self.fail(unhandled)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes must yield Event objects"
            )
        if target.engine is not self.engine:
            raise SimulationError("cannot wait on an event from another engine")
        self._waiting_on = target
        target.add_callback(self._on_event)


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Engine:
    """The simulation clock and scheduler.

    Typical use::

        eng = Engine()

        def worker(eng):
            yield eng.timeout(100.0)
            return "done"

        proc = eng.process(worker(eng))
        eng.run()
        assert eng.now == 100.0 and proc.value == "done"
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[_QueueEntry] = []
        self._seq = 0
        self._running = False

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- factories -----------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Launch a generator as a :class:`Process` starting now."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that succeeds once all ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that succeeds once any of ``events`` succeeds."""
        return AnyOf(self, events)

    def notifier(self, name: str = "notify") -> Notifier:
        """Create a re-armable :class:`Notifier` bound to this engine."""
        return Notifier(self, name)

    def call_at(self, time: float, fn: Callable[[], None]) -> _QueueEntry:
        """Schedule ``fn()`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at {time} < now {self._now}")
        return self._schedule(time, fn)

    def call_in(self, delay: float, fn: Callable[[], None]) -> _QueueEntry:
        """Schedule ``fn()`` after ``delay`` ns."""
        return self.call_at(self._now + delay, fn)

    # -- run loop ------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains or the clock reaches ``until``.

        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                entry = self._queue[0]
                if entry.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and entry.time > until:
                    self._now = until
                    return self._now
                heapq.heappop(self._queue)
                self._now = entry.time
                entry.fn()
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_event(self, event: Event, limit: Optional[float] = None) -> Any:
        """Run until ``event`` triggers; return its value (raise if it failed).

        ``limit`` caps the simulated time; exceeding it raises
        :class:`SimulationError` (catches accidentally-unbounded models).
        """
        while not event.triggered or self._pending_at_now():
            if not self._queue:
                if event.triggered:
                    break
                raise SimulationError(
                    f"event queue drained at t={self._now} but {event!r} never triggered"
                )
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            if limit is not None and entry.time > limit:
                raise SimulationError(f"simulation exceeded limit {limit} ns")
            self._now = entry.time
            entry.fn()
        if not event.ok:
            raise event.value
        return event.value

    def _pending_at_now(self) -> bool:
        """True if there are still queued callbacks at the current instant."""
        q = self._queue
        while q and q[0].cancelled:
            heapq.heappop(q)
        return bool(q) and q[0].time <= self._now

    # -- internals -----------------------------------------------------------

    def _schedule(self, time: float, fn: Callable[[], None]) -> _QueueEntry:
        self._seq += 1
        entry = _QueueEntry(time, self._seq, fn)
        heapq.heappush(self._queue, entry)
        return entry

    def _schedule_event(self, event: Event) -> None:
        """Queue an event's callbacks to run at the current instant."""

        def fire() -> None:
            callbacks, event.callbacks = event.callbacks, []
            for fn in callbacks:
                fn(event)

        self._schedule(self._now, fire)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine t={self._now:.1f}ns queued={len(self._queue)}>"
