"""Timeline export: Chrome trace JSON and span summaries.

``chrome_trace`` converts a :class:`~repro.simgpu.profiler.Profiler`'s
spans and counters into the Trace Event Format consumed by
``chrome://tracing`` / Perfetto — one row per device (plus one per named
category for device-less spans like collectives), counters as counter
events.  Handy for eyeballing exactly how the PGAS kernel's waves overlap
the interconnect traffic.

``summarize_spans`` renders the per-category totals as a text table for
quick terminal inspection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .profiler import Profiler, Span
from .units import to_us

__all__ = ["chrome_trace", "write_chrome_trace", "summarize_spans"]


def _span_event(span: Span) -> Dict[str, Any]:
    """One complete ('X') trace event; times in microseconds."""
    pid = span.device_id if span.device_id >= 0 else 9999
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": to_us(span.t_start),
        "dur": to_us(span.duration),
        "pid": pid,
        "tid": 0,
        "args": {"category": span.category},
    }


def chrome_trace(
    profiler: Profiler,
    *,
    counters: bool = True,
    counter_period_ns: float = 10_000.0,
) -> Dict[str, Any]:
    """Build a Trace-Event-Format dict from recorded spans and counters."""
    events: List[Dict[str, Any]] = []
    device_ids = set()
    for span in profiler.spans:
        events.append(_span_event(span))
        device_ids.add(span.device_id if span.device_id >= 0 else 9999)

    # Process name metadata rows.
    for pid in sorted(device_ids):
        name = f"GPU {pid}" if pid != 9999 else "host / fabric"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )

    if counters and profiler.counters:
        t_end = max((s.t_end for s in profiler.spans), default=0.0)
        for cname, counter in profiler.counters.items():
            # Skip per-pair sub-counters (too many rows) but keep the
            # name-spaced per-device cache and fault counters: Perfetto
            # shows hit rate / fault activity alongside the comm-volume row.
            if "." in cname and not cname.startswith(("cache.", "faults.")):
                continue
            if t_end <= 0:
                continue
            times, vals = counter.sample(0.0, t_end, counter_period_ns)
            for t, v in zip(times, vals):
                events.append(
                    {"name": cname, "ph": "C", "ts": to_us(t), "pid": 9999,
                     "args": {cname: float(v)}}
                )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(profiler: Profiler, path: str, **kwargs: Any) -> None:
    """Serialise :func:`chrome_trace` to a file for chrome://tracing."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(profiler, **kwargs), fh)


def summarize_spans(profiler: Profiler) -> str:
    """Per-category totals (sum and merged wall time) as a text table."""
    categories = sorted({s.category for s in profiler.spans})
    lines = [f"{'category':16s} {'spans':>6s} {'sum (us)':>12s} {'wall (us)':>12s}"]
    for cat in categories:
        spans = profiler.spans_by_category(cat)
        lines.append(
            f"{cat:16s} {len(spans):6d} "
            f"{to_us(profiler.category_time(cat)):12.1f} "
            f"{to_us(profiler.category_wall_time(cat)):12.1f}"
        )
    return "\n".join(lines)
