"""Timeline export: Chrome trace JSON and span summaries.

``chrome_trace`` converts a :class:`~repro.simgpu.profiler.Profiler`'s
spans and counters into the Trace Event Format consumed by
``chrome://tracing`` / Perfetto — one row per device (plus one per named
category for device-less spans like collectives), counters as counter
events.  Handy for eyeballing exactly how the PGAS kernel's waves overlap
the interconnect traffic.

``summarize_spans`` renders the per-category totals as a text table for
quick terminal inspection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .profiler import Profiler, Span
from .units import to_us

__all__ = ["chrome_trace", "write_chrome_trace", "summarize_spans"]


def _span_event(span: Span) -> Dict[str, Any]:
    """One complete ('X') trace event; times in microseconds."""
    pid = span.device_id if span.device_id >= 0 else 9999
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": to_us(span.t_start),
        "dur": to_us(span.duration),
        "pid": pid,
        "tid": 0,
        "args": {"category": span.category},
    }


def chrome_trace(
    profiler: Profiler,
    *,
    counters: bool = True,
    counter_period_ns: float = 10_000.0,
) -> Dict[str, Any]:
    """Build a Trace-Event-Format dict from recorded spans and counters."""
    events: List[Dict[str, Any]] = []
    device_ids = set()
    for span in profiler.spans:
        events.append(_span_event(span))
        device_ids.add(span.device_id if span.device_id >= 0 else 9999)
        if span.category == "fault":
            # Fault windows also land as instant events, so Perfetto marks
            # the window edge even when the span row is collapsed.
            pid = span.device_id if span.device_id >= 0 else 9999
            events.append(
                {"name": span.name, "cat": "fault", "ph": "i", "s": "g",
                 "ts": to_us(span.t_start), "pid": pid, "tid": 0}
            )

    # Process name metadata rows.
    for pid in sorted(device_ids):
        name = f"GPU {pid}" if pid != 9999 else "host / fabric"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )

    if counters and profiler.counters:
        t_end = max((s.t_end for s in profiler.spans), default=0.0)
        for cname, counter in profiler.counters.items():
            # Skip per-pair sub-counters (too many rows) but keep the
            # name-spaced per-device cache, fault, and serving counters:
            # Perfetto shows hit rate / fault activity / queue depth
            # alongside the comm-volume row.
            if "." in cname and not cname.startswith(("cache.", "faults.", "serving.")):
                continue
            if t_end <= 0:
                continue
            times, vals = counter.sample(0.0, t_end, counter_period_ns)
            for t, v in zip(times, vals):
                events.append(
                    {"name": cname, "ph": "C", "ts": to_us(t), "pid": 9999,
                     "args": {cname: float(v)}}
                )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(profiler: Profiler, path: str, **kwargs: Any) -> None:
    """Serialise :func:`chrome_trace` to a file for chrome://tracing."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(profiler, **kwargs), fh)


def summarize_spans(profiler: Profiler) -> str:
    """Per-category totals (sum and merged wall time) as a text table.

    Each category gets a ``total`` row (all devices merged); categories
    whose spans land on more than one device also get per-device rows, so
    concurrent per-device work keeps its attribution instead of collapsing
    into one aggregate.  Device ``-1`` (host / fabric spans) prints as
    ``host``.
    """
    categories = sorted({s.category for s in profiler.spans})
    lines = [
        f"{'category':16s} {'device':>6s} {'spans':>6s} "
        f"{'sum (us)':>12s} {'wall (us)':>12s}"
    ]

    def row(cat: str, dev_label: str, spans: list, sum_ns: float, wall_ns: float) -> str:
        return (
            f"{cat:16s} {dev_label:>6s} {len(spans):6d} "
            f"{to_us(sum_ns):12.1f} {to_us(wall_ns):12.1f}"
        )

    for cat in categories:
        spans = profiler.spans_by_category(cat)
        lines.append(
            row(cat, "total", spans,
                profiler.category_time(cat), profiler.category_wall_time(cat))
        )
        devices = sorted({s.device_id for s in spans})
        if len(devices) > 1:
            for d in devices:
                dspans = profiler.spans_by_category(cat, device_id=d)
                label = f"dev{d}" if d >= 0 else "host"
                lines.append(
                    row("", label, dspans,
                        profiler.category_time(cat, d),
                        profiler.category_wall_time(cat, d))
                )
    return "\n".join(lines)
