"""Timeline export: Chrome trace JSON and span summaries.

``chrome_trace`` converts a :class:`~repro.simgpu.profiler.Profiler`'s
spans and counters into the Trace Event Format consumed by
``chrome://tracing`` / Perfetto — one row per device (plus one per named
category for device-less spans like collectives), counters as counter
events.  Handy for eyeballing exactly how the PGAS kernel's waves overlap
the interconnect traffic.

Spans carrying a :class:`~repro.simgpu.profiler.TraceRef` additionally get
Perfetto *flow events* (``s``/``t``/``f``) so arrows connect one request's
batch across devices and rows.

Event ids live in disjoint pid namespaces so merged traces never collide:
device spans use their device id, host/fabric spans :data:`HOST_PID`,
telemetry gauge tracks pid 9998 (see :mod:`repro.telemetry.export`), fault
instants :data:`FAULT_PID`, and raw counter tracks :data:`COUNTER_PID`.
Flow-event ids start at :data:`FLOW_ID_BASE`, far above any pid.

``summarize_spans`` renders the per-category totals as a text table for
quick terminal inspection.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Tuple

from .profiler import Profiler, Span
from .units import to_us

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "summarize_spans",
    "HOST_PID",
    "FAULT_PID",
    "COUNTER_PID",
    "FLOW_ID_BASE",
]

#: pid of host/fabric span rows (device-less spans, device_id == -1)
HOST_PID = 9999
#: pid of fault instant markers (was shared with span rows pre-v4)
FAULT_PID = 9997
#: pid of raw profiler counter tracks (was 9999, colliding with host spans;
#: telemetry's derived gauges keep their own pid 9998)
COUNTER_PID = 9996
#: first flow-event id; trace-ref groups count up from here, far above pids
FLOW_ID_BASE = 0x100000


def _span_pid(span: Span) -> int:
    return span.device_id if span.device_id >= 0 else HOST_PID


def _span_event(span: Span) -> Dict[str, Any]:
    """One complete ('X') trace event; times in microseconds."""
    return {
        "name": span.name,
        "cat": span.category,
        "ph": "X",
        "ts": to_us(span.t_start),
        "dur": to_us(span.duration),
        "pid": _span_pid(span),
        "tid": 0,
        "args": {"category": span.category},
    }


def _flow_events(spans: List[Span]) -> List[Dict[str, Any]]:
    """Perfetto flow arrows threading each trace ref through its spans.

    One flow per (trace_id, batch_id): a start ('s') at the first span, a
    step ('t') at each middle one, and an end ('f', binding-point "e") at
    the last — each bound to its span's slice by matching pid/tid and the
    slice's start timestamp.  Span order within a flow is chronological with
    deterministic tie-breaks, so identical profiles yield identical arrows.
    """
    groups: Dict[Tuple[int, int], List[Span]] = {}
    for span in spans:
        if span.trace is not None:
            groups.setdefault((span.trace.trace_id, span.trace.batch_id), []).append(span)

    events: List[Dict[str, Any]] = []
    for flow_idx, key in enumerate(sorted(groups)):
        trace_id, batch_id = key
        chain = sorted(
            groups[key], key=lambda s: (s.t_start, s.t_end, s.device_id, s.name)
        )
        if len(chain) < 2:
            continue  # an arrow needs two endpoints
        flow_id = FLOW_ID_BASE + flow_idx
        name = f"trace{trace_id}.batch{batch_id}"
        for i, span in enumerate(chain):
            ev = {
                "name": name,
                "cat": "trace",
                "id": flow_id,
                "ts": to_us(span.t_start),
                "pid": _span_pid(span),
                "tid": 0,
            }
            if i == 0:
                ev["ph"] = "s"
            elif i == len(chain) - 1:
                ev["ph"] = "f"
                ev["bp"] = "e"
            else:
                ev["ph"] = "t"
            events.append(ev)
    return events


def chrome_trace(
    profiler: Profiler,
    *,
    counters: bool = True,
    counter_period_ns: float = 10_000.0,
    flows: bool = True,
) -> Dict[str, Any]:
    """Build a Trace-Event-Format dict from recorded spans and counters."""
    events: List[Dict[str, Any]] = []
    device_ids = set()
    has_faults = False
    for span in profiler.spans:
        events.append(_span_event(span))
        device_ids.add(_span_pid(span))
        if span.category == "fault":
            # Fault windows also land as instant events, so Perfetto marks
            # the window edge even when the span row is collapsed.  They
            # live on their own pid so their ids never collide with span
            # rows or counter tracks in a merged trace.
            has_faults = True
            events.append(
                {"name": span.name, "cat": "fault", "ph": "i", "s": "g",
                 "ts": to_us(span.t_start), "pid": FAULT_PID, "tid": 0}
            )

    if flows:
        events.extend(_flow_events(profiler.spans))

    # Process name metadata rows.
    for pid in sorted(device_ids):
        name = f"GPU {pid}" if pid != HOST_PID else "host / fabric"
        events.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": name}}
        )
    if has_faults:
        events.append(
            {"name": "process_name", "ph": "M", "pid": FAULT_PID, "tid": 0,
             "args": {"name": "faults"}}
        )

    emitted_counters = False
    if counters and profiler.counters:
        t_end = max((s.t_end for s in profiler.spans), default=0.0)
        for cname, counter in profiler.counters.items():
            # Skip per-pair sub-counters (too many rows) but keep the
            # name-spaced per-device cache, fault, and serving counters:
            # Perfetto shows hit rate / fault activity / queue depth
            # alongside the comm-volume row.
            if "." in cname and not cname.startswith(("cache.", "faults.", "serving.")):
                continue
            if t_end <= 0:
                continue
            emitted_counters = True
            times, vals = counter.sample(0.0, t_end, counter_period_ns)
            for t, v in zip(times, vals):
                events.append(
                    {"name": cname, "ph": "C", "ts": to_us(t), "pid": COUNTER_PID,
                     "args": {cname: float(v)}}
                )
    if emitted_counters:
        events.append(
            {"name": "process_name", "ph": "M", "pid": COUNTER_PID, "tid": 0,
             "args": {"name": "counters"}}
        )

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(profiler: Profiler, path: str, **kwargs: Any) -> None:
    """Serialise :func:`chrome_trace` to a file for chrome://tracing."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(profiler, **kwargs), fh)


def summarize_spans(profiler: Profiler) -> str:
    """Per-category totals (sum and merged wall time) as a text table.

    Each category gets a ``total`` row (all devices merged); categories
    whose spans land on more than one device also get per-device rows, so
    concurrent per-device work keeps its attribution instead of collapsing
    into one aggregate.  Device ``-1`` (host / fabric spans) prints as
    ``host``.
    """
    categories = sorted({s.category for s in profiler.spans})
    lines = [
        f"{'category':16s} {'device':>6s} {'spans':>6s} "
        f"{'sum (us)':>12s} {'wall (us)':>12s}"
    ]

    def row(cat: str, dev_label: str, spans: list, sum_ns: float, wall_ns: float) -> str:
        return (
            f"{cat:16s} {dev_label:>6s} {len(spans):6d} "
            f"{to_us(sum_ns):12.1f} {to_us(wall_ns):12.1f}"
        )

    for cat in categories:
        spans = profiler.spans_by_category(cat)
        lines.append(
            row(cat, "total", spans,
                profiler.category_time(cat), profiler.category_wall_time(cat))
        )
        devices = sorted({s.device_id for s in spans})
        if len(devices) > 1:
            for d in devices:
                dspans = profiler.spans_by_category(cat, device_id=d)
                label = f"dev{d}" if d >= 0 else "host"
                lines.append(
                    row("", label, dspans,
                        profiler.category_time(cat, d),
                        profiler.category_wall_time(cat, d))
                )
    return "\n".join(lines)
