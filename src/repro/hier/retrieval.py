"""The ``"+hier"`` retrieval adapter: base engines with hierarchical routing.

Unlike the cache/compress wrappers, hierarchical routing needs no state of
its own around the base engine — the routing layer plugs *into* the base
engines (:class:`~repro.core.baseline.BaselineRetrieval` takes a
``hier_spec`` that swaps its all-to-all for the two-level variant;
:class:`~repro.core.pgas_retrieval.PGASFusedRetrieval` takes one that
routes off-node puts through the node-staging router).  The adapter here
just builds those engines with the spec attached and keeps the functional
path identical to the flat backends — routing changes timing only.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..comm.collective import CollectiveSpec
from ..comm.hier import HierSpec
from ..comm.pgas import PGASSpec
from ..core.baseline import BaselineRetrieval, PhaseTiming
from ..core.functional import (
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
)
from ..core.pgas_retrieval import PGASFusedRetrieval
from ..core.retrieval import RetrievalBackend
from ..core.workload import DeviceWorkload
from ..dlrm.batch import SparseBatch
from ..simgpu.cluster import Cluster

__all__ = ["HierRetrieval", "hier_retrieval_for"]


class HierRetrieval(RetrievalBackend):
    """Either base backend with topology-aware hierarchical routing.

    The timed path runs the base engine constructed with the
    :class:`~repro.comm.hier.HierSpec` attached; when the spec is inactive
    for the cluster's device count (``devices_per_node == 1`` or a single
    node) the engines bypass the hierarchy and the flat path runs
    event-identically.  The functional path is exactly the base backend's
    numpy forward — routing never touches payload contents.
    """

    def __init__(
        self,
        cluster: Cluster,
        spec: HierSpec,
        base: str = "pgas",
        collective_spec: Optional[CollectiveSpec] = None,
        pgas_spec: Optional[PGASSpec] = None,
        sharded: Optional[ShardedEmbeddingTables] = None,
    ):
        if base not in ("pgas", "baseline"):
            raise ValueError(f"unknown base backend {base!r} for +hier")
        self.cluster = cluster
        self.spec = spec
        self.base = base
        self.sharded = sharded
        if base == "pgas":
            self._engine = PGASFusedRetrieval(cluster, pgas_spec, hier_spec=spec)
        else:
            self._engine = BaselineRetrieval(
                cluster, collective_spec, hier_spec=spec
            )

    @property
    def active(self) -> bool:
        """Whether routing actually changes this cluster's traffic."""
        return self.spec.active(self.cluster.n_devices)

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Simulate one batch through the hierarchically-routed engine."""
        return self._engine.run_batch(workloads)

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """The base backend's numpy forward — bit-identical to flat routing."""
        assert self.sharded is not None
        if self.base == "pgas":
            return pgas_functional_forward(self.sharded, batch)
        outputs, _blocks = baseline_functional_forward(self.sharded, batch)
        return outputs


def hier_retrieval_for(emb, base: str) -> HierRetrieval:
    """Build a :class:`HierRetrieval` bound to a
    :class:`~repro.core.retrieval.DistributedEmbedding` (the registry
    factories' shared implementation).

    Without a configured :class:`~repro.comm.hier.HierSpec` the wrapper
    defaults to ``devices_per_node=1`` — flat routing, valid for any
    device count; set ``features=FeatureSpec(hier=HierSpec(...))`` to
    enable staging.
    """
    spec = emb.hier_config
    if spec is not None and not isinstance(spec, HierSpec):
        raise TypeError(
            f"DistributedEmbedding hier must be a HierSpec, "
            f"got {type(spec).__name__}"
        )
    return HierRetrieval(
        emb.cluster,
        spec or HierSpec(devices_per_node=1),
        base=base,
        collective_spec=emb.collective_spec,
        pgas_spec=emb.pgas_spec,
        sharded=emb.sharded,
    )
