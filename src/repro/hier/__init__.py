"""Topology-aware hierarchical communication: the ``"+hier"`` backends.

Flat routing sends every device→device payload point-to-point, so a
multi-node cluster of ``N`` nodes × ``P`` GPUs pays ``(N·P)²`` NIC message
streams where ``N²`` coalesced ones would do.  This package wraps either
base backend with the two-level routing layer of
:mod:`repro.comm.hier`:

* ``baseline+hier`` — the all-to-all runs through
  :class:`~repro.comm.hier.TwoLevelAllToAll`: intra-node gather of
  per-destination-node payloads to a node leader over NVLink, one
  coalesced NIC transfer per ordered node pair, intra-node scatter and
  unpack on the far side;
* ``pgas+hier`` — off-node one-sided writes route through the
  :class:`~repro.comm.hier.NodeStagingRouter`: forwarded to the node
  leader, staged per destination node, and flushed across the NIC as one
  aggregated message stream per node pair.

Routing changes **timing only** — functional outputs stay bit-identical
to the flat backends, and an inactive
:class:`~repro.comm.hier.HierSpec` (``devices_per_node == 1`` or a
single node) leaves the flat path event-identical.

Importing this package registers the ``"pgas+hier"`` and
``"baseline+hier"`` backends with the core registry, so

>>> emb = DistributedEmbedding(cfg, n_devices=8, backend="pgas+hier",
...                            features=FeatureSpec(hier=HierSpec(devices_per_node=4)))

works exactly like the flat backends (``repro`` imports it for you); with
no cluster given, a matching multi-node cluster is built from the spec's
node geometry.
"""

from __future__ import annotations

from ..comm.hier import (
    FWD_COUNTER,
    NIC_COUNTER,
    SCATTER_COUNTER,
    HierSpec,
    NodeStagingRouter,
    TwoLevelAllToAll,
    inter_node_message_count,
    inter_node_wire_bytes,
)
from ..core.factory import build_adapter
from ..core.retrieval import register_backend
from .retrieval import HierRetrieval, hier_retrieval_for

__all__ = [
    "FWD_COUNTER",
    "HierRetrieval",
    "HierSpec",
    "NIC_COUNTER",
    "NodeStagingRouter",
    "SCATTER_COUNTER",
    "TwoLevelAllToAll",
    "hier_retrieval_for",
    "inter_node_message_count",
    "inter_node_wire_bytes",
]


# Thin aliases: composition lives in repro.core.factory.build_adapter.
register_backend(
    "pgas+hier",
    lambda emb: build_adapter(emb, "pgas+hier"),
    description="PGAS retrieval with node-leader staging: off-node writes cross the NIC as one aggregated stream per node pair",
)
register_backend(
    "baseline+hier",
    lambda emb: build_adapter(emb, "baseline+hier"),
    description="collective retrieval with a two-level all-to-all: NVLink gather/scatter around one coalesced NIC transfer per node pair",
)
