"""Replication policy: how many copies of each table shard live where.

A :class:`ReplicationSpec` extends a table-wise sharding plan with k-way
shard replication: every table keeps its primary owner from the plan plus
``k - 1`` replicas on distinct devices, chosen by a deterministic
placement rule.  The spec also carries the failure-detector cadence
(heartbeat interval × miss threshold = detection latency) and the
bandwidth share the background re-replication stream may consume.

Placements
----------
``spread``
    Replicas stride through the non-primary devices starting at a
    table-dependent offset, so the replica load of any one primary is
    spread over the whole cluster (losing a device adds a roughly even
    sliver of work everywhere).
``ring``
    Replica *j* of every table lives on ``(primary + j) mod G`` — chained
    successors, the classic consistent-placement scheme.  Cheap to reason
    about, but a failed device's whole load lands on its successor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..simgpu.units import MiB, us

__all__ = ["PLACEMENTS", "ReplicationSpec"]

#: supported replica placement rules
PLACEMENTS = ("spread", "ring")


@dataclass(frozen=True)
class ReplicationSpec:
    """Policy knobs of the high-availability layer.

    Attributes
    ----------
    k:
        Total copies of every shard (primary included).  ``k = 1`` keeps
        only the primary — the wrapper is then a pure passthrough with no
        monitor, no replica memory, and no failover capability.
    placement:
        Replica placement rule, one of :data:`PLACEMENTS`.
    recovery_bandwidth_share:
        Fraction of link bandwidth the background re-replication stream
        may consume, in ``(0, 1]``.  Recovery chunks pace themselves so
        foreground retrieval traffic keeps the rest.
    heartbeat_interval_ns:
        Failure-detector probe period.
    miss_threshold:
        Consecutive missed heartbeats before a device is declared failed;
        detection latency is bounded by ``interval * miss_threshold``.
    recovery_chunk_bytes:
        Granularity of the re-replication transfers (pacing quantum).
    """

    k: int = 1
    placement: str = "spread"
    recovery_bandwidth_share: float = 0.25
    heartbeat_interval_ns: float = 50 * us
    miss_threshold: int = 2
    recovery_chunk_bytes: int = 4 * MiB

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"replication factor k must be >= 1, got {self.k}")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"unknown placement {self.placement!r}; one of {PLACEMENTS}"
            )
        if not (0.0 < self.recovery_bandwidth_share <= 1.0):
            raise ValueError(
                f"recovery_bandwidth_share must be in (0, 1], "
                f"got {self.recovery_bandwidth_share}"
            )
        if self.heartbeat_interval_ns <= 0:
            raise ValueError("heartbeat_interval_ns must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        if self.recovery_chunk_bytes <= 0:
            raise ValueError("recovery_chunk_bytes must be positive")

    @property
    def detection_latency_bound_ns(self) -> float:
        """Worst-case failure-detection latency of the heartbeat detector."""
        return self.heartbeat_interval_ns * self.miss_threshold

    def replicas_for(self, owner: int, table_index: int, n_devices: int) -> Tuple[int, ...]:
        """Holder devices of one table: ``(primary, replica_1, ...)``.

        All ``k`` devices are distinct; raises when the cluster is too
        small to place ``k`` copies on distinct devices.
        """
        if not (0 <= owner < n_devices):
            raise ValueError(f"owner {owner} out of range for {n_devices} devices")
        if table_index < 0:
            raise ValueError(f"table_index must be >= 0, got {table_index}")
        if self.k > n_devices:
            raise ValueError(
                f"replication factor k={self.k} needs at least {self.k} devices, "
                f"cluster has {n_devices}"
            )
        if self.k == 1:
            return (owner,)
        if self.placement == "ring":
            return tuple((owner + j) % n_devices for j in range(self.k))
        # spread: stride through the G-1 non-primary devices starting at a
        # table-dependent offset; consecutive residues mod (G-1) are
        # distinct for k-1 <= G-1, so all holders are distinct.
        offsets = [(table_index + j) % (n_devices - 1) for j in range(self.k - 1)]
        return (owner,) + tuple((owner + 1 + off) % n_devices for off in offsets)
