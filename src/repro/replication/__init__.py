"""High-availability layer: shard replication, failover, online recovery.

The PGAS fused-retrieval path (and the collective baseline) assume every
owner GPU stays reachable; the fault layer's transient windows are
survivable by retrying, but a permanent ``device_down`` failure takes a
device's table shards with it.  This package adds the production answer —
k-way shard replication with failover routing and bandwidth-charged
re-replication:

* :mod:`repro.replication.spec` — the frozen :class:`ReplicationSpec`
  (replication factor, ``spread``/``ring`` placement, failure-detector
  cadence, recovery bandwidth share) and its deterministic per-table
  replica placement;
* :mod:`repro.replication.retrieval` — :class:`ReplicatedRetrieval`,
  which fronts either base backend: a heartbeat monitor on the engine
  clock detects ``device_down`` failures, lookup blocks of a dead
  primary re-home to the nearest live replica on both comm paths, and a
  background engine process re-replicates the lost shards over the real
  interconnect, stamping ``availability.*`` counters and per-link
  recovery bytes into traces.

Importing this package registers the ``"pgas+replicated"`` and
``"baseline+replicated"`` backends with the core registry, so

>>> emb = DistributedEmbedding(cfg, n_devices=4, backend="pgas+replicated",
...                            features=FeatureSpec(replication=ReplicationSpec(k=2)))

works exactly like the unreplicated backends (``repro`` imports it for
you).
"""

from __future__ import annotations

from ..core.factory import build_adapter
from ..core.retrieval import register_backend
from .retrieval import (
    BATCH_LOOKUPS_COUNTER,
    DETECTION_COUNTER,
    FAILOVER_COUNTER,
    FAILURES_COUNTER,
    RECOVERY_COUNTER,
    REPROTECT_COUNTER,
    AvailabilityLedger,
    ReplicatedRetrieval,
)
from .spec import PLACEMENTS, ReplicationSpec

__all__ = [
    "AvailabilityLedger",
    "BATCH_LOOKUPS_COUNTER",
    "DETECTION_COUNTER",
    "FAILOVER_COUNTER",
    "FAILURES_COUNTER",
    "PLACEMENTS",
    "RECOVERY_COUNTER",
    "REPROTECT_COUNTER",
    "ReplicatedRetrieval",
    "ReplicationSpec",
    "replicated_retrieval_for",
]


def replicated_retrieval_for(emb, base: str) -> ReplicatedRetrieval:
    """Build a :class:`ReplicatedRetrieval` bound to a
    :class:`~repro.core.retrieval.DistributedEmbedding` (the registry
    factories' shared implementation)."""
    spec = emb.replication_config
    if spec is not None and not isinstance(spec, ReplicationSpec):
        raise TypeError(
            f"DistributedEmbedding replication must be a ReplicationSpec, "
            f"got {type(spec).__name__}"
        )
    return ReplicatedRetrieval(
        emb.cluster,
        emb.plan,
        spec or ReplicationSpec(),
        base=base,
        collective_spec=emb.collective_spec,
        pgas_spec=emb.pgas_spec,
        sharded=emb.sharded,
    )


# Thin aliases: composition lives in repro.core.factory.build_adapter.
register_backend(
    "pgas+replicated",
    lambda emb: build_adapter(emb, "pgas+replicated"),
    description="PGAS retrieval with k-way shard replicas, heartbeat failover, and online re-replication",
)
register_backend(
    "baseline+replicated",
    lambda emb: build_adapter(emb, "baseline+replicated"),
    description="collective retrieval with k-way shard replicas, heartbeat failover, and online re-replication",
)
