"""Replicated distributed retrieval: the ``"+replicated"`` backends.

:class:`ReplicatedRetrieval` wraps either base backend (``pgas`` or
``baseline``) with a high-availability layer over the table shards:

* **replica placement** — every table's weights live on its primary
  owner plus ``k - 1`` replica devices chosen by the
  :class:`~repro.replication.spec.ReplicationSpec`; replica storage is
  charged against the real per-device
  :class:`~repro.simgpu.memory.MemoryPool`, so an over-committed ``k``
  raises :class:`~repro.simgpu.memory.OutOfDeviceMemory` at
  construction;
* **failure detection** — a heartbeat monitor on the engine clock probes
  every device each ``heartbeat_interval_ns``; a device whose permanent
  ``device_down`` fault has fired misses consecutive probes and is
  declared failed after ``miss_threshold`` misses (detection latency is
  bounded by ``interval * miss_threshold``);
* **failover routing** — once a primary is declared failed, its tables'
  lookup blocks are rerouted to the nearest live replica by rebuilding
  the per-device workloads under the effective ownership (which
  recomputes the baseline's all-to-all splits and the PGAS put targets
  for free, since both paths derive their wire traffic from the
  workloads' ``block_dst_bytes``);
* **online recovery** — detection also starts a background engine
  process that re-replicates every shard the dead device held from a
  surviving holder to a fresh device, chunked over the real
  interconnect at a configured bandwidth share.  Recovery bytes are
  stamped on the ``availability.recovery_bytes`` counter *and* its
  per-link variants, so they show up on interconnect rows in Chrome
  traces next to the foreground traffic they compete with.

The healthy path is a pure passthrough: with no failed devices the
wrapper yields the wrapped backend's generator unchanged and stamps
nothing — heartbeat probes are zero-duration no-ops against healthy
devices — so traces, timings, and functional outputs are bit-identical
to the bare base backend.

Counter names are module constants (also read by
``repro.telemetry.metrics`` — keep the ``availability.`` prefix stable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.baseline import BaselineRetrieval, PhaseTiming
from ..core.functional import (
    ShardedEmbeddingTables,
    baseline_functional_forward,
    pgas_functional_forward,
)
from ..core.pgas_retrieval import PGASFusedRetrieval
from ..core.retrieval import RetrievalBackend
from ..core.sharding import TableWiseSharding
from ..core.workload import DeviceWorkload, rehome_workloads, table_segments
from ..dlrm.batch import SparseBatch
from ..simgpu.cluster import Cluster
from ..simgpu.device import Device
from ..simgpu.memory import OutOfDeviceMemory
from .spec import ReplicationSpec

__all__ = [
    "AvailabilityLedger",
    "BATCH_LOOKUPS_COUNTER",
    "DETECTION_COUNTER",
    "FAILOVER_COUNTER",
    "FAILURES_COUNTER",
    "RECOVERY_COUNTER",
    "REPROTECT_COUNTER",
    "ReplicatedRetrieval",
    "SPAN_CATEGORY",
    "UNAVAILABLE_COUNTER",
]

#: lookups rerouted from a failed primary to a live replica
FAILOVER_COUNTER = "availability.failover_lookups"
#: lookups dropped because no live replica held the table
UNAVAILABLE_COUNTER = "availability.unavailable_lookups"
#: total lookups of batches that ran while a failure was active
BATCH_LOOKUPS_COUNTER = "availability.batch_lookups"
#: re-replication bytes (per-link variants appear in Chrome traces)
RECOVERY_COUNTER = "availability.recovery_bytes"
#: failure-detection latency (down edge -> declared failed), ns per failure
DETECTION_COUNTER = "availability.detection_ns"
#: down edge -> replication factor restored, ns per recovered failure
REPROTECT_COUNTER = "availability.time_to_reprotect_ns"
#: devices declared failed by the heartbeat detector
FAILURES_COUNTER = "availability.failures"
#: profiler span category of detection/recovery extents
SPAN_CATEGORY = "availability"


@dataclass
class AvailabilityLedger:
    """Python-side per-adapter availability accounting (never stamped on
    healthy batches, so it cannot perturb trace byte-identity)."""

    batches: int = 0
    impaired_batches: int = 0
    lookups_total: int = 0
    failover_lookups: int = 0
    unavailable_lookups: int = 0

    @property
    def availability(self) -> float:
        """Fraction of all lookups served (from a primary or a replica)."""
        if self.lookups_total == 0:
            return 1.0
        return 1.0 - self.unavailable_lookups / self.lookups_total

    def as_dict(self) -> Dict[str, float]:
        return {
            "batches": float(self.batches),
            "impaired_batches": float(self.impaired_batches),
            "lookups_total": float(self.lookups_total),
            "failover_lookups": float(self.failover_lookups),
            "unavailable_lookups": float(self.unavailable_lookups),
            "availability": self.availability,
        }


class ReplicatedRetrieval(RetrievalBackend):
    """A base retrieval backend with k-way shard replication and failover.

    Standalone use takes a cluster plus sharding plan; as a registered
    backend (``"pgas+replicated"``, ``"baseline+replicated"``) it is
    built from a :class:`~repro.core.retrieval.DistributedEmbedding` and
    its ``replication`` config.
    """

    requires_indices = False

    def __init__(
        self,
        cluster: Cluster,
        plan: TableWiseSharding,
        spec: Optional[ReplicationSpec] = None,
        *,
        base: str = "pgas",
        collective_spec=None,
        pgas_spec=None,
        sharded: Optional[ShardedEmbeddingTables] = None,
    ):
        if base not in ("pgas", "baseline"):
            raise ValueError(f"unknown base backend {base!r} (use 'pgas' or 'baseline')")
        if cluster.n_devices != plan.n_devices:
            raise ValueError(
                f"cluster has {cluster.n_devices} devices, plan has {plan.n_devices}"
            )
        self.cluster = cluster
        self.table_plan = plan
        self.base_name = base
        self.spec = spec or ReplicationSpec()
        if self.spec.k > cluster.n_devices:
            raise ValueError(
                f"replication factor k={self.spec.k} exceeds the "
                f"{cluster.n_devices}-device cluster"
            )
        self.sharded = sharded
        if base == "pgas":
            self.base = PGASFusedRetrieval(cluster, pgas_spec)
        else:
            self.base = BaselineRetrieval(cluster, collective_spec)
        G = cluster.n_devices
        #: per-table holder device lists, primary first; recovery appends
        self._holders: List[List[int]] = [
            list(self.spec.replicas_for(plan.owner_of(cfg.name), f, G))
            for f, cfg in enumerate(plan.table_configs)
        ]
        # Replica weight storage is accounted against the real per-device
        # memory pools up front; an over-committed k raises OutOfDeviceMemory.
        self._replica_buffers: List[object] = []
        for f, cfg in enumerate(plan.table_configs):
            for dev_id in self._holders[f][1:]:
                self._replica_buffers.append(
                    cluster.device(dev_id).memory.alloc(
                        (cfg.num_rows, cfg.dim),
                        cfg.dtype,
                        materialize=False,
                        label=f"replica.{cfg.name}",
                    )
                )
        self._failed: Set[int] = set()
        self._misses: Dict[int, int] = {d.id: 0 for d in cluster.devices}
        self._recovery_procs: List[object] = []
        #: down edge -> reprotected latency per recovered device id
        self.reprotect_ns: Dict[int, float] = {}
        self.ledger = AvailabilityLedger()
        # The monitor runs whenever a failure is even possible (G > 1) —
        # detection is independent of k, since a k == 1 failure must still
        # be noticed so its lookups count as unavailable rather than being
        # silently billed to a dead device.  Heartbeat probes are no-op
        # callbacks while every device is healthy, so they stamp nothing
        # and consume no simulated time: healthy traces, timings, and
        # outputs stay bit-identical to the bare base backend.
        if G > 1:
            cluster.engine.call_in(self.spec.heartbeat_interval_ns, self._heartbeat)

    # -- failure detection -------------------------------------------------------

    @property
    def failed_devices(self) -> Tuple[int, ...]:
        """Devices the heartbeat detector has declared failed, sorted."""
        return tuple(sorted(self._failed))

    def _heartbeat(self) -> None:
        engine = self.cluster.engine
        for dev in self.cluster.devices:
            if dev.id in self._failed:
                continue
            if dev.is_down:
                self._misses[dev.id] += 1
                if self._misses[dev.id] >= self.spec.miss_threshold:
                    self._declare_failed(dev)
            else:
                self._misses[dev.id] = 0
        engine.call_in(self.spec.heartbeat_interval_ns, self._heartbeat)

    def _declare_failed(self, dev: Device) -> None:
        engine = self.cluster.engine
        prof = self.cluster.profiler
        now = engine.now
        self._failed.add(dev.id)
        prof.record_span(
            f"availability.detect.dev{dev.id}", SPAN_CATEGORY, dev.id, dev.down_since, now
        )
        prof.add_count(FAILURES_COUNTER, now, 1.0, unit="failures")
        prof.add_count(DETECTION_COUNTER, now, now - dev.down_since, unit="ns")
        jobs = self._plan_recovery(dev.id)
        if jobs:
            proc = engine.process(
                self._recovery_process(dev, jobs), name=f"recover.dev{dev.id}"
            )
            self._recovery_procs.append(proc)

    # -- online recovery ---------------------------------------------------------

    def _plan_recovery(self, failed_id: int) -> List[Tuple[int, int, int]]:
        """Re-replication jobs ``(table_index, src, target)`` for one failure.

        Each table the dead device held gets one new copy, streamed from
        the nearest (first) live holder to the first live non-holder with
        enough free memory.  Target buffers are reserved now so the space
        is committed before any bytes move.
        """
        jobs: List[Tuple[int, int, int]] = []
        G = self.cluster.n_devices
        for f, cfg in enumerate(self.table_plan.table_configs):
            holders = self._holders[f]
            if failed_id not in holders:
                continue
            live = [h for h in holders if h not in self._failed]
            if not live:
                continue  # nothing left to copy from: the table is unavailable
            src = live[0]
            for step in range(G):
                cand = (failed_id + 1 + step) % G
                if cand in holders or cand in self._failed:
                    continue
                try:
                    self._replica_buffers.append(
                        self.cluster.device(cand).memory.alloc(
                            (cfg.num_rows, cfg.dim),
                            cfg.dtype,
                            materialize=False,
                            label=f"replica.{cfg.name}",
                        )
                    )
                except OutOfDeviceMemory:
                    continue
                jobs.append((f, src, cand))
                break
        return jobs

    def _recovery_process(self, dev: Device, jobs: List[Tuple[int, int, int]]):
        """Engine process: stream lost shards to fresh replicas, paced to the
        configured bandwidth share, then stamp the reprotect latency."""
        engine = self.cluster.engine
        share = self.spec.recovery_bandwidth_share
        for f, src, target in jobs:
            cfg = self.table_plan.table_configs[f]
            remaining = float(cfg.nbytes)
            while remaining > 0:
                size = min(float(self.spec.recovery_chunk_bytes), remaining)
                remaining -= size
                t0 = engine.now
                yield self.cluster.interconnect.transfer(
                    src, target, size, counter=RECOVERY_COUNTER
                )
                if share < 1.0:
                    # Pacing: after a chunk occupies the link for dt, idle
                    # long enough that this stream averages share * bandwidth.
                    pause = (engine.now - t0) * (1.0 / share - 1.0)
                    if pause > 0:
                        yield engine.timeout(pause)
            self._holders[f].append(target)
        now = engine.now
        elapsed = now - dev.down_since
        self.reprotect_ns[dev.id] = elapsed
        prof = self.cluster.profiler
        prof.record_span(
            f"availability.reprotect.dev{dev.id}", SPAN_CATEGORY, dev.id, dev.down_since, now
        )
        prof.add_count(REPROTECT_COUNTER, now, elapsed, unit="ns")

    def wait_for_reprotect(self, limit_ns: Optional[float] = None) -> None:
        """Run the simulated clock forward until pending recoveries finish.

        Recovery processes outlive the batch that detected the failure;
        call this (e.g. at the end of a benchmark) to let them drain.
        No-op when nothing is recovering.
        """
        engine = self.cluster.engine
        pending = [p for p in self._recovery_procs if not p.triggered]
        if not pending:
            return
        engine.run_until_event(engine.all_of(pending), limit=limit_ns)

    # -- failover routing --------------------------------------------------------

    def effective_owners(self) -> Dict[str, Optional[int]]:
        """Current serving device per table: the first live holder in
        placement order, or ``None`` when every holder is dead."""
        owners: Dict[str, Optional[int]] = {}
        for f, cfg in enumerate(self.table_plan.table_configs):
            live = [h for h in self._holders[f] if h not in self._failed]
            owners[cfg.name] = live[0] if live else None
        return owners

    def _failover_workloads(
        self, workloads: Sequence[DeviceWorkload]
    ) -> Tuple[List[DeviceWorkload], int, int]:
        """Rebuild per-device workloads under the effective ownership.

        Built on the shared :func:`~repro.core.workload.table_segments` /
        :func:`~repro.core.workload.rehome_workloads` machinery (also used
        by reshard migration cutover): each table's block segment is
        lifted out of its dead primary's workload and re-homed exactly,
        with ``block_dst_bytes`` columns needing no adjustment.  Returns
        ``(workloads, failover_nnz, unavailable_nnz)``.
        """
        plan = self.table_plan
        owners = self.effective_owners()
        segments = table_segments(plan, workloads)
        moved = 0
        unavailable = 0
        for cfg in plan.table_configs:
            eff = owners[cfg.name]
            nnz = segments[cfg.name][2] if cfg.name in segments else 0
            if eff is None:
                unavailable += nnz
            elif eff != plan.owner_of(cfg.name):
                moved += nnz
        try:
            out = rehome_workloads(plan, workloads, owners)
        except ValueError as exc:
            if "mix row byte sizes" in str(exc):
                raise ValueError(
                    "failover would mix row byte sizes on one device; "
                    "replicated failover needs tables of equal row_bytes"
                ) from exc
            raise
        return out, moved, unavailable

    # -- timed path --------------------------------------------------------------

    def run_timed(
        self,
        workloads: Sequence[DeviceWorkload],
        batch: Optional[SparseBatch] = None,
    ) -> PhaseTiming:
        """Simulate one batch, failing over around any detected failures."""
        timing = PhaseTiming(batches=1)
        self.cluster.run(lambda cl: self.batch_process(cl, workloads, timing))
        return timing

    def batch_process(
        self,
        cluster: Cluster,
        workloads: Sequence[DeviceWorkload],
        timing: PhaseTiming,
        stream_suffix: str = "",
    ):
        """Process generator for one batch — composable into larger host
        programs.  With no detected failures this is the wrapped backend's
        generator, event for event."""
        if not self._failed:
            yield from self.base.batch_process(
                cluster, workloads, timing, stream_suffix=stream_suffix
            )
            self._ledger_batch(workloads, moved=0, unavailable=0, impaired=False)
            return
        adjusted, moved, unavailable = self._failover_workloads(list(workloads))
        yield from self.base.batch_process(
            cluster, adjusted, timing, stream_suffix=stream_suffix
        )
        self._ledger_batch(workloads, moved=moved, unavailable=unavailable, impaired=True)
        self._stamp_counters(workloads, moved, unavailable)

    def _ledger_batch(
        self,
        workloads: Sequence[DeviceWorkload],
        *,
        moved: int,
        unavailable: int,
        impaired: bool,
    ) -> None:
        led = self.ledger
        led.batches += 1
        led.lookups_total += int(sum(wl.nnz for wl in workloads))
        led.failover_lookups += moved
        led.unavailable_lookups += unavailable
        if impaired:
            led.impaired_batches += 1

    def _stamp_counters(
        self, workloads: Sequence[DeviceWorkload], moved: int, unavailable: int
    ) -> None:
        # Only impaired batches stamp anything (and only non-zero deltas),
        # so healthy traces stay byte-identical to the bare backend.
        prof = self.cluster.profiler
        t = self.cluster.engine.now
        total = float(sum(wl.nnz for wl in workloads))
        prof.add_count(BATCH_LOOKUPS_COUNTER, t, total, unit="lookups")
        if moved:
            prof.add_count(FAILOVER_COUNTER, t, float(moved), unit="lookups")
        if unavailable:
            prof.add_count(UNAVAILABLE_COUNTER, t, float(unavailable), unit="lookups")

    # -- functional path ---------------------------------------------------------

    def functional_forward(self, batch: SparseBatch) -> List[np.ndarray]:
        """Numpy forward honouring the current failover routing.

        Replicas alias the primary's weights, so as long as every table
        has a live holder the outputs are bit-identical to the healthy
        reference; tables with no live holder are zero-filled.
        """
        if self.sharded is None:
            raise ValueError("functional forward needs materialize=True weights")
        if not self._failed:
            if self.base_name == "pgas":
                return pgas_functional_forward(self.sharded, batch)
            outputs, _blocks = baseline_functional_forward(self.sharded, batch)
            return outputs
        plan = self.table_plan
        owners = self.effective_owners()
        # The re-shard must stay an exact partition, so tables with no live
        # holder keep their dead primary here and are zeroed afterwards.
        assignment = {
            name: (dev if dev is not None else plan.owner_of(name))
            for name, dev in owners.items()
        }
        failover_plan = TableWiseSharding.from_assignment(
            plan.table_configs, plan.n_devices, assignment
        )
        tables = {t.name: t for per in self.sharded.per_device for t in per}
        per_device = [
            [tables[cfg.name] for cfg in failover_plan.tables_on(d)]
            for d in range(plan.n_devices)
        ]
        failover_sharded = ShardedEmbeddingTables(failover_plan, per_device)
        if self.base_name == "pgas":
            outputs = pgas_functional_forward(failover_sharded, batch)
        else:
            outputs, _blocks = baseline_functional_forward(failover_sharded, batch)
        for name, dev in owners.items():
            if dev is None:
                fidx = plan.feature_index(name)
                for out in outputs:
                    out[:, fidx, :] = 0.0
        return outputs

    # -- reporting ---------------------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Cross-batch availability totals (Python-side ledger)."""
        d = self.ledger.as_dict()
        d["failures_detected"] = float(len(self._failed))
        d["time_to_reprotect_ns"] = (
            max(self.reprotect_ns.values()) if self.reprotect_ns else 0.0
        )
        return d

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ReplicatedRetrieval base={self.base_name} k={self.spec.k} "
            f"placement={self.spec.placement} failed={sorted(self._failed)}>"
        )
