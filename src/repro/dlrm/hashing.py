"""Index hashing for embedding tables.

Sparse-feature cardinalities can be in the billions; a hash function
``H: raw index -> {0, ..., M-1}`` folds them onto the table's ``M`` rows
(paper §II-A).  Collisions are expected and harmless for systems purposes —
two raw indices landing on the same row simply share an embedding vector.

Two hash families are provided:

* ``"mod"`` — plain modulo; what the reference DLRM benchmark does and the
  natural choice when the generator already produces indices in range.
* ``"multiply_shift"`` — a 64-bit multiplicative (Fibonacci) hash that
  decorrelates structured raw index spaces before the modulo; useful for
  the Zipf-distributed extension workloads where low raw indices are hot.

All functions are vectorised over numpy int64 arrays and pure.
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

__all__ = ["hash_indices", "mod_hash", "multiply_shift_hash", "HashKind"]

HashKind = Literal["mod", "multiply_shift"]

#: 64-bit golden-ratio multiplier (Knuth's multiplicative hashing constant).
_FIB_MULT = np.uint64(0x9E3779B97F4A7C15)


def mod_hash(indices: np.ndarray, num_rows: int) -> np.ndarray:
    """``index mod M``, mapped to non-negative row ids."""
    if num_rows <= 0:
        raise ValueError(f"num_rows must be positive, got {num_rows}")
    idx = np.asarray(indices, dtype=np.int64)
    return np.mod(idx, num_rows)


def multiply_shift_hash(indices: np.ndarray, num_rows: int) -> np.ndarray:
    """Fibonacci multiplicative hash then fold to ``[0, M)``.

    Mixes the high bits down so structured inputs (sequential user ids,
    power-law item ids) spread evenly over rows.
    """
    if num_rows <= 0:
        raise ValueError(f"num_rows must be positive, got {num_rows}")
    idx = np.asarray(indices, dtype=np.int64).astype(np.uint64)
    with np.errstate(over="ignore"):
        mixed = idx * _FIB_MULT
    mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(num_rows)).astype(np.int64)


def hash_indices(indices: np.ndarray, num_rows: int, kind: HashKind = "mod") -> np.ndarray:
    """Dispatch to the named hash family."""
    if kind == "mod":
        return mod_hash(indices, num_rows)
    if kind == "multiply_shift":
        return multiply_shift_hash(indices, num_rows)
    raise ValueError(f"unknown hash kind: {kind!r}")


def hasher(num_rows: int, kind: HashKind = "mod") -> Callable[[np.ndarray], np.ndarray]:
    """Bind a hash family to a table size (partial application)."""
    if kind not in ("mod", "multiply_shift"):
        raise ValueError(f"unknown hash kind: {kind!r}")
    return lambda idx: hash_indices(idx, num_rows, kind)
