"""Feature-interaction layer (paper Fig. 1, "interaction layer").

Fuses the bottom-MLP dense embedding with the EMB-layer sparse embeddings
into a single vector per sample.  DLRM's reference operators are provided:

* ``dot`` — pairwise dot products between all embeddings (the DLRM paper's
  default): with ``F`` sparse features plus the dense embedding, output is
  the strictly-lower-triangular part of the Gram matrix, concatenated with
  the dense embedding.
* ``cat`` — plain concatenation of everything.
* ``sum`` — elementwise sum of all embeddings (cheapest variant).

All operators are vectorised over the batch.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

__all__ = ["InteractionMode", "interact", "dot_interaction", "cat_interaction", "sum_interaction", "interaction_output_dim"]

InteractionMode = Literal["dot", "cat", "sum"]


def _stack(dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
    """Stack dense (B, d) with sparse (B, F, d) into (B, F+1, d)."""
    if dense.ndim != 2 or sparse.ndim != 3:
        raise ValueError(
            f"expected dense (B, d) and sparse (B, F, d), got {dense.shape} / {sparse.shape}"
        )
    if dense.shape[0] != sparse.shape[0] or dense.shape[1] != sparse.shape[2]:
        raise ValueError(
            f"dense {dense.shape} incompatible with sparse {sparse.shape}: "
            "batch and embedding dims must match"
        )
    return np.concatenate([dense[:, None, :], sparse], axis=1)


def dot_interaction(dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
    """Pairwise-dot interaction: ``(B, d + (F+1)F/2)`` output.

    The Gram matrix of the ``F + 1`` embeddings is computed per sample with
    one batched matmul; its strictly-lower triangle is flattened and
    concatenated after the dense embedding, matching the reference DLRM.
    """
    stacked = _stack(dense, sparse)  # (B, F+1, d)
    gram = np.einsum("bfd,bgd->bfg", stacked, stacked)
    n = stacked.shape[1]
    li, lj = np.tril_indices(n, k=-1)
    pairs = gram[:, li, lj]  # (B, (F+1)F/2)
    return np.concatenate([dense, pairs.astype(dense.dtype, copy=False)], axis=1)


def cat_interaction(dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
    """Concatenation interaction: ``(B, (F+1) * d)`` output."""
    stacked = _stack(dense, sparse)
    return stacked.reshape(stacked.shape[0], -1)


def sum_interaction(dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
    """Elementwise-sum interaction: ``(B, d)`` output."""
    stacked = _stack(dense, sparse)
    return stacked.sum(axis=1)


def interact(dense: np.ndarray, sparse: np.ndarray, mode: InteractionMode = "dot") -> np.ndarray:
    """Dispatch to the named interaction operator."""
    if mode == "dot":
        return dot_interaction(dense, sparse)
    if mode == "cat":
        return cat_interaction(dense, sparse)
    if mode == "sum":
        return sum_interaction(dense, sparse)
    raise ValueError(f"unknown interaction mode {mode!r}")


def interaction_output_dim(num_sparse_features: int, dim: int, mode: InteractionMode = "dot") -> int:
    """Output width of :func:`interact` for the given configuration."""
    n = num_sparse_features + 1
    if mode == "dot":
        return dim + n * (n - 1) // 2
    if mode == "cat":
        return n * dim
    if mode == "sum":
        return dim
    raise ValueError(f"unknown interaction mode {mode!r}")
