"""End-to-end DLRM training step (hand-written numpy backprop).

The paper's forward-pass optimisation is motivated by training (over 50%
of Meta's ML training cycles are DLRM, §I) and its §V sketches the
backward pass.  This module provides the functional substrate: a complete
training step — BCE loss, backprop through the top MLP, the interaction
layer, the bottom MLP, and the embedding tables — so the distributed
backward schemes in :mod:`repro.core.backward` can be exercised with
*real* gradients from a real loss rather than synthetic ones.

Only what training needs is implemented (SGD, sum/mean pooling, the three
interaction modes); this is a substrate, not a framework.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from .batch import SparseBatch
from .interaction import InteractionMode
from .model import DLRM

__all__ = ["bce_loss", "bce_grad", "interaction_backward", "DLRMTrainer", "TrainStepResult"]


def bce_loss(preds: np.ndarray, labels: np.ndarray, eps: float = 1e-7) -> float:
    """Mean binary cross-entropy of probabilities vs {0,1} labels."""
    p = np.clip(np.asarray(preds, dtype=np.float64).reshape(-1), eps, 1.0 - eps)
    y = np.asarray(labels, dtype=np.float64).reshape(-1)
    if p.shape != y.shape:
        raise ValueError(f"preds {p.shape} vs labels {y.shape}")
    return float(-np.mean(y * np.log(p) + (1.0 - y) * np.log(1.0 - p)))


def bce_grad(preds: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Gradient of mean BCE w.r.t. the *pre-sigmoid* logits: (p - y)/B.

    The classic fused sigmoid+BCE simplification — numerically stable and
    exactly what the top MLP's backward expects.
    """
    p = np.asarray(preds, dtype=np.float32).reshape(-1, 1)
    y = np.asarray(labels, dtype=np.float32).reshape(-1, 1)
    return (p - y) / p.shape[0]


def interaction_backward(
    grad_out: np.ndarray,
    dense_emb: np.ndarray,
    sparse_emb: np.ndarray,
    mode: InteractionMode,
) -> Tuple[np.ndarray, np.ndarray]:
    """Backprop through :func:`repro.dlrm.interaction.interact`.

    Returns ``(grad_dense, grad_sparse)`` with the forward input shapes
    ``(B, d)`` and ``(B, F, d)``.
    """
    B, d = dense_emb.shape
    F = sparse_emb.shape[1]
    stacked = np.concatenate([dense_emb[:, None, :], sparse_emb], axis=1)  # (B, F+1, d)
    if mode == "dot":
        n = F + 1
        li, lj = np.tril_indices(n, k=-1)
        g_dense_direct = grad_out[:, :d]
        g_pairs = grad_out[:, d:]
        if g_pairs.shape[1] != li.size:
            raise ValueError(
                f"grad width {grad_out.shape[1]} inconsistent with dot interaction "
                f"({d} + {li.size})"
            )
        # d gram[:, i, j] contributes stacked[j] to i and stacked[i] to j.
        g_stacked = np.zeros_like(stacked)
        # scatter-add per pair, vectorised over the batch
        np.add.at(
            g_stacked, (slice(None), li), g_pairs[:, :, None] * stacked[:, lj]
        )
        np.add.at(
            g_stacked, (slice(None), lj), g_pairs[:, :, None] * stacked[:, li]
        )
        g_stacked[:, 0, :] += g_dense_direct
    elif mode == "cat":
        g_stacked = grad_out.reshape(B, F + 1, d)
    elif mode == "sum":
        g_stacked = np.repeat(grad_out[:, None, :], F + 1, axis=1)
    else:
        raise ValueError(f"unknown interaction mode {mode!r}")
    return g_stacked[:, 0, :].copy(), g_stacked[:, 1:, :].copy()


@dataclass
class TrainStepResult:
    """Diagnostics of one training step."""

    loss: float
    grad_sparse: np.ndarray  #: (B, F, d) upstream gradient at the EMB output
    grad_dense: np.ndarray  #: (B, d) gradient at the bottom MLP output
    preds: np.ndarray  #: (B, 1) probabilities from the forward pass


class DLRMTrainer:
    """Plain-SGD trainer over a :class:`~repro.dlrm.model.DLRM`.

    ``apply_embedding_grads=False`` leaves the embedding tables untouched
    and only *returns* their upstream gradient — the hand-off point where
    the distributed backward schemes (:mod:`repro.core.backward`) take
    over; the tests pass that gradient through baseline/PGAS backward and
    compare against this trainer's own (reference) application.
    """

    def __init__(self, model: DLRM, lr: float = 0.1, embedding_optimizer=None):
        """``embedding_optimizer`` (e.g.
        :class:`~repro.dlrm.optim.RowWiseAdagrad`) overrides plain-SGD
        application of the embedding gradients; MLP weights always use SGD
        at ``lr``."""
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.model = model
        self.lr = lr
        self.embedding_optimizer = embedding_optimizer

    def train_step(
        self,
        dense: np.ndarray,
        sparse: SparseBatch,
        labels: np.ndarray,
        *,
        apply_embedding_grads: bool = True,
    ) -> TrainStepResult:
        """One forward/backward/update over a batch; returns diagnostics."""
        model = self.model
        if dense.shape[0] != sparse.batch_size:
            raise ValueError("dense/sparse batch mismatch")

        # ---- forward with caches -------------------------------------------------
        dense_emb, bottom_cache = model.bottom_mlp.forward_cached(dense)
        sparse_emb = model.emb_forward(sparse)
        from .interaction import interact

        fused = interact(dense_emb, sparse_emb, model.config.interaction)
        preds, top_cache = model.top_mlp.forward_cached(fused)

        # ---- backward --------------------------------------------------------------
        loss = bce_loss(preds, labels)
        g_logits = bce_grad(preds, labels)
        g_fused = model.top_mlp.backward(top_cache, g_logits, lr=self.lr)
        g_dense_emb, g_sparse_emb = interaction_backward(
            g_fused, dense_emb, sparse_emb, model.config.interaction
        )
        model.bottom_mlp.backward(bottom_cache, g_dense_emb, lr=self.lr)

        if apply_embedding_grads:
            if self.embedding_optimizer is not None:
                from ..core.backward import table_row_gradients

                for f, table in enumerate(model.embeddings.tables):
                    rows, grads = table_row_gradients(
                        table, sparse.field(table.name), g_sparse_emb[:, f, :]
                    )
                    self.embedding_optimizer.update(table, rows, grads)
            else:
                from ..core.backward import reference_backward

                reference_backward(
                    model.embeddings.tables, sparse, g_sparse_emb, lr=self.lr
                )

        return TrainStepResult(
            loss=loss, grad_sparse=g_sparse_emb, grad_dense=g_dense_emb, preds=preds
        )

    def fit(
        self,
        batches,
        labels_fn,
        *,
        steps: Optional[int] = None,
    ) -> list:
        """Run a short training loop; returns the per-step losses."""
        losses = []
        for i, (dense, sparse) in enumerate(batches):
            if steps is not None and i >= steps:
                break
            labels = labels_fn(dense, sparse)
            losses.append(self.train_step(dense, sparse, labels).loss)
        return losses
