"""Dense layers: Linear / activations / MLP stacks (numpy inference).

The paper's focus is the EMB layer, but the full inference pipeline (its
experiments run "the full inference pipeline of the DLRM model with 100
batches") needs the dense side too: the bottom MLP over dense features and
the top MLP over the interaction output.  These are small, data-parallel,
and purely local — implemented here as straightforward vectorised numpy.

Weights use the standard DLRM initialisation (normal with
``sqrt(2 / (fan_in + fan_out))`` std) so example outputs look sane.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

__all__ = ["Linear", "relu", "sigmoid", "MLP"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear unit."""
    return np.maximum(x, 0.0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically-stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out.astype(x.dtype, copy=False)


class Linear:
    """Affine layer ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        dtype: np.dtype = np.dtype(np.float32),
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("layer sizes must be positive")
        rng = rng or np.random.default_rng(0)
        std = np.sqrt(2.0 / (in_features + out_features))
        self.weight = rng.normal(0.0, std, size=(out_features, in_features)).astype(dtype)
        self.bias = np.zeros(out_features, dtype=dtype)
        self.in_features = in_features
        self.out_features = out_features

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the affine map to a ``(batch, in_features)`` input."""
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"input feature dim {x.shape[-1]} != layer in_features {self.in_features}"
            )
        return x @ self.weight.T + self.bias

    def backward(
        self, x: np.ndarray, grad_out: np.ndarray, lr: float = 0.0
    ) -> np.ndarray:
        """Backprop through the layer; optionally apply SGD in place.

        ``x`` is the input the forward pass saw; returns ``dL/dx``.  With
        ``lr > 0`` the weight/bias gradients are applied immediately
        (fused backward+update, as DLRM training kernels do).
        """
        if grad_out.shape != (x.shape[0], self.out_features):
            raise ValueError(
                f"grad_out shape {grad_out.shape} != ({x.shape[0]}, {self.out_features})"
            )
        grad_in = grad_out @ self.weight
        if lr > 0.0:
            gw = grad_out.T @ x
            gb = grad_out.sum(axis=0)
            self.weight -= (lr * gw).astype(self.weight.dtype)
            self.bias -= (lr * gb).astype(self.bias.dtype)
        return grad_in

    @property
    def flops_per_sample(self) -> int:
        """Multiply-add count for one sample (2 * in * out)."""
        return 2 * self.in_features * self.out_features

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Linear {self.in_features}->{self.out_features}>"


class MLP:
    """A ReLU MLP; optionally sigmoid on the final layer (DLRM top MLP)."""

    def __init__(
        self,
        layer_sizes: Sequence[int],
        sigmoid_output: bool = False,
        rng: Optional[np.random.Generator] = None,
        dtype: np.dtype = np.dtype(np.float32),
    ):
        if len(layer_sizes) < 2:
            raise ValueError("an MLP needs at least input and output sizes")
        rng = rng or np.random.default_rng(0)
        self.layers: List[Linear] = [
            Linear(layer_sizes[i], layer_sizes[i + 1], rng=rng, dtype=dtype)
            for i in range(len(layer_sizes) - 1)
        ]
        self.sigmoid_output = sigmoid_output
        self.layer_sizes = list(layer_sizes)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the stack; ReLU between layers, optional sigmoid at the end."""
        for i, layer in enumerate(self.layers):
            x = layer.forward(x)
            last = i == len(self.layers) - 1
            if not last:
                x = relu(x)
            elif self.sigmoid_output:
                x = sigmoid(x)
        return x

    def forward_cached(self, x: np.ndarray):
        """Forward keeping per-layer inputs for :meth:`backward`.

        Returns ``(output, cache)``; the cache holds each layer's input and
        pre-activation, which the backward pass needs for ReLU masks.
        """
        inputs = []
        pre_acts = []
        for i, layer in enumerate(self.layers):
            inputs.append(x)
            z = layer.forward(x)
            pre_acts.append(z)
            last = i == len(self.layers) - 1
            if not last:
                x = relu(z)
            elif self.sigmoid_output:
                x = sigmoid(z)
            else:
                x = z
        return x, (inputs, pre_acts)

    def backward(self, cache, grad_out: np.ndarray, lr: float = 0.0) -> np.ndarray:
        """Backprop the whole stack; returns ``dL/d(input)``.

        ``grad_out`` must be the gradient w.r.t. the final layer's
        *pre-sigmoid* output when ``sigmoid_output`` is set (the usual
        fused BCE+sigmoid convention) — the trainer supplies exactly that.
        """
        inputs, pre_acts = cache
        grad = grad_out
        for i in range(len(self.layers) - 1, -1, -1):
            if i != len(self.layers) - 1:
                grad = grad * (pre_acts[i] > 0)  # ReLU mask
            grad = self.layers[i].backward(inputs[i], grad, lr=lr)
        return grad

    @property
    def flops_per_sample(self) -> int:
        """Total multiply-add count per sample across layers."""
        return sum(l.flops_per_sample for l in self.layers)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        arch = "-".join(str(s) for s in self.layer_sizes)
        return f"<MLP {arch}{' sigmoid' if self.sigmoid_output else ''}>"
