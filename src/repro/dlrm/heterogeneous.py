"""Heterogeneous table profiles and Criteo-like workloads.

The paper's experiments use uniform tables, but its background section is
explicit that real sparse-feature spaces are wildly skewed: "Some tables,
like those for US states, have small cardinalities (e.g., 50 rows).
However, tables for features like user-browsed pages can have billions of
rows" (§II-A).  This module models that heterogeneity:

* :class:`TableProfile` — per-table rows, hash cardinality, and pooling
  range (pooling "varies by features and by samples", §II);
* :class:`HeterogeneousWorkload` — a set of profiles sharing one embedding
  dim, usable everywhere a :class:`~repro.dlrm.data.WorkloadConfig` is
  (same ``table_configs()`` / generator interface);
* :func:`criteo_like` — a 26-sparse-feature profile with log-uniform
  cardinalities from tens to tens of millions, matching the shape of the
  public Criteo Kaggle/Terabyte datasets DLRM is benchmarked on.

Heterogeneous tables are what make non-trivial placement matter — see
:mod:`repro.core.planner` for the balanced table-wise placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from .batch import JaggedField, SparseBatch
from .embedding import EmbeddingTableConfig, PoolingMode

__all__ = ["TableProfile", "HeterogeneousWorkload", "HeterogeneousDataGenerator", "criteo_like"]


@dataclass(frozen=True)
class TableProfile:
    """One sparse feature's statistical profile."""

    name: str
    num_rows: int  #: post-hash table size M_i
    max_pooling: int  #: largest bag for this feature
    min_pooling: int = 0  #: 0 allows NULL bags (paper Fig. 3)
    raw_cardinality: Optional[int] = None  #: pre-hash index space

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ValueError(f"table {self.name!r}: num_rows must be positive")
        if not (0 <= self.min_pooling <= self.max_pooling):
            raise ValueError(
                f"table {self.name!r}: bad pooling range "
                f"[{self.min_pooling}, {self.max_pooling}]"
            )
        if self.raw_cardinality is not None and self.raw_cardinality <= 0:
            raise ValueError(f"table {self.name!r}: raw_cardinality must be positive")

    @property
    def mean_pooling(self) -> float:
        """Expected bag size under the uniform draw."""
        return (self.min_pooling + self.max_pooling) / 2.0

    def nbytes(self, dim: int, itemsize: int = 4) -> int:
        """Weight footprint at embedding dim ``dim``."""
        return self.num_rows * dim * itemsize


@dataclass(frozen=True)
class HeterogeneousWorkload:
    """A batch workload over heterogeneous tables (one shared dim)."""

    tables: Tuple[TableProfile, ...]
    dim: int = 64
    batch_size: int = 16_384
    pooling: PoolingMode = "sum"
    num_dense_features: int = 13
    seed: int = 2024

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("need at least one table profile")
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise ValueError("duplicate table names")
        if self.dim <= 0 or self.batch_size <= 0:
            raise ValueError("dim and batch_size must be positive")
        object.__setattr__(self, "tables", tuple(self.tables))

    @property
    def num_tables(self) -> int:
        """Number of sparse features."""
        return len(self.tables)

    @property
    def feature_names(self) -> List[str]:
        """Feature names in layout order."""
        return [t.name for t in self.tables]

    @property
    def total_table_bytes(self) -> int:
        """Weight bytes across all tables."""
        return sum(t.nbytes(self.dim) for t in self.tables)

    def table_configs(self) -> List[EmbeddingTableConfig]:
        """Embedding-table configs (the sharding/retrieval interface)."""
        return [
            EmbeddingTableConfig(
                name=t.name, num_rows=t.num_rows, dim=self.dim, pooling=self.pooling
            )
            for t in self.tables
        ]

    def profile(self, name: str) -> TableProfile:
        """Profile by feature name."""
        for t in self.tables:
            if t.name == name:
                return t
        raise KeyError(name)


class HeterogeneousDataGenerator:
    """Draws batches honouring each table's own pooling range/cardinality."""

    def __init__(self, workload: HeterogeneousWorkload):
        self.workload = workload
        self._rng = np.random.default_rng(workload.seed)

    def reset(self) -> None:
        """Restart the stream."""
        self._rng = np.random.default_rng(self.workload.seed)

    def lengths_batch(self, batch_size: Optional[int] = None) -> Dict[str, np.ndarray]:
        """Per-feature pooling factors, each from its own range."""
        B = batch_size or self.workload.batch_size
        return {
            t.name: self._rng.integers(t.min_pooling, t.max_pooling + 1, size=B,
                                       dtype=np.int64)
            for t in self.workload.tables
        }

    def sparse_batch(self, batch_size: Optional[int] = None) -> SparseBatch:
        """Full jagged batch with per-feature cardinalities."""
        B = batch_size or self.workload.batch_size
        fields = {}
        for t in self.workload.tables:
            lengths = self._rng.integers(
                t.min_pooling, t.max_pooling + 1, size=B, dtype=np.int64
            )
            nnz = int(lengths.sum())
            card = t.raw_cardinality or t.num_rows
            indices = (
                self._rng.integers(0, card, size=nnz, dtype=np.int64)
                if nnz
                else np.empty(0, dtype=np.int64)
            )
            fields[t.name] = JaggedField.from_lengths(lengths, indices)
        return SparseBatch(fields)

    def dense_batch(self, batch_size: Optional[int] = None) -> np.ndarray:
        """Continuous features, uniform [0, 1)."""
        B = batch_size or self.workload.batch_size
        return self._rng.uniform(size=(B, self.workload.num_dense_features)).astype(
            np.float32
        )

    def batches(self, n: int, batch_size: Optional[int] = None) -> Iterator[tuple]:
        """Yield ``n`` (dense, sparse) pairs."""
        for _ in range(n):
            yield self.dense_batch(batch_size), self.sparse_batch(batch_size)


def criteo_like(
    num_tables: int = 26,
    dim: int = 64,
    batch_size: int = 16_384,
    *,
    min_rows: int = 32,
    max_rows: int = 40_000_000,
    multivalued_fraction: float = 0.25,
    seed: int = 7,
) -> HeterogeneousWorkload:
    """A Criteo-shaped workload: 26 features, log-uniform cardinalities.

    Most features are single-valued (pooling 1, like Criteo's categorical
    columns); ``multivalued_fraction`` of them are multi-hot bags (browsed
    pages, past clicks) with pooling up to 64.  Cardinalities span
    ``[min_rows, max_rows]`` log-uniformly, hashed down to at most 10M rows
    as production systems do (paper §II-A).
    """
    if num_tables <= 0:
        raise ValueError("num_tables must be positive")
    if not (0.0 <= multivalued_fraction <= 1.0):
        raise ValueError("multivalued_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    log_lo, log_hi = np.log10(min_rows), np.log10(max_rows)
    cards = (10 ** rng.uniform(log_lo, log_hi, size=num_tables)).astype(np.int64)
    n_multi = int(round(num_tables * multivalued_fraction))
    multi = set(rng.choice(num_tables, size=n_multi, replace=False).tolist())
    profiles = []
    for i in range(num_tables):
        raw = int(cards[i])
        hashed = min(raw, 10_000_000)
        if i in multi:
            lo_p, hi_p = 0, 64
        else:
            lo_p, hi_p = 1, 1
        profiles.append(
            TableProfile(
                name=f"cat_{i}",
                num_rows=hashed,
                max_pooling=hi_p,
                min_pooling=lo_p,
                raw_cardinality=raw,
            )
        )
    return HeterogeneousWorkload(
        tables=tuple(profiles), dim=dim, batch_size=batch_size, seed=seed
    )
