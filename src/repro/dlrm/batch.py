"""Jagged sparse-batch representation.

A DLRM sparse input is jagged: per (feature, sample) a *bag* of indices
whose size — the pooling factor — varies by feature and by sample, possibly
zero ("NULL" in the paper's Fig. 3).  We use the standard CSR-style
``(offsets, indices)`` encoding per feature, the same layout as PyTorch's
``EmbeddingBag`` / TorchRec's ``KeyedJaggedTensor``:

* ``offsets`` — int64 array of shape ``(batch_size + 1,)``, non-decreasing,
  ``offsets[0] == 0``; bag *b* is ``indices[offsets[b]:offsets[b + 1]]``.
* ``indices`` — int64 array of raw (pre-hash) sparse indices.

:class:`SparseBatch` maps feature names to :class:`JaggedField` and supports
the two partitionings of the distributed forward pass (paper Fig. 4):
``select_features`` (model-parallel: a device takes the *full batch* for its
local features) and ``slice_samples`` (data-parallel: a device's mini-batch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = ["JaggedField", "SparseBatch"]


@dataclass(frozen=True)
class JaggedField:
    """One feature's jagged bags for a batch, in CSR form."""

    offsets: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        offsets = np.asarray(self.offsets, dtype=np.int64)
        indices = np.asarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "offsets", offsets)
        object.__setattr__(self, "indices", indices)
        if offsets.ndim != 1 or offsets.size == 0:
            raise ValueError("offsets must be a 1-D array of length batch_size + 1")
        if offsets[0] != 0:
            raise ValueError(f"offsets[0] must be 0, got {offsets[0]}")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        if offsets[-1] != indices.size:
            raise ValueError(
                f"offsets[-1] ({offsets[-1]}) must equal len(indices) ({indices.size})"
            )

    @property
    def batch_size(self) -> int:
        """Number of samples."""
        return self.offsets.size - 1

    @property
    def nnz(self) -> int:
        """Total indices across all bags."""
        return int(self.indices.size)

    @property
    def lengths(self) -> np.ndarray:
        """Pooling factor per sample."""
        return np.diff(self.offsets)

    def bag(self, sample: int) -> np.ndarray:
        """The index bag of one sample (possibly empty)."""
        return self.indices[self.offsets[sample] : self.offsets[sample + 1]]

    def bags(self) -> Iterator[np.ndarray]:
        """Iterate over all bags in sample order."""
        for b in range(self.batch_size):
            yield self.bag(b)

    @staticmethod
    def from_lengths(lengths: Sequence[int], indices: np.ndarray) -> "JaggedField":
        """Build from per-sample bag lengths plus flat indices."""
        lengths = np.asarray(lengths, dtype=np.int64)
        if np.any(lengths < 0):
            raise ValueError("bag lengths must be non-negative")
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        return JaggedField(offsets=offsets, indices=np.asarray(indices, dtype=np.int64))

    @staticmethod
    def from_bags(bags: Sequence[Sequence[int]]) -> "JaggedField":
        """Build from an explicit list of bags (convenient in tests)."""
        lengths = [len(b) for b in bags]
        if sum(lengths):
            indices = np.concatenate([np.asarray(b, dtype=np.int64) for b in bags if len(b)])
        else:
            indices = np.empty(0, dtype=np.int64)
        return JaggedField.from_lengths(lengths, indices)

    def slice_samples(self, lo: int, hi: int) -> "JaggedField":
        """Sub-batch ``[lo, hi)`` — the data-parallel mini-batch cut."""
        if not (0 <= lo <= hi <= self.batch_size):
            raise ValueError(f"slice [{lo}, {hi}) out of range for batch {self.batch_size}")
        base = self.offsets[lo]
        return JaggedField(
            offsets=self.offsets[lo : hi + 1] - base,
            indices=self.indices[base : self.offsets[hi]],
        )

    def take(self, rows: Sequence[int]) -> "JaggedField":
        """Gather arbitrary samples (with reorder) into a new batch.

        The continuous-batching scheduler pre-draws one pooled batch of
        request features and assembles each dispatched batch from the
        admitted request ids — which need not be contiguous once load
        shedding drops some — so a row-gather is needed on top of
        :meth:`slice_samples`'s contiguous cut.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (rows.min() < 0 or rows.max() >= self.batch_size):
            raise ValueError(f"row ids out of range for batch {self.batch_size}")
        lengths = self.lengths[rows]
        if rows.size:
            parts = [self.indices[self.offsets[r] : self.offsets[r + 1]] for r in rows]
            indices = np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        else:
            indices = np.empty(0, dtype=np.int64)
        return JaggedField.from_lengths(lengths, indices)

    def concat(self, other: "JaggedField") -> "JaggedField":
        """Append another batch of the same feature (inverse of slicing)."""
        return JaggedField(
            offsets=np.concatenate([self.offsets, other.offsets[1:] + self.offsets[-1]]),
            indices=np.concatenate([self.indices, other.indices]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JaggedField):
            return NotImplemented
        return bool(
            np.array_equal(self.offsets, other.offsets)
            and np.array_equal(self.indices, other.indices)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JaggedField B={self.batch_size} nnz={self.nnz}>"


class SparseBatch:
    """All sparse features of one input batch: ``{feature_name: JaggedField}``.

    All fields must share one batch size.  Iteration order is the insertion
    order of ``fields`` (deterministic — feature order defines the layout of
    the EMB output tensor, so it must be stable across devices).
    """

    def __init__(self, fields: Mapping[str, JaggedField]):
        if not fields:
            raise ValueError("a SparseBatch needs at least one feature")
        sizes = {f.batch_size for f in fields.values()}
        if len(sizes) != 1:
            raise ValueError(f"inconsistent batch sizes across features: {sorted(sizes)}")
        self._fields: Dict[str, JaggedField] = dict(fields)
        self._batch_size = sizes.pop()

    @property
    def batch_size(self) -> int:
        """Samples per feature."""
        return self._batch_size

    @property
    def feature_names(self) -> List[str]:
        """Feature names in layout order."""
        return list(self._fields.keys())

    @property
    def num_features(self) -> int:
        """Number of sparse features."""
        return len(self._fields)

    @property
    def total_nnz(self) -> int:
        """Sum of nnz over all features."""
        return sum(f.nnz for f in self._fields.values())

    def field(self, name: str) -> JaggedField:
        """One feature's jagged data."""
        return self._fields[name]

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __iter__(self) -> Iterator[Tuple[str, JaggedField]]:
        return iter(self._fields.items())

    # -- partitioning (paper Fig. 4) ------------------------------------------------

    def select_features(self, names: Sequence[str]) -> "SparseBatch":
        """Model-parallel cut: full batch restricted to ``names``."""
        missing = [n for n in names if n not in self._fields]
        if missing:
            raise KeyError(f"unknown features: {missing}")
        return SparseBatch({n: self._fields[n] for n in names})

    def slice_samples(self, lo: int, hi: int) -> "SparseBatch":
        """Data-parallel cut: samples ``[lo, hi)`` of every feature."""
        return SparseBatch({n: f.slice_samples(lo, hi) for n, f in self._fields.items()})

    def take(self, rows: Sequence[int]) -> "SparseBatch":
        """Gather arbitrary samples of every feature (see JaggedField.take)."""
        return SparseBatch({n: f.take(rows) for n, f in self._fields.items()})

    def minibatch_bounds(self, n_parts: int) -> List[Tuple[int, int]]:
        """Even split of the batch dimension into ``n_parts`` ranges.

        The remainder is spread over the leading parts, matching the
        all-to-all splits used by the distributed forward pass.
        """
        if n_parts <= 0:
            raise ValueError("n_parts must be positive")
        base, rem = divmod(self._batch_size, n_parts)
        bounds = []
        lo = 0
        for p in range(n_parts):
            hi = lo + base + (1 if p < rem else 0)
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SparseBatch B={self._batch_size} features={self.num_features} "
            f"nnz={self.total_nnz}>"
        )
