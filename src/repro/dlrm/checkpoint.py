"""Checkpointing: save/restore embedding tables and MLP weights.

A practical necessity for any trainable model holding gigabytes of
embedding state.  The format is a single ``.npz`` (numpy's zipped archive)
holding every table's weights, every MLP layer's weight/bias, and a small
JSON header with the architecture — enough to validate compatibility on
load rather than silently mis-restoring.

Optimizer state (row-wise Adagrad accumulators) rides along when an
optimizer is supplied, keyed per table, so training resumes bit-exactly.
"""

from __future__ import annotations

import json
import zipfile
from contextlib import contextmanager
from typing import Optional

import numpy as np

from .model import DLRM
from .optim import RowWiseAdagrad

__all__ = ["CheckpointError", "save_checkpoint", "load_checkpoint"]

_FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Incompatible or corrupt checkpoint."""


@contextmanager
def _wrap_corruption(path: str):
    """Translate the raw decode errors a damaged ``.npz`` produces into
    :class:`CheckpointError` (truncated archives surface as
    ``zipfile.BadZipFile``, ``EOFError``, ``OSError``, or numpy/json
    ``ValueError``\\ s depending on where the damage lands)."""
    try:
        yield
    except (CheckpointError, FileNotFoundError):
        raise
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as exc:
        raise CheckpointError(
            f"{path}: corrupt or truncated checkpoint ({exc})"
        ) from exc


def _header(model: DLRM) -> dict:
    cfg = model.config
    return {
        "format_version": _FORMAT_VERSION,
        "num_dense_features": cfg.num_dense_features,
        "embedding_dim": cfg.embedding_dim,
        "interaction": cfg.interaction,
        "tables": [
            {"name": t.name, "num_rows": t.num_rows, "dim": t.dim}
            for t in cfg.table_configs
        ],
        "bottom_mlp": list(cfg.bottom_mlp_sizes),
        "top_mlp": list(cfg.top_mlp_sizes),
    }


def save_checkpoint(
    model: DLRM, path: str, optimizer: Optional[RowWiseAdagrad] = None
) -> None:
    """Write the model (and optional optimizer state) to ``path`` (.npz)."""
    arrays = {"__header__": np.frombuffer(
        json.dumps(_header(model)).encode(), dtype=np.uint8
    )}
    for table in model.embeddings.tables:
        arrays[f"emb/{table.name}"] = table.weights
        if optimizer is not None:
            arrays[f"opt/{table.name}"] = optimizer.accumulator(table)
    for prefix, mlp in (("bottom", model.bottom_mlp), ("top", model.top_mlp)):
        for i, layer in enumerate(mlp.layers):
            arrays[f"mlp/{prefix}/{i}/weight"] = layer.weight
            arrays[f"mlp/{prefix}/{i}/bias"] = layer.bias
    np.savez_compressed(path, **arrays)


def load_checkpoint(
    model: DLRM, path: str, optimizer: Optional[RowWiseAdagrad] = None
) -> None:
    """Restore weights (and optimizer state) into ``model`` in place.

    Raises :class:`CheckpointError` if the checkpoint's architecture does
    not match the model's, and for truncated or otherwise corrupt files
    (instead of leaking raw ``zipfile``/numpy decode errors).
    """
    with _wrap_corruption(path), np.load(path) as data:
        if "__header__" not in data:
            raise CheckpointError(f"{path}: missing header — not a repro checkpoint")
        header = json.loads(bytes(data["__header__"]).decode())
        if header.get("format_version") != _FORMAT_VERSION:
            raise CheckpointError(
                f"{path}: format version {header.get('format_version')} "
                f"!= supported {_FORMAT_VERSION}"
            )
        expect = _header(model)
        for key in ("num_dense_features", "embedding_dim", "tables",
                    "bottom_mlp", "top_mlp", "interaction"):
            if header.get(key) != expect[key]:
                raise CheckpointError(
                    f"{path}: architecture mismatch on {key!r}: "
                    f"checkpoint {header.get(key)} vs model {expect[key]}"
                )
        for table in model.embeddings.tables:
            table.weights[...] = data[f"emb/{table.name}"]
            opt_key = f"opt/{table.name}"
            if optimizer is not None and opt_key in data:
                optimizer.accumulator(table)[...] = data[opt_key]
        for prefix, mlp in (("bottom", model.bottom_mlp), ("top", model.top_mlp)):
            for i, layer in enumerate(mlp.layers):
                layer.weight[...] = data[f"mlp/{prefix}/{i}/weight"]
                layer.bias[...] = data[f"mlp/{prefix}/{i}/bias"]
