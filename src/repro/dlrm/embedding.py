"""Embedding tables: hash → lookup → pool (paper §II-B).

:class:`EmbeddingTable` is one sparse feature's table; its
:meth:`~EmbeddingTable.forward` performs the three steps of the EMB layer
for a jagged batch:

1. **Hashing** — raw indices folded to ``[0, num_rows)``.
2. **Lookup** — gather the embedding vectors for every index in every bag.
3. **Pooling** — combine each bag's vectors (sum / mean / max) into one
   output vector per sample; an empty bag ("NULL" input) pools to zeros.

:class:`EmbeddingBagCollection` groups many tables and produces the
``(batch, num_features, dim)`` activation the interaction layer consumes —
the tensor whose layout conversion is the whole point of the paper.

Implementation notes (hpc guides: vectorise, avoid copies): pooling is one
``gather`` + one ``reduceat``-style segment reduction, no Python-level loop
over samples.  Sum-pooling of a segment is computed with
``np.add.reduceat`` over non-empty segments, which is deterministic for a
fixed batch, so backends that reuse this code produce *bit-identical*
outputs — the equality tests rely on that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Mapping, Optional, Sequence

import numpy as np

from .batch import JaggedField, SparseBatch
from .hashing import HashKind, hash_indices

__all__ = ["PoolingMode", "EmbeddingTableConfig", "EmbeddingTable", "EmbeddingBagCollection", "segment_pool"]

PoolingMode = Literal["sum", "mean", "max"]


@dataclass(frozen=True)
class EmbeddingTableConfig:
    """Static description of one embedding table.

    ``num_rows`` is the post-hash size M_i; ``dim`` the embedding dimension
    d (powers of two in practice, paper §II-A).
    """

    name: str
    num_rows: int
    dim: int
    pooling: PoolingMode = "sum"
    hash_kind: HashKind = "mod"
    dtype: np.dtype = np.dtype(np.float32)

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ValueError(f"table {self.name!r}: num_rows must be positive")
        if self.dim <= 0:
            raise ValueError(f"table {self.name!r}: dim must be positive")
        if self.pooling not in ("sum", "mean", "max"):
            raise ValueError(f"table {self.name!r}: unknown pooling {self.pooling!r}")
        object.__setattr__(self, "dtype", np.dtype(self.dtype))

    @property
    def nbytes(self) -> int:
        """Weight storage footprint."""
        return self.num_rows * self.dim * self.dtype.itemsize

    @property
    def row_bytes(self) -> int:
        """Bytes of one embedding vector."""
        return self.dim * self.dtype.itemsize


def segment_pool(
    vectors: np.ndarray, offsets: np.ndarray, mode: PoolingMode = "sum"
) -> np.ndarray:
    """Pool gathered vectors per CSR segment; empty segments give zeros.

    ``vectors`` has shape ``(nnz, dim)``; ``offsets`` has shape ``(B + 1,)``.
    Returns ``(B, dim)``.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    n_seg = offsets.size - 1
    dim = vectors.shape[1] if vectors.ndim == 2 else 0
    out = np.zeros((n_seg, dim), dtype=vectors.dtype)
    lengths = np.diff(offsets)
    nonempty = np.flatnonzero(lengths > 0)
    if nonempty.size == 0:
        return out
    if mode in ("sum", "mean"):
        # reduceat over the starts of non-empty segments; reduceat reduces
        # [start[i], start[i+1]) so consecutive non-empty segments compose,
        # and trailing elements of an empty-segment run never leak because
        # empty segments are excluded from `starts`.
        starts = offsets[nonempty]
        pooled = np.add.reduceat(vectors, starts, axis=0)
        out[nonempty] = pooled
        if mode == "mean":
            out[nonempty] /= lengths[nonempty, None].astype(vectors.dtype)
        return out
    if mode == "max":
        out[nonempty] = np.maximum.reduceat(vectors, offsets[nonempty], axis=0)
        return out
    raise ValueError(f"unknown pooling mode {mode!r}")


class EmbeddingTable:
    """One sparse feature's embedding table (learned weights + ops)."""

    def __init__(
        self,
        config: EmbeddingTableConfig,
        weights: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        self.config = config
        if weights is not None:
            weights = np.asarray(weights, dtype=config.dtype)
            if weights.shape != (config.num_rows, config.dim):
                raise ValueError(
                    f"table {config.name!r}: weights shape {weights.shape} != "
                    f"({config.num_rows}, {config.dim})"
                )
            self.weights = weights
        else:
            rng = rng or np.random.default_rng(0)
            # DLRM-style init: uniform in +-1/sqrt(num_rows).
            bound = 1.0 / np.sqrt(config.num_rows)
            self.weights = rng.uniform(
                -bound, bound, size=(config.num_rows, config.dim)
            ).astype(config.dtype)

    @property
    def name(self) -> str:
        """Feature/table name."""
        return self.config.name

    def hash(self, raw_indices: np.ndarray) -> np.ndarray:
        """Fold raw indices to row ids."""
        return hash_indices(raw_indices, self.config.num_rows, self.config.hash_kind)

    def lookup(self, raw_indices: np.ndarray) -> np.ndarray:
        """Hash + gather: ``(nnz, dim)`` embedding vectors."""
        rows = self.hash(raw_indices)
        return self.weights[rows]

    def forward(self, field: JaggedField) -> np.ndarray:
        """Full EMB step for one feature: returns ``(batch, dim)``."""
        vectors = self.lookup(field.indices)
        return segment_pool(vectors, field.offsets, self.config.pooling)

    def apply_row_gradients(self, rows: np.ndarray, grads: np.ndarray, lr: float = 1.0) -> None:
        """SGD update with duplicate-row accumulation (backward §V).

        ``rows`` may contain duplicates; gradients for the same row sum —
        ``np.add.at`` is the scatter-add the PGAS backward pass models with
        remote atomics.
        """
        if rows.shape[0] != grads.shape[0]:
            raise ValueError("rows and grads must align")
        np.subtract.at(self.weights, rows, lr * grads.astype(self.config.dtype))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.config
        return f"<EmbeddingTable {c.name!r} {c.num_rows}x{c.dim} {c.pooling}>"


class EmbeddingBagCollection:
    """A set of embedding tables evaluated together (TorchRec's EBC analogue).

    ``forward`` returns ``(batch, num_features, dim)`` with features in
    *collection* order — the model-parallel activation whose re-layout into
    data-parallel mini-batches is the communication under study.
    """

    def __init__(self, tables: Sequence[EmbeddingTable]):
        if not tables:
            raise ValueError("EmbeddingBagCollection needs at least one table")
        dims = {t.config.dim for t in tables}
        if len(dims) != 1:
            raise ValueError(
                f"all tables in a collection must share one dim, got {sorted(dims)}"
            )
        names = [t.name for t in tables]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate table names: {names}")
        self.tables: List[EmbeddingTable] = list(tables)
        self._by_name: Dict[str, EmbeddingTable] = {t.name: t for t in tables}
        self.dim = dims.pop()

    @classmethod
    def from_configs(
        cls,
        configs: Sequence[EmbeddingTableConfig],
        rng: Optional[np.random.Generator] = None,
    ) -> "EmbeddingBagCollection":
        """Build tables with fresh weights from configs."""
        rng = rng or np.random.default_rng(0)
        return cls([EmbeddingTable(c, rng=rng) for c in configs])

    @property
    def feature_names(self) -> List[str]:
        """Table names in collection order."""
        return [t.name for t in self.tables]

    @property
    def num_features(self) -> int:
        """Number of tables."""
        return len(self.tables)

    @property
    def nbytes(self) -> int:
        """Total weight footprint."""
        return sum(t.config.nbytes for t in self.tables)

    def table(self, name: str) -> EmbeddingTable:
        """Table by feature name."""
        return self._by_name[name]

    def forward(self, batch: SparseBatch) -> np.ndarray:
        """EMB layer forward for every feature: ``(batch, F, dim)``."""
        out = np.empty(
            (batch.batch_size, self.num_features, self.dim),
            dtype=self.tables[0].config.dtype,
        )
        for f, table in enumerate(self.tables):
            out[:, f, :] = table.forward(batch.field(table.name))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EmbeddingBagCollection F={self.num_features} dim={self.dim}>"
