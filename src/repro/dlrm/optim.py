"""Optimizers for embedding tables: sparse SGD and row-wise Adagrad.

Production DLRM trains its embedding tables with **row-wise Adagrad**
(one accumulator scalar per row, not per element — the memory-frugal
variant FBGEMM implements): rows that are hit often get their effective
step size annealed, which matters enormously under the power-law access
patterns of real sparse features.

Both optimizers handle duplicate rows within one batch correctly:
contributions to the same row are summed *before* the state update, so an
update is equivalent to one gradient step on the aggregated gradient —
the same semantics the distributed backward paths produce via atomics.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .embedding import EmbeddingTable

__all__ = ["aggregate_row_gradients", "SparseSGD", "RowWiseAdagrad"]


def aggregate_row_gradients(
    rows: np.ndarray, grads: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Sum duplicate-row contributions: returns (unique_rows, summed_grads)."""
    rows = np.asarray(rows, dtype=np.int64)
    if rows.shape[0] != grads.shape[0]:
        raise ValueError("rows and grads must align")
    if rows.size == 0:
        return rows, grads
    unique, inverse = np.unique(rows, return_inverse=True)
    summed = np.zeros((unique.size, grads.shape[1]), dtype=np.float64)
    np.add.at(summed, inverse, grads.astype(np.float64))
    return unique, summed


class SparseSGD:
    """Plain SGD on embedding rows (the library default, stateless)."""

    def __init__(self, lr: float = 0.1):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def update(self, table: EmbeddingTable, rows: np.ndarray, grads: np.ndarray) -> None:
        """Apply one aggregated gradient step to ``table``."""
        unique, summed = aggregate_row_gradients(rows, grads)
        if unique.size == 0:
            return
        table.weights[unique] -= (self.lr * summed).astype(table.weights.dtype)

    def state_bytes(self, table: EmbeddingTable) -> int:
        """Optimizer-state footprint (none for SGD)."""
        return 0


class RowWiseAdagrad:
    """Row-wise Adagrad: one accumulator per row.

    Update for row *r* with aggregated gradient ``g``:

        G[r] += mean(g²)
        w[r] -= lr · g / (sqrt(G[r]) + eps)

    State is allocated lazily per table (a float32 vector of ``num_rows``),
    adding only ``1/dim`` of the table's footprint — the reason this
    variant, not full Adagrad, is what recommendation systems deploy.
    """

    def __init__(self, lr: float = 0.1, eps: float = 1e-8):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.lr = lr
        self.eps = eps
        self._state: Dict[int, np.ndarray] = {}  # id(table) -> per-row accumulator

    def accumulator(self, table: EmbeddingTable) -> np.ndarray:
        """The per-row squared-gradient accumulator for a table."""
        key = id(table)
        acc = self._state.get(key)
        if acc is None:
            acc = np.zeros(table.config.num_rows, dtype=np.float32)
            self._state[key] = acc
        return acc

    def update(self, table: EmbeddingTable, rows: np.ndarray, grads: np.ndarray) -> None:
        """Apply one aggregated Adagrad step to ``table``."""
        unique, summed = aggregate_row_gradients(rows, grads)
        if unique.size == 0:
            return
        acc = self.accumulator(table)
        acc[unique] += np.mean(summed**2, axis=1).astype(np.float32)
        scale = self.lr / (np.sqrt(acc[unique]) + self.eps)
        table.weights[unique] -= (scale[:, None] * summed).astype(table.weights.dtype)

    def state_bytes(self, table: EmbeddingTable) -> int:
        """Optimizer-state footprint: 4 bytes per row once touched."""
        key = id(table)
        return self._state[key].nbytes if key in self._state else 0
