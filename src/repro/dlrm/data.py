"""Synthetic workload generation (paper §IV: "the dense and sparse feature
inputs are generated synthetically with a uniform random distribution").

:class:`WorkloadConfig` captures the knobs of the paper's two experiments —
number of tables, rows, embedding dim, batch size, and the pooling-factor
cap — and :class:`SyntheticDataGenerator` draws batches from them.  Beyond
the paper's uniform distribution, a Zipf index distribution and a
fixed-pooling mode are provided for the extension studies (skewed access is
what makes the backward pass's gradient aggregation interesting).

Generation is deterministic given a seed; the same seed produces the same
batches on every device, which the distributed tests use to avoid
broadcasting inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Literal, Optional, Sequence

import numpy as np

from .batch import JaggedField, SparseBatch
from .embedding import EmbeddingTableConfig, PoolingMode

__all__ = ["WorkloadConfig", "SyntheticDataGenerator", "WEAK_SCALING_BASE", "STRONG_SCALING_TOTAL"]

IndexDistribution = Literal["uniform", "zipf"]


@dataclass(frozen=True)
class WorkloadConfig:
    """One experiment's workload description.

    Attributes mirror the paper's setup tables:

    * weak scaling: ``num_tables`` **per GPU** 64, 1M rows, dim 64,
      batch 16384, pooling uniform with max 128;
    * strong scaling: 96 tables **total**, 1M rows, dim 64, batch 16384,
      pooling up to 32.
    """

    num_tables: int
    rows_per_table: int = 1_000_000
    dim: int = 64
    batch_size: int = 16_384
    max_pooling: int = 128
    min_pooling: int = 0  #: 0 allows "NULL" bags as in paper Fig. 3
    index_distribution: IndexDistribution = "uniform"
    zipf_alpha: float = 1.05
    table_skew_alpha: Optional[float] = None  #: zipf skew of *per-table* traffic
    pooling: PoolingMode = "sum"
    raw_cardinality: Optional[int] = None  #: pre-hash index space; default = rows
    seed: int = 2024
    num_dense_features: int = 13  #: Criteo-like dense width for the full model

    def __post_init__(self) -> None:
        if self.num_tables <= 0:
            raise ValueError("num_tables must be positive")
        if self.rows_per_table <= 0 or self.dim <= 0 or self.batch_size <= 0:
            raise ValueError("rows, dim and batch_size must be positive")
        if not (0 <= self.min_pooling <= self.max_pooling):
            raise ValueError(
                f"need 0 <= min_pooling <= max_pooling, got "
                f"[{self.min_pooling}, {self.max_pooling}]"
            )
        if self.index_distribution == "zipf" and self.zipf_alpha <= 1.0:
            raise ValueError("zipf_alpha must be > 1 for a proper Zipf law")
        if self.table_skew_alpha is not None and self.table_skew_alpha <= 0:
            raise ValueError(
                f"table_skew_alpha must be positive (or None for uniform "
                f"table traffic), got {self.table_skew_alpha}"
            )

    @property
    def mean_pooling(self) -> float:
        """Expected bag size under the uniform pooling draw."""
        return (self.min_pooling + self.max_pooling) / 2.0

    @property
    def table_bytes(self) -> int:
        """Weight bytes of one table (float32)."""
        return self.rows_per_table * self.dim * 4

    @property
    def total_table_bytes(self) -> int:
        """Weight bytes across all tables."""
        return self.num_tables * self.table_bytes

    @property
    def feature_names(self) -> List[str]:
        """Deterministic feature naming: ``sparse_0 ... sparse_{T-1}``."""
        return [f"sparse_{i}" for i in range(self.num_tables)]

    def table_configs(self) -> List[EmbeddingTableConfig]:
        """Embedding-table configs for this workload."""
        return [
            EmbeddingTableConfig(
                name=name,
                num_rows=self.rows_per_table,
                dim=self.dim,
                pooling=self.pooling,
            )
            for name in self.feature_names
        ]

    def table_skew_scales(self) -> Optional[np.ndarray]:
        """Per-table traffic multipliers under the table-popularity skew.

        ``None`` when :attr:`table_skew_alpha` is unset (uniform traffic).
        Otherwise table *t* gets weight ``(t + 1) ** -alpha`` (zipf over
        the feature order), normalised so the multipliers average 1.0 —
        the *total* expected traffic matches the uniform workload, only
        its distribution over tables changes.
        """
        if self.table_skew_alpha is None:
            return None
        w = np.arange(1, self.num_tables + 1, dtype=np.float64) ** (
            -self.table_skew_alpha
        )
        return w * (self.num_tables / w.sum())

    def scaled_tables(self, num_tables: int) -> "WorkloadConfig":
        """Copy with a different table count (weak-scaling helper)."""
        return replace(self, num_tables=num_tables)

    def with_batch_size(self, batch_size: int) -> "WorkloadConfig":
        """Copy with a different batch size (sweep helper)."""
        return replace(self, batch_size=batch_size)


#: Paper §IV-A: per-GPU workload of the weak-scaling test.
WEAK_SCALING_BASE = WorkloadConfig(
    num_tables=64, rows_per_table=1_000_000, dim=64, batch_size=16_384, max_pooling=128
)

#: Paper §IV-B: total workload of the strong-scaling test.
STRONG_SCALING_TOTAL = WorkloadConfig(
    num_tables=96, rows_per_table=1_000_000, dim=64, batch_size=16_384, max_pooling=32
)


def _skew_lengths(lengths: np.ndarray, scale: float) -> np.ndarray:
    """Scale a uniform per-sample length draw by one table's multiplier.

    The scaling happens *after* the uniform draw, so the generator's RNG
    stream is untouched — a config with ``table_skew_alpha=None`` is
    bit-identical to one that never had the knob.
    """
    return np.rint(lengths.astype(np.float64) * scale).astype(np.int64)


class SyntheticDataGenerator:
    """Draws dense + sparse batches for a :class:`WorkloadConfig`."""

    def __init__(self, config: WorkloadConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)

    def reset(self) -> None:
        """Restart the stream (same seed → same batches again)."""
        self._rng = np.random.default_rng(self.config.seed)

    # -- sparse -----------------------------------------------------------------

    def sparse_batch(self, batch_size: Optional[int] = None) -> SparseBatch:
        """One batch of jagged sparse inputs for every feature."""
        cfg = self.config
        B = batch_size or cfg.batch_size
        cardinality = cfg.raw_cardinality or cfg.rows_per_table
        scales = cfg.table_skew_scales()
        fields = {}
        for t, name in enumerate(cfg.feature_names):
            lengths = self._rng.integers(
                cfg.min_pooling, cfg.max_pooling + 1, size=B, dtype=np.int64
            )
            if scales is not None:
                lengths = _skew_lengths(lengths, scales[t])
            nnz = int(lengths.sum())
            indices = self._draw_indices(nnz, cardinality)
            fields[name] = JaggedField.from_lengths(lengths, indices)
        return SparseBatch(fields)

    def _draw_indices(self, nnz: int, cardinality: int) -> np.ndarray:
        cfg = self.config
        if nnz == 0:
            return np.empty(0, dtype=np.int64)
        if cfg.index_distribution == "uniform":
            return self._rng.integers(0, cardinality, size=nnz, dtype=np.int64)
        if cfg.index_distribution == "zipf":
            # Rejection-free: draw Zipf and fold into range (keeps skew).
            draws = self._rng.zipf(cfg.zipf_alpha, size=nnz)
            return ((draws - 1) % cardinality).astype(np.int64)
        raise ValueError(f"unknown index distribution {cfg.index_distribution!r}")

    def lengths_batch(self, batch_size: Optional[int] = None) -> dict:
        """Pooling factors only: ``{feature: (B,) lengths}``.

        Timing-only runs need just the jagged shape, not the indices — this
        draws exactly the lengths :meth:`sparse_batch` would (same marginal
        distribution) without materialising the index arrays, which at
        paper scale would be ~0.5 GB per batch.
        """
        cfg = self.config
        B = batch_size or cfg.batch_size
        scales = cfg.table_skew_scales()
        out = {}
        for t, name in enumerate(cfg.feature_names):
            lengths = self._rng.integers(
                cfg.min_pooling, cfg.max_pooling + 1, size=B, dtype=np.int64
            )
            if scales is not None:
                lengths = _skew_lengths(lengths, scales[t])
            out[name] = lengths
        return out

    # -- dense ------------------------------------------------------------------

    def dense_batch(self, batch_size: Optional[int] = None) -> np.ndarray:
        """One batch of continuous features, ``(B, num_dense_features)``."""
        cfg = self.config
        B = batch_size or cfg.batch_size
        return self._rng.uniform(0.0, 1.0, size=(B, cfg.num_dense_features)).astype(
            np.float32
        )

    # -- streams ----------------------------------------------------------------

    def batches(self, n: int, batch_size: Optional[int] = None) -> Iterator[tuple]:
        """Yield ``n`` (dense, sparse) batch pairs — the 100-batch loop."""
        if n < 0:
            raise ValueError("n must be non-negative")
        for _ in range(n):
            yield self.dense_batch(batch_size), self.sparse_batch(batch_size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.config
        return (
            f"<SyntheticDataGenerator T={c.num_tables} B={c.batch_size} "
            f"pool[{c.min_pooling},{c.max_pooling}] {c.index_distribution}>"
        )
