"""``repro.dlrm`` — numpy DLRM substrate.

Embedding tables (hash / lookup / pool), jagged sparse batches, dense MLPs,
the interaction layer, the full reference model, and synthetic workload
generation matching the paper's experimental setup.
"""

from .batch import JaggedField, SparseBatch
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .data import (
    STRONG_SCALING_TOTAL,
    SyntheticDataGenerator,
    WEAK_SCALING_BASE,
    WorkloadConfig,
)
from .embedding import (
    EmbeddingBagCollection,
    EmbeddingTable,
    EmbeddingTableConfig,
    PoolingMode,
    segment_pool,
)
from .hashing import HashKind, hash_indices, mod_hash, multiply_shift_hash
from .heterogeneous import (
    HeterogeneousDataGenerator,
    HeterogeneousWorkload,
    TableProfile,
    criteo_like,
)
from .interaction import (
    InteractionMode,
    cat_interaction,
    dot_interaction,
    interact,
    interaction_output_dim,
    sum_interaction,
)
from .mlp import MLP, Linear, relu, sigmoid
from .model import DLRM, DLRMConfig
from .optim import RowWiseAdagrad, SparseSGD, aggregate_row_gradients
from .training import DLRMTrainer, TrainStepResult, bce_grad, bce_loss, interaction_backward

__all__ = [
    "DLRM",
    "DLRMConfig",
    "CheckpointError",
    "DLRMTrainer",
    "load_checkpoint",
    "save_checkpoint",
    "TrainStepResult",
    "bce_grad",
    "bce_loss",
    "interaction_backward",
    "EmbeddingBagCollection",
    "EmbeddingTable",
    "EmbeddingTableConfig",
    "HashKind",
    "HeterogeneousDataGenerator",
    "HeterogeneousWorkload",
    "TableProfile",
    "criteo_like",
    "InteractionMode",
    "JaggedField",
    "Linear",
    "MLP",
    "PoolingMode",
    "RowWiseAdagrad",
    "SparseSGD",
    "aggregate_row_gradients",
    "STRONG_SCALING_TOTAL",
    "SparseBatch",
    "SyntheticDataGenerator",
    "WEAK_SCALING_BASE",
    "WorkloadConfig",
    "cat_interaction",
    "dot_interaction",
    "hash_indices",
    "interact",
    "interaction_output_dim",
    "mod_hash",
    "multiply_shift_hash",
    "relu",
    "segment_pool",
    "sigmoid",
    "sum_interaction",
]
