"""The full DLRM model (paper Fig. 1), single-process reference.

Pipeline per batch:

1. dense features → **bottom MLP** → dense embedding ``(B, d)``;
2. sparse features → **EMB layer** (hash/lookup/pool) → ``(B, F, d)``;
3. **interaction** fuses them → single embedding per sample;
4. **top MLP** + sigmoid → click-probability predictions ``(B, 1)``.

(The paper's Fig. 1 labels the dense-side MLP "top" and the post-
interaction MLP "bottom"; we follow the reference DLRM code's naming —
*bottom* processes dense inputs, *top* produces predictions — and note the
flip here once so nobody trips over it.)

This module is the correctness oracle: the distributed retrieval backends
in :mod:`repro.core` must reproduce its EMB activations exactly, and
:meth:`DLRM.forward` is also what the examples run end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from .batch import SparseBatch
from .embedding import EmbeddingBagCollection, EmbeddingTableConfig
from .interaction import InteractionMode, interact, interaction_output_dim
from .mlp import MLP

__all__ = ["DLRMConfig", "DLRM"]


@dataclass(frozen=True)
class DLRMConfig:
    """Architecture hyperparameters of a DLRM."""

    num_dense_features: int
    embedding_dim: int
    table_configs: Sequence[EmbeddingTableConfig]
    bottom_mlp_sizes: Sequence[int] = (512, 256)
    top_mlp_sizes: Sequence[int] = (512, 256)
    interaction: InteractionMode = "dot"

    def __post_init__(self) -> None:
        if self.num_dense_features <= 0:
            raise ValueError("num_dense_features must be positive")
        if self.embedding_dim <= 0:
            raise ValueError("embedding_dim must be positive")
        if not self.table_configs:
            raise ValueError("at least one embedding table is required")
        bad = [t.name for t in self.table_configs if t.dim != self.embedding_dim]
        if bad:
            raise ValueError(
                f"tables {bad} have dim != embedding_dim={self.embedding_dim}; "
                "the interaction layer requires one shared dim"
            )

    @property
    def num_sparse_features(self) -> int:
        """Number of embedding tables."""
        return len(self.table_configs)

    @property
    def interaction_dim(self) -> int:
        """Width of the interaction layer's output."""
        return interaction_output_dim(
            self.num_sparse_features, self.embedding_dim, self.interaction
        )


class DLRM:
    """Reference (single-device, numpy) DLRM inference model."""

    def __init__(self, config: DLRMConfig, rng: Optional[np.random.Generator] = None):
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.embeddings = EmbeddingBagCollection.from_configs(config.table_configs, rng=rng)
        # Bottom MLP maps dense features into the embedding space.
        self.bottom_mlp = MLP(
            [config.num_dense_features, *config.bottom_mlp_sizes, config.embedding_dim],
            rng=rng,
        )
        # Top MLP maps the interaction output to one logit.
        self.top_mlp = MLP(
            [config.interaction_dim, *config.top_mlp_sizes, 1],
            sigmoid_output=True,
            rng=rng,
        )

    # -- stages (exposed separately so distributed code can interleave them) --------

    def dense_forward(self, dense: np.ndarray) -> np.ndarray:
        """Bottom MLP: ``(B, num_dense) -> (B, d)``."""
        return self.bottom_mlp.forward(dense)

    def emb_forward(self, sparse: SparseBatch) -> np.ndarray:
        """EMB layer: ``SparseBatch -> (B, F, d)``."""
        return self.embeddings.forward(sparse)

    def predict_from_embeddings(
        self, dense_emb: np.ndarray, sparse_emb: np.ndarray
    ) -> np.ndarray:
        """Interaction + top MLP: the stages after the EMB all-to-all."""
        fused = interact(dense_emb, sparse_emb, self.config.interaction)
        return self.top_mlp.forward(fused)

    def forward(self, dense: np.ndarray, sparse: SparseBatch) -> np.ndarray:
        """Full inference pass: ``(B, 1)`` click probabilities."""
        if dense.shape[0] != sparse.batch_size:
            raise ValueError(
                f"dense batch {dense.shape[0]} != sparse batch {sparse.batch_size}"
            )
        dense_emb = self.dense_forward(dense)
        sparse_emb = self.emb_forward(sparse)
        return self.predict_from_embeddings(dense_emb, sparse_emb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        c = self.config
        return (
            f"<DLRM dense={c.num_dense_features} F={c.num_sparse_features} "
            f"d={c.embedding_dim} interact={c.interaction}>"
        )
