"""Deterministic fault plans: what breaks, where, when, and how badly.

A :class:`FaultPlan` is a validated, immutable schedule of
:class:`FaultEvent` windows over the simulated cluster.  Times are
*relative* to the moment the :class:`~repro.faults.injector.FaultInjector`
installs the plan, so the same plan can be replayed against any cluster at
any point in simulated time.  Plans carry no randomness themselves;
:meth:`FaultPlan.generate` derives one from a seed, which is what makes
"same seed + same plan → bit-identical run" testable.

Fault kinds
-----------
``link_degrade``
    Multiplicative bandwidth derate of one directed link.  ``severity`` is
    the *remaining* bandwidth fraction in ``(0, 1]``.
``link_latency``
    Additive latency spike on one directed link; ``severity`` is the extra
    latency in nanoseconds.
``link_down``
    The link carries nothing inside the window (a flap); queued traffic
    waits for the up edge.  ``severity`` is ignored.
``device_slowdown``
    Whole-device straggler: every kernel wave on the device stretches by
    ``severity`` (>= 1).
``device_stall``
    Transient freeze: kernels on the device make no progress at wave
    boundaries inside the window.  ``severity`` is ignored.
``device_down``
    Permanent failure: the device (and the table shards it owns) is gone
    from ``t_start`` onward and never comes back — unlike every other
    kind, there is no revert edge.  ``t_end`` only bounds the recorded
    profiler span (use the plan horizon); ``severity`` is ignored.  The
    replication layer's failure detector and failover routing key off
    this kind.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..simgpu.units import ms, us

__all__ = ["FAULT_KINDS", "LINK_KINDS", "DEVICE_KINDS", "FaultEvent", "FaultPlan"]

LINK_KINDS = ("link_degrade", "link_latency", "link_down")
DEVICE_KINDS = ("device_slowdown", "device_stall", "device_down")
FAULT_KINDS = LINK_KINDS + DEVICE_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One fault window.

    ``t_start``/``t_end`` are nanoseconds relative to plan installation.
    Link kinds address the directed pair ``(src, dst)``; device kinds
    address ``device``.  ``severity`` semantics depend on the kind (see
    module docstring).
    """

    kind: str
    t_start: float
    t_end: float
    src: int = -1
    dst: int = -1
    device: int = -1
    severity: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")
        if not (math.isfinite(self.t_start) and math.isfinite(self.t_end)):
            raise ValueError("fault window times must be finite")
        if self.t_start < 0 or self.t_end <= self.t_start:
            raise ValueError(
                f"need 0 <= t_start < t_end, got [{self.t_start}, {self.t_end})"
            )
        if self.kind in LINK_KINDS:
            if self.src < 0 or self.dst < 0 or self.src == self.dst:
                raise ValueError(
                    f"{self.kind} needs a directed pair src != dst, "
                    f"got ({self.src}, {self.dst})"
                )
        else:
            if self.device < 0:
                raise ValueError(f"{self.kind} needs a device id, got {self.device}")
        if not math.isfinite(self.severity):
            raise ValueError("severity must be finite")
        if self.kind == "link_degrade" and not (0.0 < self.severity <= 1.0):
            raise ValueError(
                f"link_degrade severity is the remaining bandwidth fraction "
                f"in (0, 1], got {self.severity}"
            )
        if self.kind == "link_latency" and self.severity < 0:
            raise ValueError(f"link_latency severity (extra ns) must be >= 0")
        if self.kind == "device_slowdown" and self.severity < 1.0:
            raise ValueError(
                f"device_slowdown severity is a stretch factor >= 1, got {self.severity}"
            )

    @property
    def duration_ns(self) -> float:
        """Window length."""
        return self.t_end - self.t_start

    def label(self) -> str:
        """Short human-readable name (profiler span / trace row)."""
        if self.kind in LINK_KINDS:
            return f"fault.{self.kind}.{self.src}->{self.dst}"
        return f"fault.{self.kind}.dev{self.device}"


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, validated schedule of fault windows."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for ev in events:
            if not isinstance(ev, FaultEvent):
                raise TypeError(f"FaultPlan events must be FaultEvent, got {type(ev)}")
        object.__setattr__(self, "events", events)

    @classmethod
    def empty(cls) -> "FaultPlan":
        """A plan with no faults (the healthy reference)."""
        return cls()

    @property
    def is_empty(self) -> bool:
        """True when the plan schedules nothing."""
        return not self.events

    def __len__(self) -> int:
        return len(self.events)

    def for_link(self, src: int, dst: int) -> List[FaultEvent]:
        """Events targeting the directed pair ``(src, dst)``."""
        return [
            ev for ev in self.events
            if ev.kind in LINK_KINDS and ev.src == src and ev.dst == dst
        ]

    def for_device(self, device: int) -> List[FaultEvent]:
        """Device-kind events targeting ``device``."""
        return [
            ev for ev in self.events if ev.kind in DEVICE_KINDS and ev.device == device
        ]

    def max_devices_referenced(self) -> int:
        """Smallest device count this plan is valid for."""
        ids = [0]
        for ev in self.events:
            ids.append(max(ev.src, ev.dst, ev.device) + 1)
        return max(ids)

    @classmethod
    def generate(
        cls,
        n_devices: int,
        duration_ns: float,
        *,
        severity: float = 0.5,
        seed: int = 0,
        events_per_kind: int = 2,
    ) -> "FaultPlan":
        """Seeded random plan whose depth scales with ``severity`` in [0, 1].

        ``severity == 0`` returns the empty plan.  Otherwise each fault
        kind gets ``events_per_kind`` windows at random offsets inside
        ``duration_ns``, with magnitudes interpolating from mild (derate
        to 90% bandwidth, 1.2x straggler) at severity→0 up to harsh (10%
        bandwidth, 4x straggler, long flaps) at severity 1.  Link flaps
        only appear from severity 0.5 upward — the qualitative cliff the
        fault sweep exposes.
        """
        if n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        if not (0.0 <= severity <= 1.0):
            raise ValueError(f"severity must be in [0, 1], got {severity}")
        if events_per_kind < 0:
            raise ValueError("events_per_kind must be >= 0")
        if severity == 0.0 or events_per_kind == 0:
            return cls()
        rng = np.random.default_rng(seed)
        events: List[FaultEvent] = []
        window_ns = duration_ns * (0.05 + 0.25 * severity)

        def rand_window() -> Tuple[float, float]:
            t0 = float(rng.uniform(0.0, max(duration_ns - window_ns, 1.0)))
            return t0, t0 + window_ns

        def rand_pair() -> Tuple[int, int]:
            src = int(rng.integers(0, n_devices))
            dst = int(rng.integers(0, n_devices - 1))
            if dst >= src:
                dst += 1
            return src, dst

        for _ in range(events_per_kind):
            if n_devices > 1:
                s, d = rand_pair()
                t0, t1 = rand_window()
                events.append(FaultEvent(
                    "link_degrade", t0, t1, src=s, dst=d,
                    severity=1.0 - 0.9 * severity,
                ))
                s, d = rand_pair()
                t0, t1 = rand_window()
                events.append(FaultEvent(
                    "link_latency", t0, t1, src=s, dst=d,
                    severity=float(severity * 100 * us),
                ))
                if severity >= 0.5:
                    s, d = rand_pair()
                    t0, t1 = rand_window()
                    events.append(FaultEvent("link_down", t0, t1, src=s, dst=d))
            dev = int(rng.integers(0, n_devices))
            t0, t1 = rand_window()
            events.append(FaultEvent(
                "device_slowdown", t0, t1, device=dev,
                severity=1.0 + 3.0 * severity,
            ))
            dev = int(rng.integers(0, n_devices))
            t0, t1 = rand_window()
            stall = min(float(severity * 2 * ms), window_ns)
            events.append(FaultEvent(
                "device_stall", t0, t0 + stall, device=dev,
            ))
        return cls(tuple(events))
