"""Fault injection and resilient serving for the retrieval stack.

Real multi-GPU inference fleets see degraded NVLink lanes, flapping
links, straggling devices, and transient stalls; a retrieval tier that
crashes or blows every SLO the moment one is present is not deployable.
This package provides:

* :mod:`repro.faults.plan` — :class:`FaultPlan` / :class:`FaultEvent`:
  deterministic, seedable schedules of fault windows (bandwidth derates,
  latency spikes, link flaps, device slowdowns, stalls);
* :mod:`repro.faults.injector` — :class:`FaultInjector`, which plays a
  plan onto a live cluster as engine callbacks, with every window
  recorded as a profiler span (category ``"fault"``) visible in Chrome
  traces;
* :mod:`repro.faults.resilient` — :class:`ResilientRetrieval`, wrapping
  either base backend with per-batch deadlines, retries with exponential
  backoff, two-hop reroutes around downed links, and graceful
  degradation (hot-row fallback cache, then zero-fill) instead of
  failure.

Importing this package registers the ``"pgas+resilient"`` and
``"baseline+resilient"`` backends with the core registry, so

>>> emb = DistributedEmbedding(cfg, n_devices=4, backend="pgas+resilient",
...                            features=FeatureSpec(resilience=ResilienceSpec(deadline_ns=2 * ms)))

works exactly like the base backends (``repro`` imports it for you).
With an empty plan and no deadline the wrapper is a zero-overhead
pass-through.
"""

from __future__ import annotations

from ..core.factory import build_adapter
from ..core.retrieval import register_backend
from .injector import SPAN_CATEGORY, WINDOW_COUNTER, FaultInjector, pair_is_down
from .plan import DEVICE_KINDS, FAULT_KINDS, LINK_KINDS, FaultEvent, FaultPlan
from .resilient import BatchOutcome, ResilienceSpec, ResilientRetrieval

__all__ = [
    "BatchOutcome",
    "DEVICE_KINDS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "LINK_KINDS",
    "ResilienceSpec",
    "ResilientRetrieval",
    "SPAN_CATEGORY",
    "WINDOW_COUNTER",
    "pair_is_down",
    "resilient_retrieval_for",
]


def resilient_retrieval_for(emb, base: str) -> ResilientRetrieval:
    """Build a :class:`ResilientRetrieval` bound to a
    :class:`~repro.core.retrieval.DistributedEmbedding` (the registry
    factories' shared implementation)."""
    spec = getattr(emb, "resilience_config", None)
    if spec is not None and not isinstance(spec, ResilienceSpec):
        raise TypeError(
            f"DistributedEmbedding resilience must be a ResilienceSpec, "
            f"got {type(spec).__name__}"
        )
    return ResilientRetrieval(
        emb.cluster,
        emb.plan,
        spec or ResilienceSpec(),
        base=base,
        collective_spec=emb.collective_spec,
        pgas_spec=emb.pgas_spec,
        sharded=emb.sharded,
    )


# Thin aliases: composition lives in repro.core.factory.build_adapter.
register_backend(
    "pgas+resilient",
    lambda emb: build_adapter(emb, "pgas+resilient"),
    requires_indices=False,
    description="PGAS retrieval under the retry/reroute/degrade fault wrapper",
)
register_backend(
    "baseline+resilient",
    lambda emb: build_adapter(emb, "baseline+resilient"),
    requires_indices=False,
    description="collective retrieval under the retry/reroute/degrade fault wrapper",
)
