"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live cluster.

The injector turns each fault window into two engine callbacks — apply at
``t_start`` and revert at ``t_end`` (relative to installation time) — that
mutate the fault state on :class:`~repro.simgpu.interconnect.Link` /
:class:`~repro.simgpu.device.Device`.  Windows of the same kind compose:
two overlapping 0.5x bandwidth derates yield 0.25x until the first one
reverts.  ``link_down`` and ``device_stall`` extend the target's absolute
hold-until time at the window's *start*, so they need no revert callback
and behave correctly even when the simulation ends mid-window.

Every window is recorded as a profiler span (category ``"fault"``) at
apply time covering the whole planned extent, plus a ``faults.windows``
counter tick — both visible in Chrome traces.
"""

from __future__ import annotations

from typing import List, Optional

from ..simgpu.cluster import Cluster
from .plan import DEVICE_KINDS, FaultEvent, FaultPlan

__all__ = ["FaultInjector", "SPAN_CATEGORY", "WINDOW_COUNTER", "pair_is_down"]

#: profiler span category of every fault window
SPAN_CATEGORY = "fault"
#: profiler counter ticked once per applied window
WINDOW_COUNTER = "faults.windows"


def pair_is_down(cluster: Cluster, src: int, dst: int) -> bool:
    """True when ``src`` cannot currently reach ``dst`` directly.

    Either the topology never connected the pair, or its link is inside a
    ``link_down`` window right now.  Never instantiates the link.
    """
    if src == dst:
        return False
    if not cluster.topology.connected(src, dst):
        return True
    lk = cluster.interconnect.peek_link(src, dst)
    return lk is not None and lk.is_down(cluster.engine.now)


class FaultInjector:
    """Schedules a plan's windows on a cluster's engine.

    One injector installs one plan exactly once; the windows then play out
    on the simulated clock with no further coordination.  The plan's
    relative times are anchored at ``engine.now`` of the :meth:`install`
    call.
    """

    def __init__(self, cluster: Cluster, plan: FaultPlan):
        if plan.max_devices_referenced() > cluster.n_devices:
            raise ValueError(
                f"plan references device {plan.max_devices_referenced() - 1} but "
                f"cluster has {cluster.n_devices} devices"
            )
        for ev in plan.events:
            if ev.kind not in DEVICE_KINDS and not cluster.topology.connected(ev.src, ev.dst):
                raise ValueError(
                    f"plan faults link ({ev.src}, {ev.dst}) which does not exist "
                    f"in {cluster.topology.name}"
                )
        self.cluster = cluster
        self.plan = plan
        self.installed_at: Optional[float] = None
        self.applied: List[FaultEvent] = []

    def install(self) -> "FaultInjector":
        """Anchor the plan at the current simulated time; returns self."""
        if self.installed_at is not None:
            raise RuntimeError("FaultInjector.install() called twice")
        engine = self.cluster.engine
        self.installed_at = engine.now
        for ev in self.plan.events:
            engine.call_at(self.installed_at + ev.t_start, lambda e=ev: self._apply(e))
            if ev.kind in ("link_degrade", "link_latency", "device_slowdown"):
                engine.call_at(self.installed_at + ev.t_end, lambda e=ev: self._revert(e))
        return self

    # -- window edges ------------------------------------------------------------

    def _apply(self, ev: FaultEvent) -> None:
        cluster = self.cluster
        now = cluster.engine.now
        assert self.installed_at is not None
        abs_end = self.installed_at + ev.t_end
        if ev.kind == "link_degrade":
            cluster.interconnect.link(ev.src, ev.dst).degrade(bandwidth_scale=ev.severity)
        elif ev.kind == "link_latency":
            cluster.interconnect.link(ev.src, ev.dst).degrade(extra_latency_ns=ev.severity)
        elif ev.kind == "link_down":
            cluster.interconnect.link(ev.src, ev.dst).set_down_until(abs_end)
        elif ev.kind == "device_slowdown":
            cluster.device(ev.device).slowdown *= ev.severity
        elif ev.kind == "device_stall":
            cluster.device(ev.device).stall_until(abs_end)
        elif ev.kind == "device_down":
            # Permanent: marks the device dead from now on; no revert edge
            # is ever scheduled (install() excludes it, like device_stall).
            cluster.device(ev.device).mark_down(now)
        self.applied.append(ev)
        prof = cluster.profiler
        device_id = ev.device if ev.kind in DEVICE_KINDS else -1
        # Record the full planned extent now: deterministic trace content
        # even if the run ends inside the window.
        prof.record_span(ev.label(), SPAN_CATEGORY, device_id, now, abs_end)
        prof.add_count(WINDOW_COUNTER, now, 1.0, unit="windows")

    def _revert(self, ev: FaultEvent) -> None:
        cluster = self.cluster
        if ev.kind == "link_degrade":
            cluster.interconnect.link(ev.src, ev.dst).restore(bandwidth_scale=ev.severity)
        elif ev.kind == "link_latency":
            cluster.interconnect.link(ev.src, ev.dst).restore(extra_latency_ns=ev.severity)
        elif ev.kind == "device_slowdown":
            cluster.device(ev.device).slowdown /= ev.severity

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "installed" if self.installed_at is not None else "pending"
        return f"<FaultInjector {len(self.plan)} events {state}>"
